// In-process MapReduce runtime — "relying on MapReduce or Hadoop style
// computations on the cloud" (paper, stage 2), scaled to one node.
//
// The full Hadoop dataflow in miniature: map tasks run in parallel over
// input splits and partition their (key, value) emissions by hash(key) %
// reducers; the shuffle groups each partition by key; reduce tasks run in
// parallel over partitions. Byte counters expose the shuffle volume — the
// quantity that dominates a real cluster run and the reason the paper's
// stage-2 query (sum per trial) MapReduces so well (combiner-friendly,
// tiny shuffle).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "util/require.hpp"

namespace riskan::mapreduce {

struct MapReduceConfig {
  std::size_t reducers = 4;
  ThreadPool* pool = nullptr;
  /// Apply a user combiner inside each map task (pre-shuffle reduction).
  bool enable_combiner = true;
};

struct MapReduceStats {
  std::uint64_t map_emissions = 0;
  std::uint64_t shuffle_pairs = 0;     ///< pairs crossing the map->reduce edge
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t reduce_groups = 0;
  // Fault-recovery ledger, populated when the job rides the multi-process
  // dist transport (src/dist/): zero on the in-process runtime, non-zero
  // under injected faults (the recovery tests assert it).
  std::uint64_t blocks_retried = 0;    ///< map blocks re-queued after a failure
  std::uint64_t bytes_resent = 0;      ///< task bytes of those re-sends
  std::uint64_t leases_expired = 0;    ///< leases that timed out (stragglers)
  double seconds = 0.0;
};

/// Publishes a finished job's ledger into the global obs registry under the
/// "mr." prefix. MapReduceStats stays the per-job view; the registry is the
/// engine-wide accumulation across jobs (near-zero cost when obs is off).
void publish_mapreduce_stats(const MapReduceStats& stats);

/// Runs MapReduce over `splits`.
///
/// * `map_fn(split_index, emit)` — calls emit(key, value) any number of
///   times.
/// * `combine_fn(a, b)` — associative merge of two values for one key
///   (used per map task when enabled, and as the reducer when values are
///   scalar-mergeable). For the stage-2 job this is +.
///
/// Returns the fully reduced key -> value map. Deterministic: combiner
/// application order follows emission order within a map task, and map
/// tasks touch disjoint keys in the aggregate job (keys = trial ids).
template <typename K, typename V>
std::map<K, V> run_mapreduce(
    std::size_t splits,
    const std::function<void(std::size_t, const std::function<void(const K&, const V&)>&)>&
        map_fn,
    const std::function<V(const V&, const V&)>& combine_fn,
    const MapReduceConfig& config = {}, MapReduceStats* stats = nullptr) {
  RISKAN_REQUIRE(splits > 0, "MapReduce needs input splits");
  RISKAN_REQUIRE(config.reducers > 0, "MapReduce needs reducers");

  const std::size_t reducers = config.reducers;

  // Partition buffers: [reducer][...] of (key, value), guarded per reducer.
  std::vector<std::map<K, V>> partitions(reducers);
  std::vector<std::mutex> partition_locks(reducers);
  std::uint64_t emissions = 0;
  std::uint64_t shuffle_pairs = 0;
  std::mutex stats_lock;

  parallel_for(
      0, splits,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t split = lo; split < hi; ++split) {
          RISKAN_SPAN("mr.map_task");
          // Per-task local buffers (the map-side combine).
          std::map<K, V> local;
          std::uint64_t local_emissions = 0;
          std::uint64_t local_shuffle = 0;
          auto route = [&](const K& key, const V& value) {
            const std::size_t r = std::hash<K>{}(key) % reducers;
            ++local_shuffle;
            std::lock_guard lock(partition_locks[r]);
            auto [it, inserted] = partitions[r].try_emplace(key, value);
            if (!inserted) {
              it->second = combine_fn(it->second, value);
            }
          };
          auto emit = [&](const K& key, const V& value) {
            ++local_emissions;
            if (config.enable_combiner) {
              // Map-side combine: merge locally, shuffle once per key.
              auto [it, inserted] = local.try_emplace(key, value);
              if (!inserted) {
                it->second = combine_fn(it->second, value);
              }
            } else {
              // Every emission crosses the shuffle edge.
              route(key, value);
            }
          };
          map_fn(split, emit);
          for (const auto& [key, value] : local) {
            route(key, value);
          }
          std::lock_guard lock(stats_lock);
          emissions += local_emissions;
          shuffle_pairs += local_shuffle;
        }
      },
      ParallelConfig{config.pool, /*grain=*/1});

  // Reduce: partitions are already key-grouped; merge into the result.
  std::map<K, V> result;
  std::uint64_t groups = 0;
  for (auto& partition : partitions) {
    groups += partition.size();
    result.merge(partition);
  }

  if (stats != nullptr) {
    stats->map_emissions = emissions;
    stats->shuffle_pairs = shuffle_pairs;
    stats->shuffle_bytes = shuffle_pairs * (sizeof(K) + sizeof(V));
    stats->reduce_groups = groups;
    publish_mapreduce_stats(*stats);
  }
  return result;
}

}  // namespace riskan::mapreduce
