#include "mapreduce/framework.hpp"

#include "obs/registry.hpp"

namespace riskan::mapreduce {

void publish_mapreduce_stats(const MapReduceStats& stats) {
  auto& reg = obs::MetricsRegistry::global();
  static const obs::Counter jobs = reg.counter("mr.jobs");
  static const obs::Counter emissions = reg.counter("mr.map_emissions");
  static const obs::Counter shuffle_pairs = reg.counter("mr.shuffle_pairs");
  static const obs::Counter shuffle_bytes = reg.counter("mr.shuffle_bytes");
  static const obs::Counter reduce_groups = reg.counter("mr.reduce_groups");
  static const obs::Counter blocks_retried = reg.counter("mr.blocks_retried");
  static const obs::Counter bytes_resent = reg.counter("mr.bytes_resent");
  static const obs::Counter leases_expired = reg.counter("mr.leases_expired");
  jobs.add();
  emissions.add(static_cast<double>(stats.map_emissions));
  shuffle_pairs.add(static_cast<double>(stats.shuffle_pairs));
  shuffle_bytes.add(static_cast<double>(stats.shuffle_bytes));
  reduce_groups.add(static_cast<double>(stats.reduce_groups));
  blocks_retried.add(static_cast<double>(stats.blocks_retried));
  bytes_resent.add(static_cast<double>(stats.bytes_resent));
  leases_expired.add(static_cast<double>(stats.leases_expired));
}

}  // namespace riskan::mapreduce
