// Simulated distributed file space — approach (ii) of the paper's
// conclusions: "support enormous distributed file systems ... rich
// simulation environments that support ad-hoc analytical investigation of
// truly massive datasets."
//
// A directory-backed block store with an HDFS-shaped interface: files are
// split into fixed-size blocks; each block is an independent object a
// mapper can read in isolation; a namenode-style catalogue maps file names
// to block lists. Replication is simulated by writing block copies, so the
// storage-amplification arithmetic of a real DFS shows up in the byte
// accounting.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace riskan::mapreduce {

struct DfsConfig {
  std::string root_dir = "/tmp/riskan-dfs";
  std::size_t block_size = 4 * 1024 * 1024;
  int replication = 1;
};

class Dfs {
 public:
  explicit Dfs(DfsConfig config = {});
  ~Dfs();

  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Writes a file, splitting it into blocks. Overwrites existing.
  void write(const std::string& name, std::span<const std::byte> data);

  /// Writes a file whose blocks are the caller's logical chunks (one chunk
  /// = one block, regardless of size). This is how the aggregate job keeps
  /// whole trials inside one block.
  void write_chunked(const std::string& name,
                     const std::vector<std::vector<std::byte>>& chunks);

  bool exists(const std::string& name) const;
  std::size_t block_count(const std::string& name) const;
  std::vector<std::byte> read_block(const std::string& name, std::size_t block) const;
  std::vector<std::byte> read_all(const std::string& name) const;

  void remove(const std::string& name);

  /// Logical bytes stored (before replication) and physical (after).
  std::uint64_t logical_bytes() const noexcept { return logical_bytes_; }
  std::uint64_t physical_bytes() const noexcept {
    return logical_bytes_ * static_cast<std::uint64_t>(config_.replication);
  }

  const DfsConfig& config() const noexcept { return config_; }

 private:
  std::string block_path(const std::string& name, std::size_t block, int replica) const;

  DfsConfig config_;
  std::map<std::string, std::vector<std::uint64_t>> catalogue_;  // name -> block sizes
  std::uint64_t logical_bytes_ = 0;
};

}  // namespace riskan::mapreduce
