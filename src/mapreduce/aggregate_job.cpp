#include "mapreduce/aggregate_job.hpp"

#include "data/serialize.hpp"
#include "data/trial_source.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace riskan::mapreduce {

std::size_t stage_yelt(Dfs& dfs, const data::YearEventLossTable& yelt,
                       const AggregateJobConfig& config) {
  RISKAN_REQUIRE(config.trials_per_block > 0, "trials per block must be positive");
  const TrialId trials = yelt.trials();

  std::vector<std::vector<std::byte>> blocks;
  for (TrialId lo = 0; lo < trials; lo += config.trials_per_block) {
    const TrialId hi = std::min<TrialId>(trials, lo + config.trials_per_block);
    ByteWriter writer;
    data::encode_yelt_slice(yelt, lo, hi, writer);
    blocks.push_back(writer.buffer());
  }
  dfs.write_chunked(config.dfs_file, blocks);
  return blocks.size();
}

AggregateJobResult run_aggregate_job(Dfs& dfs, const finance::Portfolio& portfolio,
                                     const data::YearEventLossTable& yelt,
                                     const AggregateJobConfig& config) {
  AggregateJobResult result;

  Stopwatch stage_watch;
  if (!dfs.exists(config.dfs_file)) {
    stage_yelt(dfs, yelt, config);
  }
  result.stage_in_seconds = stage_watch.seconds();
  result.blocks = dfs.block_count(config.dfs_file);
  result.dfs_bytes = dfs.physical_bytes();

  const TrialId total_trials = yelt.trials();
  const TrialId per_block = config.trials_per_block;

  Stopwatch job_watch;
  MapReduceConfig mr_config;
  mr_config.reducers = config.reducers;
  mr_config.pool = config.pool;

  const auto reduced = run_mapreduce<TrialId, Money>(
      result.blocks,
      [&](std::size_t split, const std::function<void(const TrialId&, const Money&)>& emit) {
        // Map task: wrap the DFS block in the shared block-slicing adapter
        // (data::EncodedBlockSource decodes it through the same data plane
        // every entry point uses) and run the engine with the block's
        // global trial base.
        const auto bytes = dfs.read_block(config.dfs_file, split);
        data::EncodedBlockSource source(bytes);

        core::EngineConfig engine;
        engine.backend = core::Backend::Sequential;
        engine.seed = config.seed;
        engine.secondary_uncertainty = config.secondary_uncertainty;
        engine.compute_oep = false;
        engine.keep_contract_ylts = false;
        engine.trial_base = static_cast<TrialId>(split) * per_block;
        engine.use_resolver = config.use_resolver;
        // Each map task carries the whole contract group: with batching on,
        // its YELT slice is streamed once serving every contract, instead
        // of once per (contract, layer). Batching is resolver-intrinsic,
        // so the use_resolver=false ablation keeps the per-contract path.
        engine.batch_contracts = config.batch_contracts && config.use_resolver;
        // The decoded slice is task-local; the ephemeral source makes the
        // engine resolve through a run-local cache automatically, still
        // sharing the pre-join across the contracts' layers without
        // parking dead keys in the process-wide cache.

        const auto block_result = core::run_aggregate_analysis(portfolio, source, engine);
        const auto losses = block_result.portfolio_ylt.losses();
        for (TrialId t = 0; t < source.trials(); ++t) {
          emit(engine.trial_base + t, losses[t]);
        }
      },
      [](const Money& a, const Money& b) { return a + b; }, mr_config, &result.mr_stats);
  result.job_seconds = job_watch.seconds();

  data::YearLossTable ylt(total_trials, "portfolio-mapreduce");
  for (const auto& [trial, loss] : reduced) {
    RISKAN_REQUIRE(trial < total_trials, "reduced trial id out of range");
    ylt[trial] = loss;
  }
  result.portfolio_ylt = std::move(ylt);
  return result;
}

}  // namespace riskan::mapreduce
