#include "mapreduce/aggregate_job.hpp"

#include <algorithm>

#include "data/serialize.hpp"
#include "data/trial_source.hpp"
#include "dist/coordinator.hpp"
#include "obs/obs.hpp"
#include "util/require.hpp"

namespace riskan::mapreduce {

std::size_t stage_yelt(Dfs& dfs, const data::YearEventLossTable& yelt,
                       const AggregateJobConfig& config) {
  RISKAN_REQUIRE(config.trials_per_block > 0, "trials per block must be positive");
  const TrialId trials = yelt.trials();

  std::vector<std::vector<std::byte>> blocks;
  for (TrialId lo = 0; lo < trials; lo += config.trials_per_block) {
    const TrialId hi = std::min<TrialId>(trials, lo + config.trials_per_block);
    ByteWriter writer;
    data::encode_yelt_slice(yelt, lo, hi, writer);
    blocks.push_back(writer.buffer());
  }
  dfs.write_chunked(config.dfs_file, blocks);
  return blocks.size();
}

AggregateJobResult run_aggregate_job(Dfs& dfs, const finance::Portfolio& portfolio,
                                     const data::YearEventLossTable& yelt,
                                     const AggregateJobConfig& config) {
  obs::validate_obs_config(config.obs);
  AggregateJobResult result;
  // One observability window covers the whole job; map tasks and dist
  // workers run with obs cleared so nothing nests.
  obs::RunObsScope obs_scope(config.obs);

  obs::Timer stage_watch("mr.stage_in");
  if (!dfs.exists(config.dfs_file)) {
    stage_yelt(dfs, yelt, config);
  }
  result.stage_in_seconds = stage_watch.stop();
  result.blocks = dfs.block_count(config.dfs_file);
  result.dfs_bytes = dfs.physical_bytes();

  const TrialId total_trials = yelt.trials();
  const TrialId per_block = config.trials_per_block;

  core::adaptive::validate_adaptive_config(config.adaptive);
  if (config.adaptive.enabled()) {
    RISKAN_REQUIRE(
        (config.adaptive.metrics & core::adaptive::kOccurrenceMetrics) == 0,
        "adaptive MapReduce jobs monitor aggregate metrics only "
        "(map tasks emit the aggregate view, not the OEP sample)");
  }

  if (config.dist.has_value()) {
    // The job rides the multi-process transport: each DFS block becomes a
    // leased work unit for a forked worker, and the per-trial reduce is
    // the coordinator's assignment into the output YLT. Same blocks, same
    // trial bases, same Sequential kernel — bit-identical to the
    // in-process runtime below, faults and retries included. The adaptive
    // config rides along whole: the coordinator folds completed blocks at
    // a trial-order frontier and cancels leases on convergence, stopping
    // at the same trial as the in-process fold below.
    core::EngineConfig engine;
    engine.seed = config.seed;
    engine.secondary_uncertainty = config.secondary_uncertainty;
    engine.use_resolver = config.use_resolver;
    engine.batch_contracts = config.batch_contracts && config.use_resolver;
    engine.adaptive = config.adaptive;

    std::vector<dist::BlockSpec> specs;
    specs.reserve(result.blocks);
    for (std::size_t i = 0; i < result.blocks; ++i) {
      const TrialId lo = static_cast<TrialId>(i) * per_block;
      const TrialId hi = std::min<TrialId>(total_trials, lo + per_block);
      specs.push_back({i, lo, hi - lo});
    }

    obs::Timer job_watch("mr.job");
    auto dist_result = dist::run_distributed_aggregate(
        portfolio, engine, specs,
        [&](const dist::BlockSpec& spec) {
          return dfs.read_block(config.dfs_file, static_cast<std::size_t>(spec.id));
        },
        *config.dist);
    result.job_seconds = job_watch.stop();

    const TrialId produced = dist_result.portfolio_ylt.trials();
    result.portfolio_ylt = std::move(dist_result.portfolio_ylt);
    result.portfolio_ylt.set_label("portfolio-mapreduce");
    result.dist_stats = dist_result.stats;
    result.adaptive_report = dist_result.adaptive;
    // Mirror the runtime's ledger into the MapReduce view: emissions and
    // groups are per-trial as in-process (adaptive runs count the folded
    // prefix); the shuffle edge is the result pipes; the retry counters
    // are the dist layer's recovery telemetry.
    result.mr_stats.map_emissions = produced;
    result.mr_stats.shuffle_pairs = produced;
    result.mr_stats.shuffle_bytes = dist_result.stats.result_bytes_received;
    result.mr_stats.reduce_groups = produced;
    result.mr_stats.blocks_retried = dist_result.stats.blocks_retried;
    result.mr_stats.bytes_resent = dist_result.stats.bytes_resent;
    result.mr_stats.leases_expired = dist_result.stats.leases_expired;
    result.mr_stats.seconds = dist_result.seconds;
    publish_mapreduce_stats(result.mr_stats);
    result.obs_report = obs_scope.finish();
    return result;
  }

  if (config.adaptive.enabled()) {
    // Adaptive in-process job: map tasks run sequentially in split order —
    // each split IS one decision block (trials_per_block is the grid;
    // adaptive.block_trials is ignored) — folding each output into the
    // controller and stopping the schedule once it converges. The shuffle
    // collapses to per-trial assignment (splits partition the trial
    // space), mirroring the dist coordinator's reduce; its trial-order
    // fold frontier makes a dist run of the same job stop at the
    // identical trial.
    obs::Timer adaptive_watch("mr.job");
    core::adaptive::ConvergenceController controller(config.adaptive, total_trials);
    data::YearLossTable ylt(total_trials, "portfolio-mapreduce");
    for (std::size_t split = 0; split < result.blocks && !controller.should_stop();
         ++split) {
      const auto bytes = dfs.read_block(config.dfs_file, split);
      data::EncodedBlockSource source(bytes);

      core::EngineConfig engine;
      engine.backend = core::Backend::Sequential;
      engine.seed = config.seed;
      engine.secondary_uncertainty = config.secondary_uncertainty;
      engine.compute_oep = false;
      engine.keep_contract_ylts = false;
      engine.trial_base = static_cast<TrialId>(split) * per_block;
      engine.use_resolver = config.use_resolver;
      engine.batch_contracts = config.batch_contracts && config.use_resolver;

      const auto block_result = core::run_aggregate_analysis(portfolio, source, engine);
      const auto losses = block_result.portfolio_ylt.losses();
      std::copy(losses.begin(), losses.end(),
                ylt.mutable_losses().begin() + engine.trial_base);
      controller.fold(losses, {});
      result.mr_stats.map_emissions += losses.size();
    }
    ylt.truncate(controller.trials_folded());
    result.portfolio_ylt = std::move(ylt);
    result.adaptive_report = controller.report();
    result.mr_stats.shuffle_pairs = result.mr_stats.map_emissions;
    result.mr_stats.reduce_groups = controller.trials_folded();
    result.job_seconds = adaptive_watch.stop();
    result.mr_stats.seconds = result.job_seconds;
    publish_mapreduce_stats(result.mr_stats);
    result.obs_report = obs_scope.finish();
    return result;
  }

  obs::Timer job_watch("mr.job");
  MapReduceConfig mr_config;
  mr_config.reducers = config.reducers;
  mr_config.pool = config.pool;

  const auto reduced = run_mapreduce<TrialId, Money>(
      result.blocks,
      [&](std::size_t split, const std::function<void(const TrialId&, const Money&)>& emit) {
        // Map task: wrap the DFS block in the shared block-slicing adapter
        // (data::EncodedBlockSource decodes it through the same data plane
        // every entry point uses) and run the engine with the block's
        // global trial base.
        const auto bytes = dfs.read_block(config.dfs_file, split);
        data::EncodedBlockSource source(bytes);

        core::EngineConfig engine;
        engine.backend = core::Backend::Sequential;
        engine.seed = config.seed;
        engine.secondary_uncertainty = config.secondary_uncertainty;
        engine.compute_oep = false;
        engine.keep_contract_ylts = false;
        engine.trial_base = static_cast<TrialId>(split) * per_block;
        engine.use_resolver = config.use_resolver;
        // Each map task carries the whole contract group: with batching on,
        // its YELT slice is streamed once serving every contract, instead
        // of once per (contract, layer). Batching is resolver-intrinsic,
        // so the use_resolver=false ablation keeps the per-contract path.
        engine.batch_contracts = config.batch_contracts && config.use_resolver;
        // The decoded slice is task-local; the ephemeral source makes the
        // engine resolve through a run-local cache automatically, still
        // sharing the pre-join across the contracts' layers without
        // parking dead keys in the process-wide cache.

        const auto block_result = core::run_aggregate_analysis(portfolio, source, engine);
        const auto losses = block_result.portfolio_ylt.losses();
        for (TrialId t = 0; t < source.trials(); ++t) {
          emit(engine.trial_base + t, losses[t]);
        }
      },
      [](const Money& a, const Money& b) { return a + b; }, mr_config, &result.mr_stats);
  result.job_seconds = job_watch.stop();

  data::YearLossTable ylt(total_trials, "portfolio-mapreduce");
  for (const auto& [trial, loss] : reduced) {
    RISKAN_REQUIRE(trial < total_trials, "reduced trial id out of range");
    ylt[trial] = loss;
  }
  result.portfolio_ylt = std::move(ylt);
  result.obs_report = obs_scope.finish();
  return result;
}

}  // namespace riskan::mapreduce
