// Aggregate analysis as a MapReduce job over the distributed file space —
// the paper's alternative stage-2 architecture (experiment E6).
//
// The YELT is split into trial-range blocks stored in the DFS; each map
// task deserialises its block and lowers the whole contract group through
// the same execution plan onto the same trial kernel the in-memory engine
// uses (sequential executor — pool-free by contract, portfolio-batched by
// default so the slice is streamed once for every contract, trial_base =
// the block's first global trial so secondary-uncertainty streams line
// up), and emits (trial, portfolio loss). The reduce is a per-trial sum — trivially
// combiner-friendly, which is why this workload MapReduces well. The
// output YLT is bit-identical to the in-memory engine's (integration tests
// enforce this).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/aggregate_engine.hpp"
#include "data/yelt.hpp"
#include "data/ylt.hpp"
#include "dist/config.hpp"
#include "finance/contract.hpp"
#include "mapreduce/dfs.hpp"
#include "mapreduce/framework.hpp"

namespace riskan::mapreduce {

struct AggregateJobConfig {
  /// Trials per DFS block / map split.
  TrialId trials_per_block = 1'000;
  std::size_t reducers = 4;
  std::uint64_t seed = 2012;
  bool secondary_uncertainty = true;
  ThreadPool* pool = nullptr;
  std::string dfs_file = "yelt";
  /// Pre-join each contract's ELT to the map task's YELT slice once and
  /// share it across the contract's layers (core::EngineConfig::use_resolver).
  bool use_resolver = true;
  /// Run each map task portfolio-batched: the whole contract group is
  /// served by one streamed pass over the task's YELT slice instead of a
  /// per-contract re-walk (core::EngineConfig::batch_contracts). Outputs
  /// are bit-identical either way. The batched path is resolver-intrinsic,
  /// so `use_resolver = false` (the legacy-lookup ablation) forces the
  /// per-contract path regardless of this flag.
  bool batch_contracts = true;
  /// When set, the map phase rides the multi-process dist transport
  /// (src/dist/coordinator.hpp): DFS blocks are leased to forked worker
  /// processes with retry/re-queue and straggler re-execution, and the
  /// reduce is the coordinator's per-trial assignment. Bit-identical to
  /// the in-process runtime — faults included. nullopt = in-process
  /// MapReduce (the default, and the only option inside map/worker
  /// processes themselves).
  std::optional<dist::DistConfig> dist;
  /// Convergence-adaptive stopping (core/adaptive): with target_rel_err >
  /// 0 the job folds map outputs in split order and stops scheduling
  /// splits once the monitored metrics' CIs close, truncating the output
  /// YLT to the stopping trial. The decision grid is the DFS block
  /// partition itself — adaptive.block_trials is ignored; trials_per_block
  /// is the grid — so in-process and dist runs (any worker count) stop at
  /// the same trial. Occurrence metrics are rejected (map tasks emit the
  /// aggregate view only).
  core::adaptive::AdaptiveConfig adaptive;
  /// End-of-run observability (metrics report / chrome trace) for the whole
  /// job — stage-in, map, shuffle and reduce ride one window. Map tasks and
  /// dist workers never open nested windows of their own.
  obs::ObsConfig obs;
};

struct AggregateJobResult {
  /// Truncated to the stopping trial on an adaptive run.
  data::YearLossTable portfolio_ylt;
  /// Convergence report of an adaptive run (enabled = false otherwise).
  core::adaptive::AdaptiveReport adaptive_report;
  MapReduceStats mr_stats;
  /// Distribution-runtime telemetry; all-zero for in-process jobs.
  dist::DistStats dist_stats;
  std::uint64_t dfs_bytes = 0;
  std::size_t blocks = 0;
  double stage_in_seconds = 0.0;  ///< splitting + DFS write
  double job_seconds = 0.0;       ///< map + shuffle + reduce
  /// End-of-run observability report when AggregateJobConfig::obs asked.
  std::shared_ptr<const obs::ObsReport> obs_report;
};

/// Stages `yelt` into `dfs` as trial-range blocks.
/// Returns the number of blocks written.
std::size_t stage_yelt(Dfs& dfs, const data::YearEventLossTable& yelt,
                       const AggregateJobConfig& config);

/// Runs the full job: stage-in (if not already staged) + MapReduce.
AggregateJobResult run_aggregate_job(Dfs& dfs, const finance::Portfolio& portfolio,
                                     const data::YearEventLossTable& yelt,
                                     const AggregateJobConfig& config = {});

}  // namespace riskan::mapreduce
