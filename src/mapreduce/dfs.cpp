#include "mapreduce/dfs.hpp"

#include <filesystem>

#include "util/bytes.hpp"
#include "util/require.hpp"

namespace riskan::mapreduce {

namespace fs = std::filesystem;

Dfs::Dfs(DfsConfig config) : config_(std::move(config)) {
  RISKAN_REQUIRE(config_.block_size > 0, "DFS block size must be positive");
  RISKAN_REQUIRE(config_.replication >= 1, "replication factor must be at least 1");
  fs::create_directories(config_.root_dir);
}

Dfs::~Dfs() {
  std::error_code ec;
  fs::remove_all(config_.root_dir, ec);  // best-effort cleanup of the scratch space
}

std::string Dfs::block_path(const std::string& name, std::size_t block, int replica) const {
  return config_.root_dir + "/" + name + ".blk" + std::to_string(block) + ".r" +
         std::to_string(replica);
}

void Dfs::write(const std::string& name, std::span<const std::byte> data) {
  if (exists(name)) {
    remove(name);
  }
  std::vector<std::uint64_t> sizes;
  for (std::size_t off = 0; off < data.size() || sizes.empty(); off += config_.block_size) {
    const std::size_t len = std::min(config_.block_size, data.size() - off);
    const auto block = data.subspan(off, len);
    const std::size_t index = sizes.size();
    for (int r = 0; r < config_.replication; ++r) {
      write_file(block_path(name, index, r), block);
    }
    sizes.push_back(len);
    logical_bytes_ += len;
    if (len == data.size()) {
      break;
    }
  }
  catalogue_[name] = std::move(sizes);
}

void Dfs::write_chunked(const std::string& name,
                        const std::vector<std::vector<std::byte>>& chunks) {
  RISKAN_REQUIRE(!chunks.empty(), "chunked write needs chunks");
  if (exists(name)) {
    remove(name);
  }
  std::vector<std::uint64_t> sizes;
  sizes.reserve(chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    for (int r = 0; r < config_.replication; ++r) {
      write_file(block_path(name, i, r), chunks[i]);
    }
    sizes.push_back(chunks[i].size());
    logical_bytes_ += chunks[i].size();
  }
  catalogue_[name] = std::move(sizes);
}

bool Dfs::exists(const std::string& name) const {
  return catalogue_.contains(name);
}

std::size_t Dfs::block_count(const std::string& name) const {
  const auto it = catalogue_.find(name);
  RISKAN_REQUIRE(it != catalogue_.end(), "no such DFS file: " + name);
  return it->second.size();
}

std::vector<std::byte> Dfs::read_block(const std::string& name, std::size_t block) const {
  const auto it = catalogue_.find(name);
  RISKAN_REQUIRE(it != catalogue_.end(), "no such DFS file: " + name);
  RISKAN_REQUIRE(block < it->second.size(), "block index out of range for " + name);
  // Read replica 0; a real DFS would pick the nearest live replica.
  return read_file(block_path(name, block, 0));
}

std::vector<std::byte> Dfs::read_all(const std::string& name) const {
  std::vector<std::byte> out;
  const auto blocks = block_count(name);
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto block = read_block(name, b);
    out.insert(out.end(), block.begin(), block.end());
  }
  return out;
}

void Dfs::remove(const std::string& name) {
  const auto it = catalogue_.find(name);
  if (it == catalogue_.end()) {
    return;
  }
  for (std::size_t b = 0; b < it->second.size(); ++b) {
    for (int r = 0; r < config_.replication; ++r) {
      remove_file(block_path(name, b, r));
    }
    logical_bytes_ -= it->second[b];
  }
  catalogue_.erase(it);
}

}  // namespace riskan::mapreduce
