// DFA engine — stage 3: combine the catastrophe YLT with the other risk
// sources into an enterprise view.
//
// "The challenge here comes from the combination of YLTs representing
// different risks which easily results in terabytes of data. From a YLT, a
// reinsurer can derive important portfolio risk metrics such as the
// Probable Maximum Loss and the Tail Value at Risk ... Furthermore, these
// metrics then flow into the final stage in the risk analysis pipeline,
// namely Enterprise Risk Management."
//
// The engine streams trials: per trial it draws the copula vector, asks
// each source for its loss, adds the catastrophe loss, and feeds online
// accumulators (P2 quantile estimators + Welford stats) as well as the
// combined YLT. Bytes-touched accounting supports the paper's terabyte
// arithmetic in bench_e7.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "data/ylt.hpp"
#include "dfa/copula.hpp"
#include "dfa/risk_sources.hpp"

namespace riskan::dfa {

struct DfaConfig {
  std::uint64_t seed = 31337;
  /// Off-diagonal correlation between all risk sources (and the cat YLT).
  double correlation = 0.25;
  /// Keep per-source YLTs in the result (contracts x trials memory).
  bool keep_source_ylts = true;
};

struct DfaResult {
  /// Enterprise-wide per-trial net loss: cat + all sources.
  data::YearLossTable enterprise_ylt;
  /// Per-source YLTs (index-aligned with `source_names`); empty when
  /// keep_source_ylts is off.
  std::vector<data::YearLossTable> source_ylts;
  std::vector<std::string> source_names;

  /// Risk summaries: per source, for the cat input, and enterprise-wide.
  std::vector<core::RiskSummary> source_summaries;
  core::RiskSummary cat_summary;
  core::RiskSummary enterprise_summary;

  /// Economic capital: enterprise VaR 99.6 (1-in-250) minus expected loss.
  Money economic_capital = 0.0;

  /// Diversification benefit: sum of standalone VaR99.6 minus combined.
  Money diversification_benefit = 0.0;

  double seconds = 0.0;
  /// Bytes of YLT data logically touched (the terabyte-claim accounting).
  std::uint64_t ylt_bytes_touched = 0;
};

class DfaEngine {
 public:
  /// Takes ownership of the sources. The catastrophe YLT occupies copula
  /// dimension 0; sources follow in order.
  DfaEngine(std::vector<std::unique_ptr<RiskSource>> sources, DfaConfig config = {});

  /// Runs over the catastrophe YLT's trials.
  DfaResult run(const data::YearLossTable& cat_ylt) const;

  std::size_t source_count() const noexcept { return sources_.size(); }

 private:
  std::vector<std::unique_ptr<RiskSource>> sources_;
  DfaConfig config_;
};

}  // namespace riskan::dfa
