#include "dfa/risk_sources.hpp"

#include <cmath>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace riskan::dfa {

InvestmentRisk::InvestmentRisk(Money assets, double mean_return, double volatility)
    : assets_(assets), mean_return_(mean_return), volatility_(volatility) {
  RISKAN_REQUIRE(assets > 0.0, "investment assets must be positive");
  RISKAN_REQUIRE(volatility >= 0.0, "volatility must be non-negative");
}

Money InvestmentRisk::loss(double u, TrialId /*trial*/) const {
  // u is badness: high u = bad year = low return. Return quantile is the
  // normal inverse of (1-u).
  const double z = normal_inv_cdf(1.0 - u);
  const double annual_return = mean_return_ + volatility_ * z;
  return -assets_ * annual_return;  // gain is negative loss
}

InterestRateRisk::InterestRateRisk(Money bond_assets, double duration,
                                   double rate_volatility)
    : bond_assets_(bond_assets), duration_(duration), rate_volatility_(rate_volatility) {
  RISKAN_REQUIRE(bond_assets > 0.0, "bond assets must be positive");
  RISKAN_REQUIRE(duration > 0.0, "duration must be positive");
  RISKAN_REQUIRE(rate_volatility >= 0.0, "rate volatility must be non-negative");
}

Money InterestRateRisk::loss(double u, TrialId /*trial*/) const {
  // Rising rates (positive shock) lose market value on a long-duration
  // book; u maps monotonically to the shock.
  const double shock = rate_volatility_ * normal_inv_cdf(u);
  return bond_assets_ * duration_ * shock;
}

MarketCycleRisk::MarketCycleRisk(Money premium_volume, double margin_sigma)
    : premium_volume_(premium_volume), margin_sigma_(margin_sigma) {
  RISKAN_REQUIRE(premium_volume > 0.0, "premium volume must be positive");
  RISKAN_REQUIRE(margin_sigma >= 0.0, "margin sigma must be non-negative");
}

Money MarketCycleRisk::loss(double u, TrialId /*trial*/) const {
  const double z = normal_inv_cdf(u);
  return premium_volume_ * margin_sigma_ * z;
}

CounterpartyRisk::CounterpartyRisk(Money recoverable, double default_probability,
                                   double loss_given_default)
    : recoverable_(recoverable),
      default_probability_(default_probability),
      lgd_(loss_given_default) {
  RISKAN_REQUIRE(recoverable > 0.0, "recoverable must be positive");
  RISKAN_REQUIRE(default_probability > 0.0 && default_probability < 1.0,
                 "default probability must lie in (0,1)");
  RISKAN_REQUIRE(loss_given_default > 0.0 && loss_given_default <= 1.0,
                 "LGD must lie in (0,1]");
}

Money CounterpartyRisk::loss(double u, TrialId /*trial*/) const {
  // Default in the top default_probability tail of badness; severity grows
  // deeper into the tail (recovery worsens in systemic stress).
  const double threshold = 1.0 - default_probability_;
  if (u < threshold) {
    return 0.0;
  }
  const double depth = (u - threshold) / default_probability_;  // (0,1]
  return recoverable_ * lgd_ * (0.5 + 0.5 * depth);
}

OperationalRisk::OperationalRisk(double lambda, double severity_mu, double severity_sigma,
                                 std::uint64_t seed)
    : lambda_(lambda), severity_mu_(severity_mu), severity_sigma_(severity_sigma),
      philox_(seed) {
  RISKAN_REQUIRE(lambda >= 0.0, "operational frequency must be non-negative");
  RISKAN_REQUIRE(severity_sigma >= 0.0, "severity sigma must be non-negative");
}

Money OperationalRisk::loss(double u, TrialId trial) const {
  // The copula uniform drives the count through the Poisson quantile
  // function (computed by summation — lambda is small); severities come
  // from the trial's own stream.
  double cdf = std::exp(-lambda_);
  double pmf = cdf;
  std::uint32_t count = 0;
  while (cdf < u && count < 1000) {
    ++count;
    pmf *= lambda_ / static_cast<double>(count);
    cdf += pmf;
  }
  if (count == 0) {
    return 0.0;
  }
  PhiloxStream stream(philox_, 0x09ull, trial);
  Money total = 0.0;
  for (std::uint32_t k = 0; k < count; ++k) {
    total += sample_lognormal(stream, severity_mu_, severity_sigma_);
  }
  return total;
}

ReserveRisk::ReserveRisk(Money reserves, double development_sigma)
    : reserves_(reserves), development_sigma_(development_sigma) {
  RISKAN_REQUIRE(reserves > 0.0, "reserves must be positive");
  RISKAN_REQUIRE(development_sigma >= 0.0, "development sigma must be non-negative");
}

Money ReserveRisk::loss(double u, TrialId /*trial*/) const {
  const double z = normal_inv_cdf(u);
  const double factor = std::exp(development_sigma_ * z - 0.5 * development_sigma_ *
                                                              development_sigma_);
  return reserves_ * (factor - 1.0);
}

std::vector<std::unique_ptr<RiskSource>> standard_risk_sources(std::uint64_t seed) {
  std::vector<std::unique_ptr<RiskSource>> sources;
  sources.push_back(std::make_unique<InvestmentRisk>(2.0e9, 0.05, 0.12));
  sources.push_back(std::make_unique<InterestRateRisk>(1.4e9, 5.5, 0.012));
  sources.push_back(std::make_unique<MarketCycleRisk>(8.0e8, 0.08));
  sources.push_back(std::make_unique<CounterpartyRisk>(3.0e8, 0.02, 0.55));
  sources.push_back(std::make_unique<OperationalRisk>(0.8, std::log(2.0e6), 1.6, seed));
  sources.push_back(std::make_unique<ReserveRisk>(1.2e9, 0.07));
  return sources;
}

}  // namespace riskan::dfa
