#include "dfa/dfa_engine.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace riskan::dfa {

DfaEngine::DfaEngine(std::vector<std::unique_ptr<RiskSource>> sources, DfaConfig config)
    : sources_(std::move(sources)), config_(config) {
  RISKAN_REQUIRE(!sources_.empty(), "DFA needs at least one risk source");
  for (const auto& source : sources_) {
    RISKAN_REQUIRE(source != nullptr, "null risk source");
  }
}

DfaResult DfaEngine::run(const data::YearLossTable& cat_ylt) const {
  RISKAN_REQUIRE(!cat_ylt.empty(), "catastrophe YLT is empty");
  obs::Timer watch("dfa.run");

  const TrialId trials = cat_ylt.trials();
  const std::size_t dims = sources_.size() + 1;  // cat occupies dimension 0

  const GaussianCopula copula(
      CorrelationMatrix::exchangeable(dims, config_.correlation), config_.seed);

  DfaResult result;
  result.enterprise_ylt = data::YearLossTable(trials, "enterprise");
  result.source_names.reserve(sources_.size());
  for (const auto& source : sources_) {
    result.source_names.push_back(source->name());
  }
  if (config_.keep_source_ylts) {
    result.source_ylts.reserve(sources_.size());
    for (const auto& source : sources_) {
      result.source_ylts.emplace_back(trials, source->name());
    }
  }

  // The cat YLT's copula dimension re-orders which trial is "bad" jointly
  // with the other sources: we map dimension-0 uniforms to the cat-loss
  // quantile. Sorting once gives the quantile function.
  std::vector<Money> cat_sorted(cat_ylt.losses().begin(), cat_ylt.losses().end());
  std::sort(cat_sorted.begin(), cat_sorted.end());
  auto cat_quantile = [&cat_sorted](double u) {
    const double h = u * static_cast<double>(cat_sorted.size() - 1);
    const auto idx = static_cast<std::size_t>(h);
    if (idx + 1 >= cat_sorted.size()) {
      return cat_sorted.back();
    }
    const double frac = h - static_cast<double>(idx);
    return cat_sorted[idx] + frac * (cat_sorted[idx + 1] - cat_sorted[idx]);
  };

  std::vector<double> uniforms(dims);
  auto enterprise = result.enterprise_ylt.mutable_losses();

  for (TrialId t = 0; t < trials; ++t) {
    copula.sample(t, uniforms);
    Money total = cat_quantile(uniforms[0]);
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      const Money loss = sources_[s]->loss(uniforms[s + 1], t);
      total += loss;
      if (config_.keep_source_ylts) {
        result.source_ylts[s][t] = loss;
      }
    }
    enterprise[t] = total;
  }

  // Summaries and capital metrics.
  result.cat_summary = core::summarise(cat_ylt);
  result.enterprise_summary = core::summarise(result.enterprise_ylt);
  Money standalone_var_sum = result.cat_summary.var_99_6;
  if (config_.keep_source_ylts) {
    result.source_summaries.reserve(sources_.size());
    for (const auto& ylt : result.source_ylts) {
      auto summary = core::summarise(ylt);
      standalone_var_sum += summary.var_99_6;
      result.source_summaries.push_back(summary);
    }
    result.diversification_benefit =
        standalone_var_sum - result.enterprise_summary.var_99_6;
  }
  result.economic_capital =
      result.enterprise_summary.var_99_6 - result.enterprise_summary.mean_annual_loss;

  result.seconds = watch.stop();
  // Each trial logically touches one Money per dimension plus the combined
  // output — the unit of the paper's "terabytes" arithmetic.
  result.ylt_bytes_touched =
      static_cast<std::uint64_t>(trials) * (dims + 1) * sizeof(Money);
  return result;
}

}  // namespace riskan::dfa
