#include "dfa/projection.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::dfa {

MultiYearProjection::MultiYearProjection(std::vector<std::unique_ptr<RiskSource>> sources,
                                         ProjectionConfig config)
    : sources_(std::move(sources)), config_(config) {
  RISKAN_REQUIRE(!sources_.empty(), "projection needs risk sources");
  RISKAN_REQUIRE(config_.horizon_years > 0, "horizon must be positive");
  RISKAN_REQUIRE(config_.paths > 0, "need simulation paths");
  RISKAN_REQUIRE(config_.initial_capital > 0.0, "initial capital must be positive");
  RISKAN_REQUIRE(config_.expense_ratio >= 0.0 && config_.expense_ratio < 1.0,
                 "expense ratio must lie in [0,1)");
}

ProjectionResult MultiYearProjection::run(const data::YearLossTable& cat_ylt) const {
  RISKAN_REQUIRE(!cat_ylt.empty(), "catastrophe YLT is empty");
  obs::Timer watch("dfa.projection");

  const int horizon = config_.horizon_years;
  const std::uint32_t paths = config_.paths;
  const std::size_t dims = sources_.size() + 1;

  // Sorted cat losses -> quantile function, as in DfaEngine.
  std::vector<Money> cat_sorted(cat_ylt.losses().begin(), cat_ylt.losses().end());
  std::sort(cat_sorted.begin(), cat_sorted.end());
  const auto cat_quantile = [&cat_sorted](double u) {
    const double h = u * static_cast<double>(cat_sorted.size() - 1);
    const auto idx = static_cast<std::size_t>(h);
    if (idx + 1 >= cat_sorted.size()) {
      return cat_sorted.back();
    }
    const double frac = h - static_cast<double>(idx);
    return cat_sorted[idx] + frac * (cat_sorted[idx + 1] - cat_sorted[idx]);
  };

  const GaussianCopula copula(CorrelationMatrix::exchangeable(dims, config_.correlation),
                              config_.seed);

  ProjectionResult result;
  result.ruin_probability_by_year.assign(static_cast<std::size_t>(horizon), 0.0);
  std::vector<std::vector<Money>> capital_by_year(
      static_cast<std::size_t>(horizon));  // surviving paths' capital
  for (auto& v : capital_by_year) {
    v.reserve(paths);
  }

  std::uint32_t ruined_total = 0;
  OnlineStats terminal;
  std::vector<double> uniforms(dims);

  for (std::uint32_t p = 0; p < paths; ++p) {
    Money capital = config_.initial_capital;
    Money premium = config_.annual_premium;
    bool ruined = false;

    for (int y = 0; y < horizon; ++y) {
      // One copula draw per (path, year); the "trial" key spreads paths
      // and years across the counter space.
      const TrialId key = static_cast<TrialId>(
          p * static_cast<std::uint32_t>(horizon) + static_cast<std::uint32_t>(y));
      copula.sample(key, uniforms);

      const Money cat_loss = cat_quantile(uniforms[0]);
      Money other_losses = 0.0;
      for (std::size_t s = 0; s < sources_.size(); ++s) {
        other_losses += sources_[s]->loss(uniforms[s + 1], key);
      }

      const Money underwriting =
          premium * (1.0 - config_.expense_ratio) - cat_loss;
      capital += underwriting - other_losses + capital * config_.investment_return;
      premium *= 1.0 + config_.premium_growth;

      if (capital < 0.0) {
        ruined = true;
        for (int later = y; later < horizon; ++later) {
          result.ruin_probability_by_year[static_cast<std::size_t>(later)] += 1.0;
        }
        break;
      }
      capital_by_year[static_cast<std::size_t>(y)].push_back(capital);
    }
    if (ruined) {
      ++ruined_total;
    } else {
      terminal.add(capital);
    }
  }

  for (auto& cumulative : result.ruin_probability_by_year) {
    cumulative /= static_cast<double>(paths);
  }
  result.ruin_probability = static_cast<double>(ruined_total) / paths;
  result.mean_terminal_capital = terminal.count() > 0 ? terminal.mean() : 0.0;

  result.capital_quantiles.reserve(static_cast<std::size_t>(horizon));
  for (auto& year : capital_by_year) {
    std::array<Money, 3> qs{0.0, 0.0, 0.0};
    if (!year.empty()) {
      std::sort(year.begin(), year.end());
      qs[0] = quantile_sorted(year, 0.05);
      qs[1] = quantile_sorted(year, 0.50);
      qs[2] = quantile_sorted(year, 0.95);
    }
    result.capital_quantiles.push_back(qs);
  }

  result.seconds = watch.stop();
  return result;
}

}  // namespace riskan::dfa
