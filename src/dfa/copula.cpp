#include "dfa/copula.hpp"

#include <cmath>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace riskan::dfa {

CorrelationMatrix::CorrelationMatrix(std::size_t n) : n_(n), values_(n * n, 0.0) {
  RISKAN_REQUIRE(n > 0, "correlation matrix needs dimensions");
  for (std::size_t i = 0; i < n; ++i) {
    values_[i * n + i] = 1.0;
  }
}

double CorrelationMatrix::at(std::size_t i, std::size_t j) const {
  RISKAN_REQUIRE(i < n_ && j < n_, "correlation index out of range");
  return values_[i * n_ + j];
}

void CorrelationMatrix::set(std::size_t i, std::size_t j, double rho) {
  RISKAN_REQUIRE(i < n_ && j < n_, "correlation index out of range");
  RISKAN_REQUIRE(i != j, "diagonal is fixed at 1");
  RISKAN_REQUIRE(rho > -1.0 && rho < 1.0, "correlation must lie in (-1,1)");
  values_[i * n_ + j] = rho;
  values_[j * n_ + i] = rho;
}

CorrelationMatrix CorrelationMatrix::exchangeable(std::size_t n, double rho) {
  CorrelationMatrix matrix(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, rho);
    }
  }
  return matrix;
}

GaussianCopula::GaussianCopula(const CorrelationMatrix& correlation, std::uint64_t seed)
    : n_(correlation.size()), cholesky_(n_ * n_, 0.0), philox_(seed) {
  // Cholesky–Banachiewicz.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = correlation.at(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= cholesky_[i * n_ + k] * cholesky_[j * n_ + k];
      }
      if (i == j) {
        RISKAN_REQUIRE(sum > 1e-12, "correlation matrix is not positive definite");
        cholesky_[i * n_ + i] = std::sqrt(sum);
      } else {
        cholesky_[i * n_ + j] = sum / cholesky_[j * n_ + j];
      }
    }
  }
}

void GaussianCopula::sample(TrialId trial, std::span<double> out_uniforms) const {
  RISKAN_REQUIRE(out_uniforms.size() == n_, "output span size must equal dimensions");

  // Independent standard normals for this trial.
  std::vector<double> z(n_);
  PhiloxStream stream(philox_, /*hi=*/0xDFA0ull, /*lo=*/trial);
  for (auto& value : z) {
    value = sample_standard_normal(stream);
  }

  // Correlate (x = L z) and map through the normal CDF.
  for (std::size_t i = 0; i < n_; ++i) {
    double x = 0.0;
    for (std::size_t k = 0; k <= i; ++k) {
      x += cholesky_[i * n_ + k] * z[k];
    }
    double u = normal_cdf(x);
    // Clamp away from the exact endpoints for downstream inverse CDFs.
    u = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
    out_uniforms[i] = u;
  }
}

}  // namespace riskan::dfa
