// DFA risk sources — the non-catastrophe risks stage 3 integrates.
//
// "The aggregate YLTs of catastrophe risks are integrated with investment,
// reserving, interest rate, market cycle, counter-party, and operational
// risks in the simulation."
//
// Each source maps a copula uniform to an annual loss (negative = gain),
// producing one more YLT to combine. Marginal models are the standard
// textbook choices (Blum & Dacorogna [6]): lognormal asset returns, a
// Vasicek-style rate shock through duration, AR-flavoured market cycle on
// the premium margin, Bernoulli-LGD counterparty default, Poisson-lognormal
// operational losses, lognormal reserve development. Sources that need more
// randomness than their copula uniform (e.g. operational severity) derive
// it from a counter-based stream keyed by (source, trial), preserving
// bit-determinism.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/prng.hpp"
#include "util/types.hpp"

namespace riskan::dfa {

/// Interface: annual loss of one risk source given its copula uniform.
class RiskSource {
 public:
  virtual ~RiskSource() = default;

  /// Loss for `trial` given copula uniform `u` in (0,1). Monotone
  /// non-decreasing in u (u is the "badness" quantile), a property the
  /// tests check — it is what makes copula correlation meaningful.
  virtual Money loss(double u, TrialId trial) const = 0;

  virtual const std::string& name() const = 0;
};

/// Investment result on an asset portfolio: loss = -assets * (r - r_target)
/// where r is lognormal-ish via the normal quantile of u.
class InvestmentRisk final : public RiskSource {
 public:
  InvestmentRisk(Money assets, double mean_return, double volatility);
  Money loss(double u, TrialId trial) const override;
  const std::string& name() const override { return name_; }

 private:
  Money assets_;
  double mean_return_;
  double volatility_;
  std::string name_ = "investment";
};

/// Interest-rate risk: parallel shock dr ~ N(0, sigma_r) applied to a bond
/// portfolio through (modified) duration: loss = assets * duration * dr.
class InterestRateRisk final : public RiskSource {
 public:
  InterestRateRisk(Money bond_assets, double duration, double rate_volatility);
  Money loss(double u, TrialId trial) const override;
  const std::string& name() const override { return name_; }

 private:
  Money bond_assets_;
  double duration_;
  double rate_volatility_;
  std::string name_ = "interest-rate";
};

/// Market-cycle (pricing adequacy) risk: soft markets compress margins.
/// loss = premium_volume * (margin_sigma * z - mean_margin_drift).
class MarketCycleRisk final : public RiskSource {
 public:
  MarketCycleRisk(Money premium_volume, double margin_sigma);
  Money loss(double u, TrialId trial) const override;
  const std::string& name() const override { return name_; }

 private:
  Money premium_volume_;
  double margin_sigma_;
  std::string name_ = "market-cycle";
};

/// Counterparty (retro/reinsurer default): recoverable * LGD when
/// u falls in the default tail.
class CounterpartyRisk final : public RiskSource {
 public:
  CounterpartyRisk(Money recoverable, double default_probability, double loss_given_default);
  Money loss(double u, TrialId trial) const override;
  const std::string& name() const override { return name_; }

 private:
  Money recoverable_;
  double default_probability_;
  double lgd_;
  std::string name_ = "counterparty";
};

/// Operational risk: count ~ Poisson(lambda) driven by u, severities
/// lognormal from a per-trial counter-based stream.
class OperationalRisk final : public RiskSource {
 public:
  OperationalRisk(double lambda, double severity_mu, double severity_sigma,
                  std::uint64_t seed);
  Money loss(double u, TrialId trial) const override;
  const std::string& name() const override { return name_; }

 private:
  double lambda_;
  double severity_mu_;
  double severity_sigma_;
  Philox4x32 philox_;
  std::string name_ = "operational";
};

/// Reserve development: booked reserves develop by a lognormal factor;
/// loss = reserves * (factor - 1).
class ReserveRisk final : public RiskSource {
 public:
  ReserveRisk(Money reserves, double development_sigma);
  Money loss(double u, TrialId trial) const override;
  const std::string& name() const override { return name_; }

 private:
  Money reserves_;
  double development_sigma_;
  std::string name_ = "reserve";
};

/// The standard six-source set used by the examples/benches, sized to a
/// mid-size reinsurer (assets 2B, premium 800M, reserves 1.2B).
std::vector<std::unique_ptr<RiskSource>> standard_risk_sources(std::uint64_t seed);

}  // namespace riskan::dfa
