// Multi-year DFA projection — the forward-looking half of Dynamic
// Financial Analysis (Blum & Dacorogna [6]).
//
// The single-year DfaEngine answers "how bad can this year be?"; the
// projection answers the question DFA was invented for: "does the company
// survive the next N years?". Each simulated path evolves capital year by
// year:
//
//   capital[y+1] = capital[y]
//                + premium income (grown by the market cycle)
//                - expenses
//                - catastrophe loss   (resampled from the stage-2 YLT)
//                - other risk losses  (copula-correlated, as in DfaEngine)
//                + investment return on capital
//
// and the outputs are ruin probability (capital < 0 at any year-end),
// time-to-ruin distribution, and capital-path quantiles — the solvency
// trajectory a regulator's ORSA asks for.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/ylt.hpp"
#include "dfa/copula.hpp"
#include "dfa/risk_sources.hpp"

namespace riskan::dfa {

struct ProjectionConfig {
  int horizon_years = 5;
  std::uint32_t paths = 10'000;
  std::uint64_t seed = 4711;
  Money initial_capital = 1.0e9;
  Money annual_premium = 8.0e8;
  double expense_ratio = 0.30;       ///< of premium
  double premium_growth = 0.02;      ///< deterministic trend
  double investment_return = 0.04;   ///< earned on start-of-year capital
  double correlation = 0.25;         ///< copula off-diagonal, as in DfaEngine
};

struct ProjectionResult {
  /// P(capital < 0 at or before year-end y), cumulative, length = horizon.
  std::vector<double> ruin_probability_by_year;
  /// Overall ruin probability over the horizon.
  double ruin_probability = 0.0;
  /// Capital-path quantiles per year: [year][q] for q in {5%, 50%, 95%}.
  std::vector<std::array<Money, 3>> capital_quantiles;
  /// Mean terminal capital over surviving paths.
  Money mean_terminal_capital = 0.0;
  double seconds = 0.0;
};

class MultiYearProjection {
 public:
  /// `sources` as in DfaEngine (takes ownership); `cat_ylt` is the stage-2
  /// portfolio YLT, resampled with replacement per path-year.
  MultiYearProjection(std::vector<std::unique_ptr<RiskSource>> sources,
                      ProjectionConfig config);

  ProjectionResult run(const data::YearLossTable& cat_ylt) const;

 private:
  std::vector<std::unique_ptr<RiskSource>> sources_;
  ProjectionConfig config_;
};

}  // namespace riskan::dfa
