// Gaussian copula — the correlation machinery of DFA.
//
// Stage 3 "integrate[s] investment, reserving, interest rate, market cycle,
// counter-party, and operational risks" with the catastrophe YLT. Risk
// sources are calibrated marginally; the copula supplies the dependence:
// draw a correlated standard-normal vector per trial (Cholesky factor of
// the correlation matrix), map each component to a uniform through the
// normal CDF, and feed each source its uniform. Counter-based PRNG keyed by
// trial keeps every backend and replication bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/prng.hpp"
#include "util/types.hpp"

namespace riskan::dfa {

/// Dense symmetric positive-definite correlation matrix.
class CorrelationMatrix {
 public:
  /// Identity (independent sources).
  explicit CorrelationMatrix(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  double at(std::size_t i, std::size_t j) const;
  /// Sets rho(i,j) = rho(j,i); diagonal is fixed at 1.
  void set(std::size_t i, std::size_t j, double rho);

  /// Uniform off-diagonal correlation.
  static CorrelationMatrix exchangeable(std::size_t n, double rho);

 private:
  std::size_t n_;
  std::vector<double> values_;
};

class GaussianCopula {
 public:
  /// Factorises the matrix; throws ContractViolation when it is not
  /// positive definite.
  GaussianCopula(const CorrelationMatrix& correlation, std::uint64_t seed);

  std::size_t dimensions() const noexcept { return n_; }

  /// Correlated uniforms for one trial, deterministic in (seed, trial).
  void sample(TrialId trial, std::span<double> out_uniforms) const;

 private:
  std::size_t n_;
  std::vector<double> cholesky_;  // lower triangular, row-major n x n
  Philox4x32 philox_;
};

}  // namespace riskan::dfa
