// Wire frames of the coordinator/worker protocol.
//
// Every message between the coordinator and a worker process is one frame:
//
//   [u32 magic "RDF1"][u32 type][u64 block_id][u64 payload_size]
//   [u32 payload crc32][payload bytes]
//
// The CRC-32 covers the payload, mirroring ChunkedFile v2's per-chunk
// checksum: a bit flip on the wire (or a fault-injected one) surfaces as a
// typed CorruptFrameError at the receiver, never as silently corrupt
// losses. A frame stream has no resynchronisation markers — once a header
// fails validation or EOF lands mid-frame, the stream is dead and the peer
// must be replaced; that is exactly the coordinator's kill-and-requeue
// policy.
//
// Protocol (task pipe coordinator→worker, result pipe worker→coordinator):
//   Task     c→w  payload = u64 global trial base + encoded YELT block
//                 (data::EncodedBlockSource's format; the job's wire unit)
//   Ack      w→c  empty; sent on task receipt — starts the lease clock
//   Result   w→c  payload = u64 trials + trials×f64 portfolio losses
//   Error    w→c  payload = u32-length-prefixed message; the task failed
//                 in a way worth reporting (bad block data), worker lives
//   Shutdown c→w  empty; worker exits cleanly
//   Spans    w→c  payload = u64 count + count × (u32-length-prefixed name,
//                 u64 tid, u64 start_ns, u64 dur_ns); observability spans
//                 recorded in the worker since its last drain, sent just
//                 before the task's reply when tracing is active. Names
//                 travel as strings because intern ids diverge across
//                 fork. Purely telemetric: losing (or duplicating) a Spans
//                 frame cannot change any result bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/trace.hpp"

namespace riskan::dist {

enum class FrameType : std::uint32_t {
  Task = 1,
  Ack = 2,
  Result = 3,
  Error = 4,
  Shutdown = 5,
  Spans = 6,
};

struct Frame {
  FrameType type = FrameType::Task;
  std::uint64_t block_id = 0;
  std::vector<std::byte> payload;
};

inline constexpr std::uint32_t kFrameMagic = 0x52444631;  // "RDF1"
inline constexpr std::size_t kFrameHeaderBytes = 28;
/// Upper bound a receiver will allocate for one payload; a corrupt size
/// field fails here instead of OOMing the process.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

/// Serialises header + payload (the CRC is computed here).
std::vector<std::byte> encode_frame(const Frame& frame);

/// Writes `frame` whole, poll-guarded by `timeout_seconds` per stall.
/// Returns false when the peer is gone or wedged (EPIPE / timeout).
bool write_frame(int fd, const Frame& frame, double timeout_seconds);

enum class FrameReadResult {
  Ok,
  Closed,  ///< clean EOF at a frame boundary — the peer exited normally
};

/// Blocking read of one frame. Throws CorruptFrameError on bad
/// magic/type/size/CRC, TruncatedFileError on EOF mid-frame (a torn write
/// from a crashed peer), IoError on a hard read error.
FrameReadResult read_frame(int fd, Frame& frame);

/// Encodes observability spans as a Spans frame payload (names travel as
/// strings — intern ids diverge across fork; lanes are assigned by the
/// receiver from its worker table, so the wire carries none).
std::vector<std::byte> encode_spans_payload(
    const std::vector<obs::CollectedSpan>& spans);

/// Decodes a Spans payload. Throws CorruptFrameError on a malformed
/// payload — the receiver treats it exactly like any other corrupt frame.
std::vector<obs::CollectedSpan> decode_spans_payload(
    std::span<const std::byte> payload);

}  // namespace riskan::dist
