// The worker side of the multi-process distribution runtime.
//
// A worker is a forked child of the coordinator: the portfolio, ELTs and
// engine configuration are already in its address space, so the protocol
// only moves trial blocks in and per-trial losses out. The loop is
// deliberately dumb — read Task, Ack, decode via data::EncodedBlockSource
// (the same wire unit the MapReduce map task consumes), run the one trial
// kernel on the pool-free Sequential backend with the block's global trial
// base keying the sampling streams, reply Result — so bit-identical
// recovery falls out of the engine's determinism instead of being
// re-engineered here.
//
// FaultPlan injections are applied *inside* the child: the coordinator sees
// only symptoms (EOF, CRC mismatch, a silent stall), exactly as from a real
// fault.
#pragma once

#include "core/aggregate_engine.hpp"
#include "dist/config.hpp"
#include "finance/contract.hpp"

namespace riskan::dist {

/// Everything a worker needs, inherited through fork — never serialised.
struct WorkerContext {
  const finance::Portfolio* portfolio = nullptr;
  /// Template engine config; trial_base is overwritten per task from the
  /// Task frame. Must be Sequential / pool-free (the coordinator normalises
  /// it before forking).
  core::EngineConfig engine;
  /// Spawn-order index — the FaultPlan's targeting key.
  int worker_index = 0;
  FaultPlan faults;
};

/// The worker protocol loop over the two pipe fds. Runs until the task
/// stream closes or a Shutdown frame arrives, then _exit(0)s; never
/// returns. A failed *task* (bad block data) sends an Error frame and keeps
/// serving; a failed *stream* _exit(1)s.
[[noreturn]] void worker_main(const WorkerContext& context, int task_fd, int result_fd);

}  // namespace riskan::dist
