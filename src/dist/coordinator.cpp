#include "dist/coordinator.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/adaptive/adaptive.hpp"
#include "data/trial_source.hpp"
#include "dist/frame.hpp"
#include "dist/worker.hpp"
#include "obs/obs.hpp"
#include "parallel/process.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::dist {
namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A straggler that has outlived this many leases past its expiry is
/// hopeless and gets killed even when no slot is needed.
constexpr double kStragglerGraceLeases = 3.0;

/// Marks a scheduling event on a worker's trace lane ("i" instant in the
/// chrome trace; no-op when tracing is off).
void mark_worker_event(const char* name, int worker_index) {
  obs::trace_instant(obs::span_id(name),
                     static_cast<std::uint32_t>(worker_index) + 1, /*tid=*/0);
}

/// Publishes a finished run's robustness ledger into the global registry
/// under the "dist." prefix — DistStats stays the per-run view, the
/// registry accumulates across runs.
void publish_dist_stats(const DistStats& s) {
  auto& reg = obs::MetricsRegistry::global();
  static const obs::Counter runs = reg.counter("dist.runs");
  static const obs::Counter spawned = reg.counter("dist.workers_spawned");
  static const obs::Counter respawned = reg.counter("dist.workers_respawned");
  static const obs::Counter deaths = reg.counter("dist.worker_deaths");
  static const obs::Counter assigned = reg.counter("dist.blocks_assigned");
  static const obs::Counter retried = reg.counter("dist.blocks_retried");
  static const obs::Counter expired = reg.counter("dist.leases_expired");
  static const obs::Counter corrupt = reg.counter("dist.corrupt_frames");
  static const obs::Counter errors = reg.counter("dist.worker_errors");
  static const obs::Counter duplicates = reg.counter("dist.duplicates_discarded");
  static const obs::Counter cancelled = reg.counter("dist.blocks_cancelled");
  static const obs::Counter task_bytes = reg.counter("dist.task_bytes_sent");
  static const obs::Counter resent = reg.counter("dist.bytes_resent");
  static const obs::Counter result_bytes = reg.counter("dist.result_bytes_received");
  static const obs::Counter in_process = reg.counter("dist.blocks_run_in_process");
  runs.add();
  spawned.add(static_cast<double>(s.workers_spawned));
  respawned.add(static_cast<double>(s.workers_respawned));
  deaths.add(static_cast<double>(s.worker_deaths));
  assigned.add(static_cast<double>(s.blocks_assigned));
  retried.add(static_cast<double>(s.blocks_retried));
  expired.add(static_cast<double>(s.leases_expired));
  corrupt.add(static_cast<double>(s.corrupt_frames));
  errors.add(static_cast<double>(s.worker_errors));
  duplicates.add(static_cast<double>(s.duplicates_discarded));
  cancelled.add(static_cast<double>(s.blocks_cancelled));
  task_bytes.add(static_cast<double>(s.task_bytes_sent));
  resent.add(static_cast<double>(s.bytes_resent));
  result_bytes.add(static_cast<double>(s.result_bytes_received));
  in_process.add(static_cast<double>(s.blocks_run_in_process));
}

enum class WorkerState { Idle, Busy, Straggling };

struct WorkerProc {
  pid_t pid = -1;
  UniqueFd task_wr;
  UniqueFd result_rd;
  int index = 0;  ///< spawn-order index — the FaultPlan targeting key
  WorkerState state = WorkerState::Idle;
  std::uint64_t block = 0;
  bool has_block = false;
  double deadline = 0.0;    ///< lease expiry while Busy
  double expired_at = 0.0;  ///< when the lease expired (straggler age)

  bool alive() const noexcept { return pid > 0; }
};

struct BlockState {
  BlockSpec spec;
  int attempts = 0;         ///< assignments so far
  double eligible_at = 0.0; ///< backoff gate for the next assignment
  bool queued = true;
  bool done = false;
};

class Coordinator {
 public:
  Coordinator(const finance::Portfolio& portfolio, const core::EngineConfig& engine,
              std::span<const BlockSpec> blocks, const BlockFetcher& fetch,
              const DistConfig& config, data::YearLossTable& ylt, DistStats& stats,
              core::adaptive::ConvergenceController* controller)
      : portfolio_(portfolio),
        engine_(engine),
        fetch_(fetch),
        config_(config),
        ylt_(ylt),
        stats_(stats),
        controller_(controller) {
    blocks_.reserve(blocks.size());
    for (const auto& spec : blocks) {
      BlockState state;
      state.spec = spec;
      if (spec.trials == 0) {
        state.done = true;
        state.queued = false;
        ++done_;
      }
      by_id_.emplace(spec.id, blocks_.size());
      blocks_.push_back(state);
    }
    // The fold frontier walks blocks in trial order regardless of where
    // (or in what order) they complete — the adaptive determinism anchor.
    fold_order_.resize(blocks_.size());
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      fold_order_[i] = i;
    }
    std::sort(fold_order_.begin(), fold_order_.end(), [&](std::size_t a, std::size_t b) {
      return blocks_[a].spec.trial_base < blocks_[b].spec.trial_base;
    });
    advance_frontier();  // zero-trial blocks are born done
  }

  ~Coordinator() {
    // Error-path cleanup (DistError, IoError from fetch): no orphans, no
    // zombies. The happy path already shut everything down.
    for (auto& worker : workers_) {
      if (worker.alive()) {
        kill_worker(worker, /*requeue=*/false, /*count_death=*/false);
      }
    }
  }

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  void run() {
    if (done_ == blocks_.size()) {
      return;
    }
    if (config_.workers == 0) {
      fallback_in_process();
      return;
    }
    while (done_ < blocks_.size()) {
      const double now = monotonic_seconds();
      ensure_capacity();
      if (alive_count() == 0) {
        // Nothing spawnable (fork refused or respawn budget spent):
        // degrade gracefully — same blocks, same kernel, in this process.
        fallback_in_process();
        return;
      }
      reap_stragglers(now);
      assign_ready(now);
      if (done_ == blocks_.size()) {
        break;
      }
      wait_and_drain(now);
      sweep_leases(monotonic_seconds());
    }
    shutdown_workers();
  }

 private:
  std::size_t alive_count() const {
    std::size_t n = 0;
    for (const auto& w : workers_) {
      n += w.alive() ? 1 : 0;
    }
    return n;
  }

  /// Workers that can make progress: alive and not straggling. Capacity is
  /// measured against this, so a straggler's slot is refilled while it
  /// keeps running (speculative re-execution) instead of deadlocking the
  /// queue behind it.
  std::size_t active_count() const {
    std::size_t n = 0;
    for (const auto& w : workers_) {
      n += (w.alive() && w.state != WorkerState::Straggling) ? 1 : 0;
    }
    return n;
  }

  bool can_spawn() const {
    if (spawn_broken_) {
      return false;
    }
    return spawned_total_ < config_.workers ||
           respawns_used_ < config_.max_respawns;
  }

  void ensure_capacity() {
    while (!spawn_broken_ && active_count() < config_.workers) {
      const bool initial = spawned_total_ < config_.workers;
      if (!initial && respawns_used_ >= config_.max_respawns) {
        return;
      }
      if (!spawn_worker()) {
        spawn_broken_ = true;
        return;
      }
      if (initial) {
        ++stats_.workers_spawned;
      } else {
        ++respawns_used_;
        ++stats_.workers_respawned;
      }
    }
  }

  bool spawn_worker() {
    if (config_.faults.fail_spawn) {
      return false;
    }
    Pipe task = make_pipe();
    Pipe result = make_pipe();

    // The child inherits every open fd, including the coordinator-side
    // ends of *other* workers' pipes. It must close them, or a sibling
    // holding a copy of worker A's pipe ends would keep A's streams open
    // past A's death — masking the very EOFs the recovery logic keys on.
    std::vector<int> close_in_child;
    for (const auto& w : workers_) {
      if (w.alive()) {
        close_in_child.push_back(w.task_wr.get());
        close_in_child.push_back(w.result_rd.get());
      }
    }
    close_in_child.push_back(task.write_end.get());
    close_in_child.push_back(result.read_end.get());

    WorkerContext context;
    context.portfolio = &portfolio_;
    context.engine = engine_;
    context.worker_index = static_cast<int>(spawned_total_);
    context.faults = config_.faults;

    const int task_rd = task.read_end.get();
    const int result_wr = result.write_end.get();
    const auto pid = spawn_process([&]() {
      for (const int fd : close_in_child) {
        ::close(fd);
      }
      worker_main(context, task_rd, result_wr);
    });
    if (!pid.has_value()) {
      return false;
    }

    WorkerProc worker;
    worker.pid = *pid;
    worker.index = static_cast<int>(spawned_total_);
    worker.task_wr = std::move(task.write_end);
    worker.result_rd = std::move(result.read_end);
    set_nonblocking(worker.task_wr.get());
    workers_.push_back(std::move(worker));
    ++spawned_total_;
    return true;
  }

  void kill_worker(WorkerProc& worker, bool requeue, bool count_death = true) {
    if (!worker.alive()) {
      return;
    }
    terminate_process(worker.pid, /*hard=*/true);
    reap_process(worker.pid, /*block=*/true);
    worker.pid = -1;
    worker.task_wr.reset();
    worker.result_rd.reset();
    if (count_death) {
      ++stats_.worker_deaths;
    }
    if (requeue && worker.has_block) {
      fail_block(worker.block);
    }
    worker.has_block = false;
  }

  BlockState* block_by_id(std::uint64_t id) {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : &blocks_[it->second];
  }

  void fail_block(std::uint64_t id) {
    BlockState* block = block_by_id(id);
    if (block == nullptr || block->done || block->queued) {
      return;  // completed elsewhere, or already back in the queue
    }
    ++stats_.blocks_retried;
    static const std::uint32_t requeue_event = obs::span_id("dist.block_requeued");
    obs::trace_instant(requeue_event);
    if (block->attempts >= config_.max_attempts) {
      throw DistError("block " + std::to_string(id) + " failed on all " +
                      std::to_string(block->attempts) +
                      " attempts of its budget — giving up");
    }
    const double backoff =
        std::min(config_.backoff_max_seconds,
                 config_.backoff_initial_seconds *
                     std::ldexp(1.0, block->attempts - 1));
    block->eligible_at = monotonic_seconds() + backoff;
    block->queued = true;
  }

  BlockState* pick_block(double now) {
    BlockState* best = nullptr;
    for (auto& block : blocks_) {
      if (block.queued && !block.done && block.eligible_at <= now &&
          (best == nullptr || block.spec.id < best->spec.id)) {
        best = &block;
      }
    }
    return best;
  }

  void assign_ready(double now) {
    for (auto& worker : workers_) {
      if (!worker.alive() || worker.state != WorkerState::Idle) {
        continue;
      }
      BlockState* block = pick_block(now);
      if (block == nullptr) {
        return;
      }
      assign(worker, *block, now);
    }
  }

  void assign(WorkerProc& worker, BlockState& block, double now) {
    const auto encoded = fetch_(block.spec);
    ByteWriter payload;
    payload.u64(static_cast<std::uint64_t>(engine_.trial_base) +
                block.spec.trial_base);
    payload.bytes(encoded);
    Frame frame{FrameType::Task, block.spec.id, payload.buffer()};
    if (!write_frame(worker.task_wr.get(), frame, config_.lease_seconds)) {
      // The pipe is dead or wedged before the block was ever leased: the
      // block stays queued (no attempt consumed) and the worker is culled.
      kill_worker(worker, /*requeue=*/false);
      return;
    }
    block.queued = false;
    ++block.attempts;
    stats_.max_attempts_observed =
        std::max(stats_.max_attempts_observed, block.attempts);
    ++stats_.blocks_assigned;
    stats_.task_bytes_sent += frame.payload.size();
    if (block.attempts > 1) {
      stats_.bytes_resent += frame.payload.size();
    }
    worker.state = WorkerState::Busy;
    worker.block = block.spec.id;
    worker.has_block = true;
    worker.deadline = now + config_.lease_seconds;
    mark_worker_event("dist.lease_grant", worker.index);
  }

  void wait_and_drain(double now) {
    std::vector<int> fds;
    for (const auto& worker : workers_) {
      if (worker.alive()) {
        fds.push_back(worker.result_rd.get());
      }
    }
    if (fds.empty()) {
      return;
    }
    std::vector<int> ready;
    poll_readable(fds, wait_seconds(now), ready);
    for (const int fd : ready) {
      for (auto& worker : workers_) {
        if (worker.alive() && worker.result_rd.get() == fd) {
          drain_worker(worker);
          break;
        }
      }
    }
  }

  void drain_worker(WorkerProc& worker) {
    do {
      Frame frame;
      try {
        if (read_frame(worker.result_rd.get(), frame) ==
            FrameReadResult::Closed) {
          // Clean EOF: the worker died (crash injection, OOM-kill, ...).
          kill_worker(worker, /*requeue=*/true);
          return;
        }
      } catch (const IoError&) {
        // CRC mismatch, torn frame, or hard read error: the stream has no
        // resync point, so the worker is unusable — replace and re-queue.
        ++stats_.corrupt_frames;
        kill_worker(worker, /*requeue=*/true);
        return;
      }
      handle_frame(worker, frame);
    } while (worker.alive() && fd_readable_now(worker.result_rd.get()));
  }

  void handle_frame(WorkerProc& worker, const Frame& frame) {
    switch (frame.type) {
      case FrameType::Ack:
        // The heartbeat: receipt of the task refreshes the lease, so a
        // worker that *got* the block but computes slowly is separated
        // from one that never received it.
        if (worker.state == WorkerState::Busy && worker.has_block &&
            worker.block == frame.block_id) {
          worker.deadline = monotonic_seconds() + config_.lease_seconds;
        }
        return;
      case FrameType::Result: {
        stats_.result_bytes_received += frame.payload.size();
        BlockState* block = block_by_id(frame.block_id);
        if (block == nullptr || !place_result(*block, frame.payload)) {
          ++stats_.corrupt_frames;
          kill_worker(worker, /*requeue=*/true);
          return;
        }
        release_worker(worker, frame.block_id);
        return;
      }
      case FrameType::Error: {
        // The worker is alive and sane — the block's *data* failed on it.
        ++stats_.worker_errors;
        release_worker(worker, frame.block_id);
        fail_block(frame.block_id);
        return;
      }
      case FrameType::Spans: {
        // Telemetry forwarded from the worker: re-stamp each span with the
        // sender's lane and land it in this process's ring. A malformed
        // payload is a protocol breach like any other corrupt frame.
        try {
          auto spans = decode_spans_payload(frame.payload);
          obs::TraceBuffer& trace = obs::TraceBuffer::global();
          if (trace.active()) {
            const auto lane = static_cast<std::uint32_t>(worker.index) + 1;
            for (auto& span : spans) {
              span.lane = lane;
              trace.record_collected(span);
            }
          }
        } catch (const IoError&) {
          ++stats_.corrupt_frames;
          kill_worker(worker, /*requeue=*/true);
        }
        return;
      }
      default:
        // Task/Shutdown flowing worker→coordinator is a protocol breach.
        ++stats_.corrupt_frames;
        kill_worker(worker, /*requeue=*/true);
        return;
    }
  }

  /// Validates and lands one Result payload. First completion wins: a late
  /// duplicate (a straggler's echo of a re-executed block) is counted and
  /// dropped — idempotent by construction, since blocks partition the
  /// trial space and the reduce is per-trial assignment.
  bool place_result(BlockState& block, const std::vector<std::byte>& payload) {
    if (payload.size() < sizeof(std::uint64_t)) {
      return false;
    }
    ByteReader reader(payload);
    const std::uint64_t count = reader.u64();
    if (count != block.spec.trials ||
        reader.remaining() != count * sizeof(double)) {
      return false;
    }
    if (block.done) {
      ++stats_.duplicates_discarded;
      return true;
    }
    for (std::uint64_t t = 0; t < count; ++t) {
      ylt_[block.spec.trial_base + static_cast<TrialId>(t)] = reader.f64();
    }
    block.done = true;
    block.queued = false;
    ++done_;
    advance_frontier();
    return true;
  }

  /// Folds every completed block at the trial-order frontier into the
  /// convergence controller, and cancels the remaining blocks the moment
  /// it reports stop. Landing order cannot reach the controller: only the
  /// frontier position does, so the stopping trial count is identical for
  /// any worker count, retry history or straggler schedule.
  void advance_frontier() {
    if (controller_ == nullptr) {
      return;
    }
    while (frontier_ < fold_order_.size()) {
      if (controller_->should_stop()) {
        cancel_remaining();
        return;
      }
      BlockState& block = blocks_[fold_order_[frontier_]];
      if (!block.done) {
        return;
      }
      if (block.spec.trials > 0) {
        controller_->fold(
            ylt_.losses().subspan(block.spec.trial_base, block.spec.trials), {});
      }
      ++frontier_;
    }
    if (controller_->should_stop()) {
      cancel_remaining();
    }
  }

  /// Convergence reached: blocks past the frontier will never be folded.
  /// Un-done ones leave the queue as cancelled; in-flight leases are left
  /// to land as discarded duplicates (or die with shutdown).
  void cancel_remaining() {
    for (std::size_t i = frontier_; i < fold_order_.size(); ++i) {
      BlockState& block = blocks_[fold_order_[i]];
      if (block.done) {
        continue;
      }
      block.done = true;
      block.queued = false;
      ++done_;
      ++stats_.blocks_cancelled;
    }
    frontier_ = fold_order_.size();
  }

  void release_worker(WorkerProc& worker, std::uint64_t block_id) {
    if (worker.has_block && worker.block == block_id) {
      worker.has_block = false;
      worker.state = WorkerState::Idle;
    }
  }

  void sweep_leases(double now) {
    for (auto& worker : workers_) {
      if (worker.alive() && worker.state == WorkerState::Busy &&
          now > worker.deadline) {
        ++stats_.leases_expired;
        worker.state = WorkerState::Straggling;
        worker.expired_at = now;
        mark_worker_event("dist.lease_expired", worker.index);
        // Straggler re-execution: the block goes back in the queue while
        // the slow worker keeps running — whichever finishes first wins.
        fail_block(worker.block);
      }
    }
  }

  void reap_stragglers(double now) {
    WorkerProc* oldest = nullptr;
    bool any_progress = false;  // an Idle or Busy worker exists
    for (auto& worker : workers_) {
      if (!worker.alive()) {
        continue;
      }
      if (worker.state != WorkerState::Straggling) {
        any_progress = true;
        continue;
      }
      if (now - worker.expired_at >
          kStragglerGraceLeases * config_.lease_seconds) {
        mark_worker_event("dist.straggler_killed", worker.index);
        kill_worker(worker, /*requeue=*/true);
        continue;
      }
      if (oldest == nullptr || worker.expired_at < oldest->expired_at) {
        oldest = &worker;
      }
    }
    // Every slot straggling, no spawn headroom, work waiting: evict the
    // longest-overdue straggler so the queue can move.
    if (!any_progress && oldest != nullptr && !can_spawn() &&
        pick_block(now) != nullptr) {
      mark_worker_event("dist.straggler_killed", oldest->index);
      kill_worker(*oldest, /*requeue=*/true);
    }
  }

  double wait_seconds(double now) const {
    double wait = 0.25;
    bool any_idle = false;
    for (const auto& worker : workers_) {
      if (!worker.alive()) {
        continue;
      }
      if (worker.state == WorkerState::Idle) {
        any_idle = true;
      } else if (worker.state == WorkerState::Busy) {
        wait = std::min(wait, worker.deadline - now);
      } else {
        wait = std::min(wait, worker.expired_at +
                                  kStragglerGraceLeases * config_.lease_seconds -
                                  now);
      }
    }
    if (any_idle) {
      for (const auto& block : blocks_) {
        if (block.queued && !block.done) {
          wait = std::min(wait, block.eligible_at - now);
        }
      }
    }
    return std::clamp(wait, 0.001, 0.25);
  }

  void shutdown_workers() {
    for (auto& worker : workers_) {
      if (!worker.alive()) {
        continue;
      }
      if (worker.state == WorkerState::Idle) {
        // Closing the task pipe is the shutdown signal: the worker sees a
        // clean EOF at a frame boundary and _exit(0)s.
        worker.task_wr.reset();
        reap_process(worker.pid, /*block=*/true);
        worker.pid = -1;
        worker.result_rd.reset();
      } else {
        // Still computing (or stalled) for a block that already completed
        // elsewhere — not worth waiting for.
        kill_worker(worker, /*requeue=*/false, /*count_death=*/false);
      }
    }
  }

  void fallback_in_process() {
    stats_.fell_back_in_process = true;
    // Trial order, not spec order: the adaptive frontier folds (and may
    // cancel) as each block lands, so the fallback stops at exactly the
    // same trial as a fully-distributed run. Non-adaptive runs complete
    // every block either way — per-trial assignment is order-blind.
    for (const std::size_t index : fold_order_) {
      BlockState& block = blocks_[index];
      if (block.done) {
        continue;
      }
      const auto encoded = fetch_(block.spec);
      data::EncodedBlockSource source(encoded);
      auto engine = engine_;
      engine.trial_base = engine_.trial_base + block.spec.trial_base;
      const auto result =
          core::run_aggregate_analysis(portfolio_, source, engine);
      RISKAN_ENSURE(result.portfolio_ylt.trials() == block.spec.trials,
                    "block trial count does not match its spec");
      const auto losses = result.portfolio_ylt.losses();
      for (TrialId t = 0; t < block.spec.trials; ++t) {
        ylt_[block.spec.trial_base + t] = losses[t];
      }
      block.done = true;
      block.queued = false;
      ++done_;
      ++stats_.blocks_run_in_process;
      advance_frontier();
    }
  }

  const finance::Portfolio& portfolio_;
  const core::EngineConfig& engine_;
  const BlockFetcher& fetch_;
  const DistConfig& config_;
  data::YearLossTable& ylt_;
  DistStats& stats_;

  core::adaptive::ConvergenceController* controller_;  ///< null = fixed budget

  std::vector<BlockState> blocks_;
  std::unordered_map<std::uint64_t, std::size_t> by_id_;
  std::vector<std::size_t> fold_order_;  ///< block indices in trial order
  std::size_t frontier_ = 0;             ///< next fold_order_ entry to fold
  std::vector<WorkerProc> workers_;
  std::size_t done_ = 0;
  std::size_t spawned_total_ = 0;
  std::size_t respawns_used_ = 0;
  bool spawn_broken_ = false;
};

}  // namespace

DistResult run_distributed_aggregate(const finance::Portfolio& portfolio,
                                     const core::EngineConfig& engine,
                                     std::span<const BlockSpec> blocks,
                                     const BlockFetcher& fetch,
                                     const DistConfig& config) {
  validate_dist_config(config);
  RISKAN_REQUIRE(fetch != nullptr, "run_distributed_aggregate needs a fetcher");

  // Workers compute on a pool-free backend (fork-safe by contract: no
  // shared pool, no process-wide caches) and return only the portfolio
  // view — per-contract YLTs and OEP stay a single-process feature for
  // now. A Simd/ThreadedSimd caller keeps the vectorized kernel in its
  // workers (Simd is pool-free and bit-identical, so the fold is
  // unchanged); everything else drops to Sequential. Adaptivity is the
  // coordinator's job, never a worker's: a worker stopping early on its
  // own slice would break the bit-identity of the folded prefix.
  core::EngineConfig worker_engine = engine;
  worker_engine.backend = (engine.backend == core::Backend::Simd ||
                           engine.backend == core::Backend::ThreadedSimd)
                              ? core::Backend::Simd
                              : core::Backend::Sequential;
  worker_engine.pool = nullptr;
  worker_engine.compute_oep = false;
  worker_engine.keep_contract_ylts = false;
  worker_engine.device_info = nullptr;
  worker_engine.resolver_cache = nullptr;
  worker_engine.adaptive = {};
  // Workers never open observability windows of their own: their spans ride
  // the Spans frames into the coordinator's ring, and metrics reports are
  // the outermost entry point's job.
  worker_engine.obs = {};
  core::validate_engine_config(worker_engine);

  const bool adaptive_on = engine.adaptive.enabled();
  core::adaptive::validate_adaptive_config(engine.adaptive);
  if (adaptive_on) {
    RISKAN_REQUIRE((engine.adaptive.metrics & core::adaptive::kOccurrenceMetrics) == 0,
                   "distributed adaptive runs monitor aggregate metrics only "
                   "(workers return the aggregate YLT, not the OEP sample)");
  }

  // Bit-identity rests on blocks partitioning the trial space disjointly —
  // overlapping blocks would race for the same output trials. An adaptive
  // run additionally needs the partition contiguous from trial 0: the fold
  // frontier's "prefix of the trial space" must be exactly that.
  TrialId total_trials = 0;
  {
    std::unordered_set<std::uint64_t> ids;
    std::vector<std::pair<TrialId, TrialId>> ranges;
    ranges.reserve(blocks.size());
    for (const auto& spec : blocks) {
      RISKAN_REQUIRE(ids.insert(spec.id).second, "duplicate BlockSpec id");
      ranges.emplace_back(spec.trial_base, spec.trials);
      total_trials = std::max(total_trials, spec.trial_base + spec.trials);
    }
    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      RISKAN_REQUIRE(ranges[i].first >= ranges[i - 1].first + ranges[i - 1].second,
                     "BlockSpecs overlap in trial space");
    }
    if (adaptive_on) {
      RISKAN_REQUIRE(ranges.empty() || ranges.front().first == 0,
                     "adaptive distributed runs need blocks starting at trial 0");
      for (std::size_t i = 1; i < ranges.size(); ++i) {
        RISKAN_REQUIRE(ranges[i].first == ranges[i - 1].first + ranges[i - 1].second,
                       "adaptive distributed runs need a gap-free block partition");
      }
    }
  }

  std::optional<core::adaptive::ConvergenceController> controller;
  if (adaptive_on) {
    RISKAN_REQUIRE(total_trials > 0, "adaptive distributed runs need trials");
    controller.emplace(engine.adaptive, total_trials);
  }

  DistResult out;
  out.portfolio_ylt = data::YearLossTable(total_trials, "portfolio");
  out.stats.blocks_total = blocks.size();

  // A write to a just-crashed worker must surface as EPIPE (a recoverable
  // scheduling event), not kill the coordinator process.
  SigpipeIgnore sigpipe_guard;

  obs::Timer timer("dist.run");
  Coordinator coordinator(portfolio, worker_engine, blocks, fetch, config,
                          out.portfolio_ylt, out.stats,
                          controller.has_value() ? &*controller : nullptr);
  coordinator.run();
  if (controller.has_value()) {
    out.portfolio_ylt.truncate(controller->trials_folded());
    out.adaptive = controller->report();
  }
  out.seconds = timer.stop();
  publish_dist_stats(out.stats);
  return out;
}

}  // namespace riskan::dist
