// Coordinator of the multi-process distribution runtime — lease-based
// scheduling of encoded trial blocks across forked worker processes, with
// retry, re-queue, straggler re-execution and bit-identical recovery.
//
// The paper's stage-2 MapReduce architecture assumes a fault-tolerant
// runtime underneath (Hadoop re-executes failed and straggling tasks and
// takes the first completion). This layer supplies that runtime for real
// processes: the coordinator owns a work queue of trial blocks; each
// assignment is a *lease* with a deadline; a worker Acks on receipt (the
// heartbeat) and replies with per-trial losses. Expired leases re-queue the
// block with exponential backoff under a bounded attempt budget; dead
// workers (EOF, torn frame, CRC mismatch) are replaced from a respawn
// budget; stragglers keep running and their late duplicates are discarded
// by block id — first completion wins.
//
// Bit-identical recovery is free by construction: blocks partition the
// trial space disjointly, each Task frame carries the block's global trial
// base (which keys the counter-based sampling streams), and the reduce is
// per-trial *assignment* into the output YLT — so where a block ran, how
// often it was retried, and which duplicate landed first cannot change a
// single output bit. The recovery tests assert hard equality against the
// single-process run under every fault in the FaultPlan matrix.
//
// When no worker can be forked (or every one died with the respawn budget
// spent), the coordinator degrades gracefully: remaining blocks run
// in-process through the identical EncodedBlockSource + Sequential path.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "data/ylt.hpp"
#include "dist/config.hpp"
#include "finance/contract.hpp"

namespace riskan::dist {

/// One schedulable unit: an encoded YELT block covering `trials` trials
/// starting at global trial `trial_base`. Blocks must partition the trial
/// space disjointly (the bit-identity invariant).
struct BlockSpec {
  std::uint64_t id = 0;
  TrialId trial_base = 0;
  TrialId trials = 0;
};

/// Fetches the encoded bytes of a block (a DFS read, a chunked-file read,
/// or an in-memory slice). Called lazily at assignment time — and again on
/// re-assignment, so retries re-read rather than pin every block resident.
using BlockFetcher =
    std::function<std::vector<std::byte>(const BlockSpec& spec)>;

struct DistResult {
  /// Per-trial portfolio loss over all blocks — bit-identical to the
  /// single-process run of the same trials. On an adaptive run, truncated
  /// to the stopping trial count.
  data::YearLossTable portfolio_ylt;
  DistStats stats;
  /// Convergence report of an adaptive run (enabled = false otherwise).
  core::adaptive::AdaptiveReport adaptive;
  double seconds = 0.0;
};

/// Runs aggregate analysis for `portfolio` over `blocks`, sharded across
/// `config.workers` forked worker processes. `engine` is normalised to the
/// pool-free Sequential backend for the workers (backend/pool/telemetry
/// knobs are ignored); engine.trial_base is added to each block's
/// trial_base. Throws ContractViolation on invalid configs, DistError when
/// a block exhausts its attempt budget, and propagates IoError from
/// `fetch`.
///
/// engine.adaptive turns on convergence-adaptive stopping: completed
/// blocks are folded strictly in trial order (a frontier over the block
/// partition — completion order, worker count and retries cannot reorder
/// the fold), and once the monitored metrics converge the remaining blocks
/// are cancelled instead of leased. The decision grid is the block
/// partition itself (adaptive.block_trials is ignored here), so the
/// stopping trial count is a pure function of (seed, config, partition) —
/// bit-identical across 1..N workers, in-process fallback included.
/// Requires a contiguous partition starting at trial 0 and rejects
/// occurrence metrics (workers return the aggregate YLT only); adaptivity
/// is stripped from the worker engine.
DistResult run_distributed_aggregate(const finance::Portfolio& portfolio,
                                     const core::EngineConfig& engine,
                                     std::span<const BlockSpec> blocks,
                                     const BlockFetcher& fetch,
                                     const DistConfig& config = {});

}  // namespace riskan::dist
