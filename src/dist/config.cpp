#include "dist/config.hpp"

#include "util/require.hpp"

namespace riskan::dist {

void validate_dist_config(const DistConfig& config) {
  RISKAN_REQUIRE(config.workers <= 256,
                 "DistConfig::workers above 256 is a configuration bug");
  RISKAN_REQUIRE(config.lease_seconds > 0.0 && config.lease_seconds <= 3600.0,
                 "DistConfig::lease_seconds must be in (0, 3600]");
  RISKAN_REQUIRE(config.max_attempts >= 1 && config.max_attempts <= 1000,
                 "DistConfig::max_attempts must be in [1, 1000]");
  RISKAN_REQUIRE(config.backoff_initial_seconds >= 0.0,
                 "DistConfig::backoff_initial_seconds must be >= 0");
  RISKAN_REQUIRE(config.backoff_max_seconds >= config.backoff_initial_seconds,
                 "DistConfig backoff bounds are inverted (max < initial)");
  RISKAN_REQUIRE(config.backoff_max_seconds <= 3600.0,
                 "DistConfig::backoff_max_seconds must be <= 3600");
  RISKAN_REQUIRE(config.max_respawns <= 4096,
                 "DistConfig::max_respawns above 4096 is a configuration bug");
  RISKAN_REQUIRE(config.faults.stall_seconds >= 0.0,
                 "FaultPlan::stall_seconds must be >= 0");
}

}  // namespace riskan::dist
