// Configuration, fault injection and telemetry of the multi-process
// distribution runtime (src/dist/coordinator.hpp).
//
// DistConfig is validated up front by validate_dist_config — nonsensical
// knobs (zero lease, unbounded workers, inverted backoff) are a
// ContractViolation before any process forks, mirroring
// core::validate_engine_config.
//
// FaultPlan is the recovery test matrix's steering wheel: it makes a chosen
// worker crash, stall, or damage its reply at a chosen task, so the tests
// can prove — not hope — that the coordinator's retry/re-queue machinery
// reproduces the single-process YLT bit-for-bit under every failure mode.
// Injection happens inside the worker child after the fork, so the parent
// coordinator only ever sees the failure's *symptom* (EOF, bad CRC, silent
// lease expiry), exactly as it would from a real fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace riskan::dist {

/// One targeted fault: fires in worker `worker` (the spawn-order index;
/// respawned replacements get fresh indices, so a one-shot fault does not
/// re-trigger) while handling its `at_task`-th task (1-based). worker < 0
/// disarms the injection.
struct FaultInjection {
  int worker = -1;
  int at_task = 1;

  bool fires(int worker_index, int task_number) const noexcept {
    return worker >= 0 && worker_index == worker && task_number == at_task;
  }
};

struct FaultPlan {
  /// _exit mid-task after the Ack, before any reply — a hard crash.
  FaultInjection crash;
  /// Flip one payload byte of the Result frame *after* its CRC is computed
  /// — corruption on the wire, caught by the receiver's CRC check.
  FaultInjection corrupt;
  /// Sleep `stall_seconds` before computing — a straggler whose lease
  /// expires and whose block is re-executed elsewhere (its late duplicate
  /// result must be discarded).
  FaultInjection stall;
  double stall_seconds = 1.0;
  /// Write only half of the Result frame, then _exit — a torn write.
  FaultInjection torn;
  /// Every spawn fails, as if fork() were refused — drives the graceful
  /// degradation to the in-process path.
  bool fail_spawn = false;
  /// Every worker crashes on every task — drives the bounded retry budget
  /// into DistError.
  bool crash_every_task = false;
};

struct DistConfig {
  /// Worker processes. 0 = run in-process (no forking at all).
  std::size_t workers = 4;
  /// Lease per assigned block: a worker must Ack (and finish) within this
  /// window or the block is re-queued and the worker treated as a
  /// straggler.
  double lease_seconds = 5.0;
  /// Total assignments any one block may consume before the job fails with
  /// DistError (the bounded attempt budget; >= 1).
  int max_attempts = 5;
  /// Exponential backoff between a block's failures: the n-th re-queue
  /// waits initial * 2^(n-1), capped at max.
  double backoff_initial_seconds = 0.02;
  double backoff_max_seconds = 2.0;
  /// Replacement workers the coordinator may fork over the job's lifetime
  /// (beyond the initial `workers`); when the budget is gone and every
  /// worker is dead, remaining blocks run in-process.
  std::size_t max_respawns = 8;
  FaultPlan faults;
};

/// Cross-field sanity of `config`, up front, with ContractViolation —
/// mirrors core::validate_engine_config. Bounds: workers <= 256,
/// 0 < lease <= 3600s, 1 <= max_attempts <= 1000, backoff_initial >= 0,
/// backoff_initial <= backoff_max <= 3600s, max_respawns <= 4096,
/// stall_seconds >= 0.
void validate_dist_config(const DistConfig& config);

/// Telemetry of one distributed run — the robustness ledger. Under an
/// injected fault the recovery tests assert the relevant counters moved
/// (retries happened, leases expired, duplicates were discarded) *and* the
/// final YLT is bit-identical anyway.
struct DistStats {
  std::size_t workers_spawned = 0;    ///< initial forks that succeeded
  std::size_t workers_respawned = 0;  ///< replacement forks
  std::size_t worker_deaths = 0;      ///< EOF / torn stream / kill observed
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_assigned = 0;  ///< task frames successfully sent
  std::uint64_t blocks_retried = 0;   ///< failure re-queues
  std::uint64_t leases_expired = 0;
  std::uint64_t corrupt_frames = 0;   ///< CRC mismatches + torn frames seen
  std::uint64_t worker_errors = 0;    ///< Error frames received
  std::uint64_t duplicates_discarded = 0;  ///< late results for done blocks
  /// Blocks never folded because the adaptive controller converged first:
  /// un-issued ones are dropped from the queue, in-flight ones are left to
  /// land as discarded duplicates. Zero on non-adaptive runs.
  std::uint64_t blocks_cancelled = 0;
  std::uint64_t task_bytes_sent = 0;
  std::uint64_t bytes_resent = 0;     ///< task bytes of re-queued sends
  std::uint64_t result_bytes_received = 0;
  std::uint64_t blocks_run_in_process = 0;  ///< fallback-path completions
  int max_attempts_observed = 0;      ///< most assignments any block took
  bool fell_back_in_process = false;
};

/// A distributed job that could not complete: some block exhausted its
/// attempt budget (and the in-process fallback was not applicable, e.g.
/// because the data itself is bad on every replay).
class DistError : public std::runtime_error {
 public:
  explicit DistError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace riskan::dist
