#include "dist/frame.hpp"

#include <cstring>
#include <string>

#include "parallel/process.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"

namespace riskan::dist {

std::vector<std::byte> encode_frame(const Frame& frame) {
  std::byte header[kFrameHeaderBytes];
  const auto put32 = [&header](std::size_t off, std::uint32_t v) {
    std::memcpy(header + off, &v, sizeof(v));
  };
  const auto put64 = [&header](std::size_t off, std::uint64_t v) {
    std::memcpy(header + off, &v, sizeof(v));
  };
  put32(0, kFrameMagic);
  put32(4, static_cast<std::uint32_t>(frame.type));
  put64(8, frame.block_id);
  put64(16, frame.payload.size());
  put32(24, crc32(frame.payload));

  std::vector<std::byte> out(kFrameHeaderBytes + frame.payload.size());
  std::memcpy(out.data(), header, kFrameHeaderBytes);
  if (!frame.payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

bool write_frame(int fd, const Frame& frame, double timeout_seconds) {
  const auto bytes = encode_frame(frame);
  return write_fully(fd, bytes, timeout_seconds);
}

FrameReadResult read_frame(int fd, Frame& frame) {
  std::byte header[kFrameHeaderBytes];
  switch (read_fully(fd, header, kFrameHeaderBytes)) {
    case ReadResult::Ok:
      break;
    case ReadResult::CleanEof:
      return FrameReadResult::Closed;
    case ReadResult::TornEof:
      throw TruncatedFileError("frame stream ended inside a frame header");
    case ReadResult::Failed:
      throw IoError("frame header read failed");
  }

  ByteReader reader(std::span<const std::byte>(header, kFrameHeaderBytes));
  const std::uint32_t magic = reader.u32();
  const std::uint32_t type = reader.u32();
  const std::uint64_t block_id = reader.u64();
  const std::uint64_t payload_size = reader.u64();
  const std::uint32_t payload_crc = reader.u32();

  if (magic != kFrameMagic) {
    throw CorruptFrameError("bad frame magic 0x" + std::to_string(magic));
  }
  if (type < static_cast<std::uint32_t>(FrameType::Task) ||
      type > static_cast<std::uint32_t>(FrameType::Shutdown)) {
    throw CorruptFrameError("unknown frame type " + std::to_string(type));
  }
  if (payload_size > kMaxFramePayload) {
    throw CorruptFrameError("frame payload size " + std::to_string(payload_size) +
                            " exceeds the protocol cap");
  }

  frame.type = static_cast<FrameType>(type);
  frame.block_id = block_id;
  frame.payload.resize(static_cast<std::size_t>(payload_size));
  if (payload_size > 0) {
    switch (read_fully(fd, frame.payload.data(), frame.payload.size())) {
      case ReadResult::Ok:
        break;
      case ReadResult::CleanEof:
      case ReadResult::TornEof:
        throw TruncatedFileError("frame stream ended inside a frame payload");
      case ReadResult::Failed:
        throw IoError("frame payload read failed");
    }
  }
  if (crc32(frame.payload) != payload_crc) {
    throw CorruptFrameError("frame payload CRC mismatch (block " +
                            std::to_string(block_id) + ")");
  }
  return FrameReadResult::Ok;
}

}  // namespace riskan::dist
