#include "dist/frame.hpp"

#include <cstring>
#include <exception>
#include <string>

#include "parallel/process.hpp"
#include "util/bytes.hpp"
#include "util/io_error.hpp"

namespace riskan::dist {

std::vector<std::byte> encode_frame(const Frame& frame) {
  std::byte header[kFrameHeaderBytes];
  const auto put32 = [&header](std::size_t off, std::uint32_t v) {
    std::memcpy(header + off, &v, sizeof(v));
  };
  const auto put64 = [&header](std::size_t off, std::uint64_t v) {
    std::memcpy(header + off, &v, sizeof(v));
  };
  put32(0, kFrameMagic);
  put32(4, static_cast<std::uint32_t>(frame.type));
  put64(8, frame.block_id);
  put64(16, frame.payload.size());
  put32(24, crc32(frame.payload));

  std::vector<std::byte> out(kFrameHeaderBytes + frame.payload.size());
  std::memcpy(out.data(), header, kFrameHeaderBytes);
  if (!frame.payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

bool write_frame(int fd, const Frame& frame, double timeout_seconds) {
  const auto bytes = encode_frame(frame);
  return write_fully(fd, bytes, timeout_seconds);
}

FrameReadResult read_frame(int fd, Frame& frame) {
  std::byte header[kFrameHeaderBytes];
  switch (read_fully(fd, header, kFrameHeaderBytes)) {
    case ReadResult::Ok:
      break;
    case ReadResult::CleanEof:
      return FrameReadResult::Closed;
    case ReadResult::TornEof:
      throw TruncatedFileError("frame stream ended inside a frame header");
    case ReadResult::Failed:
      throw IoError("frame header read failed");
  }

  ByteReader reader(std::span<const std::byte>(header, kFrameHeaderBytes));
  const std::uint32_t magic = reader.u32();
  const std::uint32_t type = reader.u32();
  const std::uint64_t block_id = reader.u64();
  const std::uint64_t payload_size = reader.u64();
  const std::uint32_t payload_crc = reader.u32();

  if (magic != kFrameMagic) {
    throw CorruptFrameError("bad frame magic 0x" + std::to_string(magic));
  }
  if (type < static_cast<std::uint32_t>(FrameType::Task) ||
      type > static_cast<std::uint32_t>(FrameType::Spans)) {
    throw CorruptFrameError("unknown frame type " + std::to_string(type));
  }
  if (payload_size > kMaxFramePayload) {
    throw CorruptFrameError("frame payload size " + std::to_string(payload_size) +
                            " exceeds the protocol cap");
  }

  frame.type = static_cast<FrameType>(type);
  frame.block_id = block_id;
  frame.payload.resize(static_cast<std::size_t>(payload_size));
  if (payload_size > 0) {
    switch (read_fully(fd, frame.payload.data(), frame.payload.size())) {
      case ReadResult::Ok:
        break;
      case ReadResult::CleanEof:
      case ReadResult::TornEof:
        throw TruncatedFileError("frame stream ended inside a frame payload");
      case ReadResult::Failed:
        throw IoError("frame payload read failed");
    }
  }
  if (crc32(frame.payload) != payload_crc) {
    throw CorruptFrameError("frame payload CRC mismatch (block " +
                            std::to_string(block_id) + ")");
  }
  return FrameReadResult::Ok;
}

std::vector<std::byte> encode_spans_payload(
    const std::vector<obs::CollectedSpan>& spans) {
  ByteWriter writer;
  writer.u64(spans.size());
  for (const obs::CollectedSpan& span : spans) {
    writer.str(span.name);
    writer.u64(span.tid);
    writer.u64(span.start_ns);
    writer.u64(span.dur_ns);
  }
  return writer.buffer();
}

std::vector<obs::CollectedSpan> decode_spans_payload(
    std::span<const std::byte> payload) {
  try {
    ByteReader reader(payload);
    const std::uint64_t count = reader.u64();
    // Each span needs at least its fixed fields; a corrupt count fails here
    // instead of driving a huge reserve.
    constexpr std::uint64_t kMinSpanBytes = 4 + 3 * 8;
    if (count > payload.size() / kMinSpanBytes + 1) {
      throw CorruptFrameError("spans payload count is implausible");
    }
    std::vector<obs::CollectedSpan> spans;
    spans.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::CollectedSpan span;
      span.name = reader.str();
      span.tid = reader.u64();
      span.start_ns = reader.u64();
      span.dur_ns = reader.u64();
      span.instant = span.dur_ns == 0;
      spans.push_back(std::move(span));
    }
    if (!reader.done()) {
      throw CorruptFrameError("spans payload has trailing bytes");
    }
    return spans;
  } catch (const CorruptFrameError&) {
    throw;
  } catch (const std::exception& e) {
    // ByteReader reads past the end as ContractViolation — at this layer
    // that is a malformed frame, not a caller bug.
    throw CorruptFrameError(std::string("malformed spans payload: ") + e.what());
  }
}

}  // namespace riskan::dist
