#include "dist/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "data/trial_source.hpp"
#include "dist/frame.hpp"
#include "obs/trace.hpp"
#include "parallel/process.hpp"
#include "util/bytes.hpp"

namespace riskan::dist {
namespace {

// A worker's replies are small (trials x 8 bytes); if the coordinator has
// not drained the pipe in this long it is gone, and the worker should die
// rather than linger as an orphan.
constexpr double kWorkerWriteTimeout = 30.0;

std::vector<std::byte> encode_result_payload(std::span<const Money> losses) {
  ByteWriter writer;
  writer.u64(losses.size());
  for (const Money loss : losses) {
    writer.f64(loss);
  }
  return writer.buffer();
}

std::vector<std::byte> encode_error_payload(const std::string& message) {
  ByteWriter writer;
  writer.str(message);
  return writer.buffer();
}

}  // namespace

[[noreturn]] void worker_main(const WorkerContext& context, int task_fd,
                              int result_fd) {
  // The fork copied the coordinator's trace ring wholesale. Drop the
  // inherited events (they are the parent's to export) but keep the active
  // flag: from here on the ring holds only this worker's spans, drained
  // incrementally and forwarded as Spans frames. Workers exit via _exit, so
  // the parent's atexit export never fires in a child.
  obs::TraceBuffer& trace = obs::TraceBuffer::global();
  if (trace.active()) {
    trace.reset();
  }
  std::size_t span_cursor = 0;

  int tasks_seen = 0;
  for (;;) {
    Frame task;
    try {
      if (read_frame(task_fd, task) == FrameReadResult::Closed) {
        ::_exit(0);  // coordinator closed the task pipe: normal shutdown
      }
    } catch (const std::exception&) {
      ::_exit(1);  // torn/garbled task stream: nothing sane left to do
    }
    if (task.type == FrameType::Shutdown) {
      ::_exit(0);
    }
    if (task.type != FrameType::Task) {
      ::_exit(1);
    }
    ++tasks_seen;

    // Ack first: receipt of the task starts (refreshes) the lease clock on
    // the coordinator side, separating "slow compute" from "never got it".
    if (!write_frame(result_fd, Frame{FrameType::Ack, task.block_id, {}},
                     kWorkerWriteTimeout)) {
      ::_exit(1);
    }

    const auto& faults = context.faults;
    if (faults.crash_every_task ||
        faults.crash.fires(context.worker_index, tasks_seen)) {
      ::_exit(42);  // injected hard crash: no reply, just EOF at the parent
    }
    if (faults.stall.fires(context.worker_index, tasks_seen)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(faults.stall_seconds));
    }

    Frame reply{FrameType::Result, task.block_id, {}};
    try {
      RISKAN_SPAN("dist.worker_task");
      ByteReader reader(task.payload);
      const auto trial_base = static_cast<TrialId>(reader.u64());
      data::EncodedBlockSource source(reader.raw(reader.remaining()));
      auto engine = context.engine;
      engine.trial_base = trial_base;
      const auto result =
          core::run_aggregate_analysis(*context.portfolio, source, engine);
      reply.payload = encode_result_payload(result.portfolio_ylt.losses());
    } catch (const std::exception& e) {
      // The block's data (or config) is bad, not the stream: report and
      // keep serving — the coordinator decides whether to retry elsewhere.
      reply.type = FrameType::Error;
      reply.payload = encode_error_payload(e.what());
    }

    // Forward the spans this task recorded before its reply: the
    // coordinator stamps them with this worker's lane. Telemetry only —
    // dropping the frame (a dying worker) cannot change a result bit.
    if (trace.active()) {
      const auto spans = trace.collect(span_cursor, &span_cursor);
      if (!spans.empty() &&
          !write_frame(result_fd,
                       Frame{FrameType::Spans, task.block_id,
                             encode_spans_payload(spans)},
                       kWorkerWriteTimeout)) {
        ::_exit(1);
      }
    }

    if (reply.type == FrameType::Result &&
        faults.torn.fires(context.worker_index, tasks_seen)) {
      const auto bytes = encode_frame(reply);
      (void)write_fully(result_fd,
                        std::span<const std::byte>(bytes).subspan(0, bytes.size() / 2),
                        kWorkerWriteTimeout);
      ::_exit(43);  // injected torn write: half a frame, then gone
    }
    if (reply.type == FrameType::Result &&
        faults.corrupt.fires(context.worker_index, tasks_seen)) {
      auto bytes = encode_frame(reply);
      // Flip a payload byte after the CRC was computed — corruption the
      // receiver's CRC check must catch.
      bytes[kFrameHeaderBytes] ^= std::byte{0x40};
      if (!write_fully(result_fd, bytes, kWorkerWriteTimeout)) {
        ::_exit(1);
      }
      continue;
    }

    if (!write_frame(result_fd, reply, kWorkerWriteTimeout)) {
      ::_exit(1);
    }
  }
}

}  // namespace riskan::dist
