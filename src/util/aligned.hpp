// 64-byte-aligned storage for the engine's SoA gather columns.
//
// The vectorized trial kernel (src/core/batch_simd.hpp) issues wide loads
// and gathers against the resolution columns (data::ResolvedYelt /
// CompactResolvedYelt), the ELT mean column and the scenario mask columns.
// Aligning those allocations to the cache line guarantees a vector load of
// the column head never straddles a line and keeps gather bases on the
// layout the wide ISAs are happiest with. The allocator is a drop-in
// std::vector policy, so every existing span/data() consumer is unchanged.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

namespace riskan::util {

/// Alignment of the engine's gather columns (one x86 cache line; ≥ any
/// vector width the kernels use).
inline constexpr std::size_t kColumnAlign = 64;

/// Minimal aligned-new allocator: std::allocator semantics with every
/// allocation on an `Align` boundary.
template <typename T, std::size_t Align = kColumnAlign>
class AlignedAllocator {
 public:
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment must not weaken the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }
};

/// std::vector with cache-line-aligned storage — the type of every SoA
/// gather column.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

inline bool is_aligned(const void* p, std::size_t align = kColumnAlign) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

}  // namespace riskan::util

/// Debug-build check that a column's storage landed on the alignment the
/// vector kernels assume (empty vectors may hand out null/unaligned data()).
#ifndef NDEBUG
#define RISKAN_DEBUG_ASSERT_ALIGNED(ptr) \
  assert(((ptr) == nullptr || ::riskan::util::is_aligned(ptr)) && "column not 64-byte aligned")
#else
#define RISKAN_DEBUG_ASSERT_ALIGNED(ptr) ((void)0)
#endif
