#include "util/types.hpp"

namespace riskan {

const char* to_string(Peril p) noexcept {
  switch (p) {
    case Peril::Earthquake: return "earthquake";
    case Peril::Hurricane: return "hurricane";
    case Peril::Flood: return "flood";
    case Peril::Tornado: return "tornado";
    case Peril::Wildfire: return "wildfire";
  }
  return "unknown";
}

const char* to_string(Region r) noexcept {
  switch (r) {
    case Region::NorthAmerica: return "north-america";
    case Region::Europe: return "europe";
    case Region::Asia: return "asia";
    case Region::SouthAmerica: return "south-america";
    case Region::Oceania: return "oceania";
  }
  return "unknown";
}

const char* to_string(LineOfBusiness lob) noexcept {
  switch (lob) {
    case LineOfBusiness::Property: return "property";
    case LineOfBusiness::Marine: return "marine";
    case LineOfBusiness::Energy: return "energy";
    case LineOfBusiness::Casualty: return "casualty";
  }
  return "unknown";
}

}  // namespace riskan
