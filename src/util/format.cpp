#include "util/format.hpp"

#include <cmath>
#include <cstdio>

namespace riskan {

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_count(double count) {
  if (std::abs(count) >= 1e15) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2e", count);
    return buf;
  }
  // Thousands separators on the integer part.
  char digits[64];
  std::snprintf(digits, sizeof(digits), "%.0f", count);
  std::string raw = digits;
  std::string out;
  const bool negative = !raw.empty() && raw[0] == '-';
  const std::size_t start = negative ? 1 : 0;
  const std::size_t len = raw.size() - start;
  for (std::size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(raw[start + i]);
  }
  return negative ? "-" + out : out;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"};
  int unit = 0;
  double value = bytes;
  while (std::abs(value) >= 1024.0 && unit < 6) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds < 2.0 * 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f days", seconds / 86400.0);
  }
  return buf;
}

std::string format_rate(double per_second) {
  static const char* kUnits[] = {"", "K", "M", "G", "T", "P"};
  int unit = 0;
  double value = per_second;
  while (std::abs(value) >= 1000.0 && unit < 5) {
    value /= 1000.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s/s", value, kUnits[unit]);
  return buf;
}

}  // namespace riskan
