// Console table reporting for the experiment harness.
//
// Every bench binary in bench/ prints the rows a paper table/figure would
// carry using ReportTable, and optionally mirrors them to CSV for plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace riskan {

/// Column-aligned ASCII table. Left-aligns the first column, right-aligns
/// the rest (numeric convention).
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(const std::string& path) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== E2: engine speedup ==") used by benches.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace riskan
