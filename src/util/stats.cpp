#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace riskan {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::sample_variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stdev() const noexcept {
  return std::sqrt(variance());
}

double quantile(std::span<const double> values, double p) {
  RISKAN_REQUIRE(!values.empty(), "quantile of empty sample");
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, p);
}

double quantile_sorted(std::span<const double> sorted, double p) {
  RISKAN_REQUIRE(!sorted.empty(), "quantile of empty sample");
  RISKAN_REQUIRE(p >= 0.0 && p <= 1.0, "quantile level must lie in [0,1]");
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(h);
  if (idx + 1 >= sorted.size()) {
    return sorted.back();
  }
  const double frac = h - static_cast<double>(idx);
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

double tail_mean_above(std::span<const double> sorted, double p) {
  RISKAN_REQUIRE(!sorted.empty(), "tail_mean_above of empty sample");
  const double var = quantile_sorted(sorted, p);
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = sorted.rbegin(); it != sorted.rend() && *it > var; ++it) {
    sum += *it;
    ++n;
  }
  return n == 0 ? var : sum / static_cast<double>(n);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), counts_(bins, 0) {
  RISKAN_REQUIRE(bins > 0, "histogram needs at least one bin");
  RISKAN_REQUIRE(hi > lo, "histogram range must be non-empty");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  RISKAN_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  RISKAN_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + width_;
}

P2Quantile::P2Quantile(double p) : p_(p) {
  RISKAN_REQUIRE(p > 0.0 && p < 1.0, "P2 quantile level must lie in (0,1)");
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * p;
  desired_[2] = 1.0 + 4.0 * p;
  desired_[3] = 3.0 + 2.0 * p;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = p / 2.0;
  increments_[2] = p;
  increments_[3] = (1.0 + p) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }
  ++count_;

  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) {
      ++cell;
    }
  }

  for (int i = cell + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double np = positions_[i] + sign;
      const double q =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - sign) * (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < q && q < heights_[i + 1]) {
        heights_[i] = q;
      } else {
        // Fall back to linear prediction toward the neighbour.
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact quantile over the few samples seen so far.
    double copy[5];
    std::copy(heights_, heights_ + count_, copy);
    std::sort(copy, copy + count_);
    const double h = p_ * static_cast<double>(count_ - 1);
    const auto idx = static_cast<std::size_t>(h);
    if (idx + 1 >= count_) {
      return copy[count_ - 1];
    }
    return copy[idx] + (h - static_cast<double>(idx)) * (copy[idx + 1] - copy[idx]);
  }
  return heights_[2];
}

}  // namespace riskan
