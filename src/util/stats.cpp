#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace riskan {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::sample_variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stdev() const noexcept {
  return std::sqrt(variance());
}

double quantile(std::span<const double> values, double p) {
  RISKAN_REQUIRE(!values.empty(), "quantile of empty sample");
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, p);
}

double quantile_sorted(std::span<const double> sorted, double p) {
  RISKAN_REQUIRE(!sorted.empty(), "quantile of empty sample");
  RISKAN_REQUIRE(p >= 0.0 && p <= 1.0, "quantile level must lie in [0,1]");
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(h);
  if (idx + 1 >= sorted.size()) {
    return sorted.back();
  }
  const double frac = h - static_cast<double>(idx);
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

double tail_mean_above(std::span<const double> sorted, double p) {
  RISKAN_REQUIRE(!sorted.empty(), "tail_mean_above of empty sample");
  const double var = quantile_sorted(sorted, p);
  double sum = 0.0;
  std::size_t n = 0;
  for (auto it = sorted.rbegin(); it != sorted.rend() && *it > var; ++it) {
    sum += *it;
    ++n;
  }
  return n == 0 ? var : sum / static_cast<double>(n);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), counts_(bins, 0) {
  RISKAN_REQUIRE(bins > 0, "histogram needs at least one bin");
  RISKAN_REQUIRE(hi > lo, "histogram range must be non-empty");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  RISKAN_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  RISKAN_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + width_;
}

P2Quantile::P2Quantile(double p) : p_(p) {
  RISKAN_REQUIRE(p > 0.0 && p < 1.0, "P2 quantile level must lie in (0,1)");
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * p;
  desired_[2] = 1.0 + 4.0 * p;
  desired_[3] = 3.0 + 2.0 * p;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = p / 2.0;
  increments_[2] = p;
  increments_[3] = (1.0 + p) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }
  ++count_;

  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) {
      ++cell;
    }
  }

  for (int i = cell + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right_gap = positions_[i + 1] - positions_[i];
    const double left_gap = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double np = positions_[i] + sign;
      const double q =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - sign) * (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < q && q < heights_[i + 1]) {
        heights_[i] = q;
      } else {
        // Fall back to linear prediction toward the neighbour.
        const int j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ <= 5) {
    // Exact quantile over the few samples seen so far. The <= is load-
    // bearing: at exactly 5 samples the markers are still the sorted
    // sample, and returning heights_[2] (the median marker) regardless of
    // p — the pre-fix behaviour — was a cliff at p near 0 or 1.
    double copy[5];
    std::copy(heights_, heights_ + count_, copy);
    std::sort(copy, copy + count_);
    const double h = p_ * static_cast<double>(count_ - 1);
    const auto idx = static_cast<std::size_t>(h);
    if (idx + 1 >= count_) {
      return copy[count_ - 1];
    }
    return copy[idx] + (h - static_cast<double>(idx)) * (copy[idx + 1] - copy[idx]);
  }
  return heights_[2];
}

double normal_quantile(double p) {
  RISKAN_REQUIRE(p > 0.0 && p < 1.0, "normal quantile level must lie in (0,1)");
  // Acklam's rational approximation with the canonical coefficients.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double students_t_quantile(double p, double dof) {
  RISKAN_REQUIRE(p > 0.0 && p < 1.0, "t quantile level must lie in (0,1)");
  RISKAN_REQUIRE(dof >= 1.0, "t quantile needs at least 1 degree of freedom");
  if (dof == 1.0) {
    // Cauchy.
    constexpr double pi = 3.14159265358979323846;
    return std::tan(pi * (p - 0.5));
  }
  if (dof == 2.0) {
    return (2.0 * p - 1.0) / std::sqrt(2.0 * p * (1.0 - p));
  }
  // Cornish–Fisher expansion about the normal quantile (Abramowitz &
  // Stegun 26.7.5, through the 1/dof^3 term).
  const double z = normal_quantile(p);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double v = dof;
  return z + (z3 + z) / (4.0 * v) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v) +
         (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * v * v * v);
}

double BatchMeans::half_width(double confidence) const {
  RISKAN_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence level must lie in (0,1)");
  if (stats_.count() < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const double n = static_cast<double>(stats_.count());
  const double t = students_t_quantile(0.5 + confidence / 2.0, n - 1.0);
  return t * std::sqrt(stats_.sample_variance() / n);
}

}  // namespace riskan
