// Walker alias method — O(1) sampling from an arbitrary discrete
// distribution.
//
// Stage-2 YELT generation draws millions of event occurrences proportional
// to per-event annual rates over catalogues of 10^5 events; inverse-CDF
// binary search costs O(log n) per draw, the alias table costs O(1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan {

class AliasTable {
 public:
  /// Builds from non-negative weights (at least one positive).
  explicit AliasTable(std::span<const double> weights);

  /// Samples an index proportional to its weight.
  template <typename Rng>
  std::size_t sample(Rng& rng) const {
    // (Named to avoid shadowing util/distributions.hpp's Uint128 in TUs
    // that include both.)
    __extension__ using WideMul = unsigned __int128;
    const std::uint64_t word = rng();
    // Top bits pick the column, remaining bits the coin.
    const std::size_t column =
        static_cast<std::size_t>((static_cast<WideMul>(word) * prob_.size()) >> 64);
    const double coin = to_unit_double(rng());
    return coin < prob_[column] ? column : alias_[column];
  }

  std::size_t size() const noexcept { return prob_.size(); }

  /// Normalised probability of index i (for tests).
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalised_;
};

}  // namespace riskan
