#include "util/report.hpp"

#include <algorithm>
#include <fstream>

#include "util/require.hpp"

namespace riskan {

ReportTable::ReportTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RISKAN_REQUIRE(!headers_.empty(), "report table needs at least one column");
}

void ReportTable::add_row(std::vector<std::string> cells) {
  RISKAN_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void ReportTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const auto pad = widths[c] - cells[c].size();
      if (c == 0) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
      if (c + 1 < cells.size()) {
        os << "  ";
      }
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) {
    total += w + 2;
  }
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out.push_back(ch);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

void ReportTable::write_csv(const std::string& path) const {
  std::ofstream os(path);
  RISKAN_REQUIRE(os.good(), "cannot open CSV output: " + path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace riskan
