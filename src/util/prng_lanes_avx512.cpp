// AVX-512F stamp of the batched Philox block kernel: 16 logical (hi, lo)
// counters per pass, the 4x32 state held as four __m512i of u32 lanes.
// Integer-only (mul-hi/lo, xor, round-key add — every op lane-exact), so
// the outputs match Philox4x32::block bit for bit, like the AVX2 stamp
// (tests/test_util_prng.cpp asserts all stamps against the scalar engine).
//
// Compiled with -mavx512f (set per-source by RISKAN_ENABLE_SIMD); the only
// referent is the runtime dispatch in util/prng.cpp, which probes avx512f
// before handing this kernel out and prefers it over the AVX2 body.
#ifdef RISKAN_SIMD_AVX512

#include <immintrin.h>

#include "util/prng.hpp"

namespace riskan {

namespace {

// The Salmon et al. multipliers / Weyl constants (same values as the
// scalar engine in prng.cpp; the equality tests pin them together).
constexpr std::uint32_t kM0 = 0xD2511F53u;
constexpr std::uint32_t kM1 = 0xCD9E8D57u;
constexpr std::uint32_t kW0 = 0x9E3779B9u;
constexpr std::uint32_t kW1 = 0xBB67AE85u;

/// High 32 bits of u32 x u32 per lane — the AVX2 trick at double width:
/// vpmuludq covers the even u32 lanes, the odd lanes shift down first and
/// their products' high words already sit at the odd u32 positions, so one
/// masked blend reassembles the vector.
inline __m512i mulhi32x16(__m512i c, __m512i m64) noexcept {
  const __m512i even = _mm512_srli_epi64(_mm512_mul_epu32(c, m64), 32);
  const __m512i odd = _mm512_mul_epu32(_mm512_srli_epi64(c, 32), m64);
  return _mm512_mask_blend_epi32(0xAAAA, even, odd);
}

inline __m512i idx32(int a0, int a1, int a2, int a3, int a4, int a5, int a6, int a7,
                     int a8, int a9, int a10, int a11, int a12, int a13, int a14,
                     int a15) noexcept {
  return _mm512_setr_epi32(a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12, a13,
                           a14, a15);
}

}  // namespace

void philox_blocks_avx512(const Philox4x32& engine, const std::uint64_t* hi,
                          const std::uint64_t* lo, std::size_t n,
                          std::uint64_t* out) noexcept {
  const Philox4x32::Key key = engine.key();
  const __m512i m0_64 = _mm512_set1_epi64(static_cast<long long>(kM0));
  const __m512i m1_64 = _mm512_set1_epi64(static_cast<long long>(kM1));
  const __m512i m0_32 = _mm512_set1_epi32(static_cast<int>(kM0));
  const __m512i m1_32 = _mm512_set1_epi32(static_cast<int>(kM1));
  const __m512i w0 = _mm512_set1_epi32(static_cast<int>(kW0));
  const __m512i w1 = _mm512_set1_epi32(static_cast<int>(kW1));

  // u32-column split: even / odd u32 lanes across a register pair.
  const __m512i sel_even =
      idx32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30);
  const __m512i sel_odd =
      idx32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31);
  // u64-word rebuild: interleave two state columns back into per-counter
  // words (low and high counter halves), then interleave the A/B words.
  const __m512i ilv_lo = idx32(0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22, 7, 23);
  const __m512i ilv_hi =
      idx32(8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29, 14, 30, 15, 31);
  const __m512i pair_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i pair_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);

  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i lo_a = _mm512_loadu_si512(lo + i);
    const __m512i lo_b = _mm512_loadu_si512(lo + i + 8);
    const __m512i hi_a = _mm512_loadu_si512(hi + i);
    const __m512i hi_b = _mm512_loadu_si512(hi + i + 8);

    __m512i c0 = _mm512_permutex2var_epi32(lo_a, sel_even, lo_b);
    __m512i c1 = _mm512_permutex2var_epi32(lo_a, sel_odd, lo_b);
    __m512i c2 = _mm512_permutex2var_epi32(hi_a, sel_even, hi_b);
    __m512i c3 = _mm512_permutex2var_epi32(hi_a, sel_odd, hi_b);

    __m512i k0 = _mm512_set1_epi32(static_cast<int>(key[0]));
    __m512i k1 = _mm512_set1_epi32(static_cast<int>(key[1]));
    for (int round = 0; round < 10; ++round) {
      const __m512i h0 = mulhi32x16(c0, m0_64);
      const __m512i l0 = _mm512_mullo_epi32(c0, m0_32);
      const __m512i h1 = mulhi32x16(c2, m1_64);
      const __m512i l1 = _mm512_mullo_epi32(c2, m1_32);
      const __m512i n0 = _mm512_xor_si512(_mm512_xor_si512(h1, c1), k0);
      const __m512i n2 = _mm512_xor_si512(_mm512_xor_si512(h0, c3), k1);
      c0 = n0;
      c1 = l1;
      c2 = n2;
      c3 = l0;
      k0 = _mm512_add_epi32(k0, w0);
      k1 = _mm512_add_epi32(k1, w1);
    }

    // A_j = c0_j | c1_j << 32 (out[2j]), B_j = c2_j | c3_j << 32
    // (out[2j+1]); rebuild the u64 words, then store [A,B] interleaved in
    // counter order.
    const __m512i a_lo = _mm512_permutex2var_epi32(c0, ilv_lo, c1);  // A0..A7
    const __m512i a_hi = _mm512_permutex2var_epi32(c0, ilv_hi, c1);  // A8..A15
    const __m512i b_lo = _mm512_permutex2var_epi32(c2, ilv_lo, c3);  // B0..B7
    const __m512i b_hi = _mm512_permutex2var_epi32(c2, ilv_hi, c3);  // B8..B15
    std::uint64_t* o = out + 2 * i;
    _mm512_storeu_si512(o, _mm512_permutex2var_epi64(a_lo, pair_lo, b_lo));
    _mm512_storeu_si512(o + 8, _mm512_permutex2var_epi64(a_lo, pair_hi, b_lo));
    _mm512_storeu_si512(o + 16, _mm512_permutex2var_epi64(a_hi, pair_lo, b_hi));
    _mm512_storeu_si512(o + 24, _mm512_permutex2var_epi64(a_hi, pair_hi, b_hi));
  }
#if defined(RISKAN_SIMD_AVX2)
  philox_blocks_avx2(engine, hi + i, lo + i, n - i, out + 2 * i);
#else
  philox_blocks_scalar(engine, hi + i, lo + i, n - i, out + 2 * i);
#endif
}

}  // namespace riskan

#endif  // RISKAN_SIMD_AVX512
