// NEON stamp of the batched Philox block kernel: 4 logical (hi, lo)
// counters per pass, the 4x32 state held as four uint32x4_t. Integer
// mul-hi/lo, xor and round-key adds are lane-exact, so the outputs match
// Philox4x32::block bit for bit (tests assert it against the scalar
// engine). NEON is baseline on aarch64, so this TU needs no extra flags.
#ifdef RISKAN_SIMD_NEON

#include <arm_neon.h>

#include "util/prng.hpp"

namespace riskan {

namespace {

// The Salmon et al. multipliers / Weyl constants (same values as the
// scalar engine in prng.cpp; the equality tests pin them together).
constexpr std::uint32_t kM0 = 0xD2511F53u;
constexpr std::uint32_t kM1 = 0xCD9E8D57u;
constexpr std::uint32_t kW0 = 0x9E3779B9u;
constexpr std::uint32_t kW1 = 0xBB67AE85u;

/// High 32 bits of u32 x u32 per lane via the widening multiply.
inline uint32x4_t mulhi32x4(uint32x4_t a, uint32x4_t b) noexcept {
  const uint64x2_t lo = vmull_u32(vget_low_u32(a), vget_low_u32(b));
  const uint64x2_t hi = vmull_u32(vget_high_u32(a), vget_high_u32(b));
  return vcombine_u32(vshrn_n_u64(lo, 32), vshrn_n_u64(hi, 32));
}

}  // namespace

void philox_blocks_neon(const Philox4x32& engine, const std::uint64_t* hi,
                        const std::uint64_t* lo, std::size_t n,
                        std::uint64_t* out) noexcept {
  const Philox4x32::Key key = engine.key();
  const uint32x4_t m0 = vdupq_n_u32(kM0);
  const uint32x4_t m1 = vdupq_n_u32(kM1);
  const uint32x4_t w0 = vdupq_n_u32(kW0);
  const uint32x4_t w1 = vdupq_n_u32(kW1);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64x2_t l01 = vld1q_u64(lo + i);
    const uint64x2_t l23 = vld1q_u64(lo + i + 2);
    const uint64x2_t h01 = vld1q_u64(hi + i);
    const uint64x2_t h23 = vld1q_u64(hi + i + 2);

    // Narrow the four u64 counters into u32 columns (lane order preserved).
    uint32x4_t c0 = vcombine_u32(vmovn_u64(l01), vmovn_u64(l23));
    uint32x4_t c1 = vcombine_u32(vshrn_n_u64(l01, 32), vshrn_n_u64(l23, 32));
    uint32x4_t c2 = vcombine_u32(vmovn_u64(h01), vmovn_u64(h23));
    uint32x4_t c3 = vcombine_u32(vshrn_n_u64(h01, 32), vshrn_n_u64(h23, 32));

    uint32x4_t k0 = vdupq_n_u32(key[0]);
    uint32x4_t k1 = vdupq_n_u32(key[1]);
    for (int round = 0; round < 10; ++round) {
      const uint32x4_t h0 = mulhi32x4(c0, m0);
      const uint32x4_t l0 = vmulq_u32(c0, m0);
      const uint32x4_t h1 = mulhi32x4(c2, m1);
      const uint32x4_t l1 = vmulq_u32(c2, m1);
      const uint32x4_t n0 = veorq_u32(veorq_u32(h1, c1), k0);
      const uint32x4_t n2 = veorq_u32(veorq_u32(h0, c3), k1);
      c0 = n0;
      c1 = l1;
      c2 = n2;
      c3 = l0;
      k0 = vaddq_u32(k0, w0);
      k1 = vaddq_u32(k1, w1);
    }

    // out[2i] = c0|c1<<32, out[2i+1] = c2|c3<<32: zip the u32 columns into
    // per-counter u64 words, then zip those into the interleaved layout.
    const uint64x2_t a01 = vreinterpretq_u64_u32(vzip1q_u32(c0, c1));  // A0 A1
    const uint64x2_t a23 = vreinterpretq_u64_u32(vzip2q_u32(c0, c1));  // A2 A3
    const uint64x2_t b01 = vreinterpretq_u64_u32(vzip1q_u32(c2, c3));  // B0 B1
    const uint64x2_t b23 = vreinterpretq_u64_u32(vzip2q_u32(c2, c3));  // B2 B3
    std::uint64_t* o = out + 2 * i;
    vst1q_u64(o, vzip1q_u64(a01, b01));      // A0 B0
    vst1q_u64(o + 2, vzip2q_u64(a01, b01));  // A1 B1
    vst1q_u64(o + 4, vzip1q_u64(a23, b23));  // A2 B2
    vst1q_u64(o + 6, vzip2q_u64(a23, b23));  // A3 B3
  }
  philox_blocks_scalar(engine, hi + i, lo + i, n - i, out + 2 * i);
}

}  // namespace riskan

#endif  // RISKAN_SIMD_NEON
