#include "util/alias_table.hpp"

#include <deque>

namespace riskan {

AliasTable::AliasTable(std::span<const double> weights) {
  RISKAN_REQUIRE(!weights.empty(), "alias table needs weights");
  const std::size_t n = weights.size();

  double total = 0.0;
  for (const double w : weights) {
    RISKAN_REQUIRE(w >= 0.0, "alias weights must be non-negative");
    total += w;
  }
  RISKAN_REQUIRE(total > 0.0, "alias weights must not all be zero");

  normalised_.resize(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalised_[i] = weights[i] / total;
    scaled[i] = normalised_[i] * static_cast<double>(n);
  }

  prob_.assign(n, 1.0);
  alias_.assign(n, 0);

  std::deque<std::size_t> small;
  std::deque<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.front();
    small.pop_front();
    const std::size_t l = large.front();
    large.pop_front();

    prob_[s] = scaled[s];
    alias_[s] = static_cast<std::uint32_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 within rounding.
  for (const std::size_t i : small) {
    prob_[i] = 1.0;
  }
  for (const std::size_t i : large) {
    prob_[i] = 1.0;
  }
}

double AliasTable::probability(std::size_t i) const {
  RISKAN_REQUIRE(i < normalised_.size(), "alias index out of range");
  return normalised_[i];
}

}  // namespace riskan
