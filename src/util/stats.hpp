// Online and batch statistics used by metrics, benchmarks, and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace riskan {

/// Welford online accumulator: numerically stable running mean/variance,
/// mergeable (parallel reductions combine partials with `merge`).
class OnlineStats {
 public:
  void add(double x) noexcept;

  /// Combines two accumulators (Chan et al. parallel variance update).
  void merge(const OnlineStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept;
  /// Sample (n-1) variance; 0 for fewer than 2 samples.
  double sample_variance() const noexcept;
  double stdev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact empirical quantile with linear interpolation (type-7, the
/// R/NumPy default). Sorts a copy; O(n log n).
double quantile(std::span<const double> values, double p);

/// Quantile over data the caller has already sorted ascending; O(1).
double quantile_sorted(std::span<const double> sorted, double p);

/// Mean of values strictly above the given threshold quantile — the building
/// block of TVaR. Returns the quantile itself when no value exceeds it.
double tail_mean_above(std::span<const double> sorted, double p);

/// Fixed-width histogram for diagnostics and distribution shape tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::uint64_t bin_count(std::size_t i) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// P² (Jain & Chlamtac) streaming quantile estimator: constant memory,
/// used where YLT-scale streams cannot be buffered (DFA terabyte claim).
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double x) noexcept;
  /// Current estimate; exact through the first 5 samples (the markers ARE
  /// the sorted sample until the 6th arrival starts moving them).
  double value() const noexcept;
  std::uint64_t count() const noexcept { return count_; }

 private:
  double p_;
  std::uint64_t count_ = 0;
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
};

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// (relative error < 1.2e-9 over (0,1)).
double normal_quantile(double p);

/// Student-t quantile at probability `p` with `dof` degrees of freedom.
/// Exact closed forms for dof 1 and 2; a Cornish–Fisher expansion of the
/// normal quantile above that (within ~1% of tabulated values at dof >= 3,
/// converging quickly with dof) — plenty for confidence-interval
/// construction, which is its one job here.
double students_t_quantile(double p, double dof);

/// Batch-means confidence intervals for a streaming estimator: feed one
/// value per batch (a trial block's sample metric) and read a Student-t
/// interval for the underlying mean. Batches of equal size over an i.i.d.
/// stream make the batch values i.i.d. themselves, so the t interval is
/// valid for nonlinear metrics (quantiles, tail means) where per-sample
/// CLT machinery is not — the classic MC simulation-output technique, and
/// the stopping oracle of core/adaptive.
class BatchMeans {
 public:
  void add(double batch_value) noexcept { stats_.add(batch_value); }

  std::uint64_t batches() const noexcept { return stats_.count(); }
  double mean() const noexcept { return stats_.mean(); }

  /// Two-sided CI half-width at `confidence` (e.g. 0.95); +infinity until
  /// 2 batches exist (no variance estimate yet).
  double half_width(double confidence) const;

 private:
  OnlineStats stats_;
};

}  // namespace riskan
