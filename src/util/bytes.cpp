#include "util/bytes.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/require.hpp"

namespace riskan {

std::span<const std::byte> ByteReader::take(std::size_t n) {
  RISKAN_REQUIRE(pos_ + n <= data_.size(), "byte reader ran past end of buffer");
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  RISKAN_REQUIRE(os.good(), "cannot open file for writing: " + path);
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size()));
  RISKAN_ENSURE(os.good(), "write failed: " + path);
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  RISKAN_REQUIRE(is.good(), "cannot open file for reading: " + path);
  const auto size = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  std::vector<std::byte> data(size);
  is.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size));
  RISKAN_ENSURE(is.good() || size == 0, "read failed: " + path);
  return data;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void remove_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace riskan
