#include "util/bytes.hpp"

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/require.hpp"

namespace riskan {

std::span<const std::byte> ByteReader::take(std::size_t n) {
  RISKAN_REQUIRE(pos_ + n <= data_.size(), "byte reader ran past end of buffer");
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void write_file(const std::string& path, std::span<const std::byte> data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  RISKAN_REQUIRE(os.good(), "cannot open file for writing: " + path);
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size()));
  RISKAN_ENSURE(os.good(), "write failed: " + path);
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  RISKAN_REQUIRE(is.good(), "cannot open file for reading: " + path);
  const auto size = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  std::vector<std::byte> data(size);
  is.read(reinterpret_cast<char*>(data.data()), static_cast<std::streamsize>(size));
  RISKAN_ENSURE(is.good() || size == 0, "read failed: " + path);
  return data;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

void remove_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace riskan
