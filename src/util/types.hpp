// Core identifier and value types shared across the riskan pipeline.
//
// The pipeline (see DESIGN.md) moves data between three stages:
//   catastrophe modelling  -> Event-Loss Tables (ELT)
//   aggregate analysis     -> Year-Loss Tables (YLT) from Year-Event-Loss
//                             Tables (YELT)
//   dynamic financial analysis -> enterprise views
// These aliases keep table schemas self-describing and make unit mistakes
// (trial id vs event id) harder to write.
#pragma once

#include <cstdint>
#include <limits>

namespace riskan {

/// Identifier of a stochastic catastrophe event in an event catalogue.
using EventId = std::uint32_t;

/// Identifier of a simulation trial (one alternative realisation of a
/// contractual year in aggregate analysis).
using TrialId = std::uint32_t;

/// Identifier of an exposure location (site) in an exposure database.
using LocationId = std::uint32_t;

/// Identifier of a reinsurance contract within a portfolio.
using ContractId = std::uint32_t;

/// Identifier of a layer within a contract.
using LayerId = std::uint32_t;

/// Monetary amount. Catastrophe-model losses are conventionally carried as
/// doubles (values span cents to tens of billions; relative error matters,
/// absolute cents do not).
using Money = double;

/// Sentinel for "no event" / "invalid id".
inline constexpr EventId kInvalidEvent = std::numeric_limits<EventId>::max();
inline constexpr TrialId kInvalidTrial = std::numeric_limits<TrialId>::max();
inline constexpr LocationId kInvalidLocation = std::numeric_limits<LocationId>::max();

/// Perils modelled by the synthetic catalogue generator (see src/catmod).
enum class Peril : std::uint8_t {
  Earthquake = 0,
  Hurricane = 1,
  Flood = 2,
  Tornado = 3,
  Wildfire = 4,
};

inline constexpr int kPerilCount = 5;

/// Human-readable peril name (stable, used in reports and the warehouse).
const char* to_string(Peril p) noexcept;

/// Geographic region used by the exposure generator and the warehouse
/// roll-up dimension.
enum class Region : std::uint8_t {
  NorthAmerica = 0,
  Europe = 1,
  Asia = 2,
  SouthAmerica = 3,
  Oceania = 4,
};

inline constexpr int kRegionCount = 5;

const char* to_string(Region r) noexcept;

/// Line of business for contracts (warehouse dimension).
enum class LineOfBusiness : std::uint8_t {
  Property = 0,
  Marine = 1,
  Energy = 2,
  Casualty = 3,
};

inline constexpr int kLobCount = 4;

const char* to_string(LineOfBusiness lob) noexcept;

}  // namespace riskan
