// Human-readable formatting for benchmark reports: big counts, bytes,
// durations, rates.
#pragma once

#include <cstdint>
#include <string>

namespace riskan {

/// 5.0e16 -> "5.00e16", 12345 -> "12,345" (thousands separators below 1e15).
std::string format_count(double count);

/// 1536 -> "1.50 KiB", 2.5e12 -> "2.27 TiB".
std::string format_bytes(double bytes);

/// 0.0123 -> "12.3 ms"; 90 -> "1.5 min".
std::string format_seconds(double seconds);

/// 1.23e9 -> "1.23 G/s".
std::string format_rate(double per_second);

/// Fixed-precision helper ("%.*f" without iostream manipulator noise).
std::string format_fixed(double value, int digits);

}  // namespace riskan
