// Wall-clock timing for benchmarks and the elasticity model.
#pragma once

#include <chrono>

namespace riskan {

/// Monotonic stopwatch; `seconds()` reads the elapsed time without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace riskan
