// Probability distributions used across the pipeline.
//
// We implement our own samplers (rather than <random>'s) for two reasons:
//  1. Determinism across standard libraries — <random> distribution
//     algorithms are unspecified, and the engines must produce bit-identical
//     results across backends (see src/util/prng.hpp).
//  2. The catastrophe-modelling and DFA substrates need distributions
//     <random> lacks: beta (secondary uncertainty), truncated Pareto
//     (severities), and a numerically careful normal inverse CDF for
//     Gaussian-copula sampling in DFA.
//
// Every sampler is a free function template over a 64-bit
// uniform_random_bit_generator, plus analytic pdf/cdf helpers where the
// tests need oracles.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan {

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

/// Uniform double in [lo, hi).
template <typename Rng>
double sample_uniform(Rng& rng, double lo, double hi) {
  return lo + (hi - lo) * to_unit_double(rng());
}

/// 128-bit helper for multiply-shift range reduction (GNU extension, so
/// marked to stay -Wpedantic-clean).
__extension__ using Uint128 = unsigned __int128;

/// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
/// approximation (bias < 2^-32 for n << 2^32, fine for simulation use).
template <typename Rng>
std::uint64_t sample_index(Rng& rng, std::uint64_t n) {
  RISKAN_REQUIRE(n > 0, "sample_index needs non-empty range");
  const Uint128 wide = static_cast<Uint128>(rng()) * n;
  return static_cast<std::uint64_t>(wide >> 64);
}

// ---------------------------------------------------------------------------
// Exponential / Poisson
// ---------------------------------------------------------------------------

/// Exponential with rate lambda (mean 1/lambda).
template <typename Rng>
double sample_exponential(Rng& rng, double lambda) {
  RISKAN_REQUIRE(lambda > 0.0, "exponential rate must be positive");
  return -std::log(to_unit_double_open(rng())) / lambda;
}

/// Poisson with mean `mean`. Knuth multiplication for small means; for
/// mean >= 16 uses the normal approximation with continuity correction,
/// clamped at zero (adequate for event-count simulation; relative error in
/// tail probabilities is irrelevant at the aggregate level we test).
template <typename Rng>
std::uint32_t sample_poisson(Rng& rng, double mean) {
  RISKAN_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) {
    return 0;
  }
  if (mean < 16.0) {
    const double limit = std::exp(-mean);
    double product = to_unit_double_open(rng());
    std::uint32_t count = 0;
    while (product > limit) {
      product *= to_unit_double_open(rng());
      ++count;
    }
    return count;
  }
  // Normal approximation N(mean, mean).
  const double u1 = to_unit_double_open(rng());
  const double u2 = to_unit_double_open(rng());
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * z + 0.5;
  return value <= 0.0 ? 0u : static_cast<std::uint32_t>(value);
}

// ---------------------------------------------------------------------------
// Normal / lognormal
// ---------------------------------------------------------------------------

/// Box–Muller kernel on two open uniforms. Factored out of
/// sample_standard_normal so the lane-parallel secondary fast path
/// (core/secondary.cpp) evaluates the exact same expression on words it
/// drew in batch — any transcendental stays this scalar libm call per
/// lane, which is what keeps the committed values bit-identical to the
/// scalar sampler.
inline double normal_from_uniforms(double u1, double u2) noexcept {
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Standard normal via Box–Muller (both branches consumed deterministically:
/// exactly two uniforms per variate, which keeps counter-based replay
/// aligned).
template <typename Rng>
double sample_standard_normal(Rng& rng) {
  const double u1 = to_unit_double_open(rng());
  const double u2 = to_unit_double_open(rng());
  return normal_from_uniforms(u1, u2);
}

template <typename Rng>
double sample_normal(Rng& rng, double mu, double sigma) {
  RISKAN_REQUIRE(sigma >= 0.0, "normal sigma must be non-negative");
  return mu + sigma * sample_standard_normal(rng);
}

/// Lognormal parameterised by log-space mu/sigma.
template <typename Rng>
double sample_lognormal(Rng& rng, double mu, double sigma) {
  return std::exp(sample_normal(rng, mu, sigma));
}

/// Acklam's rational approximation to the standard normal inverse CDF
/// (|relative error| < 1.15e-9 over (0,1)). Used by the Gaussian copula and
/// by quantile-matching tests.
double normal_inv_cdf(double p);

/// Standard normal CDF via erfc.
inline double normal_cdf(double x) {
  return 0.5 * std::erfc(-x * 0.7071067811865476);
}

// ---------------------------------------------------------------------------
// Gamma / Beta
// ---------------------------------------------------------------------------

/// Marsaglia–Tsang acceptance for one attempt: `x` is the normal draw, `v3`
/// the cubed shifted value (already checked > 0), `u` the open uniform. The
/// squeeze and log tests consume no randomness, so the lane-parallel fast
/// path (core/secondary.cpp) can run both and still bail to a scalar
/// recompute on rejection without perturbing the stream.
inline bool gamma_accept(double x, double v3, double u, double d) noexcept {
  const double x2 = x * x;
  if (u < 1.0 - 0.0331 * x2 * x2) {
    return true;
  }
  return std::log(u) < 0.5 * x2 + d * (1.0 - v3 + std::log(v3));
}

/// Gamma(shape, scale=1) via Marsaglia–Tsang squeeze; boosts shape < 1.
/// Draw order per attempt: two uniforms for the normal, then — only when
/// the shifted value stays positive — one uniform for the acceptance test.
template <typename Rng>
double sample_gamma(Rng& rng, double shape) {
  RISKAN_REQUIRE(shape > 0.0, "gamma shape must be positive");
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    const double u = to_unit_double_open(rng());
    return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    const double x = sample_standard_normal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) {
      continue;
    }
    v = v * v * v;
    const double u = to_unit_double_open(rng());
    if (gamma_accept(x, v, u, d)) {
      return d * v;
    }
  }
}

/// Beta(alpha, beta) via two gammas. This is the secondary-uncertainty
/// distribution of catastrophe modelling: per-event loss is
/// Beta-distributed between 0 and the event's exposed limit.
template <typename Rng>
double sample_beta(Rng& rng, double alpha, double beta) {
  RISKAN_REQUIRE(alpha > 0.0 && beta > 0.0, "beta parameters must be positive");
  const double x = sample_gamma(rng, alpha);
  const double y = sample_gamma(rng, beta);
  return x / (x + y);
}

/// Method-of-moments beta parameters for a mean/stdev pair on [0, 1].
/// Returns alpha, beta via out-params; clamps to a valid parameterisation
/// when sigma is infeasibly large for the mean.
void beta_from_moments(double mean, double stdev, double& alpha, double& beta);

// ---------------------------------------------------------------------------
// Pareto (severity tails)
// ---------------------------------------------------------------------------

/// Truncated Pareto on [lo, hi] with tail index alpha. Classic heavy-tailed
/// severity model for catastrophe ground-up losses.
template <typename Rng>
double sample_truncated_pareto(Rng& rng, double alpha, double lo, double hi) {
  RISKAN_REQUIRE(alpha > 0.0, "pareto alpha must be positive");
  RISKAN_REQUIRE(0.0 < lo && lo < hi, "pareto needs 0 < lo < hi");
  const double u = to_unit_double(rng());
  const double lo_a = std::pow(lo, -alpha);
  const double hi_a = std::pow(hi, -alpha);
  return std::pow(lo_a - u * (lo_a - hi_a), -1.0 / alpha);
}

}  // namespace riskan
