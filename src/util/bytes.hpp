// Little-endian binary serialization primitives.
//
// The chunked table files (src/data/chunked_file.hpp) and the simulated
// distributed file space (src/mapreduce/dfs.hpp) both write through these.
// The format is explicitly little-endian so files round-trip across hosts.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace riskan {

/// Appends fixed-width little-endian values to an in-memory buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }
  void u32(std::uint32_t v) { append(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append(&v, sizeof(v)); }
  void f64(double v) { append(&v, sizeof(v)); }

  void bytes(std::span<const std::byte> data) { append(data.data(), data.size()); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  const std::vector<std::byte>& buffer() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }
  void clear() noexcept { buf_.clear(); }

 private:
  void append(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(src);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::byte> buf_;
};

/// Reads fixed-width little-endian values from a byte span. Throws
/// ContractViolation past the end (corrupt files fail loudly).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }

  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(sizeof(v)).data(), sizeof(v));
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, take(sizeof(v)).data(), sizeof(v));
    return v;
  }

  double f64() {
    double v;
    std::memcpy(&v, take(sizeof(v)).data(), sizeof(v));
    return v;
  }

  std::string str() {
    const auto n = u32();
    const auto span = take(n);
    return std::string(reinterpret_cast<const char*>(span.data()), span.size());
  }

  std::span<const std::byte> raw(std::size_t n) { return take(n); }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::byte> take(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected, table-driven) of `data` —
/// the per-chunk integrity check of the chunked container files.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

/// Whole-file helpers.
void write_file(const std::string& path, std::span<const std::byte> data);
std::vector<std::byte> read_file(const std::string& path);
bool file_exists(const std::string& path);
void remove_file(const std::string& path);

}  // namespace riskan
