// AVX2 stamp of the batched Philox block kernel: 8 logical (hi, lo)
// counters per pass, the 4x32 state held as four __m256i of u32 lanes.
// Every round op — 32-bit mul-hi/lo, xor, round-key add — is a lane-exact
// integer instruction, so the outputs match Philox4x32::block bit for bit
// (tests/test_util_prng.cpp asserts it against the scalar engine).
//
// Compiled with -mavx2 (set per-source by RISKAN_ENABLE_SIMD, like
// core/batch_simd_avx2.cpp); the only referent is the runtime dispatch in
// util/prng.cpp, which probes cpuid before handing this kernel out.
#ifdef RISKAN_SIMD_AVX2

#include <immintrin.h>

#include "util/prng.hpp"

namespace riskan {

namespace {

// The Salmon et al. multipliers / Weyl constants (same values as the
// scalar engine in prng.cpp; the equality tests pin them together).
constexpr std::uint32_t kM0 = 0xD2511F53u;
constexpr std::uint32_t kM1 = 0xCD9E8D57u;
constexpr std::uint32_t kW0 = 0x9E3779B9u;
constexpr std::uint32_t kW1 = 0xBB67AE85u;

/// High 32 bits of u32 x u32 per lane. `m64` holds the multiplier in the
/// low half of each 64-bit lane: vpmuludq covers the even u32 lanes, the
/// odd lanes shift down first, and their products' high words already sit
/// at the odd u32 positions, so one blend reassembles the vector.
inline __m256i mulhi32x8(__m256i c, __m256i m64) noexcept {
  const __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(c, m64), 32);
  const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(c, 32), m64);
  return _mm256_blend_epi32(even, odd, 0xAA);
}

}  // namespace

void philox_blocks_avx2(const Philox4x32& engine, const std::uint64_t* hi,
                        const std::uint64_t* lo, std::size_t n,
                        std::uint64_t* out) noexcept {
  const Philox4x32::Key key = engine.key();
  const __m256i m0_64 = _mm256_set1_epi64x(static_cast<long long>(kM0));
  const __m256i m1_64 = _mm256_set1_epi64x(static_cast<long long>(kM1));
  const __m256i m0_32 = _mm256_set1_epi32(static_cast<int>(kM0));
  const __m256i m1_32 = _mm256_set1_epi32(static_cast<int>(kM1));
  const __m256i w0 = _mm256_set1_epi32(static_cast<int>(kW0));
  const __m256i w1 = _mm256_set1_epi32(static_cast<int>(kW1));

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lo_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i lo_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i + 4));
    const __m256i hi_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    const __m256i hi_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i + 4));

    // Split the eight u64 counters into u32 columns. The ps-shuffle pack
    // permutes the lane order to [0,1,4,5 | 2,3,6,7]; the unpack-interleave
    // at the bottom inverts exactly that permutation, so the stores land in
    // the caller's original counter order.
    const __m256 lo_a_ps = _mm256_castsi256_ps(lo_a);
    const __m256 lo_b_ps = _mm256_castsi256_ps(lo_b);
    const __m256 hi_a_ps = _mm256_castsi256_ps(hi_a);
    const __m256 hi_b_ps = _mm256_castsi256_ps(hi_b);
    __m256i c0 = _mm256_castps_si256(
        _mm256_shuffle_ps(lo_a_ps, lo_b_ps, _MM_SHUFFLE(2, 0, 2, 0)));
    __m256i c1 = _mm256_castps_si256(
        _mm256_shuffle_ps(lo_a_ps, lo_b_ps, _MM_SHUFFLE(3, 1, 3, 1)));
    __m256i c2 = _mm256_castps_si256(
        _mm256_shuffle_ps(hi_a_ps, hi_b_ps, _MM_SHUFFLE(2, 0, 2, 0)));
    __m256i c3 = _mm256_castps_si256(
        _mm256_shuffle_ps(hi_a_ps, hi_b_ps, _MM_SHUFFLE(3, 1, 3, 1)));

    __m256i k0 = _mm256_set1_epi32(static_cast<int>(key[0]));
    __m256i k1 = _mm256_set1_epi32(static_cast<int>(key[1]));
    for (int round = 0; round < 10; ++round) {
      const __m256i h0 = mulhi32x8(c0, m0_64);
      const __m256i l0 = _mm256_mullo_epi32(c0, m0_32);
      const __m256i h1 = mulhi32x8(c2, m1_64);
      const __m256i l1 = _mm256_mullo_epi32(c2, m1_32);
      const __m256i n0 = _mm256_xor_si256(_mm256_xor_si256(h1, c1), k0);
      const __m256i n2 = _mm256_xor_si256(_mm256_xor_si256(h0, c3), k1);
      c0 = n0;
      c1 = l1;
      c2 = n2;
      c3 = l0;
      k0 = _mm256_add_epi32(k0, w0);
      k1 = _mm256_add_epi32(k1, w1);
    }

    // out[2i] = c0|c1<<32, out[2i+1] = c2|c3<<32, back in original order:
    // the u32 interleave yields the per-counter u64 words A (out0) and B
    // (out1) with the pack permutation undone, then the u64 interleave and
    // cross-lane permute store them as [A0,B0,A1,B1,...].
    const __m256i r0 = _mm256_unpacklo_epi32(c0, c1);  // A0..A3
    const __m256i r1 = _mm256_unpackhi_epi32(c0, c1);  // A4..A7
    const __m256i r2 = _mm256_unpacklo_epi32(c2, c3);  // B0..B3
    const __m256i r3 = _mm256_unpackhi_epi32(c2, c3);  // B4..B7
    const __m256i p0 = _mm256_unpacklo_epi64(r0, r2);  // A0 B0 | A2 B2
    const __m256i p1 = _mm256_unpackhi_epi64(r0, r2);  // A1 B1 | A3 B3
    const __m256i p2 = _mm256_unpacklo_epi64(r1, r3);  // A4 B4 | A6 B6
    const __m256i p3 = _mm256_unpackhi_epi64(r1, r3);  // A5 B5 | A7 B7
    std::uint64_t* o = out + 2 * i;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o),
                        _mm256_permute2x128_si256(p0, p1, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 4),
                        _mm256_permute2x128_si256(p0, p1, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 8),
                        _mm256_permute2x128_si256(p2, p3, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 12),
                        _mm256_permute2x128_si256(p2, p3, 0x31));
  }
  philox_blocks_scalar(engine, hi + i, lo + i, n - i, out + 2 * i);
}

}  // namespace riskan

#endif  // RISKAN_SIMD_AVX2
