// Contract-checking macros in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// RISKAN_REQUIRE  - precondition; always checked (cheap, at API boundaries).
// RISKAN_ENSURE   - postcondition; always checked.
// RISKAN_ASSERT   - internal invariant; compiled out in NDEBUG hot paths.
//
// Violations throw riskan::ContractViolation so tests can assert on them and
// long-running simulations fail loudly rather than corrupt results.
#pragma once

#include <stdexcept>
#include <string>

namespace riskan {

/// Thrown when a RISKAN_REQUIRE / RISKAN_ENSURE contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace riskan

#define RISKAN_REQUIRE(cond, msg)                                                       \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      ::riskan::detail::contract_fail("precondition", #cond, __FILE__, __LINE__, msg); \
    }                                                                                   \
  } while (false)

#define RISKAN_ENSURE(cond, msg)                                                         \
  do {                                                                                   \
    if (!(cond)) {                                                                       \
      ::riskan::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__, msg); \
    }                                                                                    \
  } while (false)

#ifdef NDEBUG
#define RISKAN_ASSERT(cond, msg) ((void)0)
#else
#define RISKAN_ASSERT(cond, msg)                                                      \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      ::riskan::detail::contract_fail("invariant", #cond, __FILE__, __LINE__, msg);  \
    }                                                                                 \
  } while (false)
#endif
