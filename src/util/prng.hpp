// Pseudo-random number generators.
//
// Three generators, chosen for the roles they play in the pipeline:
//
//  * SplitMix64      — seeding / hashing utility (one 64-bit state word).
//  * Xoshiro256ss    — fast general-purpose sequential stream; used by the
//                      synthetic catalogue / exposure / YELT generators.
//  * Philox4x32      — counter-based generator. Aggregate analysis derives an
//                      independent stream per (trial, event) pair from a key
//                      and counter, so results are bit-identical no matter
//                      how trials are scheduled across threads or simulated
//                      device blocks. This is what makes the "consistent
//                      lens" requirement of the paper testable: the
//                      sequential, thread-pool and device-sim engines must
//                      agree exactly.
//
// All generators satisfy std::uniform_random_bit_generator, so they plug
// into <random> distributions as well as ours (src/util/distributions.hpp).
#pragma once

#include <array>
#include <cstdint>

namespace riskan {

/// SplitMix64: tiny, fast, passes BigCrush with 64-bit state. Primary use is
/// turning arbitrary user seeds into well-mixed state for other generators.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mixes a 64-bit value (stateless convenience over SplitMix64).
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  return SplitMix64{x}();
}

/// xoshiro256**: the general-purpose workhorse (Blackman & Vigna).
/// 256-bit state, period 2^256 - 1, excellent statistical quality.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single seed via SplitMix64, per the
  /// authors' recommendation.
  explicit Xoshiro256ss(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept;

  /// Advances the state by 2^128 steps; gives up to 2^128 non-overlapping
  /// subsequences for coarse-grained parallel generation.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Philox4x32-10 (Salmon et al., SC'11 "Parallel Random Numbers: As Easy as
/// 1, 2, 3"). A counter-based generator: `operator()(counter)` is a pure
/// function of (key, counter), producing four 32-bit words. Crush-resistant
/// with the standard 10 rounds.
class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  explicit Philox4x32(std::uint64_t key) noexcept
      : key_{static_cast<std::uint32_t>(key), static_cast<std::uint32_t>(key >> 32)} {}

  /// Generates the 128-bit block for the given counter.
  Counter operator()(Counter ctr) const noexcept;

  /// Convenience: derive two 64-bit outputs from a 2x64-bit logical counter.
  /// Used as (trial, event) -> random block in aggregate analysis.
  std::array<std::uint64_t, 2> block(std::uint64_t hi, std::uint64_t lo) const noexcept;

  /// The round key (the batched block kernels broadcast it per lane).
  const Key& key() const noexcept { return key_; }

 private:
  Key key_;
};

/// A std::uniform_random_bit_generator facade over Philox for one logical
/// stream: fixes (hi, lo) as stream id and walks a third index. Lets
/// counter-based streams feed ordinary distribution code.
///
/// The engine is held by pointer (it outlives the stream at every
/// construction site: streams are per-occurrence temporaries over a
/// per-analysis engine), and the word counter folds the old spare flag
/// into its low bit, so the per-draw fast path is one branch on parity
/// instead of a flag test plus a 16-byte engine copy per stream. Word w
/// still comes from block w/2 under counter (hi ^ (w >> 2), lo + (w >> 1))
/// — the emitted bit-stream is unchanged (tests replay it).
class PhiloxStream {
 public:
  using result_type = std::uint64_t;

  PhiloxStream(const Philox4x32& engine, std::uint64_t hi, std::uint64_t lo) noexcept
      : engine_(&engine), hi_(hi), lo_(lo) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t w = word_++;
    if ((w & 1) == 0) {
      block_ = engine_->block(hi_ ^ (w >> 2), lo_ + (w >> 1));
      return block_[0];
    }
    return block_[1];
  }

 private:
  const Philox4x32* engine_;
  std::uint64_t hi_;
  std::uint64_t lo_;
  std::uint64_t word_ = 0;
  std::array<std::uint64_t, 2> block_{};
};

/// Scalar body of the batched block evaluation: out[2i], out[2i+1] =
/// engine.block(hi[i], lo[i]). The lane-parallel kernels fall back to it
/// for sub-width tails, and scalar builds dispatch it directly.
void philox_blocks_scalar(const Philox4x32& engine, const std::uint64_t* hi,
                          const std::uint64_t* lo, std::size_t n,
                          std::uint64_t* out) noexcept;

// Per-ISA bodies; each is defined only when its RISKAN_SIMD_* macro is
// compiled in (src/util/prng_lanes_*.cpp), mirroring the trial-kernel
// stamps in src/core/batch_simd_*.cpp.
void philox_blocks_avx2(const Philox4x32& engine, const std::uint64_t* hi,
                        const std::uint64_t* lo, std::size_t n,
                        std::uint64_t* out) noexcept;
void philox_blocks_avx512(const Philox4x32& engine, const std::uint64_t* hi,
                          const std::uint64_t* lo, std::size_t n,
                          std::uint64_t* out) noexcept;
void philox_blocks_neon(const Philox4x32& engine, const std::uint64_t* hi,
                        const std::uint64_t* lo, std::size_t n,
                        std::uint64_t* out) noexcept;

/// Batched Philox block evaluation over W logical (hi, lo) counters at
/// once. Philox is a pure function of (key, counter), and its round is
/// 32-bit mul-hi/lo, xor and add — all lane-exact integer ops — so the
/// lane-parallel kernels are bit-identical to Philox4x32::block by
/// construction (tests assert it word for word). Construction resolves the
/// widest compiled ISA the host supports, honouring the RISKAN_SIMD
/// environment override (off|0 forces the scalar body; avx512/avx2/neon
/// pin an ISA, falling back to scalar when it cannot run here).
class PhiloxLanes {
 public:
  explicit PhiloxLanes(const Philox4x32& engine) noexcept;

  /// out[2i], out[2i+1] = engine.block(hi[i], lo[i]) for i in [0, n).
  void blocks(const std::uint64_t* hi, const std::uint64_t* lo, std::size_t n,
              std::uint64_t* out) const noexcept {
    fn_(*engine_, hi, lo, n, out);
  }

  /// Counters evaluated per hardware pass (1 = scalar body).
  unsigned width() const noexcept { return width_; }

 private:
  using BlocksFn = void (*)(const Philox4x32&, const std::uint64_t*,
                            const std::uint64_t*, std::size_t, std::uint64_t*);
  const Philox4x32* engine_;
  BlocksFn fn_;
  unsigned width_;
};

/// Converts a 64-bit random word to a double uniform in [0, 1).
inline double to_unit_double(std::uint64_t word) noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

/// Converts a 64-bit random word to a double uniform in (0, 1]; useful when
/// feeding logarithms.
inline double to_unit_double_open(std::uint64_t word) noexcept {
  return (static_cast<double>(word >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace riskan
