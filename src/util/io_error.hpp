// Typed data-plane error hierarchy.
//
// ContractViolation (util/require.hpp) means a *programmer* broke an API
// contract — a bug in the calling code. The errors here mean the *data*
// went bad at rest or on the wire: a flipped bit in a chunk, a truncated
// footer, a torn frame from a crashed worker. The distinction matters to
// the failure-recovery layer (src/dist/): an IoError on a block is
// retryable — re-read the replica, re-run the task on another worker —
// while a ContractViolation must abort the job, because retrying a bug
// yields the same bug.
//
//   IoError                — base: any integrity/availability failure of
//                            stored or transmitted bytes.
//   ├── CorruptChunkError  — bytes present but wrong: CRC-32 mismatch,
//   │                        bad magic, a directory that contradicts the
//   │                        body, an encoded block that fails to decode.
//   ├── TruncatedFileError — bytes missing: short file, footer past EOF,
//   │                        EOF inside a chunk or frame.
//   └── CorruptFrameError  — a wire frame (src/dist/frame.hpp) failed its
//                            magic/size/CRC checks: the stream past it is
//                            unusable and the peer must be replaced.
#pragma once

#include <stdexcept>
#include <string>

namespace riskan {

/// Base of every data-integrity/availability error. Deliberately a
/// runtime_error (the world misbehaved), unlike ContractViolation's
/// logic_error (the program misbehaved).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Stored or received bytes are present but fail an integrity check.
class CorruptChunkError : public IoError {
 public:
  explicit CorruptChunkError(const std::string& what) : IoError(what) {}
};

/// Expected bytes are missing: truncated file, EOF mid-structure.
class TruncatedFileError : public IoError {
 public:
  explicit TruncatedFileError(const std::string& what) : IoError(what) {}
};

/// A dist-layer wire frame failed its header/CRC validation; the stream it
/// arrived on cannot be resynchronised.
class CorruptFrameError : public IoError {
 public:
  explicit CorruptFrameError(const std::string& what) : IoError(what) {}
};

}  // namespace riskan
