#include "util/prng.hpp"

#include <cstdlib>
#include <string_view>

namespace riskan {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm();
  }
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;

  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);

  return result;
}

void Xoshiro256ss::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                            0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

namespace {

// Philox multipliers and Weyl constants from Salmon et al. (SC'11).
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;

inline std::uint32_t mulhi32(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(a) * b) >> 32);
}

inline std::uint32_t mullo32(std::uint32_t a, std::uint32_t b) noexcept {
  return a * b;
}

}  // namespace

Philox4x32::Counter Philox4x32::operator()(Counter ctr) const noexcept {
  Key key = key_;
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t hi0 = mulhi32(kPhiloxM0, ctr[0]);
    const std::uint32_t lo0 = mullo32(kPhiloxM0, ctr[0]);
    const std::uint32_t hi1 = mulhi32(kPhiloxM1, ctr[2]);
    const std::uint32_t lo1 = mullo32(kPhiloxM1, ctr[2]);
    ctr = Counter{hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
    key[0] += kPhiloxW0;
    key[1] += kPhiloxW1;
  }
  return ctr;
}

std::array<std::uint64_t, 2> Philox4x32::block(std::uint64_t hi, std::uint64_t lo) const noexcept {
  const Counter out = (*this)(Counter{
      static_cast<std::uint32_t>(lo),
      static_cast<std::uint32_t>(lo >> 32),
      static_cast<std::uint32_t>(hi),
      static_cast<std::uint32_t>(hi >> 32),
  });
  return {static_cast<std::uint64_t>(out[0]) | (static_cast<std::uint64_t>(out[1]) << 32),
          static_cast<std::uint64_t>(out[2]) | (static_cast<std::uint64_t>(out[3]) << 32)};
}

void philox_blocks_scalar(const Philox4x32& engine, const std::uint64_t* hi,
                          const std::uint64_t* lo, std::size_t n,
                          std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const auto blk = engine.block(hi[i], lo[i]);
    out[2 * i] = blk[0];
    out[2 * i + 1] = blk[1];
  }
}

namespace {

struct BlocksDispatch {
  void (*fn)(const Philox4x32&, const std::uint64_t*, const std::uint64_t*, std::size_t,
             std::uint64_t*);
  unsigned width;
};

/// Mirrors core/exec's RISKAN_SIMD contract at the util layer (this TU
/// cannot depend on core): off|0 forces the scalar body; avx512/avx2/neon
/// pin an ISA when compiled in and runnable, otherwise scalar. The
/// environment is re-read per resolution so tests can flip the override
/// between runs. The AVX-512 stamp is Philox-only (the trial kernel has no
/// 512-bit body yet), so "avx512" here coexists with the trial kernel
/// dispatching AVX2 — both are bit-identical to scalar, so mixing widths
/// never mixes results.
BlocksDispatch resolve_blocks() noexcept {
  const char* env = std::getenv("RISKAN_SIMD");
  const std::string_view want = env != nullptr ? env : "";
  if (want == "off" || want == "0") {
    return {philox_blocks_scalar, 1};
  }
#if defined(RISKAN_SIMD_AVX512)
  if (want.empty() || want == "avx512") {
    static const bool kHasAvx512 = __builtin_cpu_supports("avx512f");
    if (kHasAvx512) {
      return {philox_blocks_avx512, 16};
    }
  }
#endif
#if defined(RISKAN_SIMD_AVX2)
  if (want.empty() || want == "avx2") {
    static const bool kHasAvx2 = __builtin_cpu_supports("avx2");
    if (kHasAvx2) {
      return {philox_blocks_avx2, 8};
    }
  }
#endif
#if defined(RISKAN_SIMD_NEON)
  if (want.empty() || want == "neon") {
    return {philox_blocks_neon, 4};
  }
#endif
  return {philox_blocks_scalar, 1};
}

}  // namespace

PhiloxLanes::PhiloxLanes(const Philox4x32& engine) noexcept : engine_(&engine) {
  const BlocksDispatch d = resolve_blocks();
  fn_ = d.fn;
  width_ = d.width;
}

}  // namespace riskan
