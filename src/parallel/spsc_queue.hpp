// Bounded single-producer / single-consumer ring buffer.
//
// Used by the MapReduce shuffle (one mapper feeding one partition writer)
// and available to pipelines that stream table chunks between stages. The
// implementation is the classic Lamport ring with C++20 atomics:
// wait-free for both sides, one cache line per index to avoid false sharing.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

#include "util/require.hpp"

namespace riskan {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (mask indexing).
  explicit SpscQueue(std::size_t capacity) {
    RISKAN_REQUIRE(capacity >= 2, "queue capacity must be at least 2");
    std::size_t pow2 = 2;
    while (pow2 < capacity) {
      pow2 <<= 1;
    }
    buffer_.resize(pow2);
    mask_ = pow2 - 1;
  }

  /// Attempts to enqueue; returns false when full.
  bool try_push(T value) {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      return false;
    }
    buffer_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Attempts to dequeue; returns nullopt when empty.
  std::optional<T> try_pop() {
    const auto tail = tail_.load(std::memory_order_relaxed);
    const auto head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return std::nullopt;
    }
    T value = std::move(buffer_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  // 64 bytes covers current x86/ARM cache lines; the dynamic
  // hardware_destructive_interference_size constant is deliberately not
  // used (gcc warns that it is ABI-unstable across -mtune values).
  static constexpr std::size_t kCacheLine = 64;

  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace riskan
