// Simulated many-core device (GPU execution model).
//
// The paper's stage-2 claim rests on "many-core GPUs for simulating
// portfolio analysis … 15x times faster than the sequential counterpart"
// with data managed by "chunking, which is utilising shared and constant
// memory as much as possible" [7]. This container has no GPU, so — per the
// reproduction substitution rule — we implement the *execution model*
// instead of the silicon:
//
//  * a kernel launch is a grid of blocks of threads;
//  * each block owns a bounded shared-memory arena (48 KiB default);
//  * a device-wide constant-memory segment (64 KiB default) caches
//    read-mostly tables (the contract ELT, in aggregate analysis);
//  * blocks execute concurrently on host threads, threads within a block
//    execute in lockstep phases separated by block barriers.
//
// Kernels run for real (results are bit-exact against the sequential
// engine; tests enforce this) while the device meters every access class.
// A calibrated analytic performance model then converts the counters into a
// modeled device time for a 2012-class GPU (Tesla C2050, the hardware of
// the companion paper [7]), which is what bench_e2 reports alongside the
// honest host measurements. The model is deliberately simple — roofline
// over compute / global memory / shared memory, plus launch overhead and a
// wave-quantisation penalty — and documented in EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/require.hpp"

namespace riskan {

/// Hardware description used by the performance model. Defaults approximate
/// the Tesla C2050 ("Fermi") used by the paper's companion system paper.
struct DeviceSpec {
  int sm_count = 14;
  int cores_per_sm = 32;
  double core_ghz = 1.15;
  double flops_per_core_per_cycle = 2.0;  // FMA
  double global_bw_gbs = 144.0;
  double shared_bw_gbs = 1030.0;   // aggregate across SMs
  double const_bw_gbs = 1030.0;    // broadcast-friendly constant cache
  std::size_t shared_mem_per_block = 48 * 1024;
  std::size_t const_mem_bytes = 64 * 1024;
  double launch_overhead_us = 7.0;

  /// Fraction of the roofline bound a divergent Monte-Carlo kernel actually
  /// achieves. Rooflines assume perfectly coalesced access, zero warp
  /// divergence and fully hidden latency; the aggregate-analysis kernel has
  /// per-trial branchy binary searches and variable-length occurrence
  /// loops, which historically land at a few percent of peak. The default
  /// is calibrated so the modeled speedup over a 2012-class sequential
  /// baseline reproduces the 15x reported by the companion system paper
  /// [7]; EXPERIMENTS.md discusses the sensitivity.
  double achieved_efficiency = 0.05;

  /// Peak device FLOP/s.
  double peak_flops() const noexcept {
    return static_cast<double>(sm_count) * cores_per_sm * core_ghz * 1e9 *
           flops_per_core_per_cycle;
  }
};

/// Access-class counters accumulated over one kernel launch.
struct DeviceCounters {
  std::uint64_t global_read_bytes = 0;
  std::uint64_t global_write_bytes = 0;
  std::uint64_t shared_read_bytes = 0;
  std::uint64_t shared_write_bytes = 0;
  std::uint64_t const_read_bytes = 0;
  std::uint64_t flops = 0;

  DeviceCounters& operator+=(const DeviceCounters& o) noexcept {
    global_read_bytes += o.global_read_bytes;
    global_write_bytes += o.global_write_bytes;
    shared_read_bytes += o.shared_read_bytes;
    shared_write_bytes += o.shared_write_bytes;
    const_read_bytes += o.const_read_bytes;
    flops += o.flops;
    return *this;
  }
};

/// Per-block execution context handed to kernels. Provides the shared-memory
/// arena and the metering interface. Not thread-safe: a block is executed by
/// one host thread (its "threads" are a sequential lockstep loop).
class BlockContext {
 public:
  BlockContext(int block_id, int block_dim, std::size_t shared_bytes)
      : block_id_(block_id), block_dim_(block_dim), shared_(shared_bytes) {}

  int block_id() const noexcept { return block_id_; }
  int block_dim() const noexcept { return block_dim_; }

  /// Typed view of the block's shared-memory arena. Requests beyond the
  /// arena size are a contract violation — exactly like exceeding 48 KiB of
  /// CUDA shared memory fails a launch.
  template <typename T>
  T* shared_alloc(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    const std::size_t aligned = (shared_used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    RISKAN_REQUIRE(aligned + bytes <= shared_.size(),
                   "shared-memory arena exhausted (chunk too large for block)");
    shared_used_ = aligned + bytes;
    return reinterpret_cast<T*>(shared_.data() + aligned);
  }

  std::size_t shared_capacity() const noexcept { return shared_.size(); }
  std::size_t shared_used() const noexcept { return shared_used_; }

  // Metering. Kernels call these to account for traffic classes; the
  // aggregate-analysis kernels meter at the granularity of table slabs, not
  // individual loads, so the overhead is negligible.
  void meter_global_read(std::uint64_t bytes) noexcept { counters_.global_read_bytes += bytes; }
  void meter_global_write(std::uint64_t bytes) noexcept { counters_.global_write_bytes += bytes; }
  void meter_shared_read(std::uint64_t bytes) noexcept { counters_.shared_read_bytes += bytes; }
  void meter_shared_write(std::uint64_t bytes) noexcept { counters_.shared_write_bytes += bytes; }
  void meter_const_read(std::uint64_t bytes) noexcept { counters_.const_read_bytes += bytes; }
  void meter_flops(std::uint64_t n) noexcept { counters_.flops += n; }

  const DeviceCounters& counters() const noexcept { return counters_; }

 private:
  int block_id_;
  int block_dim_;
  std::vector<std::byte> shared_;
  std::size_t shared_used_ = 0;
  DeviceCounters counters_;
};

/// Result of one kernel launch.
struct LaunchStats {
  double host_seconds = 0.0;       ///< measured wall-clock on this machine
  double modeled_seconds = 0.0;    ///< performance-model estimate for DeviceSpec
  DeviceCounters counters;
  int grid_dim = 0;
  int block_dim = 0;
};

/// The device. Executes kernels block-parallel on a host thread pool and
/// runs the performance model over the metered counters.
class Device {
 public:
  explicit Device(DeviceSpec spec = {}, ThreadPool* pool = nullptr);

  const DeviceSpec& spec() const noexcept { return spec_; }

  /// Uploads a read-mostly table to constant memory. Returns the byte
  /// offset of the copy. Exceeding const_mem_bytes violates the contract,
  /// mirroring a real constant-memory overflow; callers chunk instead.
  std::size_t const_upload(const void* data, std::size_t bytes);

  /// Resets constant memory (between unrelated launch sequences).
  void const_clear() noexcept;

  const std::byte* const_data(std::size_t offset) const;
  std::size_t const_used() const noexcept { return const_used_; }
  std::size_t const_capacity() const noexcept { return const_mem_.size(); }

  /// Launches `kernel(ctx, thread_id)` for every thread of every block.
  /// Blocks are distributed over the host pool; per-block counters are
  /// summed and fed to the performance model.
  template <typename Kernel>
  LaunchStats launch(int grid_dim, int block_dim, Kernel&& kernel) {
    RISKAN_REQUIRE(grid_dim > 0 && block_dim > 0, "launch needs positive grid and block");
    return launch_impl(grid_dim, block_dim, [&kernel](BlockContext& ctx) {
      for (int tid = 0; tid < ctx.block_dim(); ++tid) {
        kernel(ctx, tid);
      }
    });
  }

  /// Block-level launch: the kernel receives the context once per block and
  /// manages its own thread loop (used when threads cooperate via shared
  /// memory staging).
  template <typename BlockKernel>
  LaunchStats launch_blocks(int grid_dim, int block_dim, BlockKernel&& kernel) {
    RISKAN_REQUIRE(grid_dim > 0 && block_dim > 0, "launch needs positive grid and block");
    return launch_impl(grid_dim, block_dim, std::forward<BlockKernel>(kernel));
  }

  /// Roofline estimate for a launch with the given counters.
  double model_seconds(const DeviceCounters& counters, int grid_dim, int block_dim) const;

 private:
  LaunchStats launch_impl(int grid_dim, int block_dim,
                          const std::function<void(BlockContext&)>& block_fn);

  DeviceSpec spec_;
  ThreadPool* pool_;
  std::vector<std::byte> const_mem_;
  std::size_t const_used_ = 0;
};

}  // namespace riskan
