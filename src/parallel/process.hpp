// POSIX process primitives for the multi-process distribution layer
// (src/dist/): fork-based worker spawning, pipes, and deadline-guarded
// whole-buffer I/O.
//
// The dist runtime forks its workers instead of exec'ing a separate binary:
// a forked child inherits the coordinator's address space, so the portfolio,
// contract ELTs and engine configuration are already resident in the worker
// — only trial blocks and results cross the pipe, CRC-framed
// (src/dist/frame.hpp). Children must call only fork-safe machinery before
// _exit: the worker loop computes on the pool-free Sequential backend and
// never touches the shared ThreadPool or process-wide caches.
//
// All I/O helpers are EINTR-safe. Writes are poll-guarded with a deadline so
// a dead or wedged peer can never hang the coordinator on a full pipe; reads
// distinguish a clean close at a message boundary from a torn one mid-read,
// which is exactly the signal the failure-recovery layer keys on.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace riskan {

/// Owning file descriptor (close-on-destroy, move-only).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// A unidirectional pipe; read_end/write_end are both owning.
struct Pipe {
  UniqueFd read_end;
  UniqueFd write_end;
};

/// Creates a pipe; throws riskan::IoError when the fd table is exhausted.
Pipe make_pipe();

/// Switches `fd` to non-blocking mode (write_fully's deadline needs EAGAIN
/// from a full pipe, not an indefinite block).
void set_nonblocking(int fd);

/// Forks; the child runs `child_body` and then _exit(0) (never returns, and
/// never unwinds into the caller's stack). Returns the child pid, or
/// nullopt when fork() itself fails — the caller's cue to degrade to
/// in-process execution.
std::optional<pid_t> spawn_process(const std::function<void()>& child_body);

/// Writes all of `data`, polling for writability with `timeout_seconds`
/// per stall. Returns false on EPIPE / closed peer / timeout / error —
/// never raises SIGPIPE (callers hold a SigpipeIgnore).
bool write_fully(int fd, std::span<const std::byte> data, double timeout_seconds);

enum class ReadResult {
  Ok,        ///< all n bytes read
  CleanEof,  ///< peer closed before the first byte — a message boundary
  TornEof,   ///< peer closed mid-buffer — a torn write / crashed peer
  Failed,    ///< read error
};

/// Blocking EINTR-safe read of exactly `n` bytes.
ReadResult read_fully(int fd, std::byte* dst, std::size_t n);

/// Polls `fds` for readability; fills `ready` with the readable (or
/// hung-up) fds. Returns the number of ready fds (0 on timeout).
int poll_readable(std::span<const int> fds, double timeout_seconds,
                  std::vector<int>& ready);

/// True when `fd` is readable or hung up right now (poll with zero timeout).
bool fd_readable_now(int fd);

/// Sends SIGTERM (or SIGKILL when `hard`) to `pid`; best-effort.
void terminate_process(pid_t pid, bool hard);

/// Reaps `pid`. Blocking when `block`; returns true once the child is gone.
bool reap_process(pid_t pid, bool block);

/// Scoped SIGPIPE suppression: a write to a crashed worker must surface as
/// EPIPE (a recoverable event), not kill the coordinator. Restores the
/// previous disposition on destruction.
class SigpipeIgnore {
 public:
  SigpipeIgnore();
  ~SigpipeIgnore();
  SigpipeIgnore(const SigpipeIgnore&) = delete;
  SigpipeIgnore& operator=(const SigpipeIgnore&) = delete;

 private:
  void (*previous_)(int) = nullptr;
  bool installed_ = false;
};

}  // namespace riskan
