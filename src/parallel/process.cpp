#include "parallel/process.hpp"

#include <csignal>
#include <cstdlib>

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/io_error.hpp"

namespace riskan {

void UniqueFd::reset(int fd) noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

Pipe make_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw IoError("pipe() failed: errno " + std::to_string(errno));
  }
  Pipe p;
  p.read_end = UniqueFd(fds[0]);
  p.write_end = UniqueFd(fds[1]);
  return p;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw IoError("fcntl(O_NONBLOCK) failed: errno " + std::to_string(errno));
  }
}

std::optional<pid_t> spawn_process(const std::function<void()>& child_body) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return std::nullopt;
  }
  if (pid == 0) {
    // Child. Never unwind into the parent's stack and never run the
    // parent's atexit chain (shared stdio buffers would double-flush).
    child_body();
    ::_exit(0);
  }
  return pid;
}

bool write_fully(int fd, std::span<const std::byte> data, double timeout_seconds) {
  std::size_t written = 0;
  const int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Full pipe: park on poll until the peer drains it or the deadline
      // passes (a wedged peer must not hang the coordinator).
      struct pollfd pfd{fd, POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc <= 0) {
        return false;  // timeout or poll error
      }
      continue;
    }
    return false;  // EPIPE (peer gone) or a hard error
  }
  return true;
}

ReadResult read_fully(int fd, std::byte* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, dst + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      return got == 0 ? ReadResult::CleanEof : ReadResult::TornEof;
    }
    if (errno == EINTR) {
      continue;
    }
    return ReadResult::Failed;
  }
  return ReadResult::Ok;
}

int poll_readable(std::span<const int> fds, double timeout_seconds,
                  std::vector<int>& ready) {
  ready.clear();
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) {
    pfds.push_back({fd, POLLIN, 0});
  }
  const int timeout_ms = timeout_seconds < 0.0
                             ? -1
                             : static_cast<int>(timeout_seconds * 1000.0);
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) {
    return 0;
  }
  for (const auto& pfd : pfds) {
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      ready.push_back(pfd.fd);
    }
  }
  return static_cast<int>(ready.size());
}

bool fd_readable_now(int fd) {
  struct pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, 0);
  } while (rc < 0 && errno == EINTR);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void terminate_process(pid_t pid, bool hard) {
  if (pid > 0) {
    ::kill(pid, hard ? SIGKILL : SIGTERM);
  }
}

bool reap_process(pid_t pid, bool block) {
  if (pid <= 0) {
    return true;
  }
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &status, block ? 0 : WNOHANG);
  } while (rc < 0 && errno == EINTR);
  // ECHILD means someone already reaped it — gone either way.
  return rc == pid || (rc < 0 && errno == ECHILD);
}

SigpipeIgnore::SigpipeIgnore() {
  previous_ = std::signal(SIGPIPE, SIG_IGN);
  installed_ = previous_ != SIG_ERR;
}

SigpipeIgnore::~SigpipeIgnore() {
  if (installed_) {
    std::signal(SIGPIPE, previous_);
  }
}

}  // namespace riskan
