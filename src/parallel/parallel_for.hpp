// Chunked data-parallel loops over index ranges.
//
// parallel_for / parallel_reduce split [begin, end) into grains and run them
// on a ThreadPool. The grain is the "chunk" of the paper's chunking
// discussion: each task touches a contiguous slab of the columnar tables, so
// memory is streamed, not random-accessed. Grain size is an explicit
// parameter so bench_e4_chunking can sweep it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/require.hpp"

namespace riskan {

struct ParallelConfig {
  /// Pool to run on; nullptr means ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Indices per task; 0 lets the library pick (range / (8 * threads),
  /// clamped to at least 1).
  std::size_t grain = 0;
};

namespace detail {

inline std::size_t resolve_grain(std::size_t range, std::size_t threads, std::size_t grain) {
  if (grain > 0) {
    return grain;
  }
  const std::size_t tasks = threads * 8;
  return std::max<std::size_t>(1, range / std::max<std::size_t>(1, tasks));
}

/// Blocks until `remaining` reaches zero. A tiny latch (std::latch needs a
/// fixed count at construction, which the chunk loop computes anyway, but
/// this version also lets the caller run chunks inline when the pool is the
/// calling thread's own).
class TaskGate {
 public:
  explicit TaskGate(std::size_t count) : remaining_(count) {}

  void done() {
    std::lock_guard lock(mutex_);
    if (--remaining_ == 0) {
      cv_.notify_all();
    }
  }

  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

}  // namespace detail

/// Runs body(chunk_begin, chunk_end) for consecutive chunks of [begin, end).
/// The body must be safe to call concurrently on disjoint chunks.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  ParallelConfig cfg = {}) {
  RISKAN_REQUIRE(begin <= end, "parallel_for range is inverted");
  if (begin == end) {
    return;
  }
  const std::size_t range = end - begin;
  if (cfg.grain >= range) {
    // One chunk covers the range: run inline without touching (or lazily
    // constructing) any pool — sequential callers rely on this.
    body(begin, end);
    return;
  }
  ThreadPool& pool = cfg.pool ? *cfg.pool : ThreadPool::shared();
  const std::size_t grain = detail::resolve_grain(range, pool.thread_count(), cfg.grain);

  if (range <= grain || pool.thread_count() == 1) {
    body(begin, end);
    return;
  }

  const std::size_t chunks = (range + grain - 1) / grain;
  detail::TaskGate gate(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    pool.submit([&body, &gate, lo, hi] {
      body(lo, hi);
      gate.done();
    });
  }
  gate.wait();
}

/// Parallel reduction: `chunk_fn(lo, hi)` produces a partial of type T for
/// each chunk; partials are combined left-to-right with `combine` (chunk
/// order, so floating-point reductions are deterministic for a fixed grain).
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, const ChunkFn& chunk_fn,
                  const Combine& combine, ParallelConfig cfg = {}) {
  RISKAN_REQUIRE(begin <= end, "parallel_reduce range is inverted");
  if (begin == end) {
    return identity;
  }
  const std::size_t range = end - begin;
  if (cfg.grain >= range) {
    // Same pool-free inline path as parallel_for.
    return combine(std::move(identity), chunk_fn(begin, end));
  }
  ThreadPool& pool = cfg.pool ? *cfg.pool : ThreadPool::shared();
  const std::size_t grain = detail::resolve_grain(range, pool.thread_count(), cfg.grain);

  if (range <= grain || pool.thread_count() == 1) {
    return combine(std::move(identity), chunk_fn(begin, end));
  }

  const std::size_t chunks = (range + grain - 1) / grain;
  std::vector<T> partials(chunks, identity);
  detail::TaskGate gate(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = std::min(end, lo + grain);
    pool.submit([&chunk_fn, &partials, &gate, c, lo, hi] {
      partials[c] = chunk_fn(lo, hi);
      gate.done();
    });
  }
  gate.wait();

  T result = std::move(identity);
  for (auto& partial : partials) {
    result = combine(std::move(result), std::move(partial));
  }
  return result;
}

}  // namespace riskan
