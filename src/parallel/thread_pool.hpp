// Work-stealing-free, queue-based thread pool.
//
// This is the "accumulate large quantities of physical memory to support
// in-memory analytics" substrate of the paper: all worker threads share the
// process address space, and the aggregate-analysis engines schedule chunks
// of trials onto it (src/core/aggregate_engine.*). Kept deliberately simple
// and predictable — one mutex-protected queue — because the engines submit
// coarse chunks (thousands of trials each), so queue contention is
// negligible and correctness is easy to reason about.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace riskan {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; a throwing task terminates (the
  /// engines catch at task boundaries and funnel errors explicitly).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Process-wide default pool (lazily constructed, sized to hardware).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace riskan
