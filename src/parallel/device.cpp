#include "parallel/device.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"

namespace riskan {

Device::Device(DeviceSpec spec, ThreadPool* pool)
    : spec_(spec), pool_(pool), const_mem_(spec.const_mem_bytes) {}

std::size_t Device::const_upload(const void* data, std::size_t bytes) {
  // 16-byte align each upload, as cudaMemcpyToSymbol effectively does.
  const std::size_t offset = (const_used_ + 15) & ~std::size_t{15};
  RISKAN_REQUIRE(offset + bytes <= const_mem_.size(),
                 "constant memory exhausted; chunk the table (see bench_e4)");
  std::memcpy(const_mem_.data() + offset, data, bytes);
  const_used_ = offset + bytes;
  return offset;
}

void Device::const_clear() noexcept {
  const_used_ = 0;
}

const std::byte* Device::const_data(std::size_t offset) const {
  RISKAN_REQUIRE(offset <= const_used_, "constant-memory offset out of range");
  return const_mem_.data() + offset;
}

LaunchStats Device::launch_impl(int grid_dim, int block_dim,
                                const std::function<void(BlockContext&)>& block_fn) {
  LaunchStats stats;
  stats.grid_dim = grid_dim;
  stats.block_dim = block_dim;

  std::vector<DeviceCounters> per_block(static_cast<std::size_t>(grid_dim));

  obs::Timer watch("device.launch");
  const std::size_t shared_bytes = spec_.shared_mem_per_block;
  parallel_for(
      0, static_cast<std::size_t>(grid_dim),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          BlockContext ctx(static_cast<int>(b), block_dim, shared_bytes);
          block_fn(ctx);
          per_block[b] = ctx.counters();
        }
      },
      ParallelConfig{pool_, /*grain=*/1});
  stats.host_seconds = watch.stop();

  for (const auto& counters : per_block) {
    stats.counters += counters;
  }
  stats.modeled_seconds = model_seconds(stats.counters, grid_dim, block_dim);
  return stats;
}

double Device::model_seconds(const DeviceCounters& counters, int grid_dim,
                             int block_dim) const {
  // Roofline: the launch is bound by the slowest of the three pipes.
  const double compute_s = static_cast<double>(counters.flops) / spec_.peak_flops();
  const double global_s =
      static_cast<double>(counters.global_read_bytes + counters.global_write_bytes) /
      (spec_.global_bw_gbs * 1e9);
  const double shared_s =
      static_cast<double>(counters.shared_read_bytes + counters.shared_write_bytes) /
      (spec_.shared_bw_gbs * 1e9);
  const double const_s =
      static_cast<double>(counters.const_read_bytes) / (spec_.const_bw_gbs * 1e9);

  double busy = std::max({compute_s, global_s, shared_s, const_s});

  // Divergence / latency-hiding shortfall: see DeviceSpec::achieved_efficiency.
  if (spec_.achieved_efficiency > 0.0 && spec_.achieved_efficiency < 1.0) {
    busy /= spec_.achieved_efficiency;
  }

  // Wave quantisation: a grid that does not fill an integral number of
  // SM waves leaves SMs idle in the last wave.
  const double waves_exact =
      static_cast<double>(grid_dim) / static_cast<double>(spec_.sm_count);
  const double waves_rounded = std::ceil(waves_exact);
  if (waves_exact > 0.0) {
    busy *= waves_rounded / waves_exact;
  }

  // Under-filled blocks waste lanes within an SM.
  const int warp = 32;
  const double lane_fill =
      static_cast<double>(block_dim) /
      (static_cast<double>((block_dim + warp - 1) / warp) * warp);
  if (lane_fill > 0.0) {
    busy /= lane_fill;
  }

  return busy + spec_.launch_overhead_us * 1e-6;
}

}  // namespace riskan
