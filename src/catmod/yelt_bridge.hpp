// Stage-1 -> stage-2 bridge: simulate the pre-simulated YELT from a
// catalogue's annual rates.
//
// The YELT is "pre-simulated" precisely so every downstream analysis sees
// the same alternative years. This generator is that pre-simulation: each
// trial year draws its occurrence count from Poisson(total catalogue rate)
// and attributes occurrences to events proportional to their annual rates
// (O(1) per draw via an alias table). Deterministic in the seed.
#pragma once

#include "catmod/event_catalog.hpp"
#include "data/yelt.hpp"

namespace riskan::catmod {

struct CatalogYeltConfig {
  TrialId trials = 10'000;
  std::uint64_t seed = 2013;
  /// Optional rate multiplier (>1 = a more active view of climate).
  double rate_multiplier = 1.0;
};

data::YearEventLossTable simulate_yelt(const EventCatalog& catalog,
                                       const CatalogYeltConfig& config);

}  // namespace riskan::catmod
