// Analytic occurrence-exceedance curve — the closed-form cross-check of
// the whole stochastic chain.
//
// Given per-event annual rates (the catalogue) and per-event losses (the
// ELT), occurrence exceedance has a closed form under the Poisson
// assumption the YELT generator implements:
//
//   P(max occurrence loss in a year > x) = 1 - exp(-Lambda(x)),
//   Lambda(x) = sum of annual rates of events whose loss exceeds x.
//
// Comparing this curve with the OEP simulated through generator -> engine
// validates the entire pipeline end to end: if the simulated exceedance
// drifts from the analytic one, something between the rate model and the
// trial loop is wrong. tests/test_analytic_ep.cpp holds the chain to a few
// percent at moderate return periods.
#pragma once

#include <span>
#include <vector>

#include "catmod/event_catalog.hpp"
#include "data/elt.hpp"
#include "util/types.hpp"

namespace riskan::catmod {

struct AnalyticEpPoint {
  Money loss = 0.0;
  double annual_rate_above = 0.0;       ///< Lambda(loss)
  double exceedance_probability = 0.0;  ///< 1 - exp(-Lambda)
  double return_period_years = 0.0;     ///< 1 / probability
};

/// Analytic OEP evaluated at the given loss thresholds (per-occurrence
/// loss net of nothing — apply layer terms to the ELT first if a net view
/// is wanted). Events absent from the ELT contribute no loss.
std::vector<AnalyticEpPoint> analytic_oep(const catmod::EventCatalog& catalog,
                                          const data::EventLossTable& elt,
                                          std::span<const Money> loss_thresholds);

/// Loss level whose analytic return period is `years` (inverse of the
/// curve; linear interpolation over the ELT's sorted loss levels).
Money analytic_oep_loss_at(const catmod::EventCatalog& catalog,
                           const data::EventLossTable& elt, double years);

}  // namespace riskan::catmod
