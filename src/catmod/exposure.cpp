#include "catmod/exposure.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan::catmod {

const char* to_string(ConstructionType type) noexcept {
  switch (type) {
    case ConstructionType::Wood: return "wood";
    case ConstructionType::Masonry: return "masonry";
    case ConstructionType::Concrete: return "concrete";
    case ConstructionType::Steel: return "steel";
  }
  return "unknown";
}

ExposureDatabase ExposureDatabase::generate(const ExposureConfig& config) {
  RISKAN_REQUIRE(config.sites > 0, "exposure database needs sites");
  RISKAN_REQUIRE(config.cities > 0, "need at least one city");

  Xoshiro256ss rng(config.seed);

  // City centres, uniform over the grid.
  std::vector<std::pair<double, double>> cities;
  cities.reserve(config.cities);
  for (int c = 0; c < config.cities; ++c) {
    cities.emplace_back(sample_uniform(rng, 1.0, 9.0), sample_uniform(rng, 1.0, 9.0));
  }

  ExposureDatabase db;
  db.sites_.reserve(config.sites);
  for (LocationId id = 0; id < config.sites; ++id) {
    Site site;
    site.id = id;
    site.region = static_cast<Region>(sample_index(rng, kRegionCount));

    const auto& [cx, cy] = cities[sample_index(rng, cities.size())];
    site.x = std::clamp(cx + sample_normal(rng, 0.0, config.city_spread), 0.0, 10.0);
    site.y = std::clamp(cy + sample_normal(rng, 0.0, config.city_spread), 0.0, 10.0);

    site.value = sample_lognormal(rng, config.mean_log_value, config.sigma_log_value);
    site.construction = static_cast<ConstructionType>(sample_index(rng, kConstructionCount));
    site.occupancy = static_cast<Occupancy>(sample_index(rng, kOccupancyCount));

    // Insurance terms: 1-5% deductible; limit at 60-100% of value.
    site.site_deductible = site.value * sample_uniform(rng, 0.01, 0.05);
    site.site_limit = site.value * sample_uniform(rng, 0.6, 1.0);
    db.sites_.push_back(site);
  }
  return db;
}

const Site& ExposureDatabase::site(LocationId id) const {
  RISKAN_REQUIRE(id < sites_.size(), "site id out of range");
  return sites_[id];
}

Money ExposureDatabase::total_insured_value() const noexcept {
  Money total = 0.0;
  for (const auto& site : sites_) {
    total += site.value;
  }
  return total;
}

}  // namespace riskan::catmod
