#include "catmod/pipeline.hpp"

#include <atomic>
#include <optional>

#include "catmod/financial.hpp"
#include "catmod/spatial_index.hpp"
#include "catmod/vulnerability.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"

namespace riskan::catmod {

data::EventLossTable run_cat_model(const EventCatalog& catalog,
                                   const ExposureDatabase& exposure,
                                   const PipelineConfig& config, PipelineStats* stats) {
  obs::Timer watch("catmod.pipeline");
  const auto& events = catalog.events();
  const auto& sites = exposure.sites();

  std::optional<SiteGrid> grid;
  if (config.use_spatial_index) {
    grid.emplace(exposure, config.spatial_grid_cells);
  }

  std::vector<data::EltRow> rows(events.size());
  std::vector<std::uint8_t> has_loss(events.size(), 0);
  std::atomic<std::uint64_t> pairs_with_loss{0};
  std::atomic<std::uint64_t> pairs_evaluated{0};

  auto process_events = [&](std::size_t lo, std::size_t hi) {
    std::uint64_t local_hits = 0;
    std::uint64_t local_evaluated = 0;
    for (std::size_t e = lo; e < hi; ++e) {
      const auto& event = events[e];
      EventLossAccumulator accumulator(event.id);
      auto evaluate_site = [&](const Site& site) {
        ++local_evaluated;
        const double intensity = local_intensity(event, site, config.hazard);
        if (intensity <= 0.0) {
          return;
        }
        const auto damage = damage_from_intensity(intensity, site.construction);
        const auto loss = site_loss(site, damage);
        if (loss.mean > 0.0) {
          ++local_hits;
          accumulator.add(loss);
        }
      };
      if (grid) {
        grid->for_each_candidate(event.x, event.y, config.hazard.cutoff_distance,
                                 evaluate_site);
      } else {
        for (const auto& site : sites) {
          evaluate_site(site);
        }
      }
      if (accumulator.has_loss()) {
        const auto row = accumulator.row();
        if (row.mean_loss >= config.min_mean_loss) {
          rows[e] = row;
          has_loss[e] = 1;
        }
      }
    }
    pairs_with_loss += local_hits;
    pairs_evaluated += local_evaluated;
  };

  if (config.parallel) {
    parallel_for(0, events.size(), process_events,
                 ParallelConfig{config.pool, config.event_grain});
  } else {
    process_events(0, events.size());
  }

  std::vector<data::EltRow> kept;
  kept.reserve(events.size());
  for (std::size_t e = 0; e < events.size(); ++e) {
    if (has_loss[e] != 0) {
      kept.push_back(rows[e]);
    }
  }

  if (stats != nullptr) {
    stats->event_exposure_pairs = pairs_evaluated.load();
    stats->pairs_with_loss = pairs_with_loss.load();
    stats->elt_rows = kept.size();
    stats->seconds = watch.stop();
  }
  return data::EventLossTable::from_rows(std::move(kept));
}

}  // namespace riskan::catmod
