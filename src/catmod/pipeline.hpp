// Stage-1 pipeline: (catalogue x exposure) -> ELT.
//
// "An event-exposure pair is analysed using three modules that quantify
// (i) the hazard intensity at exposure sites, (ii) the vulnerability of the
// buildings and the resulting damage level, and (iii) the resultant
// financial loss. The output at this stage is an Event-Loss Table."
//
// The paper notes stage 1 is "highly compute and data intensive" with data
// "organised in a small number of very large tables and streamed by
// independent processes, further to which the results need to be
// aggregated" — here: events are partitioned across the thread pool, each
// worker streams the exposure table per event, and per-event rows are
// aggregated into the ELT.
#pragma once

#include <cstdint>

#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/hazard.hpp"
#include "data/elt.hpp"
#include "parallel/thread_pool.hpp"

namespace riskan::catmod {

struct PipelineConfig {
  HazardConfig hazard;
  /// Drop ELT rows with mean loss below this floor (noise suppression).
  Money min_mean_loss = 1.0;
  /// Parallelise over events on this pool (nullptr = shared pool);
  /// single-threaded when `parallel` is false.
  ThreadPool* pool = nullptr;
  bool parallel = true;
  std::size_t event_grain = 64;
  /// Prune far sites through a uniform-grid spatial index instead of
  /// testing every event-site pair. Identical results (hazard is zero
  /// beyond the cutoff either way); sub-quadratic work.
  bool use_spatial_index = false;
  int spatial_grid_cells = 16;
};

struct PipelineStats {
  /// Pairs actually evaluated: events x sites for the exhaustive sweep,
  /// only the grid candidates when use_spatial_index is on.
  std::uint64_t event_exposure_pairs = 0;
  std::uint64_t pairs_with_loss = 0;
  std::uint64_t elt_rows = 0;
  double seconds = 0.0;
};

/// Runs the three stage-1 modules over every event-exposure pair and
/// aggregates per-event rows into an ELT. Deterministic (no sampling at
/// this stage; uncertainty is carried as the rows' sigma).
data::EventLossTable run_cat_model(const EventCatalog& catalog, const ExposureDatabase& exposure,
                                   const PipelineConfig& config = {},
                                   PipelineStats* stats = nullptr);

}  // namespace riskan::catmod
