// Uniform-grid spatial index over exposure sites.
//
// Stage 1 is quadratic in (events x sites) if every pair is tested, but
// hazard dies beyond a cutoff distance, so each event only touches sites in
// a disc. Bucketing sites on a uniform grid turns the inner loop into
// "visit the buckets the disc overlaps" — the standard fix that makes
// production catastrophe models feasible at 100k events x millions of
// locations. The pipeline uses it when PipelineConfig::use_spatial_index
// is set; results equal the exhaustive sweep up to floating-point
// summation order (sites are visited bucket-by-bucket; tested to 1e-9
// relative), and the work drops from events x sites to events x candidates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "catmod/exposure.hpp"

namespace riskan::catmod {

class SiteGrid {
 public:
  /// Buckets `exposure`'s sites on a cells x cells grid over [0,10]^2.
  /// Keeps a reference to the exposure database.
  SiteGrid(const ExposureDatabase& exposure, int cells = 16);

  /// Invokes `visit(site)` for every site within `radius` of (x, y) —
  /// plus possibly a few just outside (callers re-check the exact
  /// distance; the grid only prunes).
  void for_each_candidate(double x, double y, double radius,
                          const std::function<void(const Site&)>& visit) const;

  /// Exact count of sites within radius (testing aid).
  std::size_t count_within(double x, double y, double radius) const;

  int cells() const noexcept { return cells_; }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }

 private:
  std::size_t bucket_of(double x, double y) const noexcept;

  const ExposureDatabase& exposure_;
  int cells_;
  double cell_size_;
  std::vector<std::vector<LocationId>> buckets_;
};

}  // namespace riskan::catmod
