// Stochastic event catalogue — input 1 of catastrophe modelling.
//
// "Catastrophe models take two primary inputs, firstly, stochastic event
// catalogues (i.e., mathematical representations of natural occurrence
// patterns and characteristics of catastrophes such as earthquakes)..."
//
// The paper's catalogues are proprietary; we generate synthetic ones whose
// statistical shape matches the published structure of real catalogues:
// Gutenberg–Richter magnitude-frequency for earthquakes, Saffir–Simpson
// category mixes for hurricanes, and annual rates that decay exponentially
// with severity so that frequent-small / rare-large holds. What matters to
// the pipeline is the table shape (an event row per stochastic event, with
// a rate and physical parameters the hazard module consumes), which this
// preserves (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace riskan::catmod {

/// One stochastic event.
struct CatalogEvent {
  EventId id = 0;
  Peril peril = Peril::Earthquake;
  Region region = Region::NorthAmerica;
  /// Severity on a peril-specific magnitude scale (EQ: moment magnitude
  /// 4.5-9.0; HU: continuous Saffir-Simpson 1.0-5.5; others comparable).
  double magnitude = 5.0;
  /// Epicentre / landfall coordinates in abstract degrees on a 10x10
  /// regional grid.
  double x = 0.0;
  double y = 0.0;
  /// Mean occurrences per year (feeds YELT generation rates).
  double annual_rate = 0.01;
};

struct CatalogConfig {
  EventId events = 10'000;
  std::uint64_t seed = 99;
  /// Gutenberg–Richter b-value: log10 N(>=M) = a - b*M.
  double gr_b_value = 1.0;
  double min_magnitude = 4.5;
  double max_magnitude = 9.0;
};

class EventCatalog {
 public:
  static EventCatalog generate(const CatalogConfig& config);

  std::size_t size() const noexcept { return events_.size(); }
  const CatalogEvent& event(EventId id) const;
  const std::vector<CatalogEvent>& events() const noexcept { return events_; }

  /// Sum of annual rates — the catalogue's total event frequency, which is
  /// the Poisson mean used when simulating trial years from this catalogue.
  double total_annual_rate() const noexcept;

 private:
  std::vector<CatalogEvent> events_;
};

}  // namespace riskan::catmod
