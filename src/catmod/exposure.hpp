// Exposure database — input 2 of catastrophe modelling.
//
// "...secondly, exposure databases (i.e., description of attributes such as
// construction type or value of buildings exposed to the catastrophe in a
// location)."
//
// Synthetic substitute for proprietary client exposure data: sites on the
// same abstract grid as the catalogue, with construction type, occupancy,
// lognormal insured values, and per-site insurance terms. Values cluster
// around a configurable number of "cities" so hazard footprints hit
// correlated pockets of exposure, as real books do.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace riskan::catmod {

enum class ConstructionType : std::uint8_t {
  Wood = 0,
  Masonry = 1,
  Concrete = 2,
  Steel = 3,
};

inline constexpr int kConstructionCount = 4;

const char* to_string(ConstructionType type) noexcept;

enum class Occupancy : std::uint8_t {
  Residential = 0,
  Commercial = 1,
  Industrial = 2,
};

inline constexpr int kOccupancyCount = 3;

/// One exposed site (building or aggregated location).
struct Site {
  LocationId id = 0;
  Region region = Region::NorthAmerica;
  double x = 0.0;
  double y = 0.0;
  Money value = 0.0;                ///< total insured value
  ConstructionType construction = ConstructionType::Wood;
  Occupancy occupancy = Occupancy::Residential;
  Money site_deductible = 0.0;      ///< per-site, per-event deductible
  Money site_limit = 0.0;           ///< per-site, per-event limit (0 = value)
};

struct ExposureConfig {
  LocationId sites = 1'000;
  std::uint64_t seed = 77;
  int cities = 12;                  ///< clustering centres on the grid
  double city_spread = 0.4;         ///< stddev of site scatter around a city
  double mean_log_value = 16.0;     ///< lognormal mu: e^16 ~ 8.9M
  double sigma_log_value = 1.2;
};

class ExposureDatabase {
 public:
  static ExposureDatabase generate(const ExposureConfig& config);

  std::size_t size() const noexcept { return sites_.size(); }
  const Site& site(LocationId id) const;
  const std::vector<Site>& sites() const noexcept { return sites_; }

  Money total_insured_value() const noexcept;

 private:
  std::vector<Site> sites_;
};

}  // namespace riskan::catmod
