// Financial-loss module — module (iii) of the paper's catastrophe model:
// "the resultant financial loss".
//
// Turns a damage estimate at a site into an insured (ground-up) loss by
// applying the site's value and insurance terms, and aggregates event
// losses across all sites into one ELT row. Site losses are treated as
// independent given the event, so variances add — the standard stage-1
// aggregation assumption.
#pragma once

#include "catmod/exposure.hpp"
#include "catmod/vulnerability.hpp"
#include "data/elt.hpp"

namespace riskan::catmod {

/// Mean/σ/max insured loss for one event-site pair.
struct SiteLoss {
  Money mean = 0.0;
  Money sigma = 0.0;
  Money max = 0.0;  ///< post-terms maximum (site limit caps it)
};

/// Applies value and site terms to a damage estimate.
/// mean = clamp(value * mdr - deductible, 0, limit), sigma scaled by value
/// and capped by the feasible range.
SiteLoss site_loss(const Site& site, const DamageEstimate& damage) noexcept;

/// Accumulates site losses for one event into an ELT row.
class EventLossAccumulator {
 public:
  explicit EventLossAccumulator(EventId event) : event_(event) {}

  void add(const SiteLoss& loss) noexcept;

  bool has_loss() const noexcept { return mean_ > 0.0; }

  /// Finalised ELT row (variance-additive sigma).
  data::EltRow row() const noexcept;

  LocationId sites_hit() const noexcept { return sites_hit_; }

 private:
  EventId event_;
  Money mean_ = 0.0;
  Money variance_ = 0.0;
  Money max_ = 0.0;
  LocationId sites_hit_ = 0;
};

}  // namespace riskan::catmod
