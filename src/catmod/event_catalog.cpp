#include "catmod/event_catalog.hpp"

#include <cmath>

#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan::catmod {

EventCatalog EventCatalog::generate(const CatalogConfig& config) {
  RISKAN_REQUIRE(config.events > 0, "catalogue needs events");
  RISKAN_REQUIRE(config.max_magnitude > config.min_magnitude, "magnitude range inverted");

  Xoshiro256ss rng(config.seed);
  EventCatalog catalog;
  catalog.events_.reserve(config.events);

  for (EventId id = 0; id < config.events; ++id) {
    CatalogEvent event;
    event.id = id;
    event.peril = static_cast<Peril>(sample_index(rng, kPerilCount));
    event.region = static_cast<Region>(sample_index(rng, kRegionCount));

    // Truncated Gutenberg–Richter: magnitudes exponential with rate
    // b*ln(10), truncated to [min, max].
    const double beta = config.gr_b_value * std::log(10.0);
    const double span = config.max_magnitude - config.min_magnitude;
    const double u = to_unit_double_open(rng());
    const double norm = 1.0 - std::exp(-beta * span);
    event.magnitude = config.min_magnitude - std::log(1.0 - u * norm) / beta;

    event.x = sample_uniform(rng, 0.0, 10.0);
    event.y = sample_uniform(rng, 0.0, 10.0);

    // Rate decays with magnitude (big events are rare); jitter by a
    // lognormal factor so equal-magnitude events differ.
    const double base_rate = std::pow(10.0, -config.gr_b_value *
                                                 (event.magnitude - config.min_magnitude));
    event.annual_rate = 0.05 * base_rate * sample_lognormal(rng, 0.0, 0.5);
    catalog.events_.push_back(event);
  }
  return catalog;
}

const CatalogEvent& EventCatalog::event(EventId id) const {
  RISKAN_REQUIRE(id < events_.size(), "event id out of range");
  return events_[id];
}

double EventCatalog::total_annual_rate() const noexcept {
  double total = 0.0;
  for (const auto& event : events_) {
    total += event.annual_rate;
  }
  return total;
}

}  // namespace riskan::catmod
