#include "catmod/yelt_bridge.hpp"

#include "util/alias_table.hpp"
#include "util/distributions.hpp"
#include "util/require.hpp"

namespace riskan::catmod {

data::YearEventLossTable simulate_yelt(const EventCatalog& catalog,
                                       const CatalogYeltConfig& config) {
  RISKAN_REQUIRE(catalog.size() > 0, "catalogue is empty");
  RISKAN_REQUIRE(config.rate_multiplier > 0.0, "rate multiplier must be positive");

  std::vector<double> rates;
  rates.reserve(catalog.size());
  for (const auto& event : catalog.events()) {
    rates.push_back(event.annual_rate);
  }
  const AliasTable alias(rates);
  const double mean_per_year = catalog.total_annual_rate() * config.rate_multiplier;

  Xoshiro256ss rng(config.seed);
  data::YearEventLossTable::Builder builder(config.trials);
  for (TrialId t = 0; t < config.trials; ++t) {
    builder.begin_trial();
    const auto count = sample_poisson(rng, mean_per_year);
    for (std::uint32_t k = 0; k < count; ++k) {
      const auto event = static_cast<EventId>(alias.sample(rng));
      const auto day = static_cast<std::uint16_t>(sample_index(rng, 365));
      builder.add(event, day);
    }
  }
  return builder.finish();
}

}  // namespace riskan::catmod
