// Hazard module — module (i) of the paper's catastrophe model: "the hazard
// intensity at exposure sites".
//
// Converts an event's magnitude and distance-to-site into a local intensity
// on a peril-appropriate scale via standard attenuation forms:
//   EQ-like : I = c1*M - c2*ln(d + c3)        (Cornell-style attenuation)
//   wind-like: I = c1*M * exp(-d / decay)     (radial wind-field decay)
// Intensities are clipped at zero; events farther than a cutoff contribute
// nothing, which is what makes stage 1 sparse (each event touches only
// nearby exposure).
#pragma once

#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"

namespace riskan::catmod {

struct HazardConfig {
  double eq_c1 = 1.0;
  double eq_c2 = 1.8;
  double eq_c3 = 0.3;
  double wind_decay = 1.5;
  /// Sites beyond this grid distance see zero intensity.
  double cutoff_distance = 4.0;
};

/// Euclidean distance on the abstract grid.
double grid_distance(double x1, double y1, double x2, double y2) noexcept;

/// Local intensity of `event` at `site`; >= 0, 0 beyond the cutoff.
double local_intensity(const CatalogEvent& event, const Site& site,
                       const HazardConfig& config = {}) noexcept;

}  // namespace riskan::catmod
