#include "catmod/hazard.hpp"

#include <algorithm>
#include <cmath>

namespace riskan::catmod {

double grid_distance(double x1, double y1, double x2, double y2) noexcept {
  const double dx = x1 - x2;
  const double dy = y1 - y2;
  return std::sqrt(dx * dx + dy * dy);
}

double local_intensity(const CatalogEvent& event, const Site& site,
                       const HazardConfig& config) noexcept {
  const double d = grid_distance(event.x, event.y, site.x, site.y);
  if (d > config.cutoff_distance) {
    return 0.0;
  }
  double intensity;
  switch (event.peril) {
    case Peril::Earthquake:
      intensity = config.eq_c1 * event.magnitude - config.eq_c2 * std::log(d + config.eq_c3);
      break;
    case Peril::Hurricane:
    case Peril::Tornado:
      intensity = config.eq_c1 * event.magnitude * std::exp(-d / config.wind_decay);
      break;
    case Peril::Flood:
    case Peril::Wildfire:
      // Footprint perils: intensity plateaus near the centre, then decays.
      intensity = config.eq_c1 * event.magnitude / (1.0 + d * d);
      break;
    default:
      intensity = 0.0;
      break;
  }
  return std::max(0.0, intensity);
}

}  // namespace riskan::catmod
