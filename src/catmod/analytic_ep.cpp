#include "catmod/analytic_ep.hpp"

#include <algorithm>
#include <limits>
#include <cmath>

#include "util/require.hpp"

namespace riskan::catmod {

namespace {

/// (loss, rate) pairs sorted by descending loss, with suffix-cumulated
/// rates: cum[i] = Lambda(loss just below loss[i]).
struct RateCurve {
  std::vector<Money> losses;  // descending
  std::vector<double> cum_rates;
};

RateCurve build_curve(const catmod::EventCatalog& catalog,
                      const data::EventLossTable& elt) {
  std::vector<std::pair<Money, double>> pairs;
  pairs.reserve(elt.size());
  for (std::size_t i = 0; i < elt.size(); ++i) {
    const EventId event = elt.event_ids()[i];
    RISKAN_REQUIRE(event < catalog.size(), "ELT references an event outside the catalogue");
    pairs.emplace_back(elt.mean_loss()[i], catalog.event(event).annual_rate);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  RateCurve curve;
  curve.losses.reserve(pairs.size());
  curve.cum_rates.reserve(pairs.size());
  double cum = 0.0;
  for (const auto& [loss, rate] : pairs) {
    cum += rate;
    curve.losses.push_back(loss);
    curve.cum_rates.push_back(cum);
  }
  return curve;
}

double lambda_above(const RateCurve& curve, Money x) {
  // Rates of events with loss > x: find the last index with loss > x.
  // losses are descending; upper_bound with greater comparator.
  const auto it = std::upper_bound(curve.losses.begin(), curve.losses.end(), x,
                                   [](Money value, Money element) { return value > element; });
  if (it == curve.losses.begin()) {
    return 0.0;
  }
  const auto idx = static_cast<std::size_t>(it - curve.losses.begin()) - 1;
  return curve.cum_rates[idx];
}

}  // namespace

std::vector<AnalyticEpPoint> analytic_oep(const catmod::EventCatalog& catalog,
                                          const data::EventLossTable& elt,
                                          std::span<const Money> loss_thresholds) {
  RISKAN_REQUIRE(!elt.empty(), "analytic OEP needs a non-empty ELT");
  const auto curve = build_curve(catalog, elt);

  std::vector<AnalyticEpPoint> out;
  out.reserve(loss_thresholds.size());
  for (const Money x : loss_thresholds) {
    AnalyticEpPoint point;
    point.loss = x;
    point.annual_rate_above = lambda_above(curve, x);
    point.exceedance_probability = 1.0 - std::exp(-point.annual_rate_above);
    point.return_period_years = point.exceedance_probability > 0.0
                                    ? 1.0 / point.exceedance_probability
                                    : std::numeric_limits<double>::infinity();
    out.push_back(point);
  }
  return out;
}

Money analytic_oep_loss_at(const catmod::EventCatalog& catalog,
                           const data::EventLossTable& elt, double years) {
  RISKAN_REQUIRE(years > 1.0, "return period must exceed 1 year");
  RISKAN_REQUIRE(!elt.empty(), "analytic OEP needs a non-empty ELT");
  const auto curve = build_curve(catalog, elt);
  const double target_lambda = -std::log(1.0 - 1.0 / years);

  // Find the smallest loss level whose Lambda stays below the target:
  // walking the descending-loss curve, Lambda grows; we want the loss at
  // which Lambda crosses target_lambda.
  for (std::size_t i = 0; i < curve.losses.size(); ++i) {
    if (curve.cum_rates[i] >= target_lambda) {
      return curve.losses[i];
    }
  }
  // Even the full catalogue is rarer than the requested period: the curve
  // bottoms out at the smallest modelled loss.
  return curve.losses.back();
}

}  // namespace riskan::catmod
