#include "catmod/spatial_index.hpp"

#include <algorithm>
#include <cmath>

#include "catmod/hazard.hpp"
#include "util/require.hpp"

namespace riskan::catmod {

namespace {
constexpr double kGridExtent = 10.0;
}

SiteGrid::SiteGrid(const ExposureDatabase& exposure, int cells)
    : exposure_(exposure), cells_(cells) {
  RISKAN_REQUIRE(cells > 0, "grid needs at least one cell");
  cell_size_ = kGridExtent / cells_;
  buckets_.resize(static_cast<std::size_t>(cells_) * cells_);
  for (const auto& site : exposure.sites()) {
    buckets_[bucket_of(site.x, site.y)].push_back(site.id);
  }
}

std::size_t SiteGrid::bucket_of(double x, double y) const noexcept {
  const int cx = std::clamp(static_cast<int>(x / cell_size_), 0, cells_ - 1);
  const int cy = std::clamp(static_cast<int>(y / cell_size_), 0, cells_ - 1);
  return static_cast<std::size_t>(cy) * cells_ + cx;
}

void SiteGrid::for_each_candidate(double x, double y, double radius,
                                  const std::function<void(const Site&)>& visit) const {
  RISKAN_REQUIRE(radius >= 0.0, "radius must be non-negative");
  const int lo_x = std::clamp(static_cast<int>((x - radius) / cell_size_), 0, cells_ - 1);
  const int hi_x = std::clamp(static_cast<int>((x + radius) / cell_size_), 0, cells_ - 1);
  const int lo_y = std::clamp(static_cast<int>((y - radius) / cell_size_), 0, cells_ - 1);
  const int hi_y = std::clamp(static_cast<int>((y + radius) / cell_size_), 0, cells_ - 1);
  for (int cy = lo_y; cy <= hi_y; ++cy) {
    for (int cx = lo_x; cx <= hi_x; ++cx) {
      for (const LocationId id : buckets_[static_cast<std::size_t>(cy) * cells_ + cx]) {
        visit(exposure_.site(id));
      }
    }
  }
}

std::size_t SiteGrid::count_within(double x, double y, double radius) const {
  std::size_t count = 0;
  for_each_candidate(x, y, radius, [&](const Site& site) {
    if (grid_distance(x, y, site.x, site.y) <= radius) {
      ++count;
    }
  });
  return count;
}

}  // namespace riskan::catmod
