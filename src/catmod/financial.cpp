#include "catmod/financial.hpp"

#include <algorithm>
#include <cmath>

namespace riskan::catmod {

SiteLoss site_loss(const Site& site, const DamageEstimate& damage) noexcept {
  if (damage.mean_damage_ratio <= 0.0 || site.value <= 0.0) {
    return {};
  }
  const Money limit = site.site_limit > 0.0 ? site.site_limit : site.value;
  const Money gross = site.value * damage.mean_damage_ratio;
  const Money net = std::clamp(gross - site.site_deductible, Money{0.0}, limit);
  if (net <= 0.0) {
    return {};
  }
  SiteLoss loss;
  loss.mean = net;
  loss.max = limit;
  // Damage sigma scales with value; the deductible/limit clip can only
  // narrow the spread, so cap sigma by the distance to the feasible ends.
  const Money raw_sigma = site.value * damage.sigma_damage_ratio;
  loss.sigma = std::min(raw_sigma, std::sqrt(net * (limit - net) + 1e-9));
  return loss;
}

void EventLossAccumulator::add(const SiteLoss& loss) noexcept {
  if (loss.mean <= 0.0) {
    return;
  }
  mean_ += loss.mean;
  variance_ += loss.sigma * loss.sigma;
  max_ += loss.max;
  ++sites_hit_;
}

data::EltRow EventLossAccumulator::row() const noexcept {
  data::EltRow row;
  row.event_id = event_;
  row.mean_loss = mean_;
  row.sigma_loss = std::sqrt(variance_);
  row.exposure = std::max(max_, mean_);
  return row;
}

}  // namespace riskan::catmod
