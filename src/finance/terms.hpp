// Reinsurance financial terms applied during aggregate analysis.
//
// A catastrophe excess-of-loss layer transforms losses in two passes:
//   per occurrence : l' = min(max(l - occ_retention, 0), occ_limit)
//   per year       : y' = min(max(sum l' - agg_retention, 0), agg_limit)
//   net to layer   : share * y'
// plus optional reinstatements, which cap the aggregate limit at
// (1 + reinstatements) * occ_limit and charge pro-rata reinstatement
// premium as the limit is consumed.
//
// These four numbers are the "financial terms" stage 2 applies to every
// event of every trial; their algebra (monotonicity, translation bounds)
// is covered by property tests.
#pragma once

#include <limits>
#include <optional>
#include <span>

#include "util/types.hpp"

namespace riskan::finance {

/// How the per-occurrence retention operates.
enum class RetentionKind : std::uint8_t {
  /// Standard excess: pay the loss above the retention, capped.
  Deductible = 0,
  /// Franchise: once the loss clears the retention, pay from the ground up
  /// (common in industry-loss-warranty-style covers).
  Franchise = 1,
};

/// Excess-of-loss layer terms.
struct LayerTerms {
  Money occ_retention = 0.0;  ///< per-occurrence deductible (attachment)
  Money occ_limit = std::numeric_limits<Money>::max();  ///< per-occurrence limit
  Money agg_retention = 0.0;  ///< annual aggregate deductible
  Money agg_limit = std::numeric_limits<Money>::max();  ///< annual aggregate limit
  double share = 1.0;         ///< ceded share in (0, 1]
  RetentionKind retention_kind = RetentionKind::Deductible;

  /// Validates invariants (non-negative monies, share in (0,1]).
  void validate() const;

  /// A working catastrophe layer: retention 40M xs attach, 60M limit,
  /// 1 aggregate reinstatement, 100% share. Used by examples and benches as
  /// the paper's "typical contract".
  static LayerTerms typical();
};

/// Applies per-occurrence terms to one ground-up loss.
Money apply_occurrence(const LayerTerms& terms, Money ground_up) noexcept;

/// Applies annual aggregate terms to a year's summed occurrence losses.
Money apply_aggregate(const LayerTerms& terms, Money annual_sum) noexcept;

/// Full-year net: aggregate over occurrence-transformed losses, then share.
/// Convenience for tests; the engines inline the same algebra.
Money apply_year(const LayerTerms& terms, std::span<const Money> ground_up_losses) noexcept;

/// Reinstatement schedule for a layer (optional).
struct Reinstatements {
  int count = 0;                 ///< number of reinstatements purchased
  double premium_rate = 0.0;     ///< fraction of upfront premium per full reinstatement

  /// Aggregate limit implied by occurrence limit + reinstatements.
  Money implied_agg_limit(Money occ_limit) const noexcept;

  /// Reinstatement premium owed for `limit_consumed` of aggregate limit use,
  /// given the layer's occurrence limit and upfront premium. Pro-rata to
  /// amount, capped at `count` full reinstatements.
  Money premium_due(Money limit_consumed, Money occ_limit, Money upfront_premium) const noexcept;
};

/// Partial re-statement of a layer's terms — the what-if currency of the
/// scenario engine (src/scenario). Each engaged field replaces the base
/// value; absent fields pass the base through untouched, so an empty
/// override is the identity. apply() validates the resulting terms, so a
/// sweep cannot silently construct an illegal layer.
struct LayerOverride {
  std::optional<Money> occ_retention;
  std::optional<Money> occ_limit;
  std::optional<Money> agg_retention;
  std::optional<Money> agg_limit;
  std::optional<double> share;
  std::optional<RetentionKind> retention_kind;
  std::optional<int> reinstatement_count;
  std::optional<double> reinstatement_rate;
  std::optional<Money> upfront_premium;

  bool empty() const noexcept {
    return !occ_retention && !occ_limit && !agg_retention && !agg_limit && !share &&
           !retention_kind && !reinstatement_count && !reinstatement_rate &&
           !upfront_premium;
  }

  /// Applies the engaged fields onto (terms, reinstatements, upfront);
  /// validates the overridden terms.
  void apply(LayerTerms& terms, Reinstatements& reinstatements, Money& upfront) const;
};

}  // namespace riskan::finance
