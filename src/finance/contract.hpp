// Contracts and portfolios — the stage-2 subject.
//
// "A reinsurer typically may have tens of thousands of contracts and [is]
// interested in quantifying the risk across their whole portfolio."
//
// A Contract couples an ELT (its modelled event losses from stage 1) with
// one or more excess-of-loss layers and bookkeeping dimensions (region,
// line of business) used by the warehouse roll-up. A Portfolio owns its
// contracts and the contract ELTs; aggregate analysis iterates
// portfolio x trials.
#pragma once

#include <string>
#include <vector>

#include "data/elt.hpp"
#include "finance/terms.hpp"
#include "util/types.hpp"

namespace riskan::finance {

/// One layer of a contract.
struct Layer {
  LayerId id = 0;
  LayerTerms terms;
  Reinstatements reinstatements;
  Money upfront_premium = 0.0;
};

class Contract {
 public:
  Contract(ContractId id, data::EventLossTable elt, std::vector<Layer> layers,
           Region region = Region::NorthAmerica,
           LineOfBusiness lob = LineOfBusiness::Property, Peril peril = Peril::Hurricane);

  ContractId id() const noexcept { return id_; }
  const data::EventLossTable& elt() const noexcept { return elt_; }
  const std::vector<Layer>& layers() const noexcept { return layers_; }
  Region region() const noexcept { return region_; }
  LineOfBusiness lob() const noexcept { return lob_; }
  Peril peril() const noexcept { return peril_; }

  /// Expected annual ground-up loss: sum over catalogue events of
  /// rate-weighted mean loss is stage-1 business; here we expose the
  /// unweighted ELT mass used by sanity tests.
  Money elt_mean_mass() const noexcept { return elt_.total_mean_loss(); }

 private:
  ContractId id_;
  data::EventLossTable elt_;
  std::vector<Layer> layers_;
  Region region_;
  LineOfBusiness lob_;
  Peril peril_;
};

class Portfolio {
 public:
  Portfolio() = default;

  void add(Contract contract);

  std::size_t size() const noexcept { return contracts_.size(); }
  bool empty() const noexcept { return contracts_.empty(); }
  const Contract& contract(std::size_t i) const;
  const std::vector<Contract>& contracts() const noexcept { return contracts_; }

  /// Total layer count across contracts (the unit of engine work).
  std::size_t layer_count() const noexcept;

  /// Total ELT bytes (chunk planning / E1 accounting).
  std::size_t elt_byte_size() const noexcept;

 private:
  std::vector<Contract> contracts_;
};

/// Synthetic portfolio generation for benches/examples: `contracts`
/// contracts whose ELT footprints draw `elt_rows` events from a catalogue of
/// `catalog_events`, with truncated-Pareto severity means and layer terms
/// scaled to each contract's loss scale. Deterministic in the seed.
struct PortfolioGenConfig {
  std::size_t contracts = 100;
  EventId catalog_events = 10'000;
  std::size_t elt_rows = 1'000;
  int layers_per_contract = 1;
  std::uint64_t seed = 1234;
  double severity_alpha = 1.1;   ///< Pareto tail index of event mean losses
  Money severity_lo = 1e4;
  Money severity_hi = 5e8;
};

Portfolio generate_portfolio(const PortfolioGenConfig& config);

}  // namespace riskan::finance
