#include "finance/premium.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::finance {

Money technical_premium(const LossStatistics& stats, const PricingTerms& terms) {
  RISKAN_REQUIRE(terms.expense_ratio >= 0.0 && terms.expense_ratio < 1.0,
                 "expense ratio must lie in [0,1)");
  RISKAN_REQUIRE(terms.target_margin >= 0.0 && terms.target_margin < 1.0,
                 "target margin must lie in [0,1)");
  const Money risk_cost = stats.expected_loss + terms.volatility_load * stats.loss_stdev +
                          terms.capital_load * stats.tvar_99;
  return risk_cost / (1.0 - terms.expense_ratio - terms.target_margin);
}

double rate_on_line(Money premium, Money occ_limit) {
  RISKAN_REQUIRE(occ_limit > 0.0, "rate on line needs a positive limit");
  return premium / occ_limit;
}

LossStatistics summarise_losses(std::span<const Money> trial_losses) {
  RISKAN_REQUIRE(!trial_losses.empty(), "cannot summarise an empty loss sample");
  OnlineStats stats;
  for (const Money loss : trial_losses) {
    stats.add(loss);
  }
  std::vector<double> sorted(trial_losses.begin(), trial_losses.end());
  std::sort(sorted.begin(), sorted.end());

  LossStatistics out;
  out.expected_loss = stats.mean();
  out.loss_stdev = std::sqrt(stats.sample_variance());
  out.tvar_99 = tail_mean_above(sorted, 0.99);
  return out;
}

}  // namespace riskan::finance
