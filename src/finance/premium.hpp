// Premium calculators — turning a layer's YLT into a price.
//
// This is the business case behind the paper's real-time claim: "A 1
// million trial aggregate simulation on a typical contract only takes 25
// seconds and can therefore support real-time pricing." Pricing a layer
// means simulating its YLT and loading the expected loss for volatility
// and capital; the RealTimePricer (src/core/pricer.hpp) wires the engine to
// these formulas.
#pragma once

#include <span>

#include "util/types.hpp"

namespace riskan::finance {

/// Inputs distilled from a simulated layer YLT.
struct LossStatistics {
  Money expected_loss = 0.0;
  Money loss_stdev = 0.0;
  Money tvar_99 = 0.0;  ///< tail value at risk at the 99th percentile
};

/// Pricing loadings.
struct PricingTerms {
  double expense_ratio = 0.10;      ///< brokerage + expenses, fraction of premium
  double volatility_load = 0.30;    ///< fraction of loss stdev charged
  double capital_load = 0.05;       ///< cost of capital on TVaR99
  double target_margin = 0.05;      ///< underwriting profit margin
};

/// Technical premium: (EL + vol·σ + cap·TVaR99) grossed up for expenses and
/// margin. The standard-deviation principle with a tail-capital add-on.
Money technical_premium(const LossStatistics& stats, const PricingTerms& terms);

/// Rate on line: premium / occurrence limit — the market's unit price of
/// catastrophe capacity.
double rate_on_line(Money premium, Money occ_limit);

/// Computes LossStatistics from a simulated per-trial loss sample.
LossStatistics summarise_losses(std::span<const Money> trial_losses);

}  // namespace riskan::finance
