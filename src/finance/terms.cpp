#include "finance/terms.hpp"

#include <algorithm>
#include <span>

#include "util/require.hpp"

namespace riskan::finance {

void LayerTerms::validate() const {
  RISKAN_REQUIRE(occ_retention >= 0.0, "occurrence retention must be non-negative");
  RISKAN_REQUIRE(occ_limit > 0.0, "occurrence limit must be positive");
  RISKAN_REQUIRE(agg_retention >= 0.0, "aggregate retention must be non-negative");
  RISKAN_REQUIRE(agg_limit > 0.0, "aggregate limit must be positive");
  RISKAN_REQUIRE(share > 0.0 && share <= 1.0, "share must lie in (0,1]");
}

LayerTerms LayerTerms::typical() {
  LayerTerms terms;
  terms.occ_retention = 40e6;
  terms.occ_limit = 60e6;
  terms.agg_retention = 0.0;
  terms.agg_limit = 120e6;  // one reinstatement of a 60M limit
  terms.share = 1.0;
  return terms;
}

Money apply_occurrence(const LayerTerms& terms, Money ground_up) noexcept {
  if (terms.retention_kind == RetentionKind::Franchise) {
    // Franchise: nothing until the trigger, then the full loss (capped).
    if (ground_up <= terms.occ_retention) {
      return 0.0;
    }
    return std::min(ground_up, terms.occ_limit);
  }
  const Money excess = ground_up - terms.occ_retention;
  if (excess <= 0.0) {
    return 0.0;
  }
  return std::min(excess, terms.occ_limit);
}

Money apply_aggregate(const LayerTerms& terms, Money annual_sum) noexcept {
  const Money excess = annual_sum - terms.agg_retention;
  if (excess <= 0.0) {
    return 0.0;
  }
  return std::min(excess, terms.agg_limit);
}

Money apply_year(const LayerTerms& terms, std::span<const Money> ground_up_losses) noexcept {
  Money annual = 0.0;
  for (const Money gu : ground_up_losses) {
    annual += apply_occurrence(terms, gu);
  }
  return apply_aggregate(terms, annual) * terms.share;
}

void LayerOverride::apply(LayerTerms& terms, Reinstatements& reinstatements,
                          Money& upfront) const {
  if (occ_retention) terms.occ_retention = *occ_retention;
  if (occ_limit) terms.occ_limit = *occ_limit;
  if (agg_retention) terms.agg_retention = *agg_retention;
  if (agg_limit) terms.agg_limit = *agg_limit;
  if (share) terms.share = *share;
  if (retention_kind) terms.retention_kind = *retention_kind;
  if (reinstatement_count) {
    RISKAN_REQUIRE(*reinstatement_count >= 0, "reinstatement count must be non-negative");
    reinstatements.count = *reinstatement_count;
  }
  if (reinstatement_rate) {
    RISKAN_REQUIRE(*reinstatement_rate >= 0.0, "reinstatement rate must be non-negative");
    reinstatements.premium_rate = *reinstatement_rate;
  }
  if (upfront_premium) {
    RISKAN_REQUIRE(*upfront_premium >= 0.0, "upfront premium must be non-negative");
    upfront = *upfront_premium;
  }
  terms.validate();
}

Money Reinstatements::implied_agg_limit(Money occ_limit) const noexcept {
  return occ_limit * static_cast<double>(count + 1);
}

Money Reinstatements::premium_due(Money limit_consumed, Money occ_limit,
                                  Money upfront_premium) const noexcept {
  if (count <= 0 || occ_limit <= 0.0 || limit_consumed <= 0.0) {
    return 0.0;
  }
  // Only consumption beyond the original limit triggers reinstatement, up
  // to `count` full limits.
  const Money reinstated = std::clamp(limit_consumed, Money{0.0},
                                      occ_limit * static_cast<double>(count));
  return upfront_premium * premium_rate * (reinstated / occ_limit);
}

}  // namespace riskan::finance
