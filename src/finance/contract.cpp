#include "finance/contract.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan::finance {

Contract::Contract(ContractId id, data::EventLossTable elt, std::vector<Layer> layers,
                   Region region, LineOfBusiness lob, Peril peril)
    : id_(id),
      elt_(std::move(elt)),
      layers_(std::move(layers)),
      region_(region),
      lob_(lob),
      peril_(peril) {
  RISKAN_REQUIRE(!layers_.empty(), "contract needs at least one layer");
  for (const auto& layer : layers_) {
    layer.terms.validate();
  }
}

void Portfolio::add(Contract contract) {
  contracts_.push_back(std::move(contract));
}

const Contract& Portfolio::contract(std::size_t i) const {
  RISKAN_REQUIRE(i < contracts_.size(), "contract index out of range");
  return contracts_[i];
}

std::size_t Portfolio::layer_count() const noexcept {
  std::size_t count = 0;
  for (const auto& contract : contracts_) {
    count += contract.layers().size();
  }
  return count;
}

std::size_t Portfolio::elt_byte_size() const noexcept {
  std::size_t bytes = 0;
  for (const auto& contract : contracts_) {
    bytes += contract.elt().byte_size();
  }
  return bytes;
}

Portfolio generate_portfolio(const PortfolioGenConfig& config) {
  RISKAN_REQUIRE(config.contracts > 0, "portfolio needs contracts");
  RISKAN_REQUIRE(config.elt_rows > 0, "contracts need ELT rows");
  RISKAN_REQUIRE(config.elt_rows <= config.catalog_events,
                 "ELT footprint cannot exceed the catalogue");

  Portfolio portfolio;
  Xoshiro256ss rng(config.seed);

  for (std::size_t c = 0; c < config.contracts; ++c) {
    // Sample a distinct event footprint for this contract. For footprints
    // much smaller than the catalogue, rejection sampling is cheap; for
    // dense footprints, sweep with a Bernoulli filter.
    std::vector<EventId> footprint;
    footprint.reserve(config.elt_rows);
    if (config.elt_rows * 4 < config.catalog_events) {
      std::vector<bool> taken(config.catalog_events, false);
      while (footprint.size() < config.elt_rows) {
        const auto e = static_cast<EventId>(sample_index(rng, config.catalog_events));
        if (!taken[e]) {
          taken[e] = true;
          footprint.push_back(e);
        }
      }
    } else {
      const double keep =
          static_cast<double>(config.elt_rows) / static_cast<double>(config.catalog_events);
      for (EventId e = 0; e < config.catalog_events && footprint.size() < config.elt_rows;
           ++e) {
        if (to_unit_double(rng()) < keep) {
          footprint.push_back(e);
        }
      }
      // Top up deterministically if the Bernoulli sweep undershot.
      for (EventId e = 0; e < config.catalog_events && footprint.size() < config.elt_rows;
           ++e) {
        if (std::find(footprint.begin(), footprint.end(), e) == footprint.end()) {
          footprint.push_back(e);
        }
      }
    }

    std::vector<data::EltRow> rows;
    rows.reserve(footprint.size());
    Money mean_sum = 0.0;
    for (const EventId event : footprint) {
      data::EltRow row;
      row.event_id = event;
      row.mean_loss = sample_truncated_pareto(rng, config.severity_alpha, config.severity_lo,
                                              config.severity_hi);
      // Coefficient of variation between 0.3 and 1.2 — the secondary
      // uncertainty spread typical of vulnerability curves.
      row.sigma_loss = row.mean_loss * sample_uniform(rng, 0.3, 1.2);
      // Exposure (max loss) a few means above the mean.
      row.exposure = row.mean_loss * sample_uniform(rng, 3.0, 8.0);
      mean_sum += row.mean_loss;
      rows.push_back(row);
    }

    // Layer terms scaled to the contract's loss scale so layers attach in
    // the meat of the distribution rather than above it.
    const Money scale = mean_sum / static_cast<double>(rows.size());
    std::vector<Layer> layers;
    for (int l = 0; l < config.layers_per_contract; ++l) {
      Layer layer;
      layer.id = static_cast<LayerId>(l);
      layer.terms.occ_retention = scale * (0.5 + 0.5 * l);
      layer.terms.occ_limit = scale * (2.0 + 1.0 * l);
      layer.terms.agg_retention = 0.0;
      layer.terms.agg_limit = layer.terms.occ_limit * 2.0;
      layer.terms.share = 1.0;
      layer.reinstatements.count = 1;
      layer.reinstatements.premium_rate = 1.0;
      layer.upfront_premium = scale * 0.25;
      layers.push_back(layer);
    }

    const auto region = static_cast<Region>(c % kRegionCount);
    const auto lob = static_cast<LineOfBusiness>(c % kLobCount);
    const auto peril = static_cast<Peril>(c % kPerilCount);
    portfolio.add(Contract(static_cast<ContractId>(c),
                           data::EventLossTable::from_rows(std::move(rows)),
                           std::move(layers), region, lob, peril));
  }
  return portfolio;
}

}  // namespace riskan::finance
