// Observability facade: per-run configuration, end-of-run reports, and the
// Timer that replaces ad-hoc Stopwatch call sites on engine paths.
//
//   ObsConfig   — rides EngineConfig / AggregateJobConfig; validated up
//                 front by validate_obs_config (bad trace paths and bucket
//                 configs are rejected before any work starts, matching
//                 the PR-4 validate_engine_config pattern).
//   ObsReport   — snapshot-delta of the global registry over one run plus
//                 trace-buffer accounting; JSON-exportable.
//   RunObsScope — RAII helper each top-level entry point owns: arms
//                 tracing per config on entry, and on finish() produces
//                 the ObsReport / exports the chrome trace. Delegating
//                 entry points clear `obs` on the inner config so exactly
//                 one scope — the outermost — observes the run.
//   Timer       — Stopwatch-backed duration probe that also emits a trace
//                 span per timed interval. The one timing API for engine
//                 paths and benches.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace riskan::obs {

/// Per-run observability knobs (zero-initialized = everything off).
struct ObsConfig {
  /// Collect a RegistrySnapshot delta over the run into an ObsReport.
  bool collect_report = false;
  /// Write the ObsReport JSON here at end of run ("" = don't write;
  /// implies collect_report).
  std::string report_path;
  /// Start tracing at run entry and export chrome://tracing JSON here at
  /// end of run ("" = leave tracing as the process-wide RISKAN_TRACE
  /// state).
  std::string trace_path;
  /// Override histogram bounds for run-scoped duration histograms; empty
  /// = default_seconds_bounds(). Must be strictly increasing and finite.
  std::vector<double> histogram_bounds;

  bool any() const noexcept {
    return collect_report || !report_path.empty() || !trace_path.empty();
  }
};

/// Rejects malformed configs before any work: unwritable/denormal paths,
/// non-increasing or non-finite bucket edges. Throws ContractViolation.
void validate_obs_config(const ObsConfig& config);

/// End-of-run observability summary: what this run added to the global
/// registry, plus tracing accounting.
struct ObsReport {
  RegistrySnapshot metrics;        ///< delta over the run
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  double seconds = 0.0;            ///< run wall-clock, same clock as spans

  /// {"seconds":…, "spans":{…}, "metrics":{counters/gauges/histograms}}.
  std::string to_json() const;
};

/// RAII per-entry-point scope. Construct with the run's ObsConfig; call
/// finish() when the run's result is ready (destruction without finish()
/// still restores trace state but produces no report).
class RunObsScope {
 public:
  explicit RunObsScope(const ObsConfig& config);
  ~RunObsScope();

  RunObsScope(const RunObsScope&) = delete;
  RunObsScope& operator=(const RunObsScope&) = delete;

  /// Ends the observation window: exports the trace (config.trace_path),
  /// writes/returns the report (config.collect_report / report_path).
  /// Returns nullptr when no report was requested. Idempotent.
  std::shared_ptr<const ObsReport> finish();

 private:
  ObsConfig config_;
  bool observing_ = false;
  bool started_trace_ = false;
  bool finished_ = false;
  Stopwatch watch_;
  RegistrySnapshot before_;
  std::size_t spans_before_ = 0;
  std::uint64_t dropped_before_ = 0;
};

/// Duration probe: a Stopwatch that doubles as a trace span emitter.
/// seconds() reads without ending the interval; stop() (or destruction)
/// ends it, recording one span named at construction. reset() ends the
/// current interval (recording it) and starts a new one — matching the
/// Stopwatch reset-and-reuse idiom at existing call sites.
class Timer {
 public:
  /// `name` must be a literal/stable string; interned once per call via
  /// the global buffer (cheap — one mutex hop per distinct name). Tracing
  /// state is sampled at construction: a Timer born with tracing off
  /// measures but never emits.
  explicit Timer(std::string_view name) : traced_(TraceBuffer::global().active()) {
    if (traced_) {
      name_id_ = span_id(name);
    }
  }

  ~Timer() { stop(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Elapsed seconds of the current interval (does not end it).
  double seconds() const noexcept { return stopped_ ? stopped_seconds_ : watch_.seconds(); }
  double millis() const noexcept { return seconds() * 1e3; }

  /// Ends the current interval, emits its span, returns its seconds.
  /// Idempotent (subsequent calls return the recorded duration).
  double stop() noexcept {
    if (stopped_) {
      return stopped_seconds_;
    }
    stopped_ = true;
    stopped_seconds_ = watch_.seconds();
    emit();
    return stopped_seconds_;
  }

  /// Ends the current interval (emitting its span) and starts a new one.
  void reset() noexcept {
    if (!stopped_) {
      emit();
    }
    stopped_ = false;
    stopped_seconds_ = 0.0;
    start_ns_ = trace_now_ns();
    watch_.reset();
  }

 private:
  void emit() noexcept {
    if (!traced_) {
      return;
    }
    const std::uint64_t end_ns = trace_now_ns();
    const std::uint64_t dur = end_ns > start_ns_ ? end_ns - start_ns_ : 1;
    TraceBuffer::global().record(name_id_, /*lane=*/0, trace_thread_id(), start_ns_, dur);
  }

  bool traced_ = false;
  std::uint32_t name_id_ = 0;
  std::uint64_t start_ns_ = trace_now_ns();
  Stopwatch watch_;
  bool stopped_ = false;
  double stopped_seconds_ = 0.0;
};

}  // namespace riskan::obs
