#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  // Captured once at first use; fork() children inherit the static, so
  // worker span timestamps are directly comparable to the coordinator's.
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void json_escape_into(std::ostringstream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
}

}  // namespace

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - trace_epoch())
                                        .count());
}

std::uint64_t trace_thread_id() noexcept {
  static std::atomic<std::uint64_t> next{0};
  thread_local std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

std::mutex& thread_names_mutex() {
  static std::mutex m;
  return m;
}

std::vector<std::pair<std::uint64_t, std::string>>& thread_names_storage() {
  static std::vector<std::pair<std::uint64_t, std::string>> names;
  return names;
}

}  // namespace

void set_trace_thread_name(std::string_view name) {
  const std::uint64_t tid = trace_thread_id();
  std::lock_guard<std::mutex> lock(thread_names_mutex());
  auto& names = thread_names_storage();
  for (auto& [id, label] : names) {
    if (id == tid) {
      label = std::string(name);
      return;
    }
  }
  names.emplace_back(tid, std::string(name));
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity), slots_(std::make_unique<Slot[]>(capacity)) {
  RISKAN_REQUIRE(capacity > 0, "trace buffer capacity must be positive");
}

std::uint32_t TraceBuffer::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_mutex_);
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void TraceBuffer::record(std::uint32_t name_id, std::uint32_t lane, std::uint64_t tid,
                         std::uint64_t start_ns, std::uint64_t dur_ns) noexcept {
  if (!active()) {
    return;
  }
  const std::size_t slot_index = head_.fetch_add(1, std::memory_order_relaxed);
  if (slot_index >= capacity_) {
    // Full: drop rather than wrap — a truncated-at-the-end trace is far
    // easier to reason about than one with a silently overwritten prefix.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[slot_index];
  slot.event.name_id = name_id;
  slot.event.lane = lane;
  slot.event.tid = tid;
  slot.event.start_ns = start_ns;
  slot.event.dur_ns = dur_ns;
  slot.ready.store(1, std::memory_order_release);
}

void TraceBuffer::record_collected(const CollectedSpan& span) {
  record(intern(span.name), span.lane, span.tid, span.start_ns, span.dur_ns);
}

std::vector<CollectedSpan> TraceBuffer::collect(std::size_t from_index,
                                                std::size_t* next_index) const {
  const std::size_t end =
      std::min(head_.load(std::memory_order_relaxed), capacity_);
  std::vector<CollectedSpan> out;
  if (from_index < end) {
    out.reserve(end - from_index);
  }
  std::lock_guard<std::mutex> lock(names_mutex_);
  for (std::size_t i = from_index; i < end; ++i) {
    const Slot& slot = slots_[i];
    if (slot.ready.load(std::memory_order_acquire) == 0) {
      continue;  // reserved but not yet finished — skip, don't block
    }
    const TraceEvent& e = slot.event;
    CollectedSpan span;
    span.name = e.name_id < names_.size() ? names_[e.name_id] : "?";
    span.lane = e.lane;
    span.tid = e.tid;
    span.start_ns = e.start_ns;
    span.dur_ns = e.dur_ns;
    span.instant = e.dur_ns == 0;
    out.push_back(std::move(span));
  }
  if (next_index != nullptr) {
    *next_index = end;
  }
  return out;
}

std::size_t TraceBuffer::size() const noexcept {
  return std::min(head_.load(std::memory_order_relaxed), capacity_);
}

void TraceBuffer::reset() {
  const std::size_t used = std::min(head_.load(std::memory_order_relaxed), capacity_);
  for (std::size_t i = 0; i < used; ++i) {
    slots_[i].ready.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* buffer = [] {
    auto* b = new TraceBuffer();
    if (const char* path = std::getenv("RISKAN_TRACE"); path != nullptr && path[0] != '\0') {
      b->set_active(true);
      static std::string export_path;
      export_path = path;
      std::atexit([] {
        try {
          export_global_trace(export_path);
        } catch (...) {
          // atexit must not throw; a failed trace export is not worth a
          // terminate at shutdown.
        }
      });
    }
    return b;
  }();
  return *buffer;
}

Span::Span(std::uint32_t name_id) noexcept {
  TraceBuffer& buffer = TraceBuffer::global();
  if (!buffer.active()) {
    return;
  }
  name_id_ = name_id;
  start_ns_ = trace_now_ns();
  live_ = true;
}

void Span::stop() noexcept {
  if (!live_) {
    return;
  }
  live_ = false;
  std::uint64_t dur = trace_now_ns() - start_ns_;
  if (dur == 0) {
    dur = 1;  // keep it a complete event, not an instant
  }
  TraceBuffer::global().record(name_id_, /*lane=*/0, trace_thread_id(), start_ns_, dur);
}

void trace_instant(std::uint32_t name_id) noexcept {
  trace_instant(name_id, /*lane=*/0, trace_thread_id());
}

void trace_instant(std::uint32_t name_id, std::uint32_t lane, std::uint64_t tid) noexcept {
  TraceBuffer& buffer = TraceBuffer::global();
  if (!buffer.active()) {
    return;
  }
  buffer.record(name_id, lane, tid, trace_now_ns(), /*dur_ns=*/0);
}

std::uint32_t span_id(std::string_view name) { return TraceBuffer::global().intern(name); }

std::string chrome_trace_json(
    const std::vector<CollectedSpan>& spans,
    const std::vector<std::pair<std::uint64_t, std::string>>& thread_names) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  const auto emit_comma = [&] {
    if (!first) {
      out << ",\n";
    }
    first = false;
  };

  // Process-name metadata: pid 0 is the engine process, pid 1+k a worker
  // lane (chrome renders each pid as its own swimlane group).
  std::vector<std::uint32_t> lanes;
  for (const auto& s : spans) {
    bool seen = false;
    for (std::uint32_t lane : lanes) {
      if (lane == s.lane) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      lanes.push_back(s.lane);
    }
  }
  if (lanes.empty()) {
    lanes.push_back(0);
  }
  for (std::uint32_t lane : lanes) {
    emit_comma();
    out << R"({"name":"process_name","ph":"M","pid":)" << lane
        << R"(,"tid":0,"args":{"name":")";
    if (lane == 0) {
      out << "engine";
    } else {
      out << "worker " << (lane - 1);
    }
    out << R"("}})";
  }
  for (const auto& [tid, label] : thread_names) {
    emit_comma();
    out << R"({"name":"thread_name","ph":"M","pid":0,"tid":)" << tid
        << R"(,"args":{"name":")";
    json_escape_into(out, label);
    out << R"("}})";
  }

  for (const auto& s : spans) {
    emit_comma();
    // chrome trace ts/dur are microseconds (fractional allowed).
    const double ts_us = static_cast<double>(s.start_ns) / 1000.0;
    out << R"({"name":")";
    json_escape_into(out, s.name);
    out << R"(","pid":)" << s.lane << R"(,"tid":)" << s.tid;
    out.precision(3);
    out << std::fixed;
    if (s.instant) {
      out << R"(,"ph":"i","s":"t","ts":)" << ts_us << "}";
    } else {
      const double dur_us = static_cast<double>(s.dur_ns) / 1000.0;
      out << R"(,"ph":"X","ts":)" << ts_us << R"(,"dur":)" << dur_us << "}";
    }
    out.unsetf(std::ios_base::fixed);
  }
  out << "]\n";
  return out.str();
}

void export_global_trace(const std::string& path) {
  TraceBuffer& buffer = TraceBuffer::global();
  const std::vector<CollectedSpan> spans = buffer.collect();
  std::vector<std::pair<std::uint64_t, std::string>> names;
  {
    std::lock_guard<std::mutex> lock(thread_names_mutex());
    names = thread_names_storage();
  }
  const std::string json = chrome_trace_json(spans, names);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw IoError("cannot open trace output file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    throw IoError("short write exporting trace to: " + path);
  }
}

void start_global_trace() {
  TraceBuffer& buffer = TraceBuffer::global();
  buffer.reset();
  buffer.set_active(true);
}

}  // namespace riskan::obs
