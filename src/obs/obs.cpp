#include "obs/obs.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::obs {

namespace {

/// A path is writable up front iff its directory exists and permits
/// creation — probed by opening for append (created-then-empty files are
/// removed again). Validation-time probing keeps trace/report failures at
/// config time instead of after a long run.
bool path_writable(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return false;
  }
  // Only remove what the probe itself created (an empty file).
  const bool created_empty = std::ftell(f) == 0;
  std::fclose(f);
  if (created_empty) {
    std::remove(path.c_str());
  }
  return true;
}

}  // namespace

void validate_obs_config(const ObsConfig& config) {
  for (std::size_t i = 0; i < config.histogram_bounds.size(); ++i) {
    RISKAN_REQUIRE(std::isfinite(config.histogram_bounds[i]),
                   "obs.histogram_bounds must be finite");
    RISKAN_REQUIRE(i == 0 || config.histogram_bounds[i] > config.histogram_bounds[i - 1],
                   "obs.histogram_bounds must be strictly increasing");
  }
  if (!config.trace_path.empty()) {
    RISKAN_REQUIRE(path_writable(config.trace_path),
                   "obs.trace_path is not writable: " + config.trace_path);
  }
  if (!config.report_path.empty()) {
    RISKAN_REQUIRE(path_writable(config.report_path),
                   "obs.report_path is not writable: " + config.report_path);
  }
}

std::string ObsReport::to_json() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"seconds\":" << seconds << ",\"spans\":{\"recorded\":" << spans_recorded
      << ",\"dropped\":" << spans_dropped << "},\"metrics\":" << metrics.to_json() << "}";
  return out.str();
}

RunObsScope::RunObsScope(const ObsConfig& config) : config_(config) {
  if (!config_.any()) {
    return;
  }
  observing_ = true;
  if (!config_.trace_path.empty() && !TraceBuffer::global().active()) {
    start_global_trace();
    started_trace_ = true;
  }
  if (config_.collect_report || !config_.report_path.empty()) {
    before_ = MetricsRegistry::global().snapshot();
  }
  spans_before_ = TraceBuffer::global().size();
  dropped_before_ = TraceBuffer::global().dropped();
  watch_.reset();
}

RunObsScope::~RunObsScope() {
  // A run that threw still restores the trace state it flipped on; the
  // export/report happen only through finish().
  if (observing_ && !finished_ && started_trace_) {
    TraceBuffer::global().set_active(false);
  }
}

std::shared_ptr<const ObsReport> RunObsScope::finish() {
  if (!observing_ || finished_) {
    return nullptr;
  }
  finished_ = true;
  const double elapsed = watch_.seconds();

  std::shared_ptr<ObsReport> report;
  if (config_.collect_report || !config_.report_path.empty()) {
    report = std::make_shared<ObsReport>();
    report->metrics =
        RegistrySnapshot::delta(before_, MetricsRegistry::global().snapshot());
    report->seconds = elapsed;
  }

  TraceBuffer& buffer = TraceBuffer::global();
  const std::size_t spans_now = buffer.size();
  const std::uint64_t dropped_now = buffer.dropped();
  if (report != nullptr) {
    report->spans_recorded =
        spans_now >= spans_before_ ? spans_now - spans_before_ : spans_now;
    report->spans_dropped =
        dropped_now >= dropped_before_ ? dropped_now - dropped_before_ : dropped_now;
  }

  if (!config_.trace_path.empty()) {
    export_global_trace(config_.trace_path);
    if (started_trace_) {
      buffer.set_active(false);
    }
  }
  if (!config_.report_path.empty() && report != nullptr) {
    const std::string json = report->to_json();
    std::FILE* f = std::fopen(config_.report_path.c_str(), "wb");
    if (f == nullptr) {
      throw IoError("cannot open obs report file: " + config_.report_path);
    }
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const int close_rc = std::fclose(f);
    if (written != json.size() || close_rc != 0) {
      throw IoError("short write exporting obs report to: " + config_.report_path);
    }
  }
  return report;
}

}  // namespace riskan::obs
