// Scoped span tracing with chrome://tracing export.
//
// A Span is an RAII scope: construction records the start time, destruction
// (or explicit stop()) appends one event to a fixed-capacity ring buffer.
// Events carry a lane (process-level attribution: 0 = this process, 1+k =
// forked dist worker k, whose spans arrive over the pipe protocol as
// FrameType::Spans), a thread id, an interned name, and nanosecond
// timestamps against a process-wide steady_clock epoch. The epoch is
// captured at first use and inherited through fork(), so coordinator and
// worker spans share a timebase and line up in one timeline.
//
// The hot path is one atomic fetch_add to reserve a slot plus plain stores;
// a per-slot release/acquire ready flag makes concurrent export safe (an
// unfinished slot is simply skipped). When the buffer fills, new events are
// dropped and counted — tracing never blocks the engine.
//
// Export is the chrome://tracing JSON array format ("X" complete events,
// "i" instant events, process/thread name metadata), loadable in
// chrome://tracing or https://ui.perfetto.dev. Enable with
// `RISKAN_TRACE=<file>` (export at process exit) or per-run via
// `ObsConfig::trace_path` (export at end of run).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace riskan::obs {

/// One finished span or instant event, as stored in the ring.
struct TraceEvent {
  std::uint32_t name_id = 0;  ///< intern id; resolve via TraceBuffer
  std::uint32_t lane = 0;     ///< 0 = this process, 1+k = dist worker k
  std::uint64_t tid = 0;      ///< thread attribution within the lane
  std::uint64_t start_ns = 0; ///< since process trace epoch
  std::uint64_t dur_ns = 0;   ///< 0 ⇒ instant event
};

/// A decoded event with its name materialized — the export/wire unit.
struct CollectedSpan {
  std::string name;
  std::uint32_t lane = 0;
  std::uint64_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  bool instant = false;
};

class TraceBuffer {
 public:
  /// Default ~64k events (~2 MiB) — enough for a full bench run.
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  bool active() const noexcept { return active_.load(std::memory_order_relaxed); }
  void set_active(bool on) noexcept { active_.store(on, std::memory_order_relaxed); }

  /// Interns `name`, returns a stable id for record(). Takes a mutex —
  /// call once per site (static local), not per event.
  std::uint32_t intern(std::string_view name);

  /// Appends a finished span (dur_ns > 0) or instant event (dur_ns == 0).
  /// Lock-free; drops (and counts) when the ring is full or inactive.
  void record(std::uint32_t name_id, std::uint32_t lane, std::uint64_t tid,
              std::uint64_t start_ns, std::uint64_t dur_ns) noexcept;

  /// Appends an already-collected span (dist forwarding ingestion path:
  /// the name arrives as a string because intern ids diverge across
  /// processes).
  void record_collected(const CollectedSpan& span);

  /// Snapshot of all completed events at or after `from_index`, names
  /// resolved. Safe concurrent with writers. Sets `next_index` (when
  /// non-null) to the cursor to pass next time for an incremental drain.
  std::vector<CollectedSpan> collect(std::size_t from_index = 0,
                                     std::size_t* next_index = nullptr) const;

  std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }
  std::size_t size() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Clears events and drop count (interned names survive). Not safe
  /// concurrent with writers — call between runs / after fork.
  void reset();

  /// Process-wide buffer, default-inactive unless RISKAN_TRACE is set
  /// (which also registers an atexit export to that path). Forked dist
  /// workers inherit it; the worker loop resets it and forwards spans
  /// explicitly — workers exit via _exit so the atexit export never
  /// fires in children.
  static TraceBuffer& global();

 private:
  struct Slot {
    TraceEvent event;
    std::atomic<std::uint8_t> ready{0};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> active_{false};

  mutable std::mutex names_mutex_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::vector<std::string> names_;
};

/// Nanoseconds since the process trace epoch (steady_clock, captured at
/// first use; survives fork so parent/child timestamps are comparable).
std::uint64_t trace_now_ns() noexcept;

/// Stable per-thread id for span attribution (small dense ints, not OS
/// tids, so chrome trace lanes stay compact).
std::uint64_t trace_thread_id() noexcept;

/// Labels the calling thread in exported traces (e.g. "prefetch").
void set_trace_thread_name(std::string_view name);

/// RAII span against the global buffer. Construction is a no-op when
/// tracing is inactive. `name` must outlive the program (string literal) —
/// it is interned once per call site via a static id cache keyed by
/// pointer; pass dynamic names through Span(id) with an explicit intern.
class Span {
 public:
  explicit Span(std::uint32_t name_id) noexcept;
  ~Span() { stop(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span now (idempotent).
  void stop() noexcept;

 private:
  std::uint32_t name_id_ = 0;
  std::uint64_t start_ns_ = 0;
  bool live_ = false;
};

/// Records an instant event ("i" in the chrome trace) on the global
/// buffer; no-op when inactive.
void trace_instant(std::uint32_t name_id) noexcept;
void trace_instant(std::uint32_t name_id, std::uint32_t lane,
                   std::uint64_t tid) noexcept;

/// Interns `name` in the global buffer once and caches the id in a
/// function-local static — the intended way to make span/instant ids.
/// Usage:  static const auto id = obs::span_id("exec.execute");
std::uint32_t span_id(std::string_view name);

/// Serializes spans as a chrome://tracing JSON document. Lane 0 is
/// "engine", lane 1+k is "worker k"; thread-name metadata rows come from
/// `thread_names` (tid → label) and apply to lane 0.
std::string chrome_trace_json(
    const std::vector<CollectedSpan>& spans,
    const std::vector<std::pair<std::uint64_t, std::string>>& thread_names = {});

/// Collects the global buffer and writes chrome_trace_json to `path`.
/// Throws IoError on failure.
void export_global_trace(const std::string& path);

/// Starts global tracing (activates the buffer after a reset).
void start_global_trace();

// ---- macro sugar -----------------------------------------------------------
// RISKAN_SPAN("name") — one RAII span for the enclosing scope; the id is
// interned once (function-local static), the Span itself is a no-op when
// tracing is inactive.

#define RISKAN_OBS_CONCAT_INNER(a, b) a##b
#define RISKAN_OBS_CONCAT(a, b) RISKAN_OBS_CONCAT_INNER(a, b)
#define RISKAN_SPAN(name_literal)                                             \
  static const std::uint32_t RISKAN_OBS_CONCAT(riskan_span_id_, __LINE__) =   \
      ::riskan::obs::span_id(name_literal);                                   \
  ::riskan::obs::Span RISKAN_OBS_CONCAT(riskan_span_, __LINE__)(              \
      RISKAN_OBS_CONCAT(riskan_span_id_, __LINE__))

}  // namespace riskan::obs
