#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/require.hpp"

namespace riskan::obs {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("RISKAN_OBS");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

void append_json_number(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "0";  // JSON has no inf/nan; only reachable via user-fed gauges
    return;
  }
  out.precision(17);
  out << v;
}

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t idx = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

}  // namespace detail

std::span<const double> default_seconds_bounds() noexcept {
  // Powers of two from 1 µs to 64 s: wide enough for any engine stage,
  // narrow enough (27 edges) that the bucket walk stays trivial.
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double edge = 1e-6; edge <= 64.0; edge *= 2.0) {
      b.push_back(edge);
    }
    return b;
  }();
  return bounds;
}

double HistogramValue::quantile(double q) const {
  RISKAN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (count == 0) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Bucket b spans (lower, upper]; interpolate by in-bucket position.
      double lower = b == 0 ? min : bounds[b - 1];
      double upper = b < bounds.size() ? bounds[b] : max;
      lower = std::max(lower, min);
      upper = std::min(upper, max);
      if (upper <= lower) {
        return lower;
      }
      const double pos =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(pos, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return max;
}

const CounterValue* RegistrySnapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const GaugeValue* RegistrySnapshot::gauge(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) {
      return &g;
    }
  }
  return nullptr;
}

const HistogramValue* RegistrySnapshot::histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

double RegistrySnapshot::counter_value(std::string_view name) const noexcept {
  const CounterValue* c = counter(name);
  return c == nullptr ? 0.0 : c->value;
}

RegistrySnapshot RegistrySnapshot::delta(const RegistrySnapshot& before,
                                         const RegistrySnapshot& after) {
  RegistrySnapshot out;
  out.counters.reserve(after.counters.size());
  for (const auto& a : after.counters) {
    const CounterValue* b = before.counter(a.name);
    out.counters.push_back(
        {a.name, std::max(0.0, a.value - (b == nullptr ? 0.0 : b->value))});
  }
  out.gauges = after.gauges;
  out.histograms.reserve(after.histograms.size());
  for (const auto& a : after.histograms) {
    const HistogramValue* b = before.histogram(a.name);
    HistogramValue h = a;
    if (b != nullptr && b->bounds == a.bounds) {
      for (std::size_t i = 0; i < h.counts.size() && i < b->counts.size(); ++i) {
        h.counts[i] = h.counts[i] >= b->counts[i] ? h.counts[i] - b->counts[i] : 0;
      }
      h.count = h.count >= b->count ? h.count - b->count : 0;
      h.sum = std::max(0.0, h.sum - b->sum);
      // min/max keep `after`'s values — whole-run extremes are still
      // informative for the window and exact windows aren't recoverable
      // from folded extremes.
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

std::string RegistrySnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    append_json_string(out, counters[i].name);
    out << ":";
    append_json_number(out, counters[i].value);
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    append_json_string(out, gauges[i].name);
    out << ":";
    append_json_number(out, gauges[i].value);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i != 0) {
      out << ",";
    }
    append_json_string(out, h.name);
    out << ":{\"count\":" << h.count << ",\"sum\":";
    append_json_number(out, h.sum);
    out << ",\"min\":";
    append_json_number(out, h.count == 0 ? 0.0 : h.min);
    out << ",\"max\":";
    append_json_number(out, h.count == 0 ? 0.0 : h.max);
    out << ",\"mean\":";
    append_json_number(out, h.mean());
    out << ",\"p50\":";
    append_json_number(out, h.p50());
    out << ",\"p95\":";
    append_json_number(out, h.p95());
    out << ",\"p99\":";
    append_json_number(out, h.p99());
    out << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) {
        out << ",";
      }
      out << h.counts[b];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(std::string_view name) {
  for (auto& e : entries_) {
    if (e->name == name) {
      return e.get();
    }
  }
  return nullptr;
}

Counter MetricsRegistry::counter(std::string_view name) {
  RISKAN_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find_locked(name)) {
    RISKAN_REQUIRE(e->kind == Kind::Counter,
                   "metric registered with a different kind: " + std::string(name));
    return Counter(e->counter.get(), this);
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = Kind::Counter;
  entry->counter = std::make_unique<detail::CounterStorage>();
  Counter handle(entry->counter.get(), this);
  entries_.push_back(std::move(entry));
  return handle;
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  RISKAN_REQUIRE(!name.empty(), "metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find_locked(name)) {
    RISKAN_REQUIRE(e->kind == Kind::Gauge,
                   "metric registered with a different kind: " + std::string(name));
    return Gauge(e->gauge.get(), this);
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = Kind::Gauge;
  entry->gauge = std::make_unique<detail::GaugeStorage>();
  Gauge handle(entry->gauge.get(), this);
  entries_.push_back(std::move(entry));
  return handle;
}

Histogram MetricsRegistry::histogram(std::string_view name, std::span<const double> bounds) {
  RISKAN_REQUIRE(!name.empty(), "metric name must be non-empty");
  if (bounds.empty()) {
    bounds = default_seconds_bounds();
  }
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    RISKAN_REQUIRE(std::isfinite(bounds[i]), "histogram bounds must be finite");
    RISKAN_REQUIRE(i == 0 || bounds[i] > bounds[i - 1],
                   "histogram bounds must be strictly increasing");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* e = find_locked(name)) {
    RISKAN_REQUIRE(e->kind == Kind::Histogram,
                   "metric registered with a different kind: " + std::string(name));
    RISKAN_REQUIRE(std::equal(bounds.begin(), bounds.end(), e->histogram->bounds.begin(),
                              e->histogram->bounds.end()),
                   "histogram re-registered with different bounds: " + std::string(name));
    return Histogram(e->histogram.get(), this);
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = Kind::Histogram;
  entry->histogram = std::make_unique<detail::HistogramStorage>();
  entry->histogram->bounds.assign(bounds.begin(), bounds.end());
  const std::size_t buckets = bounds.size() + 1;
  for (auto& shard : entry->histogram->shards) {
    shard.counts = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
  Histogram handle(entry->histogram.get(), this);
  entries_.push_back(std::move(entry));
  return handle;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Kind::Counter: {
        double total = 0.0;
        for (const auto& cell : e->counter->cells) {
          total += cell.value.load(std::memory_order_relaxed);
        }
        snap.counters.push_back({e->name, total});
        break;
      }
      case Kind::Gauge:
        snap.gauges.push_back({e->name, e->gauge->value.load(std::memory_order_relaxed)});
        break;
      case Kind::Histogram: {
        const auto& storage = *e->histogram;
        HistogramValue h;
        h.name = e->name;
        h.bounds = storage.bounds;
        h.counts.assign(storage.bounds.size() + 1, 0);
        double hmin = std::numeric_limits<double>::infinity();
        double hmax = -std::numeric_limits<double>::infinity();
        for (const auto& shard : storage.shards) {
          for (std::size_t b = 0; b < h.counts.size(); ++b) {
            h.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
          }
          h.count += shard.count.load(std::memory_order_relaxed);
          h.sum += shard.sum.load(std::memory_order_relaxed);
          hmin = std::min(hmin, shard.min.load(std::memory_order_relaxed));
          hmax = std::max(hmax, shard.max.load(std::memory_order_relaxed));
        }
        h.min = h.count == 0 ? 0.0 : hmin;
        h.max = h.count == 0 ? 0.0 : hmax;
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::fold_into(MetricsRegistry& target, const std::string& prefix) const {
  const RegistrySnapshot snap = snapshot();
  for (const auto& c : snap.counters) {
    if (c.value != 0.0) {
      target.counter(prefix + c.name).add(c.value);
    }
  }
  for (const auto& g : snap.gauges) {
    target.gauge(prefix + g.name).set(g.value);
  }
  for (const auto& h : snap.histograms) {
    if (h.count == 0) {
      continue;
    }
    // Re-observing bucket midpoints would distort sum/min/max; fold the
    // raw shard contents instead so the target's folded view is exact.
    Histogram handle = target.histogram(prefix + h.name, h.bounds);
    if (!handle.valid() || !target.armed()) {
      continue;
    }
    auto& shard = handle.storage_->shards[detail::shard_index()];
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      shard.counts[b].fetch_add(h.counts[b], std::memory_order_relaxed);
    }
    shard.count.fetch_add(h.count, std::memory_order_relaxed);
    detail::atomic_add(shard.sum, h.sum);
    detail::atomic_min(shard.min, h.min);
    detail::atomic_max(shard.max, h.max);
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& e : entries_) {
    switch (e->kind) {
      case Kind::Counter:
        for (auto& cell : e->counter->cells) {
          cell.value.store(0.0, std::memory_order_relaxed);
        }
        break;
      case Kind::Gauge:
        e->gauge->value.store(0.0, std::memory_order_relaxed);
        break;
      case Kind::Histogram:
        for (auto& shard : e->histogram->shards) {
          for (std::size_t b = 0; b < e->histogram->bounds.size() + 1; ++b) {
            shard.counts[b].store(0, std::memory_order_relaxed);
          }
          shard.count.store(0, std::memory_order_relaxed);
          shard.sum.store(0.0, std::memory_order_relaxed);
          shard.min.store(std::numeric_limits<double>::infinity(),
                          std::memory_order_relaxed);
          shard.max.store(-std::numeric_limits<double>::infinity(),
                          std::memory_order_relaxed);
        }
        break;
    }
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry(/*honor_global_toggle=*/true);
  return *registry;
}

}  // namespace riskan::obs
