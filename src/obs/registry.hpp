// Metrics registry — the process-wide source of truth for engine counters.
//
// Every layer of the engine (resolver cache, data plane, executors, dist
// runtime, adaptive controller, scenario planner) publishes its telemetry
// as named metrics in a MetricsRegistry instead of hand-maintained stat
// structs. Three kinds:
//
//   Counter   — monotonically added doubles ("exec.executions",
//               "dist.blocks_retried", "data.bytes_read").
//   Gauge     — last-write-wins level ("dist.blocks_total").
//   Histogram — fixed upper-edge buckets with count/sum/min/max and
//               p50/p95/p99 extraction by in-bucket linear interpolation
//               ("exec.execute_seconds").
//
// The hot path is lock-free: each metric's storage is split into kShards
// per-thread slots (a thread owns one shard for its lifetime; writes are
// relaxed atomic adds to its own slot, so concurrent writers never contend
// on a cache line except past kShards threads). Reads fold the shards —
// snapshot() is the only place values meet. Registration (name → handle)
// takes a mutex, is idempotent per (name, kind), and is expected to happen
// once per call site (static handle), never per operation.
//
// When observability is disabled (set_enabled(false) or RISKAN_OBS=0),
// every handle operation on the global registry reduces to one relaxed
// atomic load and a predicted branch — near-zero cost, no allocation, no
// stores. Run-scoped registries (e.g. the dist coordinator's stats ledger)
// are always armed: they ARE the stats mechanism, not optional telemetry.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace riskan::obs {

/// Process-wide master switch for the *global* registry and trace buffer.
/// Initialised from the environment: RISKAN_OBS=0 disables.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Per-thread shard slots per metric. Threads beyond kShards share slots
/// (atomics keep that correct, merely contended).
inline constexpr std::size_t kShards = 16;

namespace detail {

/// Stable per-thread shard index in [0, kShards).
std::size_t shard_index() noexcept;

inline void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                             std::memory_order_relaxed)) {
  }
}

/// One shard slot, cache-line-isolated so concurrent writers on different
/// shards never false-share.
struct alignas(64) CounterCell {
  std::atomic<double> value{0.0};
};

struct CounterStorage {
  std::array<CounterCell, kShards> cells;
};

struct GaugeStorage {
  std::atomic<double> value{0.0};
};

struct alignas(64) HistogramShard {
  /// bounds.size() + 1 buckets: (-inf, b0], (b0, b1], ..., (b_last, +inf).
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct HistogramStorage {
  std::vector<double> bounds;  ///< strictly increasing upper bucket edges
  std::array<HistogramShard, kShards> shards;
};

}  // namespace detail

class MetricsRegistry;

/// Cheap, trivially-copyable handle to a registered counter. A
/// default-constructed handle is inert (all operations no-op).
class Counter {
 public:
  Counter() = default;

  void add(double v = 1.0) const noexcept;
  /// Handle-is-registered check (NOT the enabled state).
  bool valid() const noexcept { return storage_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(detail::CounterStorage* storage, const MetricsRegistry* owner) noexcept
      : storage_(storage), owner_(owner) {}

  detail::CounterStorage* storage_ = nullptr;
  const MetricsRegistry* owner_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;

  void set(double v) const noexcept;
  bool valid() const noexcept { return storage_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Gauge(detail::GaugeStorage* storage, const MetricsRegistry* owner) noexcept
      : storage_(storage), owner_(owner) {}

  detail::GaugeStorage* storage_ = nullptr;
  const MetricsRegistry* owner_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;

  void observe(double v) const noexcept;
  bool valid() const noexcept { return storage_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(detail::HistogramStorage* storage, const MetricsRegistry* owner) noexcept
      : storage_(storage), owner_(owner) {}

  detail::HistogramStorage* storage_ = nullptr;
  const MetricsRegistry* owner_ = nullptr;
};

/// Folded read of one counter at snapshot time.
struct CounterValue {
  std::string name;
  double value = 0.0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
};

/// Folded read of one histogram, with percentile extraction.
struct HistogramValue {
  std::string name;
  std::vector<double> bounds;           ///< upper edges (bounds.size()+1 buckets)
  std::vector<std::uint64_t> counts;    ///< per-bucket observation counts
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;

  double mean() const noexcept { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Quantile by cumulative bucket walk with linear interpolation inside
  /// the landing bucket; the open first/last buckets are clamped to the
  /// observed min/max. Exact when a bucket holds one distinct value;
  /// otherwise within one bucket's width. q in [0, 1].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

/// Point-in-time folded view of a registry.
struct RegistrySnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// nullptr when the metric is absent.
  const CounterValue* counter(std::string_view name) const noexcept;
  const GaugeValue* gauge(std::string_view name) const noexcept;
  const HistogramValue* histogram(std::string_view name) const noexcept;
  /// 0 when absent — the common "how many so far" read.
  double counter_value(std::string_view name) const noexcept;

  /// after − before: counters and histogram counts/sums subtract (clamped
  /// at 0 for robustness against resets); gauges and histogram min/max
  /// take `after`'s values; metrics absent from `before` pass through.
  static RegistrySnapshot delta(const RegistrySnapshot& before,
                                const RegistrySnapshot& after);

  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, min, max, p50, p95, p99, buckets: [...]}}}.
  std::string to_json() const;
};

/// Default histogram edges for durations in seconds: powers of two from
/// 1 µs to ~64 s (27 edges, 28 buckets).
std::span<const double> default_seconds_bounds() noexcept;

class MetricsRegistry {
 public:
  /// `honor_global_toggle` couples this registry's hot path to
  /// obs::enabled(); run-scoped stat registries pass false (always armed).
  explicit MetricsRegistry(bool honor_global_toggle = false)
      : honor_global_(honor_global_toggle) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) a metric by name. Idempotent for the same
  /// (name, kind); a kind clash or a histogram bounds clash is a
  /// ContractViolation — one name, one meaning.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must be strictly increasing and finite; empty selects
  /// default_seconds_bounds().
  Histogram histogram(std::string_view name, std::span<const double> bounds = {});

  bool armed() const noexcept { return !honor_global_ || enabled(); }

  /// Folds all shards into a consistent-enough view (each metric is folded
  /// atomically per slot; cross-metric skew is possible under concurrent
  /// writers, as with any live metrics read).
  RegistrySnapshot snapshot() const;

  /// Adds this registry's folded counter values and histogram contents
  /// into `target` (registering names on demand, with `prefix` prepended).
  /// Gauges are set last-write-wins. Used to fold a run-scoped stats
  /// ledger into the process-wide registry at end of run.
  void fold_into(MetricsRegistry& target, const std::string& prefix = "") const;

  /// Zeroes every metric's shards (registrations survive).
  void reset();

  /// The process-wide registry every layer's instrumentation lands in.
  static MetricsRegistry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind { Counter, Gauge, Histogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    std::unique_ptr<detail::CounterStorage> counter;
    std::unique_ptr<detail::GaugeStorage> gauge;
    std::unique_ptr<detail::HistogramStorage> histogram;
  };

  Entry* find_locked(std::string_view name);

  bool honor_global_;
  mutable std::mutex mutex_;
  /// Entries are stable: push_back only, storage behind unique_ptr, so
  /// handles (raw storage pointers) stay valid for the registry lifetime.
  std::vector<std::unique_ptr<Entry>> entries_;
};

// ---- inline hot paths ------------------------------------------------------

inline void Counter::add(double v) const noexcept {
  if (storage_ == nullptr || !owner_->armed()) {
    return;
  }
  detail::atomic_add(storage_->cells[detail::shard_index()].value, v);
}

inline void Gauge::set(double v) const noexcept {
  if (storage_ == nullptr || !owner_->armed()) {
    return;
  }
  storage_->value.store(v, std::memory_order_relaxed);
}

inline void Histogram::observe(double v) const noexcept {
  if (storage_ == nullptr || !owner_->armed()) {
    return;
  }
  auto& shard = storage_->shards[detail::shard_index()];
  // Branchless-ish upper_bound over the (small) edge vector.
  const auto& bounds = storage_->bounds;
  std::size_t bucket = 0;
  while (bucket < bounds.size() && v > bounds[bucket]) {
    ++bucket;
  }
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(shard.sum, v);
  detail::atomic_min(shard.min, v);
  detail::atomic_max(shard.max, v);
}

}  // namespace riskan::obs
