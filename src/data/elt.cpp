#include "data/elt.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace riskan::data {

EventLossTable EventLossTable::from_rows(std::vector<EltRow> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const EltRow& a, const EltRow& b) { return a.event_id < b.event_id; });
  for (std::size_t i = 1; i < rows.size(); ++i) {
    RISKAN_REQUIRE(rows[i].event_id != rows[i - 1].event_id,
                   "duplicate event id in ELT; merge rows upstream");
  }

  EventLossTable table;
  table.event_ids_.reserve(rows.size());
  table.mean_.reserve(rows.size());
  table.sigma_.reserve(rows.size());
  table.exposure_.reserve(rows.size());
  for (const auto& row : rows) {
    RISKAN_REQUIRE(row.mean_loss >= 0.0, "ELT mean loss must be non-negative");
    RISKAN_REQUIRE(row.sigma_loss >= 0.0, "ELT sigma must be non-negative");
    RISKAN_REQUIRE(row.exposure >= row.mean_loss,
                   "ELT exposure (max loss) must dominate the mean");
    table.event_ids_.push_back(row.event_id);
    table.mean_.push_back(row.mean_loss);
    table.sigma_.push_back(row.sigma_loss);
    table.exposure_.push_back(row.exposure);
  }

  // Dense event→row lookup, built once at table construction when the id
  // range is compact enough (bounded blowup: at most 64 lookup slots — 256
  // bytes — per row, or the 4096-slot floor for small tables). Catalogue
  // ids are dense in practice; sparse/hashed id spaces fall back to find().
  if (!table.event_ids_.empty()) {
    const std::uint64_t span64 = static_cast<std::uint64_t>(table.event_ids_.back()) + 1;
    const std::uint64_t budget =
        std::max<std::uint64_t>(4096, 64 * static_cast<std::uint64_t>(rows.size()));
    if (span64 <= budget) {
      table.row_lookup_.assign(static_cast<std::size_t>(span64), kNoRow);
      for (std::size_t r = 0; r < table.event_ids_.size(); ++r) {
        table.row_lookup_[table.event_ids_[r]] = static_cast<std::uint32_t>(r);
      }
    }
  }
  RISKAN_DEBUG_ASSERT_ALIGNED(table.event_ids_.data());
  RISKAN_DEBUG_ASSERT_ALIGNED(table.mean_.data());
  RISKAN_DEBUG_ASSERT_ALIGNED(table.sigma_.data());
  RISKAN_DEBUG_ASSERT_ALIGNED(table.exposure_.data());
  return table;
}

std::size_t EventLossTable::find(EventId event) const noexcept {
  const auto it = std::lower_bound(event_ids_.begin(), event_ids_.end(), event);
  if (it == event_ids_.end() || *it != event) {
    return npos;
  }
  return static_cast<std::size_t>(it - event_ids_.begin());
}

EltRow EventLossTable::row(std::size_t index) const {
  RISKAN_REQUIRE(index < size(), "ELT row index out of range");
  return EltRow{event_ids_[index], mean_[index], sigma_[index], exposure_[index]};
}

Money EventLossTable::total_mean_loss() const noexcept {
  Money total = 0.0;
  for (const Money m : mean_) {
    total += m;
  }
  return total;
}

std::size_t EventLossTable::byte_size() const noexcept {
  return event_ids_.size() * sizeof(EventId) + mean_.size() * sizeof(Money) +
         sigma_.size() * sizeof(Money) + exposure_.size() * sizeof(Money);
}

}  // namespace riskan::data
