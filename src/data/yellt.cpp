#include "data/yellt.hpp"

#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan::data {

YelltStream::YelltStream(const YearEventLossTable& yelt,
                         std::span<const EventLossTable> contract_elts,
                         LocationId locations_per_contract, std::uint64_t seed)
    : yelt_(yelt), elts_(contract_elts), locations_(locations_per_contract), seed_(seed) {
  RISKAN_REQUIRE(locations_per_contract > 0, "need at least one location per contract");
  RISKAN_REQUIRE(!contract_elts.empty(), "need at least one contract ELT");
}

std::uint64_t YelltStream::for_each(
    const std::function<void(const YelltRecord&)>& sink) const {
  std::uint64_t emitted = 0;
  const auto trials = yelt_.trials();
  for (TrialId t = 0; t < trials; ++t) {
    const auto events = yelt_.trial_events(t);
    for (const EventId event : events) {
      for (ContractId c = 0; c < elts_.size(); ++c) {
        const auto& elt = elts_[c];
        const auto idx = elt.find(event);
        if (idx == EventLossTable::npos) {
          continue;
        }
        const Money event_loss = elt.mean_loss()[idx];

        // Disaggregate the event loss over locations with weights derived
        // from a deterministic hash. Weights w_l = mix(seed,c,e,l) in
        // (0,1); normalising by their sum keeps the marginal exact.
        double weight_sum = 0.0;
        for (LocationId l = 0; l < locations_; ++l) {
          weight_sum += to_unit_double_open(
              mix64(seed_ ^ (static_cast<std::uint64_t>(c) << 40) ^
                    (static_cast<std::uint64_t>(event) << 16) ^ l));
        }
        for (LocationId l = 0; l < locations_; ++l) {
          const double w = to_unit_double_open(
              mix64(seed_ ^ (static_cast<std::uint64_t>(c) << 40) ^
                    (static_cast<std::uint64_t>(event) << 16) ^ l));
          YelltRecord rec;
          rec.trial = t;
          rec.event = event;
          rec.contract = c;
          rec.location = l;
          rec.loss = event_loss * (w / weight_sum);
          sink(rec);
          ++emitted;
        }
      }
    }
  }
  return emitted;
}

std::uint64_t YelltStream::count_entries() const {
  // occurrences(trial) x contracts-with-loss(event) x locations.
  std::uint64_t entries = 0;
  const auto trials = yelt_.trials();
  for (TrialId t = 0; t < trials; ++t) {
    for (const EventId event : yelt_.trial_events(t)) {
      std::uint64_t hit_contracts = 0;
      for (const auto& elt : elts_) {
        if (elt.find(event) != EventLossTable::npos) {
          ++hit_contracts;
        }
      }
      entries += hit_contracts * locations_;
    }
  }
  return entries;
}

double YelltStream::entries_for_sizing(double contracts, double events, double locations,
                                       double trials) {
  return contracts * events * locations * trials;
}

std::vector<YelltRecord> YelltStream::materialise(std::uint64_t cap) const {
  const auto entries = count_entries();
  RISKAN_REQUIRE(entries <= cap,
                 "refusing to materialise YELLT above cap — this is the paper's point");
  std::vector<YelltRecord> out;
  out.reserve(entries);
  for_each([&out](const YelltRecord& rec) { out.push_back(rec); });
  return out;
}

}  // namespace riskan::data
