#include "data/serialize.hpp"

#include <limits>

#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::data {

namespace {

constexpr std::uint32_t kEltMagic = 0x454C5431;   // "ELT1"
constexpr std::uint32_t kYeltMagic = 0x59454C31;  // "YEL1"
constexpr std::uint32_t kYltMagic = 0x594C5431;   // "YLT1"
constexpr std::uint32_t kVersion = 1;

void check_header(ByteReader& reader, std::uint32_t magic, const char* what) {
  RISKAN_REQUIRE(reader.u32() == magic, std::string("bad magic for ") + what);
  RISKAN_REQUIRE(reader.u32() == kVersion, std::string("unsupported version for ") + what);
}

}  // namespace

void encode(const EventLossTable& table, ByteWriter& writer) {
  writer.u32(kEltMagic);
  writer.u32(kVersion);
  writer.u64(table.size());
  for (const auto id : table.event_ids()) {
    writer.u32(id);
  }
  for (const auto v : table.mean_loss()) {
    writer.f64(v);
  }
  for (const auto v : table.sigma_loss()) {
    writer.f64(v);
  }
  for (const auto v : table.exposure()) {
    writer.f64(v);
  }
}

EventLossTable decode_elt(ByteReader& reader) {
  check_header(reader, kEltMagic, "ELT");
  const auto n = reader.u64();
  std::vector<EltRow> rows(n);
  for (auto& row : rows) {
    row.event_id = reader.u32();
  }
  for (auto& row : rows) {
    row.mean_loss = reader.f64();
  }
  for (auto& row : rows) {
    row.sigma_loss = reader.f64();
  }
  for (auto& row : rows) {
    row.exposure = reader.f64();
  }
  return EventLossTable::from_rows(std::move(rows));
}

void encode(const YearEventLossTable& table, ByteWriter& writer) {
  writer.u32(kYeltMagic);
  writer.u32(kVersion);
  writer.u64(table.trials());
  writer.u64(table.entries());
  for (const auto off : table.offsets()) {
    writer.u64(off);
  }
  for (const auto e : table.events()) {
    writer.u32(e);
  }
  for (const auto d : table.days()) {
    writer.u32(d);  // widened for alignment simplicity
  }
}

void encode_yelt_slice(const YearEventLossTable& table, TrialId lo, TrialId hi,
                       ByteWriter& writer) {
  RISKAN_REQUIRE(lo <= hi && hi <= table.trials(), "YELT slice range out of bounds");
  const auto offsets = table.offsets();
  const std::uint64_t entry_lo = offsets.empty() ? 0 : offsets[lo];
  const std::uint64_t entry_hi = offsets.empty() ? 0 : offsets[hi];

  writer.u32(kYeltMagic);
  writer.u32(kVersion);
  writer.u64(hi - lo);
  writer.u64(entry_hi - entry_lo);
  if (offsets.empty()) {
    writer.u64(0);  // a 0-trial table still carries its terminating offset
  } else {
    for (TrialId t = lo; t <= hi; ++t) {
      writer.u64(offsets[t] - entry_lo);
    }
  }
  const auto events = table.events().subspan(entry_lo, entry_hi - entry_lo);
  for (const auto e : events) {
    writer.u32(e);
  }
  const auto days = table.days().subspan(entry_lo, entry_hi - entry_lo);
  for (const auto d : days) {
    writer.u32(d);  // widened for alignment simplicity, as in encode()
  }
}

TrialId peek_yelt_trials(std::span<const std::byte> header) {
  ByteReader reader(header);
  check_header(reader, kYeltMagic, "YELT");
  const std::uint64_t trials = reader.u64();
  // Header bytes always come off storage (or the wire), so an absurd count
  // is damaged data — the typed, retryable error, not a programmer bug.
  if (trials > std::numeric_limits<TrialId>::max()) {
    throw CorruptChunkError("encoded YELT trial count overflows TrialId");
  }
  return static_cast<TrialId>(trials);
}

YearEventLossTable decode_yelt(ByteReader& reader) {
  check_header(reader, kYeltMagic, "YELT");
  const auto trials = reader.u64();
  const auto entries = reader.u64();

  std::vector<std::uint64_t> offsets(trials + 1);
  for (auto& off : offsets) {
    off = reader.u64();
  }
  std::vector<EventId> events(entries);
  for (auto& e : events) {
    e = reader.u32();
  }
  std::vector<std::uint16_t> days(entries);
  for (auto& d : days) {
    d = static_cast<std::uint16_t>(reader.u32());
  }

  YearEventLossTable::Builder builder(static_cast<TrialId>(trials));
  for (std::uint64_t t = 0; t < trials; ++t) {
    builder.begin_trial();
    for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
      builder.add(events[i], days[i]);
    }
  }
  auto table = builder.finish();
  RISKAN_ENSURE(table.entries() == entries, "YELT decode entry-count mismatch");
  return table;
}

void encode(const YearLossTable& table, ByteWriter& writer) {
  writer.u32(kYltMagic);
  writer.u32(kVersion);
  writer.str(table.label());
  writer.u64(table.trials());
  for (const auto loss : table.losses()) {
    writer.f64(loss);
  }
}

YearLossTable decode_ylt(ByteReader& reader) {
  check_header(reader, kYltMagic, "YLT");
  auto label = reader.str();
  const auto trials = reader.u64();
  std::vector<Money> losses(trials);
  for (auto& loss : losses) {
    loss = reader.f64();
  }
  return YearLossTable(std::move(losses), std::move(label));
}

namespace {

template <typename Table>
void save_impl(const Table& table, const std::string& path) {
  ByteWriter writer;
  encode(table, writer);
  write_file(path, writer.buffer());
}

}  // namespace

void save_elt(const EventLossTable& table, const std::string& path) {
  save_impl(table, path);
}

EventLossTable load_elt(const std::string& path) {
  const auto data = read_file(path);
  ByteReader reader(data);
  return decode_elt(reader);
}

void save_yelt(const YearEventLossTable& table, const std::string& path) {
  save_impl(table, path);
}

YearEventLossTable load_yelt(const std::string& path) {
  const auto data = read_file(path);
  ByteReader reader(data);
  return decode_yelt(reader);
}

void save_ylt(const YearLossTable& table, const std::string& path) {
  save_impl(table, path);
}

YearLossTable load_ylt(const std::string& path) {
  const auto data = read_file(path);
  ByteReader reader(data);
  return decode_ylt(reader);
}

}  // namespace riskan::data
