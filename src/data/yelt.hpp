// Year-Event-Loss Table (YELT) — the pre-simulated "consistent lens" of
// stage 2.
//
// The paper: "rather than using random values generated on-the-fly, a
// pre-simulated Year-Event-Loss Table containing between several thousand
// and millions of alternative views of a single contractual year is used."
//
// Each trial is one alternative realisation of the contractual year: an
// ordered sequence of (event id, day) occurrences. Storage is CSR-style
// columnar: an offsets array of length trials()+1 plus parallel columns for
// event ids and days. Aggregate analysis scans a trial's slice start to
// finish — this is the access pattern the whole paper's "scan, don't seek"
// argument is about, and the layout makes the scan a linear walk of two
// arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/prng.hpp"
#include "util/types.hpp"

namespace riskan::data {

/// One event occurrence inside a trial year.
struct YeltEntry {
  EventId event_id = 0;
  std::uint16_t day = 0;  ///< day of the contractual year, 0..364
};

class YearEventLossTable {
 public:
  /// Incremental builder: append trials in order.
  class Builder {
   public:
    explicit Builder(TrialId expected_trials = 0);

    /// Starts the next trial; occurrences are appended to it until the next
    /// begin_trial / finish.
    void begin_trial();
    void add(EventId event, std::uint16_t day);

    YearEventLossTable finish();

   private:
    std::vector<std::uint64_t> offsets_;
    std::vector<EventId> events_;
    std::vector<std::uint16_t> days_;
    bool open_ = false;
  };

  YearEventLossTable() = default;

  TrialId trials() const noexcept {
    return offsets_.empty() ? 0 : static_cast<TrialId>(offsets_.size() - 1);
  }

  /// Total occurrences across all trials (the table's row count).
  std::uint64_t entries() const noexcept { return events_.size(); }

  /// Occurrence slice of one trial, as parallel spans.
  std::span<const EventId> trial_events(TrialId t) const;
  std::span<const std::uint16_t> trial_days(TrialId t) const;
  std::size_t trial_size(TrialId t) const;

  std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }
  std::span<const EventId> events() const noexcept { return events_; }
  std::span<const std::uint16_t> days() const noexcept { return days_; }

  /// Bytes occupied by the columns; E1 accounting.
  std::size_t byte_size() const noexcept;

  /// Mean occurrences per trial year.
  double mean_events_per_trial() const noexcept;

 private:
  friend class Builder;

  // offsets_[t]..offsets_[t+1] delimit trial t's occurrences.
  std::vector<std::uint64_t> offsets_;
  std::vector<EventId> events_;
  std::vector<std::uint16_t> days_;
};

/// Parameters for synthetic YELT generation. Event occurrence counts per
/// trial are Poisson with the catalogue's total annual rate; which events
/// occur is sampled proportional to per-event annual rates.
struct YeltGenConfig {
  TrialId trials = 10'000;
  std::uint64_t seed = 42;
  /// Target mean number of event occurrences per trial year. The paper's
  /// catastrophe treaties see O(10) qualifying events per year.
  double mean_events_per_year = 10.0;
  /// Order each trial's occurrences by day of year — the "in which order
  /// they occur within a contractual year" the paper's aggregate analysis
  /// tracks (it matters when reinstatement timing or inuring cascades are
  /// modelled). Flat occurrence/aggregate terms are order-independent, so
  /// the default stays unsorted for generator-compatibility.
  bool sort_by_day = false;
  /// Over-dispersion of annual event counts. 0 = pure Poisson
  /// (variance = mean). Positive values mix the Poisson rate with a
  /// Gamma(1/d, d) factor, giving negative-binomial counts with
  /// variance = mean * (1 + d * mean) — the clustered "active season"
  /// behaviour real hurricane catalogues calibrate to.
  double dispersion = 0.0;
};

/// Generates a YELT over a catalogue of `catalog_events` event ids
/// [0, catalog_events). Per-event relative rates follow a truncated
/// power law (a few frequent perils, many rare ones), matching how real
/// catalogues skew. Deterministic in the seed.
YearEventLossTable generate_yelt(EventId catalog_events, const YeltGenConfig& config);

}  // namespace riskan::data
