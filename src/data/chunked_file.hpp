// Chunked container file — the on-disk unit of the "large distributed file
// space" approach.
//
// A ChunkedFile holds N independently readable chunks (byte blobs) behind a
// footer directory. The MapReduce layer stores YELT splits as chunks and
// hands each to a mapper; the out-of-core TrialSource (data/trial_source.hpp)
// streams trial blocks from one. Layout (version 2):
//
//   [chunk 0 bytes][chunk 1 bytes]...[directory][footer: magic, dir offset]
//   directory: u64 count, then per chunk: u64 size, u32 crc32
//
// The directory is at the end so chunks can be appended in one pass without
// knowing their count in advance — the write pattern of a simulation that
// spills as it goes. The writer streams chunks straight to disk (the body is
// never buffered whole, so files larger than RAM can be written), and each
// chunk carries a CRC-32 the reader verifies on read: a bit flip anywhere in
// a chunk surfaces as a typed riskan::CorruptChunkError (and a truncated
// footer as TruncatedFileError — util/io_error.hpp) instead of silently
// corrupt losses, so the recovery layer can tell retryable data damage from
// programmer ContractViolations. Version-1 files (magic "CHK1", sizes-only
// directory) are still readable; they simply have no checksums to verify.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace riskan::data {

class ChunkedFileWriter {
 public:
  /// Opens (truncates) `path` and starts streaming chunks to it.
  explicit ChunkedFileWriter(std::string path);

  /// Appends one chunk (written through to disk); returns its index.
  std::size_t append(std::span<const std::byte> chunk);

  /// Writes directory + footer and closes. No further appends.
  void finish();

  ~ChunkedFileWriter();

  std::size_t chunks_written() const noexcept { return sizes_.size(); }

 private:
  std::string path_;
  std::ofstream out_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint32_t> crcs_;
  bool finished_ = false;
};

/// Reads a chunked file lazily: the constructor loads and validates only the
/// footer directory; chunk bytes are read from disk on demand, so the memory
/// high-water of a streamed pass is one chunk, not the file. Reads are
/// stateful seeks on one stream — a reader serves one consumer at a time.
class ChunkedFileReader {
 public:
  explicit ChunkedFileReader(const std::string& path);

  std::size_t chunk_count() const noexcept { return offsets_.size(); }
  std::size_t chunk_size(std::size_t i) const;

  /// Reads chunk i from disk, verifying its CRC-32 (version-2 files);
  /// throws CorruptChunkError on a checksum mismatch and
  /// TruncatedFileError when the chunk extends past EOF.
  std::vector<std::byte> read_chunk(std::size_t i);

  /// First min(n, chunk size) bytes of chunk i, unverified — header peeks
  /// (the CRC covers whole chunks, so a prefix cannot be checked).
  std::vector<std::byte> read_chunk_prefix(std::size_t i, std::size_t n);

  /// Whole-file size in bytes (chunks + directory + footer).
  std::size_t total_bytes() const noexcept { return file_bytes_; }

  /// True when the file carries per-chunk checksums (version >= 2).
  bool has_checksums() const noexcept { return checksummed_; }

 private:
  std::vector<std::byte> read_range(std::uint64_t offset, std::size_t n);

  std::string path_;
  std::ifstream in_;
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint32_t> crcs_;  // empty for version-1 files
  std::size_t file_bytes_ = 0;
  bool checksummed_ = false;  // from the footer magic, not the chunk count
};

}  // namespace riskan::data
