// Chunked container file — the on-disk unit of the "large distributed file
// space" approach.
//
// A ChunkedFile holds N independently readable chunks (byte blobs) behind a
// footer directory. The MapReduce layer stores YELT splits as chunks and
// hands each to a mapper; streamed stage boundaries write chunks
// sequentially. Layout:
//
//   [chunk 0 bytes][chunk 1 bytes]...[directory][footer: magic, dir offset]
//
// The directory is at the end so chunks can be appended in one pass without
// knowing their count in advance — the write pattern of a simulation that
// spills as it goes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace riskan::data {

class ChunkedFileWriter {
 public:
  explicit ChunkedFileWriter(std::string path);

  /// Appends one chunk; returns its index.
  std::size_t append(std::span<const std::byte> chunk);

  /// Writes directory + footer and closes. No further appends.
  void finish();

  ~ChunkedFileWriter();

  std::size_t chunks_written() const noexcept { return sizes_.size(); }

 private:
  std::string path_;
  std::vector<std::byte> body_;
  std::vector<std::uint64_t> sizes_;
  bool finished_ = false;
};

class ChunkedFileReader {
 public:
  explicit ChunkedFileReader(const std::string& path);

  std::size_t chunk_count() const noexcept { return offsets_.size(); }

  /// Zero-copy view of chunk i (valid while the reader lives).
  std::span<const std::byte> chunk(std::size_t i) const;

  std::size_t total_bytes() const noexcept { return data_.size(); }

 private:
  std::vector<std::byte> data_;
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint64_t> sizes_;
};

}  // namespace riskan::data
