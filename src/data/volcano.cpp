#include "data/volcano.hpp"

#include "util/require.hpp"

namespace riskan::data {

RowYelt::RowYelt(const YearEventLossTable& yelt) {
  rows_.reserve(yelt.entries());
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    const auto events = yelt.trial_events(t);
    const auto days = yelt.trial_days(t);
    for (std::size_t i = 0; i < events.size(); ++i) {
      rows_.push_back(Row{static_cast<double>(t), static_cast<double>(events[i]),
                          static_cast<double>(days[i])});
    }
  }
}

RowElt::RowElt(const EventLossTable& elt) : index_(elt.size()) {
  rows_.reserve(elt.size());
  for (std::size_t i = 0; i < elt.size(); ++i) {
    const auto row = elt.row(i);
    rows_.push_back(Row{static_cast<double>(row.event_id), row.mean_loss, row.sigma_loss,
                        row.exposure});
    index_.insert(row.event_id, i);
  }
}

bool YeltScanOp::next(Tuple& out) {
  if (cursor_ >= table_.rows().size()) {
    return false;
  }
  const auto& row = table_.rows()[cursor_++];
  out.assign({row.trial, row.event, row.day});
  return true;
}

bool IndexJoinOp::next(Tuple& out) {
  Tuple in;
  while (child_->next(in)) {
    RISKAN_ASSERT(event_col_ < in.size(), "join column out of range");
    const auto event = static_cast<std::uint64_t>(in[event_col_]);
    const auto hit = elt_.index().find(event);
    if (!hit) {
      continue;
    }
    const auto& elt_row = elt_.rows()[*hit];
    out.assign({in[0], elt_row.mean_loss});
    return true;
  }
  return false;
}

bool FilterOp::next(Tuple& out) {
  while (child_->next(out)) {
    if (pred_(out)) {
      return true;
    }
  }
  return false;
}

void HashAggOp::open() {
  child_->open();
  groups_.clear();
  Tuple in;
  while (child_->next(in)) {
    RISKAN_ASSERT(key_col_ < in.size() && value_col_ < in.size(),
                  "aggregate column out of range");
    groups_[static_cast<std::uint64_t>(in[key_col_])] += in[value_col_];
  }
  it_ = groups_.cbegin();
  opened_ = true;
}

bool HashAggOp::next(Tuple& out) {
  RISKAN_REQUIRE(opened_, "HashAggOp::next before open");
  if (it_ == groups_.cend()) {
    return false;
  }
  out.assign({static_cast<double>(it_->first), it_->second});
  ++it_;
  return true;
}

void HashAggOp::close() {
  child_->close();
  groups_.clear();
  opened_ = false;
}

std::unordered_map<std::uint64_t, double> run_group_query(Operator& root) {
  std::unordered_map<std::uint64_t, double> result;
  root.open();
  Tuple row;
  while (root.next(row)) {
    RISKAN_REQUIRE(row.size() >= 2, "group query expects (key, value) tuples");
    result[static_cast<std::uint64_t>(row[0])] = row[1];
  }
  root.close();
  return result;
}

}  // namespace riskan::data
