// Open-addressing hash index — the random-access path of the "traditional
// database" baseline (experiment E5).
//
// A relational engine answering the stage-2 aggregate query builds an index
// on ELT.event_id and probes it once per YELT row. This index is a fair,
// well-implemented version of that access path: linear probing, power-of-two
// capacity, 64-bit mixed keys, ~0.7 max load factor. The point of E5 is
// that even a good index loses to a pure scan on this workload, because the
// probes are dependent random accesses while the scan streams.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan::data {

class HashIndex {
 public:
  /// Reserves capacity for `expected` keys up front.
  explicit HashIndex(std::size_t expected = 16);

  /// Inserts key -> value; duplicate keys are a contract violation (ELT
  /// event ids are unique).
  void insert(std::uint64_t key, std::uint64_t value);

  /// Probe. ~1 cache miss per lookup at scale — which is the point.
  std::optional<std::uint64_t> find(std::uint64_t key) const noexcept;

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Total probe distance accumulated by finds (diagnostics for E5).
  /// Relaxed atomic: concurrent finds only need an eventually-consistent
  /// tally, not an ordering edge.
  std::uint64_t probe_count() const noexcept {
    return probes_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    std::uint64_t value = 0;
  };

  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  void grow();
  std::size_t slot_for(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(mix64(key)) & (slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  /// find() is const and called concurrently from scan kernels; a plain
  /// mutable counter there is a data race (UB). One relaxed fetch_add per
  /// find keeps the diagnostic exact without perturbing the probe loop.
  mutable std::atomic<std::uint64_t> probes_{0};
};

}  // namespace riskan::data
