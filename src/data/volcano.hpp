// A miniature row-oriented relational execution engine ("Volcano" iterator
// model) — the traditional-database baseline of experiment E5.
//
// The paper's thesis: "Traditional database management techniques do not fit
// the requirements of this stage as data needs to be scanned over rather
// than randomly access data." To make that claim testable rather than
// rhetorical, we implement the way a row-store RDBMS would actually execute
// the stage-2 aggregation query
//
//   SELECT trial, SUM(elt.mean_loss)
//   FROM yelt JOIN elt ON yelt.event = elt.event
//   GROUP BY trial;
//
// i.e. tuple-at-a-time iterators with virtual dispatch, row-major storage,
// an index-nested-loop join probing a hash index per row, and a hash
// aggregate. Each piece is implemented competently — the baseline loses on
// architecture (random access, per-row overheads), not on sloppiness.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "data/elt.hpp"
#include "data/hash_index.hpp"
#include "data/yelt.hpp"
#include "util/types.hpp"

namespace riskan::data {

/// A row: fixed small vector of numeric fields (doubles carry ids exactly
/// up to 2^53; event/trial ids are far below that).
using Tuple = std::vector<double>;

/// Volcano operator interface: open / next / close with virtual dispatch,
/// exactly the per-row overhead profile of a classic row store.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual void open() = 0;
  /// Produces the next tuple; returns false at end of stream.
  virtual bool next(Tuple& out) = 0;
  virtual void close() = 0;
};

/// Row-major materialisation of a YELT: one (trial, event, day) row per
/// occurrence — how the table would live in a heap file.
class RowYelt {
 public:
  explicit RowYelt(const YearEventLossTable& yelt);

  struct Row {
    double trial;
    double event;
    double day;
  };

  const std::vector<Row>& rows() const noexcept { return rows_; }
  std::size_t byte_size() const noexcept { return rows_.size() * sizeof(Row); }

 private:
  std::vector<Row> rows_;
};

/// Row-major ELT heap file plus a hash index on event_id.
class RowElt {
 public:
  explicit RowElt(const EventLossTable& elt);

  struct Row {
    double event;
    double mean_loss;
    double sigma_loss;
    double exposure;
  };

  const std::vector<Row>& rows() const noexcept { return rows_; }
  const HashIndex& index() const noexcept { return index_; }
  std::size_t byte_size() const noexcept { return rows_.size() * sizeof(Row); }

 private:
  std::vector<Row> rows_;
  HashIndex index_;
};

/// Sequential scan over the YELT heap file.
class YeltScanOp final : public Operator {
 public:
  explicit YeltScanOp(const RowYelt& table) : table_(table) {}
  void open() override { cursor_ = 0; }
  bool next(Tuple& out) override;
  void close() override {}

 private:
  const RowYelt& table_;
  std::size_t cursor_ = 0;
};

/// Index nested-loop join: probes the ELT hash index with the event id of
/// each input row; emits (trial, mean_loss). Rows whose event misses the
/// ELT are dropped (no loss to this contract).
class IndexJoinOp final : public Operator {
 public:
  IndexJoinOp(std::unique_ptr<Operator> child, const RowElt& elt, std::size_t event_col = 1)
      : child_(std::move(child)), elt_(elt), event_col_(event_col) {}
  void open() override { child_->open(); }
  bool next(Tuple& out) override;
  void close() override { child_->close(); }

 private:
  std::unique_ptr<Operator> child_;
  const RowElt& elt_;
  std::size_t event_col_;
};

/// Predicate filter (used by tests and richer queries).
class FilterOp final : public Operator {
 public:
  using Predicate = bool (*)(const Tuple&);
  FilterOp(std::unique_ptr<Operator> child, Predicate pred)
      : child_(std::move(child)), pred_(pred) {}
  void open() override { child_->open(); }
  bool next(Tuple& out) override;
  void close() override { child_->close(); }

 private:
  std::unique_ptr<Operator> child_;
  Predicate pred_;
};

/// Hash aggregation: GROUP BY column `key_col`, SUM column `value_col`.
/// Pipeline-breaking, as in any row store: drains its child on open().
class HashAggOp final : public Operator {
 public:
  HashAggOp(std::unique_ptr<Operator> child, std::size_t key_col, std::size_t value_col)
      : child_(std::move(child)), key_col_(key_col), value_col_(value_col) {}
  void open() override;
  bool next(Tuple& out) override;
  void close() override;

 private:
  std::unique_ptr<Operator> child_;
  std::size_t key_col_;
  std::size_t value_col_;
  std::unordered_map<std::uint64_t, double> groups_;
  std::unordered_map<std::uint64_t, double>::const_iterator it_;
  bool opened_ = false;
};

/// Executes a plan to completion, returning group-by results keyed by
/// column 0 (the shape of the stage-2 query). Helper for tests/benches.
std::unordered_map<std::uint64_t, double> run_group_query(Operator& root);

}  // namespace riskan::data
