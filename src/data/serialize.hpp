// Binary serialization for the pipeline tables.
//
// Simple tagged little-endian format (magic + version + columns). Stage
// boundaries in a production deployment are files: stage 1 emits ELT files,
// stage 2 reads ELT+YELT files and writes YLT files, the MapReduce backend
// splits YELT files into DFS blocks. Tests round-trip every table type.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "data/elt.hpp"
#include "data/yelt.hpp"
#include "data/ylt.hpp"
#include "util/bytes.hpp"

namespace riskan::data {

// In-memory encode/decode.
void encode(const EventLossTable& table, ByteWriter& writer);
EventLossTable decode_elt(ByteReader& reader);

void encode(const YearEventLossTable& table, ByteWriter& writer);
YearEventLossTable decode_yelt(ByteReader& reader);

/// Encodes trials [lo, hi) of `table` as a standalone YELT, slicing the
/// column spans directly (offsets rebased to the slice) — byte-identical to
/// encoding a rebuilt sub-table, without the per-trial Builder::add copy.
/// This is how trial blocks reach chunked files and DFS splits.
void encode_yelt_slice(const YearEventLossTable& table, TrialId lo, TrialId hi,
                       ByteWriter& writer);

/// Trial count recorded in an encoded YELT's fixed-size header (the first
/// 16 bytes), without decoding the table — how the out-of-core TrialSource
/// sizes its outputs before any block is decoded.
constexpr std::size_t kYeltHeaderBytes = 16;
TrialId peek_yelt_trials(std::span<const std::byte> header);

void encode(const YearLossTable& table, ByteWriter& writer);
YearLossTable decode_ylt(ByteReader& reader);

// File convenience wrappers.
void save_elt(const EventLossTable& table, const std::string& path);
EventLossTable load_elt(const std::string& path);

void save_yelt(const YearEventLossTable& table, const std::string& path);
YearEventLossTable load_yelt(const std::string& path);

void save_ylt(const YearLossTable& table, const std::string& path);
YearLossTable load_ylt(const std::string& path);

}  // namespace riskan::data
