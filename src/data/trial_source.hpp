// TrialSource — the data plane of stage-2 aggregate analysis.
//
// The paper frames stage 2 as a data-management problem: in-memory
// analytics carry "large but not enormous datasets"; beyond that the YELT
// lives in a chunked file space and must be *streamed*. The compute side of
// that split is the exec layer (core/exec.hpp: one ExecutionPlan, pluggable
// Executors); this file is its data-plane twin. A TrialSource yields the
// YELT as an ordered sequence of trial blocks, and every engine entry point
// consumes blocks instead of assuming one resident table — so in-memory,
// out-of-core and MapReduce runs are the same code path with different
// sources, and their outputs are bit-identical (each block carries its
// trial offset, which keys the counter-based sampling streams).
//
// Three sources:
//   InMemorySource    — wraps a caller-owned YearEventLossTable as one
//                       zero-copy block: the classic in-memory run.
//   ChunkedFileSource — streams trial blocks from a ChunkedFile, with a
//                       background double-buffered prefetch pipeline
//                       (dedicated single-thread pool + SPSC ring): block
//                       c+1 is read and decoded while block c computes, so
//                       decode/I-O cost hides behind the trial kernel
//                       instead of serialising against it. Memory
//                       high-water = the queue depth in decoded blocks.
//   EncodedBlockSource— adapter over one encoded YELT blob (a DFS block):
//                       the MapReduce map task's decode path, expressed as
//                       a single-block source.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "data/chunked_file.hpp"
#include "data/yelt.hpp"
#include "parallel/spsc_queue.hpp"
#include "parallel/thread_pool.hpp"

namespace riskan::data {

/// One decoded trial block handed to the execution layer.
struct TrialBlock {
  std::shared_ptr<const YearEventLossTable> yelt;
  /// Trials before this block within the source (block-local trial t is
  /// source-global trial_offset + t; the engine adds its own
  /// EngineConfig::trial_base on top).
  TrialId trial_offset = 0;
  /// Block ordinal within the source.
  std::size_t index = 0;
  /// Encoded bytes read+decoded to produce this block (0 = zero-copy).
  std::size_t encoded_bytes = 0;
};

/// Ordered sequence of trial blocks covering [0, trials()). Blocks are
/// yielded exactly once per pass, in trial order; reset() rewinds for
/// another pass. Sources are single-consumer.
class TrialSource {
 public:
  virtual ~TrialSource() = default;

  /// Total trials across all blocks, known before any block is decoded
  /// (output sizing).
  virtual TrialId trials() const = 0;
  virtual std::size_t block_count() const = 0;

  /// Yields the next block; false at end of the pass.
  virtual bool next(TrialBlock& block) = 0;

  /// Rewinds to the first block (restarting any pipeline).
  virtual void reset() = 0;

  /// True when blocks are transient decodes that die with the pass — the
  /// engines then resolve against a run-local ResolverCache so dead keys
  /// never park in the process-wide cache.
  virtual bool ephemeral_blocks() const noexcept = 0;
};

/// The in-memory run: one zero-copy block over a caller-owned YELT (which
/// must outlive the source and any block taken from it).
class InMemorySource final : public TrialSource {
 public:
  explicit InMemorySource(const YearEventLossTable& yelt) : yelt_(&yelt) {}

  TrialId trials() const override { return yelt_->trials(); }
  std::size_t block_count() const override { return 1; }
  bool next(TrialBlock& block) override;
  void reset() override { served_ = false; }
  bool ephemeral_blocks() const noexcept override { return false; }

 private:
  const YearEventLossTable* yelt_;
  bool served_ = false;
};

/// Adapter over one encoded YELT blob — how a MapReduce map task or a
/// dist-layer worker lowers its block through the same data plane as every
/// other entry point. The blob is decoded at construction; the span need
/// not outlive the ctor. A short or corrupted payload throws the typed
/// riskan::CorruptChunkError (util/io_error.hpp) — garbage bytes can never
/// silently decode into trials.
class EncodedBlockSource final : public TrialSource {
 public:
  explicit EncodedBlockSource(std::span<const std::byte> encoded);

  TrialId trials() const override { return yelt_->trials(); }
  std::size_t block_count() const override { return 1; }
  bool next(TrialBlock& block) override;
  void reset() override { served_ = false; }
  bool ephemeral_blocks() const noexcept override { return true; }

 private:
  std::shared_ptr<const YearEventLossTable> yelt_;
  std::size_t encoded_bytes_ = 0;
  bool served_ = false;
};

/// One already-decoded block as a source — how the adaptive driver
/// (core/adaptive) re-enters an entry point per decision block: each block
/// taken from a ReblockedSource is wrapped and run through the normal
/// TrialSource overload with the block's trial offset moved onto
/// EngineConfig::trial_base. Marked ephemeral by default so re-entrant
/// runs resolve through a run-local cache (the wrapped table may be a
/// transient re-slice).
class SingleBlockSource final : public TrialSource {
 public:
  explicit SingleBlockSource(std::shared_ptr<const YearEventLossTable> yelt,
                             bool ephemeral = true)
      : yelt_(std::move(yelt)), ephemeral_(ephemeral) {}

  TrialId trials() const override { return yelt_->trials(); }
  std::size_t block_count() const override { return 1; }
  bool next(TrialBlock& block) override;
  void reset() override { served_ = false; }
  bool ephemeral_blocks() const noexcept override { return ephemeral_; }

 private:
  std::shared_ptr<const YearEventLossTable> yelt_;
  bool ephemeral_;
  bool served_ = false;
};

/// Re-blocks an inner source onto a fixed trial grid: blocks of exactly
/// `block_trials` trials (short last block), optionally capped at
/// `trial_cap` total trials. This is the adaptive controller's decision
/// grid — convergence is checked after each grid block, and the grid is a
/// pure function of (block_trials, trials), NOT of how the inner source
/// happened to chunk its data, so the stopping trial count is identical
/// whether the YELT arrives as one resident table, file chunks, or DFS
/// blocks. Inner blocks that already land on the grid pass through
/// zero-copy; otherwise trials are re-sliced through a Builder.
class ReblockedSource final : public TrialSource {
 public:
  /// `inner` must outlive this source. trial_cap = 0 means no cap.
  ReblockedSource(TrialSource& inner, TrialId block_trials, TrialId trial_cap = 0);

  TrialId trials() const override { return trials_; }
  std::size_t block_count() const override;
  bool next(TrialBlock& block) override;
  void reset() override;
  bool ephemeral_blocks() const noexcept override { return true; }

 private:
  struct Pending {
    std::shared_ptr<const YearEventLossTable> yelt;
    TrialId consumed = 0;       ///< trials of this block already re-sliced
    std::size_t encoded_bytes = 0;
  };

  TrialSource* inner_;
  TrialId block_trials_;
  TrialId trials_ = 0;
  TrialId delivered_ = 0;
  std::size_t index_ = 0;
  std::vector<Pending> pending_;
  TrialId pending_trials_ = 0;
};

/// Telemetry of one streamed pass (reset() zeroes it with the pass).
struct ChunkedFileSourceStats {
  std::uint64_t bytes_read = 0;        ///< encoded bytes delivered
  std::size_t blocks_delivered = 0;
  std::size_t peak_block_bytes = 0;    ///< largest single encoded block
  /// Read+decode busy time (on the prefetch thread, or inline when
  /// prefetch is off).
  double produce_seconds = 0.0;
  /// Consumer stalls waiting on the pipeline: ~0 when decode fully hides
  /// behind compute, ~produce_seconds when nothing overlaps.
  double wait_seconds = 0.0;
};

/// Streams trial blocks from a chunked YELT file (core::save_yelt_chunked's
/// layout: one encoded YELT per chunk). With prefetch on (default), a
/// dedicated single-thread pool reads and decodes ahead through a bounded
/// SPSC ring — double-buffered by default, so at most queue_depth decoded
/// blocks are resident. The compute backends never see the pipeline: the
/// prefetch worker is the source's own, not the engine pool, so Sequential
/// consumers (including pool-worker callers) stay deadlock-free.
struct ChunkedFileSourceOptions {
  /// Read+decode block c+1 on a background thread while block c computes.
  /// Off = synchronous per-block decode (the E12 overlap baseline).
  bool prefetch = true;
  /// Decoded blocks the pipeline may hold (>= 2; the memory high-water
  /// knob of an out-of-core run).
  std::size_t queue_depth = 2;
};

class ChunkedFileSource final : public TrialSource {
 public:
  using Options = ChunkedFileSourceOptions;

  explicit ChunkedFileSource(const std::string& path, Options options = {});
  ~ChunkedFileSource() override;

  ChunkedFileSource(const ChunkedFileSource&) = delete;
  ChunkedFileSource& operator=(const ChunkedFileSource&) = delete;

  TrialId trials() const override { return trials_; }
  std::size_t block_count() const override { return chunk_trials_.size(); }
  bool next(TrialBlock& block) override;
  void reset() override;
  bool ephemeral_blocks() const noexcept override { return true; }

  /// Trials of block i (from the chunk headers; no decode).
  TrialId block_trials(std::size_t i) const { return chunk_trials_[i]; }

  const ChunkedFileSourceStats& stats() const noexcept { return stats_; }

 private:
  struct Produced {
    std::shared_ptr<const YearEventLossTable> yelt;
    std::size_t bytes = 0;
    double produce_seconds = 0.0;
    std::exception_ptr error;
  };

  Produced produce(std::size_t index);
  void start_producer();
  void stop_producer();

  ChunkedFileReader reader_;
  Options options_;
  std::vector<TrialId> chunk_trials_;
  std::vector<TrialId> chunk_offsets_;
  TrialId trials_ = 0;
  std::size_t next_block_ = 0;
  ChunkedFileSourceStats stats_;

  // Prefetch pipeline (absent when options_.prefetch is off). Handoff is
  // the SPSC ring; both sides block on the cv when the ring is full/empty
  // (short timed waits, so a missed notify costs milliseconds, never a
  // hang) instead of burning a hardware thread spinning.
  std::unique_ptr<SpscQueue<Produced>> queue_;
  std::unique_ptr<ThreadPool> prefetch_pool_;
  std::mutex pipe_mutex_;
  std::condition_variable pipe_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> producer_done_{true};
};

}  // namespace riskan::data
