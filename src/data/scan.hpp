// Columnar scan kernels — the "scan, don't seek" side of experiment E5.
//
// Same query as the Volcano baseline (per-trial sum of ELT mean losses over
// YELT occurrences), executed the way the paper prescribes: stream the
// columnar YELT start-to-finish and resolve event losses against an
// in-memory lookup. Two lookup variants bracket the design space:
//
//   * dense  — O(1) array indexed by event id (the in-memory accumulation
//              approach; needs catalogue-sized memory per contract);
//   * sorted — binary search of the compact sorted ELT (what the aggregate
//              engines use; memory proportional to the contract footprint).
#pragma once

#include <vector>

#include "data/elt.hpp"
#include "data/yelt.hpp"
#include "util/types.hpp"

namespace riskan::data {

/// Dense event-id -> mean-loss lookup built from an ELT. Events absent from
/// the ELT map to 0 loss.
std::vector<Money> build_dense_loss_lut(const EventLossTable& elt, EventId catalog_events);

/// Per-trial loss sums via columnar scan + dense LUT.
std::vector<Money> scan_aggregate_dense(const YearEventLossTable& yelt,
                                        std::span<const Money> loss_lut);

/// Per-trial loss sums via columnar scan + binary search into the ELT.
std::vector<Money> scan_aggregate_sorted(const YearEventLossTable& yelt,
                                         const EventLossTable& elt);

}  // namespace riskan::data
