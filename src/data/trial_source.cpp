#include "data/trial_source.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "data/serialize.hpp"
#include "obs/obs.hpp"
#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::data {

namespace {

/// Prefetch-pipeline telemetry: a consumer pop that found the ring ready
/// is an overlap win (the read+decode cost was fully hidden behind
/// compute); one that had to park is a stall, with the stall time in a
/// histogram. The wins/stalls ratio is the headline "is the pipeline
/// keeping up" signal for trace triage.
struct DataObs {
  obs::Counter overlap_wins =
      obs::MetricsRegistry::global().counter("data.prefetch_overlap_wins");
  obs::Counter stalls = obs::MetricsRegistry::global().counter("data.prefetch_stalls");
  obs::Histogram stall_seconds =
      obs::MetricsRegistry::global().histogram("data.prefetch_stall_seconds");
  obs::Counter bytes_read = obs::MetricsRegistry::global().counter("data.bytes_read");
  obs::Counter blocks = obs::MetricsRegistry::global().counter("data.blocks_delivered");
  obs::Histogram produce_seconds =
      obs::MetricsRegistry::global().histogram("data.produce_seconds");
};

const DataObs& data_obs() {
  static const DataObs metrics;
  return metrics;
}

}  // namespace

bool InMemorySource::next(TrialBlock& block) {
  if (served_) {
    return false;
  }
  served_ = true;
  // Aliasing shared_ptr with no owner: zero-copy, lifetime stays the
  // caller's (the source's lifetime contract).
  block.yelt = std::shared_ptr<const YearEventLossTable>(
      std::shared_ptr<const YearEventLossTable>{}, yelt_);
  block.trial_offset = 0;
  block.index = 0;
  block.encoded_bytes = 0;
  return true;
}

EncodedBlockSource::EncodedBlockSource(std::span<const std::byte> encoded)
    : encoded_bytes_(encoded.size()) {
  // A blob that fails structural decode is damaged *data*, not a broken
  // API contract: surface it as the typed CorruptChunkError so the
  // distribution layer can treat it as retryable (re-read the replica,
  // re-run the block) instead of aborting like a programmer bug — and so
  // a short or bit-flipped payload can never be silently decoded into
  // garbage trials.
  try {
    ByteReader reader(encoded);
    yelt_ = std::make_shared<const YearEventLossTable>(decode_yelt(reader));
  } catch (const IoError&) {
    throw;
  } catch (const std::exception& e) {
    throw CorruptChunkError(std::string("encoded trial block failed to decode: ") +
                            e.what());
  }
}

bool EncodedBlockSource::next(TrialBlock& block) {
  if (served_) {
    return false;
  }
  served_ = true;
  block.yelt = yelt_;
  block.trial_offset = 0;
  block.index = 0;
  block.encoded_bytes = encoded_bytes_;
  return true;
}

bool SingleBlockSource::next(TrialBlock& block) {
  if (served_) {
    return false;
  }
  served_ = true;
  block.yelt = yelt_;
  block.trial_offset = 0;
  block.index = 0;
  block.encoded_bytes = 0;
  return true;
}

ReblockedSource::ReblockedSource(TrialSource& inner, TrialId block_trials,
                                 TrialId trial_cap)
    : inner_(&inner), block_trials_(block_trials) {
  RISKAN_REQUIRE(block_trials > 0, "reblocked grid needs positive block_trials");
  trials_ = inner.trials();
  if (trial_cap > 0) {
    trials_ = std::min(trials_, trial_cap);
  }
}

std::size_t ReblockedSource::block_count() const {
  return (static_cast<std::size_t>(trials_) + block_trials_ - 1) / block_trials_;
}

bool ReblockedSource::next(TrialBlock& block) {
  if (delivered_ >= trials_) {
    return false;
  }
  const TrialId want = std::min<TrialId>(block_trials_, trials_ - delivered_);

  // Pull inner blocks until the grid block is covered. The inner source
  // declares at least trials_ trials, so exhaustion here is its bug.
  while (pending_trials_ < want) {
    TrialBlock inner_block;
    RISKAN_ENSURE(inner_->next(inner_block),
                  "inner source ran out of trials before its declared count");
    Pending p;
    p.yelt = inner_block.yelt;
    p.encoded_bytes = inner_block.encoded_bytes;
    pending_trials_ += p.yelt->trials();
    pending_.push_back(std::move(p));
  }

  std::size_t encoded = 0;
  if (pending_.size() == 1 && pending_.front().consumed == 0 &&
      pending_.front().yelt->trials() == want) {
    // The inner block already lands on the grid: pass it through zero-copy.
    block.yelt = pending_.front().yelt;
    encoded = pending_.front().encoded_bytes;
    pending_.clear();
  } else {
    // Re-slice `want` trials off the pending queue's front.
    YearEventLossTable::Builder builder(want);
    TrialId taken = 0;
    while (taken < want) {
      Pending& front = pending_.front();
      const TrialId avail = front.yelt->trials() - front.consumed;
      const TrialId take = std::min<TrialId>(avail, want - taken);
      for (TrialId t = 0; t < take; ++t) {
        const TrialId src = front.consumed + t;
        builder.begin_trial();
        const auto events = front.yelt->trial_events(src);
        const auto days = front.yelt->trial_days(src);
        for (std::size_t i = 0; i < events.size(); ++i) {
          builder.add(events[i], days[i]);
        }
      }
      front.consumed += take;
      taken += take;
      // Attribute the inner block's decode cost to the grid block that
      // finishes it (telemetry only, so first-touch vs last-touch is a
      // wash; last-touch avoids double counting).
      if (front.consumed == front.yelt->trials()) {
        encoded += front.encoded_bytes;
        pending_.erase(pending_.begin());
      }
    }
    block.yelt = std::make_shared<const YearEventLossTable>(builder.finish());
  }
  pending_trials_ -= want;
  block.trial_offset = delivered_;
  block.index = index_++;
  block.encoded_bytes = encoded;
  delivered_ += want;
  return true;
}

void ReblockedSource::reset() {
  inner_->reset();
  pending_.clear();
  pending_trials_ = 0;
  delivered_ = 0;
  index_ = 0;
}

ChunkedFileSource::ChunkedFileSource(const std::string& path, Options options)
    : reader_(path), options_(options) {
  // Header peeks size the run before anything is decoded: per-chunk trial
  // counts come from the fixed-size YELT headers, not from decoding.
  chunk_trials_.reserve(reader_.chunk_count());
  chunk_offsets_.reserve(reader_.chunk_count());
  for (std::size_t c = 0; c < reader_.chunk_count(); ++c) {
    const auto header = reader_.read_chunk_prefix(c, kYeltHeaderBytes);
    const TrialId chunk_trials = peek_yelt_trials(header);
    // The prefix peek is outside the CRC (which covers whole chunks), so
    // bound the count by the chunk's actual bytes before sizing anything
    // from it: the encoded layout carries trials+1 u64 offsets after the
    // header, so a corrupted count cannot pass this and OOM the run — it
    // fails here, or the CRC catches it at read time.
    const std::size_t chunk_bytes = reader_.chunk_size(c);
    if (!(chunk_bytes >= kYeltHeaderBytes + sizeof(std::uint64_t) &&
          static_cast<std::uint64_t>(chunk_trials) <=
              (chunk_bytes - kYeltHeaderBytes) / sizeof(std::uint64_t) - 1)) {
      throw CorruptChunkError(
          "chunk header trial count exceeds the chunk's size (corrupt chunk " +
          std::to_string(c) + ")");
    }
    chunk_offsets_.push_back(trials_);
    chunk_trials_.push_back(chunk_trials);
    trials_ += chunk_trials;
  }

  if (options_.prefetch) {
    queue_ = std::make_unique<SpscQueue<Produced>>(
        std::max<std::size_t>(2, options_.queue_depth));
    prefetch_pool_ = std::make_unique<ThreadPool>(1);
    start_producer();
  }
}

ChunkedFileSource::~ChunkedFileSource() {
  if (options_.prefetch) {
    stop_producer();
  }
}

ChunkedFileSource::Produced ChunkedFileSource::produce(std::size_t index) {
  Produced item;
  try {
    obs::Timer timer("data.produce");
    const auto bytes = reader_.read_chunk(index);  // CRC-verified
    ByteReader reader(bytes);
    item.yelt = std::make_shared<const YearEventLossTable>(decode_yelt(reader));
    item.bytes = bytes.size();
    item.produce_seconds = timer.stop();
    data_obs().produce_seconds.observe(item.produce_seconds);
  } catch (...) {
    item.error = std::current_exception();
  }
  return item;
}

void ChunkedFileSource::start_producer() {
  stop_.store(false, std::memory_order_relaxed);
  producer_done_.store(false, std::memory_order_relaxed);
  prefetch_pool_->submit([this] {
    obs::set_trace_thread_name("prefetch");
    const std::size_t count = reader_.chunk_count();
    for (std::size_t c = 0; c < count && !stop_.load(std::memory_order_relaxed); ++c) {
      Produced item = produce(c);
      const bool had_error = item.error != nullptr;
      // try_push consumes its argument, so retries push a fresh copy (the
      // payload is a shared_ptr — copies are cheap). A full ring parks the
      // thread on the cv instead of spinning through the consumer's
      // compute.
      while (!queue_->try_push(item)) {
        std::unique_lock<std::mutex> lock(pipe_mutex_);
        if (stop_.load(std::memory_order_relaxed)) {
          producer_done_.store(true, std::memory_order_release);
          pipe_cv_.notify_all();
          return;
        }
        pipe_cv_.wait_for(lock, std::chrono::milliseconds(2));
      }
      pipe_cv_.notify_all();
      if (had_error) {
        break;  // the stream is dead past a read/decode failure
      }
    }
    producer_done_.store(true, std::memory_order_release);
    pipe_cv_.notify_all();
  });
}

void ChunkedFileSource::stop_producer() {
  stop_.store(true, std::memory_order_relaxed);
  pipe_cv_.notify_all();
  // Keep draining so a producer blocked on a full ring can make progress
  // and observe stop_.
  while (!producer_done_.load(std::memory_order_acquire)) {
    while (queue_->try_pop()) {
    }
    pipe_cv_.notify_all();
    std::unique_lock<std::mutex> lock(pipe_mutex_);
    pipe_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  while (queue_->try_pop()) {
  }
}

bool ChunkedFileSource::next(TrialBlock& block) {
  if (next_block_ >= chunk_trials_.size()) {
    return false;
  }
  Produced item;
  if (!options_.prefetch) {
    item = produce(next_block_);
  } else {
    // First pop attempt classifies the block: ready now = the pipeline hid
    // the whole read+decode behind compute (overlap win); empty = the
    // consumer stalls until the producer catches up.
    if (auto popped = queue_->try_pop()) {
      item = std::move(*popped);
      data_obs().overlap_wins.add();
    } else {
      obs::Timer wait("data.prefetch_stall");
      for (;;) {
        if (auto retry = queue_->try_pop()) {
          item = std::move(*retry);
          break;
        }
        // Ring empty: park until the producer pushes (timed, so a missed
        // notify costs a millisecond, never a hang).
        std::unique_lock<std::mutex> lock(pipe_mutex_);
        pipe_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
      const double stalled = wait.stop();
      stats_.wait_seconds += stalled;
      data_obs().stalls.add();
      data_obs().stall_seconds.observe(stalled);
    }
    pipe_cv_.notify_all();  // wake a producer parked on a full ring
  }
  if (item.error != nullptr) {
    next_block_ = chunk_trials_.size();  // poison the pass
    std::rethrow_exception(item.error);
  }

  stats_.bytes_read += item.bytes;
  stats_.peak_block_bytes = std::max(stats_.peak_block_bytes, item.bytes);
  stats_.produce_seconds += item.produce_seconds;
  ++stats_.blocks_delivered;
  data_obs().bytes_read.add(static_cast<double>(item.bytes));
  data_obs().blocks.add();

  block.yelt = std::move(item.yelt);
  block.trial_offset = chunk_offsets_[next_block_];
  block.index = next_block_;
  block.encoded_bytes = item.bytes;
  ++next_block_;
  return true;
}

void ChunkedFileSource::reset() {
  if (options_.prefetch) {
    stop_producer();
  }
  next_block_ = 0;
  stats_ = ChunkedFileSourceStats{};
  if (options_.prefetch) {
    start_producer();
  }
}

}  // namespace riskan::data
