#include "data/ylt.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace riskan::data {

YearLossTable::YearLossTable(TrialId trials, std::string label)
    : losses_(trials, 0.0), label_(std::move(label)) {}

YearLossTable::YearLossTable(std::vector<Money> losses, std::string label)
    : losses_(std::move(losses)), label_(std::move(label)) {}

YearLossTable& YearLossTable::operator+=(const YearLossTable& other) {
  RISKAN_REQUIRE(trials() == other.trials(),
                 "YLT trial counts differ; tables come from different simulations");
  for (std::size_t i = 0; i < losses_.size(); ++i) {
    losses_[i] += other.losses_[i];
  }
  return *this;
}

YearLossTable& YearLossTable::operator*=(double factor) {
  for (auto& loss : losses_) {
    loss *= factor;
  }
  return *this;
}

Money YearLossTable::total() const noexcept {
  Money sum = 0.0;
  for (const Money loss : losses_) {
    sum += loss;
  }
  return sum;
}

Money YearLossTable::mean() const noexcept {
  return losses_.empty() ? 0.0 : total() / static_cast<double>(losses_.size());
}

Money YearLossTable::max() const noexcept {
  return losses_.empty() ? 0.0 : *std::max_element(losses_.begin(), losses_.end());
}

}  // namespace riskan::data
