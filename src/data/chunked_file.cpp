#include "data/chunked_file.hpp"

#include <algorithm>

#include "util/io_error.hpp"
#include "util/require.hpp"

namespace riskan::data {

namespace {
constexpr std::uint32_t kChunkMagicV1 = 0x43484B31;  // "CHK1" — sizes-only directory
constexpr std::uint32_t kChunkMagicV2 = 0x43484B32;  // "CHK2" — size + crc32 per chunk
constexpr std::size_t kFooterBytes = sizeof(std::uint32_t) + sizeof(std::uint64_t);
}  // namespace

ChunkedFileWriter::ChunkedFileWriter(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::binary | std::ios::trunc) {
  RISKAN_REQUIRE(out_.good(), "cannot open chunked file for writing: " + path_);
}

std::size_t ChunkedFileWriter::append(std::span<const std::byte> chunk) {
  RISKAN_REQUIRE(!finished_, "append after finish");
  out_.write(reinterpret_cast<const char*>(chunk.data()),
             static_cast<std::streamsize>(chunk.size()));
  RISKAN_ENSURE(out_.good(), "chunk write failed: " + path_);
  sizes_.push_back(chunk.size());
  crcs_.push_back(crc32(chunk));
  return sizes_.size() - 1;
}

void ChunkedFileWriter::finish() {
  RISKAN_REQUIRE(!finished_, "double finish");
  finished_ = true;

  std::uint64_t dir_offset = 0;
  for (const auto size : sizes_) {
    dir_offset += size;
  }

  ByteWriter footer;
  footer.u64(sizes_.size());
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    footer.u64(sizes_[i]);
    footer.u32(crcs_[i]);
  }
  footer.u32(kChunkMagicV2);
  footer.u64(dir_offset);
  out_.write(reinterpret_cast<const char*>(footer.buffer().data()),
             static_cast<std::streamsize>(footer.size()));
  out_.close();
  RISKAN_ENSURE(!out_.fail(), "directory write failed: " + path_);
}

ChunkedFileWriter::~ChunkedFileWriter() {
  if (!finished_) {
    // Best effort: never leave a truncated container behind silently.
    try {
      finish();
    } catch (...) {  // NOLINT(bugprone-empty-catch) — destructor must not throw
    }
  }
}

ChunkedFileReader::ChunkedFileReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary | std::ios::ate) {
  RISKAN_REQUIRE(in_.good(), "cannot open chunked file for reading: " + path_);
  file_bytes_ = static_cast<std::size_t>(in_.tellg());
  if (file_bytes_ < kFooterBytes) {
    throw TruncatedFileError("chunked file too small for a footer: " + path_);
  }

  const auto footer_bytes = read_range(file_bytes_ - kFooterBytes, kFooterBytes);
  ByteReader tail(footer_bytes);
  const auto magic = tail.u32();
  if (magic != kChunkMagicV1 && magic != kChunkMagicV2) {
    throw CorruptChunkError("bad chunked-file magic: " + path_);
  }
  checksummed_ = magic == kChunkMagicV2;
  const bool checksummed = checksummed_;
  const auto dir_offset = tail.u64();
  if (dir_offset > file_bytes_ - kFooterBytes) {
    throw TruncatedFileError("directory offset past end of file (truncated footer): " +
                             path_);
  }

  const auto dir_bytes =
      read_range(dir_offset, file_bytes_ - kFooterBytes - static_cast<std::size_t>(dir_offset));
  ByteReader dir(dir_bytes);
  const auto count = dir.u64();
  const std::size_t entry_bytes =
      sizeof(std::uint64_t) + (checksummed ? sizeof(std::uint32_t) : 0);
  if (dir.remaining() != count * entry_bytes) {
    throw CorruptChunkError("directory size does not match chunk count: " + path_);
  }
  offsets_.reserve(count);
  sizes_.reserve(count);
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto size = dir.u64();
    offsets_.push_back(offset);
    sizes_.push_back(size);
    if (checksummed) {
      crcs_.push_back(dir.u32());
    }
    offset += size;
  }
  if (offset != dir_offset) {
    throw CorruptChunkError("chunk sizes do not cover body: " + path_);
  }
}

std::size_t ChunkedFileReader::chunk_size(std::size_t i) const {
  RISKAN_REQUIRE(i < sizes_.size(), "chunk index out of range");
  return sizes_[i];
}

std::vector<std::byte> ChunkedFileReader::read_range(std::uint64_t offset, std::size_t n) {
  std::vector<std::byte> bytes(n);
  in_.seekg(static_cast<std::streamoff>(offset));
  in_.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(n));
  if (!(in_.good() || n == 0)) {
    throw TruncatedFileError("chunk read past end of file: " + path_);
  }
  return bytes;
}

std::vector<std::byte> ChunkedFileReader::read_chunk(std::size_t i) {
  RISKAN_REQUIRE(i < offsets_.size(), "chunk index out of range");
  auto bytes = read_range(offsets_[i], sizes_[i]);
  if (!crcs_.empty() && crc32(bytes) != crcs_[i]) {
    throw CorruptChunkError("chunk checksum mismatch (corrupt chunk " + std::to_string(i) +
                            "): " + path_);
  }
  return bytes;
}

std::vector<std::byte> ChunkedFileReader::read_chunk_prefix(std::size_t i, std::size_t n) {
  RISKAN_REQUIRE(i < offsets_.size(), "chunk index out of range");
  return read_range(offsets_[i], std::min<std::size_t>(n, sizes_[i]));
}

}  // namespace riskan::data
