#include "data/chunked_file.hpp"

#include "util/require.hpp"

namespace riskan::data {

namespace {
constexpr std::uint32_t kChunkMagic = 0x43484B31;  // "CHK1"
}

ChunkedFileWriter::ChunkedFileWriter(std::string path) : path_(std::move(path)) {}

std::size_t ChunkedFileWriter::append(std::span<const std::byte> chunk) {
  RISKAN_REQUIRE(!finished_, "append after finish");
  body_.insert(body_.end(), chunk.begin(), chunk.end());
  sizes_.push_back(chunk.size());
  return sizes_.size() - 1;
}

void ChunkedFileWriter::finish() {
  RISKAN_REQUIRE(!finished_, "double finish");
  finished_ = true;

  ByteWriter footer;
  const std::uint64_t dir_offset = body_.size();
  footer.u64(sizes_.size());
  for (const auto size : sizes_) {
    footer.u64(size);
  }
  footer.u32(kChunkMagic);
  footer.u64(dir_offset);

  std::vector<std::byte> file = std::move(body_);
  file.insert(file.end(), footer.buffer().begin(), footer.buffer().end());
  write_file(path_, file);
}

ChunkedFileWriter::~ChunkedFileWriter() {
  if (!finished_) {
    // Best effort: never leave a truncated container behind silently.
    try {
      finish();
    } catch (...) {  // NOLINT(bugprone-empty-catch) — destructor must not throw
    }
  }
}

ChunkedFileReader::ChunkedFileReader(const std::string& path) : data_(read_file(path)) {
  RISKAN_REQUIRE(data_.size() >= sizeof(std::uint32_t) + sizeof(std::uint64_t),
                 "chunked file too small: " + path);

  // Footer: last 12 bytes are magic + directory offset.
  ByteReader tail(std::span<const std::byte>(data_).subspan(data_.size() - 12));
  const auto magic = tail.u32();
  RISKAN_REQUIRE(magic == kChunkMagic, "bad chunked-file magic: " + path);
  const auto dir_offset = tail.u64();
  RISKAN_REQUIRE(dir_offset <= data_.size() - 12, "corrupt directory offset: " + path);

  ByteReader dir(std::span<const std::byte>(data_).subspan(dir_offset));
  const auto count = dir.u64();
  offsets_.reserve(count);
  sizes_.reserve(count);
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto size = dir.u64();
    offsets_.push_back(offset);
    sizes_.push_back(size);
    offset += size;
  }
  RISKAN_ENSURE(offset == dir_offset, "chunk sizes do not cover body: " + path);
}

std::span<const std::byte> ChunkedFileReader::chunk(std::size_t i) const {
  RISKAN_REQUIRE(i < offsets_.size(), "chunk index out of range");
  return std::span<const std::byte>(data_).subspan(offsets_[i], sizes_[i]);
}

}  // namespace riskan::data
