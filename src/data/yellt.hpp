// Year-Event-Location-Loss Table (YELLT) — the full-resolution stage-2 view
// the paper argues can never be materialised.
//
// "if an analysis of 10,000 contracts for 100,000 events in 1,000 locations
// with 50,000 trial years is considered, the Year-Event-Location-Loss Table
// has over 5x10^16 entries. In existing portfolio management tools it is
// almost impossible to analyse at the YELLT level."
//
// We therefore expose the YELLT only as a *stream*: a cursor that yields
// (trial, event, location, contract, loss) tuples lazily from its factored
// sources — the YELT (which events occur in which trial) crossed with
// per-contract location-level loss disaggregation. Consumers scan; nothing
// is stored. A byte/entry accountant supports the E1 volume study, and a
// bounded `materialise` helper exists so tests can check the stream against
// an explicit cross-product at toy sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/elt.hpp"
#include "data/yelt.hpp"
#include "util/types.hpp"

namespace riskan::data {

/// One logical YELLT tuple.
struct YelltRecord {
  TrialId trial = 0;
  EventId event = 0;
  ContractId contract = 0;
  LocationId location = 0;
  Money loss = 0.0;
};

/// Size of one YELLT entry in a packed on-disk encoding; the unit of the
/// paper's 5x10^16 figure when translated to bytes.
inline constexpr std::size_t kYelltRecordBytes =
    sizeof(TrialId) + sizeof(EventId) + sizeof(ContractId) + sizeof(LocationId) + sizeof(Money);

/// Streams the YELLT implied by a YELT, a set of contract ELTs, and a
/// per-contract location count. Event losses are disaggregated over
/// locations with deterministic pseudo-random weights (seeded by ids), so
/// the stream is reproducible and the location marginals sum back to the
/// ELT mean — a property the tests verify.
class YelltStream {
 public:
  YelltStream(const YearEventLossTable& yelt, std::span<const EventLossTable> contract_elts,
              LocationId locations_per_contract, std::uint64_t seed = 7);

  /// Invokes `sink` for every tuple, in (trial, event-sequence, contract,
  /// location) order. Returns tuples emitted.
  std::uint64_t for_each(const std::function<void(const YelltRecord&)>& sink) const;

  /// Tuple count without enumerating locations (analytic short-cut:
  /// occurrences x contracts-with-loss x locations).
  std::uint64_t count_entries() const;

  /// Entries for an arbitrary sizing (the paper's head-line arithmetic:
  /// contracts x events x locations x trials). Pure function; no table
  /// needed. Used to check the 5x10^16 claim exactly.
  static double entries_for_sizing(double contracts, double events, double locations,
                                   double trials);

  /// Bounded materialisation for tests; refuses more than `cap` tuples.
  std::vector<YelltRecord> materialise(std::uint64_t cap = 1'000'000) const;

 private:
  const YearEventLossTable& yelt_;
  std::span<const EventLossTable> elts_;
  LocationId locations_;
  std::uint64_t seed_;
};

}  // namespace riskan::data
