// ResolvedYelt — the pre-joined event→row resolution of aggregate analysis.
//
// The stage-2 kernel walks every YELT occurrence once per (contract, layer,
// trial) and needs the matching ELT row. Resolving that mapping inside the
// kernel — a binary search per occurrence — re-derives the identical answer
// for every layer of a contract and on every engine run. The paper's own
// "scan, don't seek" argument applies: hoist the dependent random accesses
// out of the hot loop into a one-time streamed pre-join.
//
// A ResolvedYelt is a flat uint32 column aligned with yelt.events():
// rows()[i] is the ELT row index for occurrence i, or kNoLoss when the
// event causes no loss to the contract. The trial kernel then gathers
// mean/sampler parameters by direct index — no hashing, no branching
// binary search — and the resolution is shared across all layers of the
// contract and cached across runs (ResolverCache).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "data/elt.hpp"
#include "data/yelt.hpp"
#include "parallel/parallel_for.hpp"

namespace riskan::data {

class ResolvedYelt {
 public:
  /// Sentinel row for "event not in the ELT" (no loss to this contract).
  static constexpr std::uint32_t kNoLoss = ~std::uint32_t{0};

  ResolvedYelt() = default;

  /// One-time pre-join: binary-searches each YELT occurrence in `elt`
  /// exactly once, in parallel over contiguous occurrence slabs.
  /// Deterministic (each slot is written independently of scheduling).
  static ResolvedYelt build(const EventLossTable& elt, const YearEventLossTable& yelt,
                            ParallelConfig cfg = {});

  /// Row column aligned with yelt.events(): rows()[i] indexes the ELT, or
  /// kNoLoss.
  std::span<const std::uint32_t> rows() const noexcept { return rows_; }

  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }

  /// Occurrences that resolved to an ELT row (telemetry; equals the
  /// engine's per-layer "lookups found" count).
  std::uint64_t hits() const noexcept { return hits_; }

  std::size_t byte_size() const noexcept { return rows_.size() * sizeof(std::uint32_t); }

 private:
  std::vector<std::uint32_t> rows_;
  std::uint64_t hits_ = 0;
};

/// Process-wide cache of resolutions keyed by (ELT, YELT) identity.
///
/// The key couples the tables' data pointers and shapes with a strided
/// content fingerprint (first/last/sampled event ids of both tables), so a
/// freed table whose address is reused by a different table does not
/// produce a false hit. Entries are evicted FIFO past kMaxEntries entries
/// or kMaxBytes of retained row columns — the byte bound is what matters
/// for long-lived processes that resolve many distinct large workloads,
/// since cached resolutions can outlive the tables they were built from.
class ResolverCache {
 public:
  /// Entries retained before FIFO eviction kicks in.
  static constexpr std::size_t kMaxEntries = 128;
  /// Retained resolution bytes before FIFO eviction kicks in (a single
  /// oversized resolution is still cached; older entries go first).
  static constexpr std::size_t kMaxBytes = std::size_t{256} << 20;

  ResolverCache() = default;
  ResolverCache(const ResolverCache&) = delete;
  ResolverCache& operator=(const ResolverCache&) = delete;

  /// Returns the cached resolution for (elt, yelt), building it on miss.
  /// Thread-safe; concurrent misses on the same key may build twice but
  /// return equivalent resolutions.
  std::shared_ptr<const ResolvedYelt> get_or_build(const EventLossTable& elt,
                                                   const YearEventLossTable& yelt,
                                                   ParallelConfig cfg = {});

  std::size_t size() const;
  /// Total bytes of retained row columns.
  std::size_t byte_size() const;
  void clear();

  /// Telemetry for benches and the architecture doc's cache-hit claims.
  std::uint64_t hit_count() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t miss_count() const noexcept { return misses_.load(std::memory_order_relaxed); }

  /// The process-wide cache used by the engines when none is supplied.
  static ResolverCache& shared();

 private:
  struct Key {
    const void* elt_ids = nullptr;
    const void* yelt_events = nullptr;
    std::size_t elt_size = 0;
    std::uint64_t yelt_entries = 0;
    TrialId yelt_trials = 0;
    std::uint64_t fingerprint = 0;

    bool operator==(const Key&) const = default;
  };

  static Key make_key(const EventLossTable& elt, const YearEventLossTable& yelt) noexcept;

  mutable std::mutex mutex_;
  std::vector<std::pair<Key, std::shared_ptr<const ResolvedYelt>>> entries_;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace riskan::data
