// ResolvedYelt — the pre-joined event→row resolution of aggregate analysis.
//
// The stage-2 kernel walks every YELT occurrence once per (contract, layer,
// trial) and needs the matching ELT row. Resolving that mapping inside the
// kernel — a binary search per occurrence — re-derives the identical answer
// for every layer of a contract and on every engine run. The paper's own
// "scan, don't seek" argument applies: hoist the dependent random accesses
// out of the hot loop into a one-time streamed pre-join.
//
// A ResolvedYelt is a flat uint32 column aligned with yelt.events():
// rows()[i] is the ELT row index for occurrence i, or kNoLoss when the
// event causes no loss to the contract. The trial kernel then gathers
// mean/sampler parameters by direct index — no hashing, no branching
// binary search — and the resolution is shared across all layers of the
// contract and cached across runs (ResolverCache).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "data/elt.hpp"
#include "data/yelt.hpp"
#include "parallel/parallel_for.hpp"
#include "util/aligned.hpp"

namespace riskan::data {

class ResolvedYelt {
 public:
  /// Sentinel row for "event not in the ELT" (no loss to this contract).
  static constexpr std::uint32_t kNoLoss = ~std::uint32_t{0};

  ResolvedYelt() = default;

  /// One-time pre-join: binary-searches each YELT occurrence in `elt`
  /// exactly once, in parallel over contiguous occurrence slabs.
  /// Deterministic (each slot is written independently of scheduling).
  static ResolvedYelt build(const EventLossTable& elt, const YearEventLossTable& yelt,
                            ParallelConfig cfg = {});

  /// Row column aligned with yelt.events(): rows()[i] indexes the ELT, or
  /// kNoLoss.
  std::span<const std::uint32_t> rows() const noexcept { return rows_; }

  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }

  /// Occurrences that resolved to an ELT row (telemetry; equals the
  /// engine's per-layer "lookups found" count).
  std::uint64_t hits() const noexcept { return hits_; }

  std::size_t byte_size() const noexcept { return rows_.size() * sizeof(std::uint32_t); }

 private:
  util::AlignedVector<std::uint32_t> rows_;  // gather column — 64-byte aligned
  std::uint64_t hits_ = 0;
};

/// Hit-compacted resolution — the SoA gather input of the portfolio-batched
/// engine (core::PortfolioBatchRunner).
///
/// A ResolvedYelt still carries one slot per YELT occurrence, most of which
/// are kNoLoss for a contract whose ELT covers a fraction of the catalogue:
/// the per-contract kernel reads 4 bytes and branches for every miss. The
/// compact form keeps only the hits, CSR-indexed by trial, as two parallel
/// uint32 columns:
///   seqs()[k] — the occurrence's sequence number within its trial
///               (i - yelt.offsets()[t]; also the secondary-uncertainty
///               stream key, so sampling stays bit-identical);
///   rows()[k] — the matching ELT row.
/// trial_offsets()[t]..trial_offsets()[t+1] delimit trial t's hits. A layer
/// pass then touches 8 bytes per *hit* instead of 4 bytes per *occurrence*,
/// and spends no branches on misses — at a typical 10% catalogue coverage
/// that is ~5x less streamed data per (layer, trial) walk.
class CompactResolvedYelt {
 public:
  CompactResolvedYelt() = default;

  /// Compacts `resolved` (built against `yelt`) into hit columns. Two
  /// streamed passes (count, fill), parallel over trial slabs; every output
  /// slot is written independently of scheduling, so the build is
  /// deterministic.
  static CompactResolvedYelt build(const ResolvedYelt& resolved,
                                   const YearEventLossTable& yelt, ParallelConfig cfg = {});

  /// CSR index: hits of trial t live in [trial_offsets()[t], trial_offsets()[t+1]).
  std::span<const std::uint64_t> trial_offsets() const noexcept { return trial_offsets_; }
  /// In-trial occurrence sequence numbers of the hits, trial-relative.
  std::span<const std::uint32_t> seqs() const noexcept { return seqs_; }
  /// ELT rows of the hits, parallel to seqs().
  std::span<const std::uint32_t> rows() const noexcept { return rows_; }

  /// Total hits (== the source resolution's hits()).
  std::uint64_t hits() const noexcept { return seqs_.size(); }
  TrialId trials() const noexcept {
    return trial_offsets_.empty() ? 0 : static_cast<TrialId>(trial_offsets_.size() - 1);
  }

  std::size_t byte_size() const noexcept {
    return trial_offsets_.size() * sizeof(std::uint64_t) +
           (seqs_.size() + rows_.size()) * sizeof(std::uint32_t);
  }

 private:
  // SoA gather columns of the batched/vectorized kernels — 64-byte aligned.
  util::AlignedVector<std::uint64_t> trial_offsets_;
  util::AlignedVector<std::uint32_t> seqs_;
  util::AlignedVector<std::uint32_t> rows_;
};

class ResolverCache;

/// Pre-resolved view of many contracts' ELTs against one shared YELT — what
/// the batched engine builds up front so the trial-chunk pass is pure
/// gathers. Both the full resolutions and their hit-compacted forms come
/// from (and stay shared through) a ResolverCache, so a warm batched run
/// resolves and compacts nothing.
class MultiResolution {
 public:
  struct Entry {
    std::shared_ptr<const ResolvedYelt> resolved;
    std::shared_ptr<const CompactResolvedYelt> compact;
  };

  MultiResolution() = default;

  /// Resolves every ELT in `elts` against `yelt` through `cache` (nullptr =
  /// ResolverCache::shared()) and compacts each. Order of entries follows
  /// `elts`.
  static MultiResolution build(std::span<const EventLossTable* const> elts,
                               const YearEventLossTable& yelt, ResolverCache* cache,
                               ParallelConfig cfg = {});

  const Entry& entry(std::size_t i) const { return entries_[i]; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

/// Process-wide cache of resolutions keyed by (ELT, YELT) identity.
///
/// The key couples the tables' data pointers and shapes with a strided
/// content fingerprint (first/last/sampled event ids of both tables), so a
/// freed table whose address is reused by a different table does not
/// produce a false hit. Entries are evicted FIFO past kMaxEntries entries
/// or kMaxBytes of retained row columns — the byte bound is what matters
/// for long-lived processes that resolve many distinct large workloads,
/// since cached resolutions can outlive the tables they were built from.
class ResolverCache {
 public:
  /// Entries retained before FIFO eviction kicks in.
  static constexpr std::size_t kMaxEntries = 128;
  /// Retained resolution bytes before FIFO eviction kicks in (a single
  /// oversized resolution is still cached; older entries go first).
  static constexpr std::size_t kMaxBytes = std::size_t{256} << 20;

  ResolverCache() = default;
  ResolverCache(const ResolverCache&) = delete;
  ResolverCache& operator=(const ResolverCache&) = delete;

  /// Returns the cached resolution for (elt, yelt), building it on miss.
  /// Thread-safe; concurrent misses on the same key may build twice but
  /// return equivalent resolutions.
  std::shared_ptr<const ResolvedYelt> get_or_build(const EventLossTable& elt,
                                                   const YearEventLossTable& yelt,
                                                   ParallelConfig cfg = {});

  /// Full + hit-compacted resolution pair for the batched engine. The
  /// compact form is derived lazily from the cached full resolution and
  /// retained with it, so warm batched runs gather without re-compacting.
  struct CompactEntry {
    std::shared_ptr<const ResolvedYelt> resolved;
    std::shared_ptr<const CompactResolvedYelt> compact;
  };
  CompactEntry get_or_build_compact(const EventLossTable& elt,
                                    const YearEventLossTable& yelt,
                                    ParallelConfig cfg = {});

  std::size_t size() const;
  /// Total bytes of retained row columns.
  std::size_t byte_size() const;
  void clear();

  /// Telemetry for benches and the architecture doc's cache-hit claims.
  std::uint64_t hit_count() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t miss_count() const noexcept { return misses_.load(std::memory_order_relaxed); }

  /// The process-wide cache used by the engines when none is supplied.
  static ResolverCache& shared();

 private:
  struct Key {
    const void* elt_ids = nullptr;
    const void* yelt_events = nullptr;
    std::size_t elt_size = 0;
    std::uint64_t yelt_entries = 0;
    TrialId yelt_trials = 0;
    std::uint64_t fingerprint = 0;

    bool operator==(const Key&) const = default;
  };

  static Key make_key(const EventLossTable& elt, const YearEventLossTable& yelt) noexcept;

  struct Entry {
    Key key;
    std::shared_ptr<const ResolvedYelt> resolved;
    std::shared_ptr<const CompactResolvedYelt> compact;  // lazily attached

    std::size_t bytes() const noexcept {
      return resolved->byte_size() + (compact ? compact->byte_size() : 0);
    }
  };

  /// Inserts under the lock, re-checking for a racing insert; returns the
  /// surviving entry's value and runs FIFO eviction.
  CompactEntry insert_locked(const Key& key, std::shared_ptr<const ResolvedYelt> resolved,
                             std::shared_ptr<const CompactResolvedYelt> compact);
  /// FIFO-evicts past the entry/byte bounds; caller holds mutex_.
  void evict_locked();

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::size_t bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace riskan::data
