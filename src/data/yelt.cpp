#include "data/yelt.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace riskan::data {

YearEventLossTable::Builder::Builder(TrialId expected_trials) {
  offsets_.reserve(expected_trials + 1);
  offsets_.push_back(0);
}

void YearEventLossTable::Builder::begin_trial() {
  if (open_) {
    offsets_.push_back(events_.size());
  }
  open_ = true;
}

void YearEventLossTable::Builder::add(EventId event, std::uint16_t day) {
  RISKAN_REQUIRE(open_, "add() before begin_trial()");
  RISKAN_REQUIRE(day < 365, "day of year out of range");
  events_.push_back(event);
  days_.push_back(day);
}

YearEventLossTable YearEventLossTable::Builder::finish() {
  if (open_) {
    offsets_.push_back(events_.size());
    open_ = false;
  }
  YearEventLossTable table;
  table.offsets_ = std::move(offsets_);
  table.events_ = std::move(events_);
  table.days_ = std::move(days_);
  return table;
}

std::span<const EventId> YearEventLossTable::trial_events(TrialId t) const {
  RISKAN_REQUIRE(t < trials(), "trial id out of range");
  const auto lo = offsets_[t];
  const auto hi = offsets_[t + 1];
  return std::span<const EventId>(events_).subspan(lo, hi - lo);
}

std::span<const std::uint16_t> YearEventLossTable::trial_days(TrialId t) const {
  RISKAN_REQUIRE(t < trials(), "trial id out of range");
  const auto lo = offsets_[t];
  const auto hi = offsets_[t + 1];
  return std::span<const std::uint16_t>(days_).subspan(lo, hi - lo);
}

std::size_t YearEventLossTable::trial_size(TrialId t) const {
  RISKAN_REQUIRE(t < trials(), "trial id out of range");
  return static_cast<std::size_t>(offsets_[t + 1] - offsets_[t]);
}

std::size_t YearEventLossTable::byte_size() const noexcept {
  return offsets_.size() * sizeof(std::uint64_t) + events_.size() * sizeof(EventId) +
         days_.size() * sizeof(std::uint16_t);
}

double YearEventLossTable::mean_events_per_trial() const noexcept {
  const auto t = trials();
  return t == 0 ? 0.0 : static_cast<double>(entries()) / static_cast<double>(t);
}

YearEventLossTable generate_yelt(EventId catalog_events, const YeltGenConfig& config) {
  RISKAN_REQUIRE(catalog_events > 0, "catalogue must contain events");
  RISKAN_REQUIRE(config.mean_events_per_year > 0.0, "mean events per year must be positive");

  // Per-event relative rate ~ power law over event rank: rate_i ∝ 1/(i+1)^0.7.
  // Build the cumulative distribution once; each occurrence samples an event
  // by inverse transform (binary search).
  std::vector<double> cumulative(catalog_events);
  double total = 0.0;
  for (EventId e = 0; e < catalog_events; ++e) {
    total += 1.0 / std::pow(static_cast<double>(e) + 1.0, 0.7);
    cumulative[e] = total;
  }
  for (auto& c : cumulative) {
    c /= total;
  }

  RISKAN_REQUIRE(config.dispersion >= 0.0, "dispersion must be non-negative");

  Xoshiro256ss rng(config.seed);
  YearEventLossTable::Builder builder(config.trials);
  std::vector<YeltEntry> year;
  for (TrialId t = 0; t < config.trials; ++t) {
    builder.begin_trial();
    // Gamma-Poisson mixture: rate multiplier with mean 1, variance d.
    double year_rate = config.mean_events_per_year;
    if (config.dispersion > 0.0) {
      const double shape = 1.0 / config.dispersion;
      year_rate *= sample_gamma(rng, shape) / shape;
    }
    const std::uint32_t count = sample_poisson(rng, year_rate);
    year.clear();
    for (std::uint32_t k = 0; k < count; ++k) {
      const double u = to_unit_double(rng());
      const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
      const auto event = static_cast<EventId>(it - cumulative.begin());
      const auto day = static_cast<std::uint16_t>(sample_index(rng, 365));
      year.push_back(YeltEntry{std::min(event, catalog_events - 1), day});
    }
    if (config.sort_by_day) {
      std::stable_sort(year.begin(), year.end(),
                       [](const YeltEntry& a, const YeltEntry& b) { return a.day < b.day; });
    }
    for (const auto& entry : year) {
      builder.add(entry.event_id, entry.day);
    }
  }
  return builder.finish();
}

}  // namespace riskan::data
