// Event-Loss Table (ELT) — the output of stage 1 (catastrophe modelling)
// and the per-contract loss lookup of stage 2 (aggregate analysis).
//
// An ELT row gives, for one stochastic event, the expected loss to one
// contract's exposure together with the spread used for secondary
// uncertainty: (event_id, mean_loss, sigma_loss, exposure_limit).
//
// Layout is struct-of-arrays sorted by event id: the aggregate engines
// pre-join it to the YELT once per contract (data::ResolvedYelt — the
// sorted order makes the pre-join a cheap streamed binary-search pass, and
// the trial kernels then gather rows by direct index), the device engine
// uploads the arrays to simulated constant memory, and the scan kernels
// stream it — all want columnar contiguity, which is exactly the "small
// number of very large tables ... streamed by independent processes"
// organisation the paper prescribes for stage 1 outputs. find() remains
// the reference per-occurrence lookup for the resolver-off path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/aligned.hpp"
#include "util/types.hpp"

namespace riskan::data {

/// One ELT row (used by builders and row-oriented baselines; the table
/// itself stores columns).
struct EltRow {
  EventId event_id = 0;
  Money mean_loss = 0.0;
  Money sigma_loss = 0.0;
  /// Maximum possible loss for the event (exposed limit); the support of
  /// the secondary-uncertainty beta distribution.
  Money exposure = 0.0;
};

class EventLossTable {
 public:
  EventLossTable() = default;

  /// Builds from rows; sorts by event id and rejects duplicates.
  static EventLossTable from_rows(std::vector<EltRow> rows);

  std::size_t size() const noexcept { return event_ids_.size(); }
  bool empty() const noexcept { return event_ids_.empty(); }

  std::span<const EventId> event_ids() const noexcept { return event_ids_; }
  std::span<const Money> mean_loss() const noexcept { return mean_; }
  std::span<const Money> sigma_loss() const noexcept { return sigma_; }
  std::span<const Money> exposure() const noexcept { return exposure_; }

  /// Index of the event in the table, or npos when the event causes no loss
  /// to this contract. O(log n) binary search — the reference lookup of the
  /// resolver-off path.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(EventId event) const noexcept;

  /// Sentinel row in row_lookup(): the event is not in the table.
  static constexpr std::uint32_t kNoRow = ~std::uint32_t{0};

  /// Dense event→row lookup covering [0, max event id]: row_lookup()[e] is
  /// the row of event e, or kNoRow. Built by from_rows when the id range is
  /// dense enough to be worth the memory (max id + 1 <= max(4096, 64 x
  /// rows)); empty otherwise, and callers fall back to find(). This is what
  /// makes event→row resolution O(1) per occurrence — the out-of-core path
  /// re-resolves every block, so it is resolution's hot path.
  std::span<const std::uint32_t> row_lookup() const noexcept { return row_lookup_; }

  /// Row view at index (bounds-checked by contract).
  EltRow row(std::size_t index) const;

  /// Sum of mean losses (the contract's annual expected ground-up loss
  /// given one occurrence of every catalogue event — used by sanity tests).
  Money total_mean_loss() const noexcept;

  /// Bytes occupied by the columns (capacity excluded); feeds the E1/E4
  /// accounting and the device-engine chunk planner.
  std::size_t byte_size() const noexcept;

 private:
  // SoA columns — 64-byte aligned (mean_ is the vector kernels' gather base).
  util::AlignedVector<EventId> event_ids_;
  util::AlignedVector<Money> mean_;
  util::AlignedVector<Money> sigma_;
  util::AlignedVector<Money> exposure_;
  util::AlignedVector<std::uint32_t> row_lookup_;  // empty when ids are too sparse
};

}  // namespace riskan::data
