#include "data/hash_index.hpp"

namespace riskan::data {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HashIndex::HashIndex(std::size_t expected) {
  slots_.resize(round_up_pow2(expected * 2));
}

void HashIndex::insert(std::uint64_t key, std::uint64_t value) {
  RISKAN_REQUIRE(key != kEmpty, "key collides with empty sentinel");
  if ((size_ + 1) * 10 > slots_.size() * 7) {
    grow();
  }
  std::size_t slot = slot_for(key);
  for (;;) {
    if (slots_[slot].key == kEmpty) {
      slots_[slot] = Slot{key, value};
      ++size_;
      return;
    }
    RISKAN_REQUIRE(slots_[slot].key != key, "duplicate key in hash index");
    slot = (slot + 1) & (slots_.size() - 1);
  }
}

std::optional<std::uint64_t> HashIndex::find(std::uint64_t key) const noexcept {
  std::size_t slot = slot_for(key);
  std::uint64_t distance = 0;
  std::optional<std::uint64_t> found;
  for (;;) {
    ++distance;
    if (slots_[slot].key == key) {
      found = slots_[slot].value;
      break;
    }
    if (slots_[slot].key == kEmpty) {
      break;
    }
    slot = (slot + 1) & (slots_.size() - 1);
  }
  probes_.fetch_add(distance, std::memory_order_relaxed);
  return found;
}

void HashIndex::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  size_ = 0;
  for (const auto& slot : old) {
    if (slot.key != kEmpty) {
      insert(slot.key, slot.value);
    }
  }
}

}  // namespace riskan::data
