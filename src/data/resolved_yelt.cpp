#include "data/resolved_yelt.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace riskan::data {

namespace {

/// Process-wide resolver telemetry: every ResolverCache instance (shared,
/// run-local, ephemeral) reports into the same counters, so the obs report
/// shows the run's total hit/miss/build picture regardless of which cache
/// served it.
obs::Counter resolver_hits() {
  static const obs::Counter c = obs::MetricsRegistry::global().counter("resolver.hits");
  return c;
}

obs::Counter resolver_misses() {
  static const obs::Counter c = obs::MetricsRegistry::global().counter("resolver.misses");
  return c;
}

obs::Histogram resolver_build_seconds() {
  static const obs::Histogram h =
      obs::MetricsRegistry::global().histogram("resolver.build_seconds");
  return h;
}

}  // namespace

ResolvedYelt ResolvedYelt::build(const EventLossTable& elt, const YearEventLossTable& yelt,
                                 ParallelConfig cfg) {
  RISKAN_REQUIRE(elt.size() < static_cast<std::size_t>(kNoLoss),
                 "ELT too large for uint32 row indices");

  ResolvedYelt resolved;
  resolved.rows_.resize(yelt.entries());

  const auto events = yelt.events();
  const auto ids = elt.event_ids();
  const auto lookup = elt.row_lookup();
  auto* out = resolved.rows_.data();
  RISKAN_DEBUG_ASSERT_ALIGNED(out);

  // Each chunk streams a contiguous slab of the events column and writes
  // the matching slab of the row column; chunk order never shows in the
  // output, so the build is deterministic under any scheduling. Tables
  // with a dense id range carry an O(1) event→row lookup (the hot path —
  // out-of-core runs resolve every block); sparse tables binary-search.
  // Both produce identical row indices.
  resolved.hits_ = parallel_reduce<std::uint64_t>(
      0, resolved.rows_.size(), 0,
      [&](std::size_t lo, std::size_t hi) {
        std::uint64_t found = 0;
        if (!lookup.empty()) {
          static_assert(EventLossTable::kNoRow == ResolvedYelt::kNoLoss);
          for (std::size_t i = lo; i < hi; ++i) {
            const EventId e = events[i];
            const std::uint32_t row = e < lookup.size() ? lookup[e] : kNoLoss;
            out[i] = row;
            found += row != kNoLoss ? 1 : 0;
          }
          return found;
        }
        for (std::size_t i = lo; i < hi; ++i) {
          const auto it = std::lower_bound(ids.begin(), ids.end(), events[i]);
          if (it != ids.end() && *it == events[i]) {
            out[i] = static_cast<std::uint32_t>(it - ids.begin());
            ++found;
          } else {
            out[i] = kNoLoss;
          }
        }
        return found;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, cfg);
  return resolved;
}

CompactResolvedYelt CompactResolvedYelt::build(const ResolvedYelt& resolved,
                                               const YearEventLossTable& yelt,
                                               ParallelConfig cfg) {
  RISKAN_REQUIRE(resolved.size() == yelt.entries(),
                 "resolution was built against a different YELT");

  CompactResolvedYelt compact;
  const TrialId trials = yelt.trials();
  compact.trial_offsets_.assign(static_cast<std::size_t>(trials) + 1, 0);

  const auto offsets = yelt.offsets();
  const auto rows = resolved.rows();

  // Guard before the parallel region: pool tasks must not throw (a throw
  // there terminates instead of surfacing the ContractViolation).
  for (TrialId t = 0; t < trials; ++t) {
    RISKAN_REQUIRE(offsets[t + 1] - offsets[t] <=
                       std::numeric_limits<std::uint32_t>::max(),
                   "trial too large for uint32 occurrence sequence numbers");
  }

  // Pass 1: per-trial hit counts, streamed in parallel trial slabs. Counts
  // land in trial_offsets_[t + 1] so the exclusive prefix sum below turns
  // the vector into the CSR index in place.
  auto* counts = compact.trial_offsets_.data();
  parallel_for(
      0, trials,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          std::uint64_t found = 0;
          for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
            found += rows[i] != ResolvedYelt::kNoLoss ? 1 : 0;
          }
          counts[t + 1] = found;
        }
      },
      cfg);
  for (TrialId t = 0; t < trials; ++t) {
    counts[t + 1] += counts[t];
  }

  // Pass 2: fill the hit columns. Each trial writes its own CSR range, so
  // slabs never overlap and the output is scheduling-independent.
  compact.seqs_.resize(compact.trial_offsets_.back());
  compact.rows_.resize(compact.trial_offsets_.back());
  auto* seqs_out = compact.seqs_.data();
  auto* rows_out = compact.rows_.data();
  RISKAN_DEBUG_ASSERT_ALIGNED(compact.trial_offsets_.data());
  RISKAN_DEBUG_ASSERT_ALIGNED(seqs_out);
  RISKAN_DEBUG_ASSERT_ALIGNED(rows_out);
  parallel_for(
      0, trials,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          std::uint64_t k = counts[t];
          const std::uint64_t begin = offsets[t];
          for (std::uint64_t i = begin; i < offsets[t + 1]; ++i) {
            if (rows[i] != ResolvedYelt::kNoLoss) {
              seqs_out[k] = static_cast<std::uint32_t>(i - begin);
              rows_out[k] = rows[i];
              ++k;
            }
          }
        }
      },
      cfg);
  return compact;
}

MultiResolution MultiResolution::build(std::span<const EventLossTable* const> elts,
                                       const YearEventLossTable& yelt, ResolverCache* cache,
                                       ParallelConfig cfg) {
  ResolverCache& resolver = cache ? *cache : ResolverCache::shared();
  MultiResolution set;
  set.entries_.reserve(elts.size());
  for (const EventLossTable* elt : elts) {
    RISKAN_REQUIRE(elt != nullptr, "MultiResolution: null ELT");
    auto cached = resolver.get_or_build_compact(*elt, yelt, cfg);
    set.entries_.push_back(Entry{std::move(cached.resolved), std::move(cached.compact)});
  }
  return set;
}

ResolverCache::Key ResolverCache::make_key(const EventLossTable& elt,
                                           const YearEventLossTable& yelt) noexcept {
  Key key;
  key.elt_ids = elt.event_ids().data();
  key.yelt_events = yelt.events().data();
  key.elt_size = elt.size();
  key.yelt_entries = yelt.entries();
  key.yelt_trials = yelt.trials();

  // Strided content fingerprint: 16 samples from each table's id column,
  // mixed FNV-1a style. Guards the pointer identity above against
  // allocator address reuse (a freed table replaced by a different one at
  // the same address and shape).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto ids = elt.event_ids();
  const auto events = yelt.events();
  constexpr std::size_t kSamples = 16;
  if (!ids.empty()) {
    const std::size_t stride = std::max<std::size_t>(1, ids.size() / kSamples);
    for (std::size_t i = 0; i < ids.size(); i += stride) {
      mix(ids[i]);
    }
    mix(ids.back());
  }
  if (!events.empty()) {
    const std::size_t stride = std::max<std::size_t>(1, events.size() / kSamples);
    for (std::size_t i = 0; i < events.size(); i += stride) {
      mix(events[i]);
    }
    mix(events.back());
  }
  key.fingerprint = h;
  return key;
}

ResolverCache::CompactEntry ResolverCache::insert_locked(
    const Key& key, std::shared_ptr<const ResolvedYelt> resolved,
    std::shared_ptr<const CompactResolvedYelt> compact) {
  for (Entry& entry : entries_) {
    if (entry.key == key) {
      // Lost an insert race; keep the first build, but donate the compact
      // form if the survivor lacks one.
      if (compact && !entry.compact) {
        entry.compact = std::move(compact);
        bytes_ += entry.compact->byte_size();
      }
      CompactEntry value{entry.resolved, entry.compact};
      evict_locked();  // the donation may have breached the byte bound
      return value;
    }
  }
  entries_.push_back(Entry{key, std::move(resolved), std::move(compact)});
  bytes_ += entries_.back().bytes();
  CompactEntry value{entries_.back().resolved, entries_.back().compact};
  evict_locked();
  return value;
}

void ResolverCache::evict_locked() {
  // FIFO eviction under both bounds; the newest entry always survives so a
  // single oversized resolution is still served from the cache.
  while (entries_.size() > 1 &&
         (entries_.size() > kMaxEntries || bytes_ > kMaxBytes)) {
    bytes_ -= entries_.front().bytes();
    entries_.erase(entries_.begin());
  }
}

std::shared_ptr<const ResolvedYelt> ResolverCache::get_or_build(
    const EventLossTable& elt, const YearEventLossTable& yelt, ParallelConfig cfg) {
  const Key key = make_key(elt, yelt);
  {
    std::lock_guard lock(mutex_);
    for (const Entry& entry : entries_) {
      if (entry.key == key) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        resolver_hits().add();
        return entry.resolved;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  resolver_misses().add();

  // Build outside the lock: a concurrent miss on the same key builds a
  // duplicate (equivalent) resolution rather than serialising the pool.
  obs::Timer build_timer("resolver.build");
  auto built = std::make_shared<const ResolvedYelt>(ResolvedYelt::build(elt, yelt, cfg));
  resolver_build_seconds().observe(build_timer.stop());

  std::lock_guard lock(mutex_);
  return insert_locked(key, std::move(built), nullptr).resolved;
}

ResolverCache::CompactEntry ResolverCache::get_or_build_compact(
    const EventLossTable& elt, const YearEventLossTable& yelt, ParallelConfig cfg) {
  const Key key = make_key(elt, yelt);
  std::shared_ptr<const ResolvedYelt> resolved;
  {
    std::lock_guard lock(mutex_);
    for (const Entry& entry : entries_) {
      if (entry.key == key) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        resolver_hits().add();
        if (entry.compact) {
          return {entry.resolved, entry.compact};
        }
        resolved = entry.resolved;  // full form cached; compact still to build
        break;
      }
    }
  }
  if (!resolved) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    resolver_misses().add();
    obs::Timer build_timer("resolver.build");
    resolved = std::make_shared<const ResolvedYelt>(ResolvedYelt::build(elt, yelt, cfg));
    resolver_build_seconds().observe(build_timer.stop());
  }
  auto compact = std::make_shared<const CompactResolvedYelt>(
      CompactResolvedYelt::build(*resolved, yelt, cfg));

  std::lock_guard lock(mutex_);
  return insert_locked(key, std::move(resolved), std::move(compact));
}

std::size_t ResolverCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::size_t ResolverCache::byte_size() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

void ResolverCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  bytes_ = 0;
}

ResolverCache& ResolverCache::shared() {
  static ResolverCache cache;
  return cache;
}

}  // namespace riskan::data
