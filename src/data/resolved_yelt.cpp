#include "data/resolved_yelt.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace riskan::data {

ResolvedYelt ResolvedYelt::build(const EventLossTable& elt, const YearEventLossTable& yelt,
                                 ParallelConfig cfg) {
  RISKAN_REQUIRE(elt.size() < static_cast<std::size_t>(kNoLoss),
                 "ELT too large for uint32 row indices");

  ResolvedYelt resolved;
  resolved.rows_.resize(yelt.entries());

  const auto events = yelt.events();
  const auto ids = elt.event_ids();
  auto* out = resolved.rows_.data();

  // Each chunk streams a contiguous slab of the events column and writes
  // the matching slab of the row column; chunk order never shows in the
  // output, so the build is deterministic under any scheduling.
  resolved.hits_ = parallel_reduce<std::uint64_t>(
      0, resolved.rows_.size(), 0,
      [&](std::size_t lo, std::size_t hi) {
        std::uint64_t found = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto it = std::lower_bound(ids.begin(), ids.end(), events[i]);
          if (it != ids.end() && *it == events[i]) {
            out[i] = static_cast<std::uint32_t>(it - ids.begin());
            ++found;
          } else {
            out[i] = kNoLoss;
          }
        }
        return found;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, cfg);
  return resolved;
}

ResolverCache::Key ResolverCache::make_key(const EventLossTable& elt,
                                           const YearEventLossTable& yelt) noexcept {
  Key key;
  key.elt_ids = elt.event_ids().data();
  key.yelt_events = yelt.events().data();
  key.elt_size = elt.size();
  key.yelt_entries = yelt.entries();
  key.yelt_trials = yelt.trials();

  // Strided content fingerprint: 16 samples from each table's id column,
  // mixed FNV-1a style. Guards the pointer identity above against
  // allocator address reuse (a freed table replaced by a different one at
  // the same address and shape).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto ids = elt.event_ids();
  const auto events = yelt.events();
  constexpr std::size_t kSamples = 16;
  if (!ids.empty()) {
    const std::size_t stride = std::max<std::size_t>(1, ids.size() / kSamples);
    for (std::size_t i = 0; i < ids.size(); i += stride) {
      mix(ids[i]);
    }
    mix(ids.back());
  }
  if (!events.empty()) {
    const std::size_t stride = std::max<std::size_t>(1, events.size() / kSamples);
    for (std::size_t i = 0; i < events.size(); i += stride) {
      mix(events[i]);
    }
    mix(events.back());
  }
  key.fingerprint = h;
  return key;
}

std::shared_ptr<const ResolvedYelt> ResolverCache::get_or_build(
    const EventLossTable& elt, const YearEventLossTable& yelt, ParallelConfig cfg) {
  const Key key = make_key(elt, yelt);
  {
    std::lock_guard lock(mutex_);
    for (const auto& [k, v] : entries_) {
      if (k == key) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return v;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Build outside the lock: a concurrent miss on the same key builds a
  // duplicate (equivalent) resolution rather than serialising the pool.
  auto built = std::make_shared<const ResolvedYelt>(ResolvedYelt::build(elt, yelt, cfg));

  std::lock_guard lock(mutex_);
  for (const auto& [k, v] : entries_) {
    if (k == key) {
      return v;  // lost the race; keep the first build
    }
  }
  entries_.emplace_back(key, built);
  bytes_ += built->byte_size();
  // FIFO eviction under both bounds; the newest entry always survives so a
  // single oversized resolution is still served from the cache.
  while (entries_.size() > 1 &&
         (entries_.size() > kMaxEntries || bytes_ > kMaxBytes)) {
    bytes_ -= entries_.front().second->byte_size();
    entries_.erase(entries_.begin());
  }
  return built;
}

std::size_t ResolverCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::size_t ResolverCache::byte_size() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

void ResolverCache::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  bytes_ = 0;
}

ResolverCache& ResolverCache::shared() {
  static ResolverCache cache;
  return cache;
}

}  // namespace riskan::data
