// Year-Loss Table (YLT) — the output of stage 2 and the currency of
// stage 3 (DFA).
//
// One Money per trial: the contract's (or portfolio's) net loss in that
// alternative realisation of the contractual year. Risk metrics (PML, VaR,
// TVaR, EP curves — src/core/metrics.hpp) and DFA both consume YLTs.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace riskan::data {

class YearLossTable {
 public:
  YearLossTable() = default;

  /// Zero-initialised table for `trials` trials.
  explicit YearLossTable(TrialId trials, std::string label = {});

  /// Adopts an existing loss vector.
  YearLossTable(std::vector<Money> losses, std::string label = {});

  TrialId trials() const noexcept { return static_cast<TrialId>(losses_.size()); }
  bool empty() const noexcept { return losses_.empty(); }

  Money& operator[](TrialId t) { return losses_[t]; }
  Money operator[](TrialId t) const { return losses_[t]; }

  std::span<const Money> losses() const noexcept { return losses_; }
  std::span<Money> mutable_losses() noexcept { return losses_; }

  const std::string& label() const noexcept { return label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// Trial-wise sum: combining contract YLTs into a portfolio YLT, or risk
  /// YLTs into an enterprise YLT (stage 3). Trial counts must match — the
  /// whole point of the pre-simulated YELT is that every contract sees the
  /// same trials.
  YearLossTable& operator+=(const YearLossTable& other);

  /// Scales every trial loss (share / participation factors).
  YearLossTable& operator*=(double factor);

  Money total() const noexcept;
  Money mean() const noexcept;
  Money max() const noexcept;

  /// Drops trials past the first `trials` (adaptive early stop keeps the
  /// converged prefix); no-op at or below the current count.
  void truncate(TrialId trials) {
    if (trials < this->trials()) {
      losses_.resize(trials);
    }
  }

  std::size_t byte_size() const noexcept { return losses_.size() * sizeof(Money); }

 private:
  std::vector<Money> losses_;
  std::string label_;
};

}  // namespace riskan::data
