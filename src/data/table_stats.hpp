// Pipeline sizing arithmetic — experiment E1.
//
// Encodes the paper's head-line data-volume claims as checkable functions:
//   * the worked example (10k contracts x 100k events x 1k locations x
//     50k trials) yields a YELLT of "over 5x10^16 entries";
//   * "The YELT is generally 1000 times smaller than the YELLT and 1000
//     times bigger than the YLT."
// bench_e1_data_volumes prints the full stage-by-stage volume table for the
// paper's sizing and for a scaled-down instance that is actually
// materialised and measured, validating the scaling laws empirically.
//
// Two models are provided:
//   * VolumeModel — the paper's *dense-axis* arithmetic (an entry per
//     contract x event x location x trial combination). Reproduces the
//     5x10^16 figure exactly; the YELLT/YELT ratio is the location axis
//     (1,000 in the example, matching "1000 times smaller"), the YELT/YLT
//     ratio is the per-contract loss-causing event axis ("generally 1000"
//     for a typical ~1k-event contract footprint).
//   * The physical tables we actually build are occurrence-sparse (a trial
//     holds only the events that occur); the E1 bench materialises those at
//     scaled_down() size and reports measured entries/bytes next to the
//     analytic rows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace riskan::data {

/// The axes of the paper's sizing example.
struct PipelineSizing {
  double contracts = 10'000;
  double events = 100'000;
  double locations = 1'000;
  double trials = 50'000;
  /// Fraction of the catalogue that causes loss to any one contract
  /// (the contract's ELT footprint). 1% of 100k events = the ~1k-event
  /// footprint behind the paper's "generally 1000x" YELT/YLT ratio.
  double elt_hit_ratio = 0.01;
  /// Mean event occurrences per trial year in the physical (sparse) YELT.
  double events_per_trial_year = 10.0;

  /// The paper's worked example, verbatim.
  static PipelineSizing paper_example();

  /// A laptop-scale instance: each axis shrunk so the YELLT fits in memory,
  /// used for empirical validation of the analytic laws.
  static PipelineSizing scaled_down();
};

/// Entry counts and packed byte sizes per pipeline table.
struct VolumeRow {
  std::string table;
  double entries = 0.0;
  double bytes = 0.0;
  std::string role;
};

/// Analytic dense-axis volume model (the paper's arithmetic).
class VolumeModel {
 public:
  explicit VolumeModel(PipelineSizing sizing);

  /// contracts x events x locations x trials — the 5x10^16 figure.
  double yellt_entries() const;

  /// Location axis collapsed: contracts x events x trials.
  double yelt_entries() const;

  /// One entry per (contract, trial).
  double ylt_entries() const;

  /// Per-contract ELT rows: events x hit ratio.
  double elt_entries_per_contract() const;
  double elt_entries_total() const;

  double yellt_bytes() const;
  double yelt_bytes() const;
  double ylt_bytes() const;
  double elt_bytes_total() const;

  /// YELLT/YELT entry ratio == location axis (paper: "1000 times smaller").
  double yellt_over_yelt() const;

  /// YELT/YLT entry ratio == event axis. For the worked example this is
  /// 10^5 on the raw catalogue; restricted to a contract's loss-causing
  /// footprint (hit ratio) it is ~10^3 — the paper's "generally 1000 times
  /// bigger". Both are reported.
  double yelt_over_ylt_dense() const;
  double yelt_over_ylt_footprint() const;

  /// Stage-by-stage table for reports.
  std::vector<VolumeRow> rows() const;

  const PipelineSizing& sizing() const { return sizing_; }

 private:
  PipelineSizing sizing_;
};

}  // namespace riskan::data
