#include "data/table_stats.hpp"

#include "data/yellt.hpp"
#include "util/require.hpp"
#include "util/types.hpp"

namespace riskan::data {

PipelineSizing PipelineSizing::paper_example() {
  return PipelineSizing{};  // defaults are the paper's numbers
}

PipelineSizing PipelineSizing::scaled_down() {
  PipelineSizing s;
  s.contracts = 20;
  s.events = 1'000;
  s.locations = 10;
  s.trials = 500;
  s.elt_hit_ratio = 0.10;
  s.events_per_trial_year = 10.0;
  return s;
}

VolumeModel::VolumeModel(PipelineSizing sizing) : sizing_(sizing) {
  RISKAN_REQUIRE(sizing_.elt_hit_ratio > 0.0 && sizing_.elt_hit_ratio <= 1.0,
                 "ELT hit ratio must lie in (0,1]");
  RISKAN_REQUIRE(sizing_.contracts > 0 && sizing_.events > 0 && sizing_.locations > 0 &&
                     sizing_.trials > 0,
                 "all sizing axes must be positive");
}

double VolumeModel::yellt_entries() const {
  return YelltStream::entries_for_sizing(sizing_.contracts, sizing_.events, sizing_.locations,
                                         sizing_.trials);
}

double VolumeModel::yelt_entries() const {
  return sizing_.contracts * sizing_.events * sizing_.trials;
}

double VolumeModel::ylt_entries() const {
  return sizing_.contracts * sizing_.trials;
}

double VolumeModel::elt_entries_per_contract() const {
  return sizing_.events * sizing_.elt_hit_ratio;
}

double VolumeModel::elt_entries_total() const {
  return elt_entries_per_contract() * sizing_.contracts;
}

double VolumeModel::yellt_bytes() const {
  return yellt_entries() * static_cast<double>(kYelltRecordBytes);
}

double VolumeModel::yelt_bytes() const {
  // Packed occurrence record: event id + day + loss.
  return yelt_entries() * (sizeof(EventId) + sizeof(std::uint16_t) + sizeof(Money));
}

double VolumeModel::ylt_bytes() const {
  return ylt_entries() * sizeof(Money);
}

double VolumeModel::elt_bytes_total() const {
  return elt_entries_total() * (sizeof(EventId) + 3 * sizeof(Money));
}

double VolumeModel::yellt_over_yelt() const {
  return yellt_entries() / yelt_entries();
}

double VolumeModel::yelt_over_ylt_dense() const {
  return yelt_entries() / ylt_entries();
}

double VolumeModel::yelt_over_ylt_footprint() const {
  return elt_entries_per_contract();
}

std::vector<VolumeRow> VolumeModel::rows() const {
  return {
      {"ELT (all contracts)", elt_entries_total(), elt_bytes_total(),
       "stage-1 output: per-contract event losses"},
      {"YELT (dense view)", yelt_entries(), yelt_bytes(),
       "stage-2: per-contract event-loss per trial"},
      {"YELLT", yellt_entries(), yellt_bytes(),
       "stage-2 full resolution (streamed only, never stored)"},
      {"YLT", ylt_entries(), ylt_bytes(), "stage-2 output: per-trial net loss"},
  };
}

}  // namespace riskan::data
