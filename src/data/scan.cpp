#include "data/scan.hpp"

#include "util/require.hpp"

namespace riskan::data {

std::vector<Money> build_dense_loss_lut(const EventLossTable& elt, EventId catalog_events) {
  RISKAN_REQUIRE(elt.empty() || elt.event_ids().back() < catalog_events,
                 "catalogue size smaller than ELT's largest event id");
  std::vector<Money> lut(catalog_events, 0.0);
  const auto ids = elt.event_ids();
  const auto means = elt.mean_loss();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    lut[ids[i]] = means[i];
  }
  return lut;
}

std::vector<Money> scan_aggregate_dense(const YearEventLossTable& yelt,
                                        std::span<const Money> loss_lut) {
  std::vector<Money> per_trial(yelt.trials(), 0.0);
  const auto offsets = yelt.offsets();
  const auto events = yelt.events();
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    Money sum = 0.0;
    for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
      sum += loss_lut[events[i]];
    }
    per_trial[t] = sum;
  }
  return per_trial;
}

std::vector<Money> scan_aggregate_sorted(const YearEventLossTable& yelt,
                                         const EventLossTable& elt) {
  std::vector<Money> per_trial(yelt.trials(), 0.0);
  const auto offsets = yelt.offsets();
  const auto events = yelt.events();
  const auto means = elt.mean_loss();
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    Money sum = 0.0;
    for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
      const auto idx = elt.find(events[i]);
      if (idx != EventLossTable::npos) {
        sum += means[idx];
      }
    }
    per_trial[t] = sum;
  }
  return per_trial;
}

}  // namespace riskan::data
