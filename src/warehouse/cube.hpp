// Parallel data-warehouse pre-computation — the paper's stage-3 data
// management technique: "Owing to the large size of data pre-computation
// techniques such as in parallel data warehousing can be applied."
//
// A small OLAP cube over the portfolio dimensions (peril, region, line of
// business). Cells hold per-trial YLTs; the pre-computation pass rolls up
// every group-by combination (2^3 views) in parallel and caches the risk
// summaries, so interactive queries ("TVaR99 of hurricane property in
// North America") are O(1) lookups instead of trial-data scans.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "data/ylt.hpp"
#include "finance/contract.hpp"
#include "parallel/thread_pool.hpp"

namespace riskan::warehouse {

/// A query coordinate: nullopt on a dimension means "all".
struct CubeQuery {
  std::optional<Peril> peril;
  std::optional<Region> region;
  std::optional<LineOfBusiness> lob;

  bool operator<(const CubeQuery& other) const;
};

struct CubeCell {
  data::YearLossTable ylt;
  core::RiskSummary summary;
  std::size_t contracts = 0;
};

struct CubeStats {
  std::size_t base_cells = 0;
  std::size_t rollup_views = 0;
  std::size_t rollup_cells = 0;
  double precompute_seconds = 0.0;
};

class RiskCube {
 public:
  /// Builds the cube from an engine run: per-contract YLTs are grouped by
  /// the contracts' (peril, region, lob) coordinates, then every roll-up
  /// view is pre-computed in parallel on `pool`.
  RiskCube(const finance::Portfolio& portfolio, const core::EngineResult& result,
           ThreadPool* pool = nullptr);

  /// O(1) pre-computed lookup. Returns nullptr when no contract matches.
  const CubeCell* query(const CubeQuery& q) const;

  /// The grand-total cell (all dimensions rolled up).
  const CubeCell& total() const;

  /// Incremental maintenance: folds one new contract's YLT into the 8
  /// roll-up views it belongs to and refreshes only those summaries —
  /// the delta-update a warehouse performs at contract-binding time
  /// instead of a full rebuild. Equivalent to rebuilding (tested).
  void add_contract(const finance::Contract& contract, const data::YearLossTable& ylt);

  /// A named cell in a concentration report.
  struct RankedCell {
    CubeQuery coordinates;
    const CubeCell* cell = nullptr;
  };

  /// Top-n *fully-specified* cells (peril x region x lob) by TVaR99 — the
  /// CRO's concentration report ("where is my tail?"). O(cells log n).
  std::vector<RankedCell> top_concentrations(std::size_t n) const;

  const CubeStats& stats() const noexcept { return stats_; }

 private:
  std::map<CubeQuery, CubeCell> cells_;
  CubeStats stats_;
  TrialId trials_ = 0;
};

}  // namespace riskan::warehouse
