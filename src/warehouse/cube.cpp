#include "warehouse/cube.hpp"

#include <algorithm>
#include <tuple>

#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"

namespace riskan::warehouse {

namespace {

int key_of(const std::optional<Peril>& p) {
  return p ? static_cast<int>(*p) : -1;
}
int key_of(const std::optional<Region>& r) {
  return r ? static_cast<int>(*r) : -1;
}
int key_of(const std::optional<LineOfBusiness>& l) {
  return l ? static_cast<int>(*l) : -1;
}

}  // namespace

bool CubeQuery::operator<(const CubeQuery& other) const {
  return std::make_tuple(key_of(peril), key_of(region), key_of(lob)) <
         std::make_tuple(key_of(other.peril), key_of(other.region), key_of(other.lob));
}

RiskCube::RiskCube(const finance::Portfolio& portfolio, const core::EngineResult& result,
                   ThreadPool* pool) {
  RISKAN_REQUIRE(result.contract_ylts.size() == portfolio.size(),
                 "cube needs per-contract YLTs (run the engine with keep_contract_ylts)");
  RISKAN_REQUIRE(!portfolio.empty(), "cube of an empty portfolio");
  obs::Timer watch("warehouse.cube_build");

  const TrialId trials = result.portfolio_ylt.trials();
  trials_ = trials;

  // Base cells: group contract YLTs by full coordinates.
  std::map<CubeQuery, CubeCell> base;
  for (std::size_t c = 0; c < portfolio.size(); ++c) {
    const auto& contract = portfolio.contract(c);
    CubeQuery key{contract.peril(), contract.region(), contract.lob()};
    auto [it, inserted] = base.try_emplace(key);
    if (inserted) {
      it->second.ylt = data::YearLossTable(trials, "cell");
    }
    it->second.ylt += result.contract_ylts[c];
    it->second.contracts += 1;
  }
  stats_.base_cells = base.size();

  // Every roll-up view: each of the 3 dimensions kept or collapsed.
  for (int mask = 0; mask < 8; ++mask) {
    const bool keep_peril = (mask & 1) != 0;
    const bool keep_region = (mask & 2) != 0;
    const bool keep_lob = (mask & 4) != 0;
    ++stats_.rollup_views;
    for (const auto& [key, cell] : base) {
      CubeQuery rolled;
      rolled.peril = keep_peril ? key.peril : std::nullopt;
      rolled.region = keep_region ? key.region : std::nullopt;
      rolled.lob = keep_lob ? key.lob : std::nullopt;
      auto [it, inserted] = cells_.try_emplace(rolled);
      if (inserted) {
        it->second.ylt = data::YearLossTable(trials, "rollup");
      }
      it->second.ylt += cell.ylt;
      it->second.contracts += cell.contracts;
    }
  }
  stats_.rollup_cells = cells_.size();

  // Summaries in parallel (each cell sorts its YLT — the expensive part).
  std::vector<CubeCell*> flat;
  flat.reserve(cells_.size());
  for (auto& [key, cell] : cells_) {
    flat.push_back(&cell);
  }
  parallel_for(
      0, flat.size(),
      [&flat](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          flat[i]->summary = core::summarise(flat[i]->ylt);
        }
      },
      ParallelConfig{pool, /*grain=*/1});

  stats_.precompute_seconds = watch.stop();
}

const CubeCell* RiskCube::query(const CubeQuery& q) const {
  const auto it = cells_.find(q);
  return it == cells_.end() ? nullptr : &it->second;
}

const CubeCell& RiskCube::total() const {
  const auto* cell = query(CubeQuery{});
  RISKAN_REQUIRE(cell != nullptr, "cube has no grand-total cell");
  return *cell;
}

std::vector<RiskCube::RankedCell> RiskCube::top_concentrations(std::size_t n) const {
  RISKAN_REQUIRE(n > 0, "concentration report needs n > 0");
  std::vector<RankedCell> ranked;
  for (const auto& [key, cell] : cells_) {
    if (key.peril && key.region && key.lob) {
      ranked.push_back(RankedCell{key, &cell});
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const RankedCell& a, const RankedCell& b) {
    return a.cell->summary.tvar_99 > b.cell->summary.tvar_99;
  });
  if (ranked.size() > n) {
    ranked.resize(n);
  }
  return ranked;
}

void RiskCube::add_contract(const finance::Contract& contract,
                            const data::YearLossTable& ylt) {
  RISKAN_REQUIRE(ylt.trials() == trials_,
                 "new contract's YLT trial count differs from the cube's");
  const CubeQuery base{contract.peril(), contract.region(), contract.lob()};
  for (int mask = 0; mask < 8; ++mask) {
    CubeQuery rolled;
    rolled.peril = (mask & 1) != 0 ? base.peril : std::nullopt;
    rolled.region = (mask & 2) != 0 ? base.region : std::nullopt;
    rolled.lob = (mask & 4) != 0 ? base.lob : std::nullopt;
    auto [it, inserted] = cells_.try_emplace(rolled);
    if (inserted) {
      it->second.ylt = data::YearLossTable(trials_, "rollup");
    }
    it->second.ylt += ylt;
    it->second.contracts += 1;
    it->second.summary = core::summarise(it->second.ylt);
  }
  stats_.rollup_cells = cells_.size();
}

}  // namespace riskan::warehouse
