#include "core/elasticity.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace riskan::core {

StageRequirement processors_required(const StageDemand& demand) {
  RISKAN_REQUIRE(demand.units_per_core_second > 0.0, "throughput must be positive");
  RISKAN_REQUIRE(demand.deadline_seconds > 0.0, "deadline must be positive");
  RISKAN_REQUIRE(demand.parallel_efficiency > 0.0 && demand.parallel_efficiency <= 1.0,
                 "parallel efficiency must lie in (0,1]");

  StageRequirement req;
  req.stage = demand.stage;
  req.work_units = demand.work_units;
  req.core_seconds = demand.work_units / demand.units_per_core_second;
  req.processors = std::max(
      1.0, std::ceil(req.core_seconds /
                     (demand.deadline_seconds * demand.parallel_efficiency)));
  return req;
}

std::vector<StageRequirement> paper_scenario(const MeasuredThroughput& measured,
                                             const Derating& derating) {
  RISKAN_REQUIRE(measured.stage1_pairs_per_sec > 0.0 &&
                     measured.stage2_occurrences_per_sec > 0.0 &&
                     measured.stage3_evals_per_sec > 0.0,
                 "measured throughputs must be positive");
  RISKAN_REQUIRE(derating.core_2012 >= 1.0, "core derating must be >= 1");

  const double t1 =
      measured.stage1_pairs_per_sec / (derating.core_2012 * derating.stage1_complexity);
  const double t2 = measured.stage2_occurrences_per_sec /
                    (derating.core_2012 * derating.stage2_complexity);
  const double t3 =
      measured.stage3_evals_per_sec / (derating.core_2012 * derating.stage3_complexity);

  std::vector<StageRequirement> out;
  auto add = [&out](std::string stage, std::string cadence, double work, double tput,
                    double deadline) {
    StageDemand demand;
    demand.stage = std::move(stage);
    demand.work_units = work;
    demand.units_per_core_second = tput;
    demand.deadline_seconds = deadline;
    auto req = processors_required(demand);
    req.cadence = std::move(cadence);
    out.push_back(std::move(req));
  };

  // Stage 1: 100k events x 1M exposure locations, weekly model refresh.
  const double stage1_work = 1e5 * 1e6;
  add("1. risk modelling (ELT build)", "weekly", stage1_work, t1, 7.0 * 86400.0);

  // Stage 2: 10k contracts x 1M trials ("millions of alternative views")
  // x ~10 occurrences per trial year.
  const double stage2_work = 1e4 * 1e6 * 10.0;
  add("2. portfolio roll-up", "overnight (8h)", stage2_work, t2, 8.0 * 3600.0);
  add("2. portfolio roll-up", "interactive (1 min)", stage2_work, t2, 60.0);

  // Stage 2b: one contract, 1M trials, the paper's 25 s pricing budget.
  add("2b. real-time pricing (1 contract)", "25 s", 1e6 * 10.0, t2, 25.0);

  // Stage 3: 100-scenario DFA sweep, 10M trials x 100 risk dimensions.
  const double stage3_work = 100.0 * 1e7 * 100.0;
  add("3. DFA / enterprise", "quarterly batch (4h)", stage3_work, t3, 4.0 * 3600.0);
  add("3. DFA / enterprise", "interactive what-if (10 min)", stage3_work, t3, 600.0);

  return out;
}

}  // namespace riskan::core
