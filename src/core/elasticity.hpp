// Burst-elasticity model — experiment E8.
//
// "While in the first stage less than ten processors may be sufficient to
// handle the data, in the second and third stages thousands or even tens of
// thousands of processors need to be put together to manage and analyse the
// data. The elastic demand ... makes cloud-based computing attractive."
//
// The model re-derives that claim: each stage has a work volume (in its
// natural unit) at production sizing, a single-core throughput, and a
// deadline; processors required = work / (throughput x deadline x
// efficiency). Throughputs are measured on this machine by bench_e8 and
// then *derated* to the paper's 2012 setting by two documented factors:
//   * core_derating    — a 2012 server core sustains roughly a tenth of a
//                        modern core's throughput on these kernels;
//   * model_complexity — our synthetic hazard/vulnerability/financial
//                        modules are deliberately cheap; production
//                        catastrophe models evaluate ground-motion fields,
//                        site-level coverages and multi-term financial
//                        structures that cost one to two orders of
//                        magnitude more per unit.
// Both factors are parameters, printed with the results, so the derivation
// is auditable rather than baked in.
#pragma once

#include <string>
#include <vector>

namespace riskan::core {

struct StageDemand {
  std::string stage;
  std::string unit;
  double work_units = 0.0;           ///< total units at production sizing
  double units_per_core_second = 0;  ///< effective (derated) throughput
  double deadline_seconds = 0.0;
  double parallel_efficiency = 0.9;  ///< fraction of linear scaling retained
};

struct StageRequirement {
  std::string stage;
  std::string cadence;
  double work_units = 0.0;
  double core_seconds = 0.0;
  double processors = 0.0;  ///< cores needed to meet the deadline
};

/// Cores needed for one stage/deadline pair.
StageRequirement processors_required(const StageDemand& demand);

/// Measured single-core throughputs on this host (from calibration runs).
struct MeasuredThroughput {
  double stage1_pairs_per_sec = 0.0;        ///< event-exposure pairs
  double stage2_occurrences_per_sec = 0.0;  ///< trial-layer occurrences
  double stage3_evals_per_sec = 0.0;        ///< trial-dimension evaluations
};

/// Derating factors mapping this host + synthetic models onto the paper's
/// 2012 production setting. Printed alongside results.
struct Derating {
  double core_2012 = 10.0;          ///< modern core ~10x a 2012 core here
  double stage1_complexity = 50.0;  ///< production hazard/financial cost
  double stage2_complexity = 10.0;  ///< coverage-level terms, multi-view
  double stage3_complexity = 10.0;  ///< nested stochastic DFA
};

/// The production scenario at the paper's sizing:
///   stage 1: 100k events x 1M exposure locations, weekly refresh;
///   stage 2: 10k contracts x 1M trials x ~10 occurrences — overnight
///            roll-up AND the interactive (1 min) variant;
///   stage 2b: single-contract pricing in the paper's 25 s budget;
///   stage 3: 100-scenario DFA sweep over 10M trials x 100 dimensions —
///            quarterly batch AND interactive what-if (10 min).
/// Returns one row per (stage, deadline).
std::vector<StageRequirement> paper_scenario(const MeasuredThroughput& measured,
                                             const Derating& derating = {});

}  // namespace riskan::core
