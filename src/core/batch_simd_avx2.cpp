// AVX2 stamp of the vectorized trial kernel: 4 Money lanes per __m256d,
// compact rows gathered with vgatherdpd and dense kNoLoss sentinels
// suppressed with the masked-gather form (masked-off elements are never
// loaded, so a null/short means column is safe exactly where the scalar
// kernel would not have touched it either).
//
// This TU is compiled with -mavx2 (set per-source by RISKAN_ENABLE_SIMD);
// everything here lives behind the runtime dispatch in core/simd.cpp, and
// the scalar helpers it calls (sampling, trial finish, the fallback
// kernel) are extern functions compiled with the portable baseline flags —
// no templated library code is instantiated under the wider ISA.
#ifdef RISKAN_SIMD_AVX2

#include <immintrin.h>

#include "core/batch_simd_impl.hpp"

namespace riskan::core::batch {

namespace {

struct Avx2Ops {
  static constexpr std::size_t kWidth = 4;
  using Vec = __m256d;

  static Vec broadcast(Money x) noexcept { return _mm256_set1_pd(x); }
  static Vec load(const Money* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(Money* p, Vec v) noexcept { _mm256_storeu_pd(p, v); }
  static Vec mul(Vec a, Vec b) noexcept { return _mm256_mul_pd(a, b); }
  static Vec sub(Vec a, Vec b) noexcept { return _mm256_sub_pd(a, b); }
  static Vec min(Vec a, Vec b) noexcept { return _mm256_min_pd(a, b); }
  static Vec gt_mask(Vec a, Vec b) noexcept { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static Vec mask_and(Vec v, Vec m) noexcept { return _mm256_and_pd(v, m); }

  static Vec gather(const Money* base, const std::uint32_t* idx) noexcept {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    // All-lanes-on masked form rather than _mm256_i32gather_pd: same
    // vgatherdpd, but with a defined source vector (the plain intrinsic's
    // _mm256_undefined_pd() source trips GCC's -Wmaybe-uninitialized).
    const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, vi, ones, 8);
  }

  struct MaskedGather {
    Vec values;
    unsigned found;
  };
  static MaskedGather gather_masked(const Money* base, const std::uint32_t* rows) noexcept {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows));
    // kNoLoss is all-ones; valid lanes get an all-ones 64-bit mask (sign
    // bit set = gather), sentinel lanes keep the zero source.
    const __m128i invalid = _mm_cmpeq_epi32(vi, _mm_set1_epi32(-1));
    const __m128i valid = _mm_xor_si128(invalid, _mm_set1_epi32(-1));
    const __m256d mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(valid));
    const __m256d values =
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, vi, mask, 8);
    const unsigned valid_bits =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(valid)));
    return MaskedGather{values, static_cast<unsigned>(__builtin_popcount(valid_bits))};
  }
};

}  // namespace

std::uint64_t process_trials_simd_avx2(std::span<const Slot> slots,
                                       std::span<const Group> groups,
                                       std::span<const std::uint64_t> yelt_offsets,
                                       const Philox4x32& philox, bool secondary,
                                       TrialId trial_base, TrialId lo, TrialId hi,
                                       std::span<Money> annual_scratch, SimdStats& stats) {
  return impl::process_trials_simd<Avx2Ops>(slots, groups, yelt_offsets, philox, secondary,
                                            trial_base, lo, hi, annual_scratch, stats);
}

void apply_occurrence_lanes_avx2(const finance::LayerTerms& terms, const Money* ground_up,
                                 std::size_t n, Money* occ) {
  impl::apply_occurrence_lanes_impl<Avx2Ops>(terms, ground_up, n, occ);
}

Money max_range_lanes_avx2(const Money* values, std::size_t n, Money init) {
  // Safe to reorder bitwise for finalize_oep's input class (non-NaN,
  // >= +0.0): vmaxpd picks b on ties, std::max keeps a — but equal
  // non-negative doubles share one bit pattern, so the pick cannot differ.
  std::size_t k = 0;
  __m256d m = _mm256_set1_pd(init);
  for (; k + 4 <= n; k += 4) {
    m = _mm256_max_pd(m, _mm256_loadu_pd(values + k));
  }
  const __m128d pair =
      _mm_max_pd(_mm256_castpd256_pd128(m), _mm256_extractf128_pd(m, 1));
  Money best = _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; k < n; ++k) {
    best = std::max(best, values[k]);
  }
  return best;
}

}  // namespace riskan::core::batch

#endif  // RISKAN_SIMD_AVX2
