// DeviceSim backend of aggregate analysis — the GPU execution-model
// implementation behind the paper's "15x" and "25 seconds for 1 million
// trials" claims (see src/parallel/device.hpp for the substitution
// rationale).
//
// Kernel decomposition, mirroring the CUDA implementation of the companion
// paper [7]:
//   * one device thread per trial, device_block_dim trials per block;
//   * the layer's ELT (with precomputed secondary-uncertainty parameters)
//     is staged chunk-wise into simulated constant memory;
//   * each block stages its trials' YELT occurrence slice into simulated
//     shared memory when it fits (the paper's "utilising shared and
//     constant memory as much as possible");
//   * phase 1 writes per-occurrence layer losses to a global scratch
//     buffer; phase 2 reduces each trial's occurrences in order and applies
//     annual terms — which makes the result bit-identical to the
//     sequential engine regardless of ELT chunking (tests enforce).
#pragma once

#include "core/aggregate_engine.hpp"
#include "parallel/device.hpp"

namespace riskan::core {

/// Per-run device telemetry for the E2/E4 reports.
struct DeviceRunInfo {
  double modeled_seconds = 0.0;  ///< performance-model device time
  double host_seconds = 0.0;     ///< wall-clock of the simulation on this host
  DeviceCounters counters;
  int launches = 0;
  std::size_t elt_chunks = 0;
  std::size_t shared_staged_blocks = 0;
  std::size_t shared_spill_blocks = 0;
};

/// Runs aggregate analysis on the simulated device. `info`, when non-null,
/// receives counters and the modeled device time.
EngineResult run_aggregate_device(const finance::Portfolio& portfolio,
                                  const data::YearEventLossTable& yelt,
                                  const EngineConfig& config, DeviceSpec spec = {},
                                  DeviceRunInfo* info = nullptr);

}  // namespace riskan::core
