// Execution plans and pluggable executors — how every stage-2 request
// reaches the one trial kernel.
//
// The repo's five aggregate-analysis entry points (per-contract run,
// batched run, scenario sweep, MapReduce map task, pricer run_layer) all
// reduce to the same question: given a finished list of batch::Slots over
// one YELT, run core::batch::process_trials over [0, trials) on some
// hardware. This layer separates the two halves:
//
//   ExecutionPlan — the lowered form of a request: the slot list, its
//       shared-gather groups, scratch sizing, the trial partition inputs,
//       and — for the device — the distinct gather sources and the
//       constant-memory residency chunks (which tables are staged
//       together, deciding the launch structure). Lowering is
//       backend-independent except for that residency planning.
//
//   Executor — where the plan runs:
//       SequentialExecutor — the whole range inline on the caller's
//           thread; never touches a pool (MapReduce map tasks run from
//           pool workers and rely on this).
//       ThreadedExecutor — parallel_reduce over trial chunks
//           (EngineConfig::trial_grain is the chunk knob).
//       SimdExecutor — the vectorized trial kernel (core/batch_simd.hpp)
//           on the runtime-dispatched ISA (core/simd.hpp); Backend::Simd
//           runs the whole range inline (pool-free, like Sequential),
//           Backend::ThreadedSimd composes the same kernel with the
//           Threaded trial-chunk partition.
//       DeviceSimExecutor — one kernel launch per residency chunk on the
//           simulated many-core device (src/parallel/device.hpp): grid of
//           device_block_dim-trial blocks, each block staging its slot
//           column slices into the 48 KiB shared-memory arena when they
//           fit and running process_trials over its trial range against
//           constant-memory-resident ELT tables. Traffic is metered per
//           access class and fed to the calibrated performance model
//           (DeviceRunInfo). Because residency is per *source* rather
//           than per layer, batched books and scenario sweeps ride the
//           device like any other plan — the old "one layer's ELT chunk
//           at a time" constraint is gone.
//
// Executors change scheduling and staging only — never values. A plan's
// outputs are bit-identical across executors (the engine's determinism
// contract; tests enforce).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "data/elt.hpp"
#include "util/prng.hpp"

namespace riskan::core::exec {

/// The lowered, executor-ready form of one stage-2 request. Holds views
/// into caller-owned slot storage and output buffers; the plan itself owns
/// only the derived structures (groups, sources, residency chunks).
struct ExecutionPlan {
  std::span<const batch::Slot> slots;
  std::span<const std::uint64_t> yelt_offsets;
  TrialId trials = 0;
  TrialId trial_base = 0;
  bool secondary = false;

  /// Maximal shared-gather runs of `slots` (batch::group_slots).
  std::vector<batch::Group> groups;
  /// Slots in the largest group — per-chunk annual-scratch sizing.
  std::size_t max_group_size = 0;

  /// One distinct gather source per ELT-backed column set, in first-use
  /// group order — the unit of device staging.
  struct Source {
    batch::Gather gather = batch::Gather::Compact;
    const data::EventLossTable* elt = nullptr;
    const std::uint64_t* hit_offsets = nullptr;  // compact mode
    const std::uint32_t* seqs = nullptr;
    const std::uint32_t* rows = nullptr;
    const std::uint32_t* dense_rows = nullptr;  // dense mode
    const EventId* search_events = nullptr;     // search mode
  };
  std::vector<Source> sources;
  /// Group index → index into `sources`.
  std::vector<std::uint32_t> group_source;

  /// DeviceSim lowering: a contiguous group range whose sources' packed
  /// ELT tables share one constant-memory upload (one launch per chunk;
  /// chunks execute in slot order, so per-cell accumulation order — and
  /// with it bit-identity — is preserved). `staged_rows[s]` is how many of
  /// source s's leading ELT rows are constant-resident in this chunk
  /// (possibly 0 = fully global); rows beyond it gather from global
  /// memory.
  struct DeviceChunk {
    std::uint32_t group_begin = 0;
    std::uint32_t group_end = 0;
    /// Parallel to the chunk's source set: (source index, resident rows).
    std::vector<std::pair<std::uint32_t, std::size_t>> staged_rows;
  };
  std::vector<DeviceChunk> device_chunks;

  /// Lowers a finished slot list: groups slots, sizes scratch, validates
  /// gather modes (each slot exactly one mode; dense/search slots must be
  /// transform-inert singleton groups) and — when config.backend is
  /// DeviceSim — plans constant-memory residency chunks.
  static ExecutionPlan lower(std::span<const batch::Slot> slots,
                             std::span<const std::uint64_t> yelt_offsets, TrialId trials,
                             const EngineConfig& config);

  /// Re-binds a lowered plan to a new trial block of the *same* request:
  /// the slot list must keep the length, gather modes, grouping structure
  /// and ELT tables it was lowered with — only the gather/output pointers,
  /// the trial range and the sampling stream base change. Groups, scratch
  /// sizing and the device residency plan are structural, so they carry
  /// over; gather sources are re-pointed at the block's columns. This is
  /// what makes out-of-core execution "lower once, re-bind per block"
  /// instead of re-planning per block.
  void rebind(std::span<const batch::Slot> new_slots,
              std::span<const std::uint64_t> new_yelt_offsets, TrialId new_trials,
              TrialId new_trial_base);
};

/// Where a plan runs. Executors are cheap to construct per engine run and
/// reusable across the run's plans (the device executor accumulates
/// telemetry across launches, like a real device context).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs the plan's full trial range through batch::process_trials.
  /// Returns the kernel's dense/search found-lookup count (0 for all-
  /// compact plans, whose hit telemetry comes from their resolutions).
  virtual std::uint64_t execute(const ExecutionPlan& plan, const Philox4x32& philox) = 0;
};

/// Executor for config.backend, wired with the config's pool / grain /
/// device parameters (device telemetry lands in *config.device_info when
/// set).
std::unique_ptr<Executor> make_executor(const EngineConfig& config);

}  // namespace riskan::core::exec
