#include "core/simd.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace riskan::core::exec {

namespace {

SimdDispatch unavailable(bool compiled, const char* reason) noexcept {
  SimdDispatch d;
  d.compiled = compiled;
  d.reason = reason;
  return d;
}

}  // namespace

SimdDispatch simd_dispatch() {
#if defined(RISKAN_SIMD_AVX2) || defined(RISKAN_SIMD_NEON)
  constexpr bool kCompiled = true;
#else
  constexpr bool kCompiled = false;
#endif

  const char* env = std::getenv("RISKAN_SIMD");
  const std::string_view want = env != nullptr ? env : "";
  if (want == "off" || want == "0") {
    return unavailable(kCompiled, "disabled by RISKAN_SIMD");
  }
  if (!kCompiled) {
    return unavailable(false, "built without RISKAN_ENABLE_SIMD (scalar-only build)");
  }

#if defined(RISKAN_SIMD_AVX2)
  if (want.empty() || want == "avx2") {
    if (__builtin_cpu_supports("avx2")) {
      SimdDispatch d;
      d.isa = SimdIsa::Avx2;
      d.width = 4;
      d.name = "avx2";
      d.kernel = batch::process_trials_simd_avx2;
      d.compiled = true;
      return d;
    }
    if (want == "avx2") {
      return unavailable(true, "RISKAN_SIMD=avx2 but the host CPU lacks AVX2");
    }
  }
#endif

#if defined(RISKAN_SIMD_NEON)
  if (want.empty() || want == "neon") {
    // NEON is baseline on aarch64; no runtime probe needed.
    SimdDispatch d;
    d.isa = SimdIsa::Neon;
    d.width = 2;
    d.name = "neon";
    d.kernel = batch::process_trials_simd_neon;
    d.compiled = true;
    return d;
  }
#endif

  return unavailable(kCompiled,
                     "no compiled vector ISA is usable on this host "
                     "(or RISKAN_SIMD names an unavailable one)");
}

}  // namespace riskan::core::exec

namespace riskan::core::batch {

void apply_occurrence_lanes(const finance::LayerTerms& terms, const Money* ground_up,
                            std::size_t n, Money* occ) {
  const auto dispatch = exec::simd_dispatch();
  switch (dispatch.isa) {
#if defined(RISKAN_SIMD_AVX2)
    case exec::SimdIsa::Avx2:
      apply_occurrence_lanes_avx2(terms, ground_up, n, occ);
      return;
#endif
#if defined(RISKAN_SIMD_NEON)
    case exec::SimdIsa::Neon:
      apply_occurrence_lanes_neon(terms, ground_up, n, occ);
      return;
#endif
    default:
      break;
  }
  for (std::size_t i = 0; i < n; ++i) {
    occ[i] = finance::apply_occurrence(terms, ground_up[i]);
  }
}

Money max_range_lanes(const Money* values, std::size_t n, Money init) {
  const auto dispatch = exec::simd_dispatch();
  switch (dispatch.isa) {
#if defined(RISKAN_SIMD_AVX2)
    case exec::SimdIsa::Avx2:
      return max_range_lanes_avx2(values, n, init);
#endif
#if defined(RISKAN_SIMD_NEON)
    case exec::SimdIsa::Neon:
      return max_range_lanes_neon(values, n, init);
#endif
    default:
      break;
  }
  Money best = init;
  for (std::size_t i = 0; i < n; ++i) {
    best = std::max(best, values[i]);
  }
  return best;
}

}  // namespace riskan::core::batch
