#include "core/secondary.hpp"

#include <algorithm>
#include <cmath>

namespace riskan::core {

SecondarySampler::SecondarySampler(const data::EventLossTable& elt) {
  params_.resize(elt.size());
  const auto means = elt.mean_loss();
  const auto sigmas = elt.sigma_loss();
  const auto exposures = elt.exposure();
  for (std::size_t i = 0; i < elt.size(); ++i) {
    Param& p = params_[i];
    p.exposure = exposures[i];
    if (p.exposure <= 0.0 || means[i] <= 0.0) {
      p.degenerate = true;
      p.mean_ratio = 0.0;
      continue;
    }
    const double mean_ratio = means[i] / p.exposure;
    p.mean_ratio = mean_ratio;
    if (mean_ratio >= 1.0) {
      // Loss pinned at the exposure limit.
      p.degenerate = true;
      p.mean_ratio = 1.0;
      continue;
    }
    const double sigma_ratio = sigmas[i] / p.exposure;
    if (sigma_ratio <= 1e-9) {
      p.degenerate = true;  // effectively deterministic
      continue;
    }
    beta_from_moments(mean_ratio, sigma_ratio, p.alpha, p.beta);
  }

  // Lane rows for the batched path, derived from the AoS params with the
  // exact expressions sample_gamma evaluates (shape - 1/3, 1/sqrt(9d),
  // boosted shape + 1.0), so a fast-path accept commits the same bits the
  // scalar sampler would.
  const std::size_t n = params_.size();
  lane_rows_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Param& p = params_[i];
    LaneRow& r = lane_rows_[i];
    r.exposure = p.exposure;
    if (p.degenerate) {
      r.flags = kDegenerate;
      r.d_a = p.exposure * p.mean_ratio;  // the precomputed sample value
      continue;
    }
    std::uint32_t flags = 0;
    if (p.alpha < 1.0) {
      flags |= kBoostAlpha;
    }
    if (p.beta < 1.0) {
      flags |= kBoostBeta;
    }
    r.flags = flags;
    const double shape_a = p.alpha < 1.0 ? p.alpha + 1.0 : p.alpha;
    const double shape_b = p.beta < 1.0 ? p.beta + 1.0 : p.beta;
    r.d_a = shape_a - 1.0 / 3.0;
    r.c_a = 1.0 / std::sqrt(9.0 * r.d_a);
    r.inv_a = 1.0 / p.alpha;
    r.d_b = shape_b - 1.0 / 3.0;
    r.c_b = 1.0 / std::sqrt(9.0 * r.d_b);
    r.inv_b = 1.0 / p.beta;
  }
}

namespace {

/// One gamma marginal off the pre-drawn word budget: boost uniform (when
/// the scalar sampler would boost), Box–Muller pair, acceptance uniform —
/// the exact draw order and expressions of sample_gamma's first attempt.
/// Returns false when that attempt rejects (shifted value non-positive or
/// both acceptance tests fail): the caller falls back to the scalar
/// sampler on a fresh stream, which recomputes from the stream's start, so
/// bailing here never perturbs the draw sequence. `Boost` is a template
/// parameter so the no-boost decode pass compiles with zero boost branches
/// — the boost bit is ~50/50 across a real book's rows, which made it a
/// guaranteed-mispredict branch when tested per occurrence.
template <bool Boost>
inline bool gamma_first_attempt(const std::uint64_t* w, int& idx, double d, double c,
                                double inv_shape, double& out) noexcept {
  double boost_mul = 1.0;
  if constexpr (Boost) {
    boost_mul = std::pow(to_unit_double_open(w[idx++]), inv_shape);
  }
  const double u1 = to_unit_double_open(w[idx++]);
  const double u2 = to_unit_double_open(w[idx++]);
  const double x = normal_from_uniforms(u1, u2);
  double v = 1.0 + c * x;
  if (v <= 0.0) {
    return false;
  }
  v = v * v * v;
  const double u = to_unit_double_open(w[idx++]);
  if (!gamma_accept(x, v, u, d)) {
    return false;
  }
  // (d * v) is the inner gamma's return value; the boost multiplies it
  // afterwards, exactly as sample_gamma composes them (x * 1.0 == x
  // bitwise for the non-boost case).
  out = (d * v) * boost_mul;
  return true;
}

}  // namespace

void SecondarySampler::sample_lanes(const Philox4x32& engine, std::uint64_t hi_key,
                                    const std::uint32_t* rows, const std::uint64_t* lo,
                                    std::size_t n, Money* out, std::uint64_t& fast,
                                    std::uint64_t& tail) const {
  const PhiloxLanes lanes(engine);

  // Per batch: up to kLanes occurrences, 3 or 4 blocks per live lane — the
  // whole word budget of a both-gammas-first-attempt sample. A non-boosted
  // row consumes exactly 6 words (Box–Muller pair + acceptance uniform per
  // marginal), so it gets 3 blocks, the same count the scalar stream would
  // advance; any boosted marginal adds its boost uniform, pushing the
  // budget to 7–8 words = 4 blocks. Counter layout per live lane, block j:
  // the stream's block j is (hi ^ (j >> 1), lo + j), matching PhiloxStream
  // word for word.
  //
  // Lanes are partitioned by boost class — no-boost lanes take the front of
  // the counter array (3 blocks each), boosted lanes the back (4 blocks
  // each) — so the hot decode pass runs with zero boost branches and every
  // loop below is either branch-free or branches on a class-uniform
  // predicate. The boost bit is ~50/50 across a real book's random row
  // order, which made any per-occurrence boost test a guaranteed
  // mispredict. Reordering is free: each lane's blocks are an independent
  // pure function of (key, counter), and each fallback re-samples on its
  // own fresh stream, so neither pass order nor tail order can perturb any
  // committed value.
  constexpr std::size_t kLanes = 64;
  std::uint64_t chi[kLanes * 4];
  std::uint64_t clo[kLanes * 4];
  std::uint64_t words[kLanes * 8];
  std::uint32_t nb[kLanes];
  std::uint32_t bo[kLanes];
  std::uint32_t fallback[kLanes];

  for (std::size_t b0 = 0; b0 < n; b0 += kLanes) {
    const std::size_t bn = std::min(kLanes, n - b0);

    // Classify into the two live lists (branchless double-append);
    // degenerate rows commit immediately with zero draws, like the scalar
    // path.
    std::size_t nnb = 0;
    std::size_t nbo = 0;
    for (std::size_t i = 0; i < bn; ++i) {
      const LaneRow& r = lane_rows_[rows[b0 + i]];
      const std::uint32_t flags = r.flags;
      if ((flags & kDegenerate) != 0) {
        out[b0 + i] = r.d_a;  // precomputed; zero draws, like the scalar path
        continue;
      }
      const bool boosted = (flags & (kBoostAlpha | kBoostBeta)) != 0;
      nb[nnb] = static_cast<std::uint32_t>(i);
      bo[nbo] = static_cast<std::uint32_t>(i);
      nnb += boosted ? 0 : 1;
      nbo += boosted ? 1 : 0;
    }

    std::size_t c = 0;
    for (std::size_t v = 0; v < nnb; ++v, c += 3) {
      const std::uint64_t l = lo[b0 + nb[v]];
      chi[c] = hi_key;
      chi[c + 1] = hi_key;
      chi[c + 2] = hi_key ^ 1;
      clo[c] = l;
      clo[c + 1] = l + 1;
      clo[c + 2] = l + 2;
    }
    for (std::size_t v = 0; v < nbo; ++v, c += 4) {
      const std::uint64_t l = lo[b0 + bo[v]];
      chi[c] = hi_key;
      chi[c + 1] = hi_key;
      chi[c + 2] = hi_key ^ 1;
      chi[c + 3] = hi_key ^ 1;
      clo[c] = l;
      clo[c + 1] = l + 1;
      clo[c + 2] = l + 2;
      clo[c + 3] = l + 3;
    }

    lanes.blocks(chi, clo, c, words);

    // Decode, no-boost pass: 6 words per lane, boost branches compiled out.
    std::size_t nfall = 0;
    const std::uint64_t* w = words;
    for (std::size_t v = 0; v < nnb; ++v, w += 6) {
      const std::size_t i = nb[v];
      const LaneRow& r = lane_rows_[rows[b0 + i]];
      int idx = 0;
      double ga;
      double gb;
      if (gamma_first_attempt<false>(w, idx, r.d_a, r.c_a, r.inv_a, ga) &&
          gamma_first_attempt<false>(w, idx, r.d_b, r.c_b, r.inv_b, gb)) {
        out[b0 + i] = r.exposure * (ga / (ga + gb));
      } else {
        fallback[nfall++] = static_cast<std::uint32_t>(i);
      }
    }

    // Decode, boosted pass: 8 words allotted per lane (7 consumed when only
    // one marginal boosts); the per-marginal boost test only runs inside
    // this minority class.
    for (std::size_t v = 0; v < nbo; ++v, w += 8) {
      const std::size_t i = bo[v];
      const LaneRow& r = lane_rows_[rows[b0 + i]];
      int idx = 0;
      double ga;
      double gb;
      const bool ok =
          ((r.flags & kBoostAlpha) != 0
               ? gamma_first_attempt<true>(w, idx, r.d_a, r.c_a, r.inv_a, ga)
               : gamma_first_attempt<false>(w, idx, r.d_a, r.c_a, r.inv_a, ga)) &&
          ((r.flags & kBoostBeta) != 0
               ? gamma_first_attempt<true>(w, idx, r.d_b, r.c_b, r.inv_b, gb)
               : gamma_first_attempt<false>(w, idx, r.d_b, r.c_b, r.inv_b, gb));
      if (ok) {
        out[b0 + i] = r.exposure * (ga / (ga + gb));
      } else {
        fallback[nfall++] = static_cast<std::uint32_t>(i);
      }
    }

    fast += bn - nfall;
    tail += nfall;

    // Rejection tail: the scalar sampler on a fresh per-occurrence stream
    // (order-independent — every stream is keyed by its own lo).
    for (std::size_t f = 0; f < nfall; ++f) {
      const std::size_t i = fallback[f];
      PhiloxStream stream(engine, hi_key, lo[b0 + i]);
      out[b0 + i] = sample(rows[b0 + i], stream);
    }
  }
}

}  // namespace riskan::core
