#include "core/secondary.hpp"

namespace riskan::core {

SecondarySampler::SecondarySampler(const data::EventLossTable& elt) {
  params_.resize(elt.size());
  const auto means = elt.mean_loss();
  const auto sigmas = elt.sigma_loss();
  const auto exposures = elt.exposure();
  for (std::size_t i = 0; i < elt.size(); ++i) {
    Param& p = params_[i];
    p.exposure = exposures[i];
    if (p.exposure <= 0.0 || means[i] <= 0.0) {
      p.degenerate = true;
      p.mean_ratio = 0.0;
      continue;
    }
    const double mean_ratio = means[i] / p.exposure;
    p.mean_ratio = mean_ratio;
    if (mean_ratio >= 1.0) {
      // Loss pinned at the exposure limit.
      p.degenerate = true;
      p.mean_ratio = 1.0;
      continue;
    }
    const double sigma_ratio = sigmas[i] / p.exposure;
    if (sigma_ratio <= 1e-9) {
      p.degenerate = true;  // effectively deterministic
      continue;
    }
    beta_from_moments(mean_ratio, sigma_ratio, p.alpha, p.beta);
  }
}

}  // namespace riskan::core
