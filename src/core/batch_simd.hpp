// The vectorized twin of core::batch::process_trials.
//
// One kernel per compiled ISA (AVX2: 4 Money lanes, NEON: 2), all stamped
// from the width-generic template in batch_simd_impl.hpp. The kernel walks
// trials in blocks (so the scalar per-trial bookkeeping amortizes over a
// long contiguous occurrence range instead of re-starting the vector loop
// every ~dozen hits) and classifies each gather group:
//
//   vector-compact — singleton compact-CSR group with no mask column: the
//       block's whole hit range is walked in W-wide chunks — rows gathered
//       (or the pre-sampled ground-up buffer loaded), loss_scale and the
//       LayerTerms occurrence algebra applied lane-parallel into an
//       occurrence-loss chunk — and a scalar fold pass then consumes that
//       chunk IN OCCURRENCE ORDER, advancing a trial cursor over the CSR
//       offsets, which is what keeps the annual sums and the OEP
//       accumulator bit-identical to the scalar kernel. The sub-width
//       remainder of each chunk runs the scalar ops in the same order (the
//       lane-tail contract).
//   vector-dense — singleton dense group: row sentinels (kNoLoss) become
//       masked-out gather lanes (secondary off) or exact-+0.0 sampled
//       buffer entries (secondary on) that contribute +0.0 — exactly the
//       scalar `continue`'s effect on the annual sum, since every
//       occurrence contribution is non-negative.
//   scalar — everything else (search gather, mask columns, multi-slot
//       shared-gather groups) falls back to batch::process_trials for the
//       (group, block) — same code, so equality across the full feature
//       matrix holds by construction.
//
// Shared outputs (the portfolio roll-up, a shared OEP accumulator) see the
// same per-cell addition order as the scalar kernel: the block loop is
// outermost and groups run in plan order within it, so for any fixed trial
// the groups touch that trial's cells in the scalar kernel's group order,
// and within a (slot, trial) the fold is in occurrence order.
//
// Secondary uncertainty on vector slots samples each chunk's hits into a
// scratch buffer first (detail::fill_ground_up_*_range below, compiled in
// the portable TU) and vectorizes everything downstream of the sample. The
// fill itself is batched: SecondarySampler::sample_lanes draws every
// occurrence's Philox blocks lane-parallel (util::PhiloxLanes) and resolves
// the common case — degenerate rows and gamma pairs that accept on the
// first Marsaglia–Tsang attempt — in a per-lane fast path, falling back to
// the scalar sampler on a fresh stream, in occurrence order, for the
// rejection tail. Each occurrence's stream is keyed exactly as the scalar
// kernel keys it, so the draws are identical; docs/architecture.md carries
// the full bit-identity argument.
#pragma once

#include <cstdint>
#include <span>

#include "core/portfolio_batch.hpp"

namespace riskan::core::batch {

/// Lane-utilization telemetry of simd kernel invocations, published by the
/// SimdExecutor as exec.simd.* counters.
struct SimdStats {
  std::uint64_t vector_occurrences = 0;  ///< processed in full W-wide chunks
  std::uint64_t tail_occurrences = 0;    ///< scalar sub-width remainders
  std::uint64_t scalar_occurrences = 0;  ///< scalar-fallback groups
  std::uint64_t sampler_fast = 0;        ///< secondary draws: lane fast path
  std::uint64_t sampler_tail = 0;        ///< secondary draws: scalar rejection tail

  SimdStats& operator+=(const SimdStats& o) noexcept {
    vector_occurrences += o.vector_occurrences;
    tail_occurrences += o.tail_occurrences;
    scalar_occurrences += o.scalar_occurrences;
    sampler_fast += o.sampler_fast;
    sampler_tail += o.sampler_tail;
    return *this;
  }
};

/// Shared signature of the per-ISA kernels: process_trials' arguments plus
/// the stats sink (chunk scratch lives on the kernel's own stack).
using SimdKernelFn = std::uint64_t (*)(std::span<const Slot> slots,
                                       std::span<const Group> groups,
                                       std::span<const std::uint64_t> yelt_offsets,
                                       const Philox4x32& philox, bool secondary,
                                       TrialId trial_base, TrialId lo, TrialId hi,
                                       std::span<Money> annual_scratch, SimdStats& stats);

// Per-ISA kernels; each is defined only when its RISKAN_SIMD_* macro is
// compiled in (exec::simd_dispatch() is the only referent).
std::uint64_t process_trials_simd_avx2(std::span<const Slot> slots,
                                       std::span<const Group> groups,
                                       std::span<const std::uint64_t> yelt_offsets,
                                       const Philox4x32& philox, bool secondary,
                                       TrialId trial_base, TrialId lo, TrialId hi,
                                       std::span<Money> annual_scratch, SimdStats& stats);
std::uint64_t process_trials_simd_neon(std::span<const Slot> slots,
                                       std::span<const Group> groups,
                                       std::span<const std::uint64_t> yelt_offsets,
                                       const Philox4x32& philox, bool secondary,
                                       TrialId trial_base, TrialId lo, TrialId hi,
                                       std::span<Money> annual_scratch, SimdStats& stats);

/// Vectorized finance::apply_occurrence over a contiguous ground-up buffer,
/// dispatched like the kernel (scalar loop when no ISA is active). The
/// kernel-level micro-surface: property tests assert bitwise equality with
/// the scalar call per element, bench_micro_kernels times it against the
/// scalar loop.
void apply_occurrence_lanes(const finance::LayerTerms& terms, const Money* ground_up,
                            std::size_t n, Money* occ);

// Per-ISA bodies of apply_occurrence_lanes, defined with their kernels.
void apply_occurrence_lanes_avx2(const finance::LayerTerms& terms, const Money* ground_up,
                                 std::size_t n, Money* occ);
void apply_occurrence_lanes_neon(const finance::LayerTerms& terms, const Money* ground_up,
                                 std::size_t n, Money* occ);

/// Vectorized running max of values[0..n) seeded with `init`, dispatched
/// like apply_occurrence_lanes (scalar loop when no ISA is active). Bitwise
/// order-invariant for this input class — finalize_oep accumulators are
/// non-NaN and >= +0.0 (sums of non-negative contributions seeded with
/// 0.0), so no -0.0/NaN tie can make the lane max pick differently from the
/// scalar scan.
Money max_range_lanes(const Money* values, std::size_t n, Money init);

// Per-ISA bodies of max_range_lanes, defined with their kernels.
Money max_range_lanes_avx2(const Money* values, std::size_t n, Money init);
Money max_range_lanes_neon(const Money* values, std::size_t n, Money init);

namespace detail {

// Scalar helpers the wide TUs link against instead of instantiating —
// compiled in portfolio_batch.cpp with the portable baseline flags, so a
// per-file -mavx2 TU never emits comdat PRNG/beta/finish code that could
// be picked for a pre-AVX2 host.

/// batch-internal conditioned_annual of one (slot, trial).
Money conditioned_annual_slot(const Slot& s, TrialId t);

/// batch-internal finish_slot_trial (aggregate terms, share, output sinks)
/// over a block of trials: annuals[t - t0] is trial t's occurrence sum.
void finish_slot_trials_out(const Slot& s, TrialId t0, TrialId t1, const Money* annuals);

/// Samples the ground-up losses of the compact hit range [k_begin, k_end)
/// of slot `s` into `out`, under the exact per-occurrence streams the
/// scalar kernel keys (contract, layer, trial_base + t, seq). `t_first` is
/// any trial at or before the one containing k_begin; the walk advances it
/// across the slot's hit offsets. Sampling goes through the batched
/// SecondarySampler::sample_lanes path; `stats` collects its fast/tail
/// split.
void fill_ground_up_compact_range(const Slot& s, const Philox4x32& philox,
                                  TrialId trial_base, TrialId t_first,
                                  std::uint64_t k_begin, std::uint64_t k_end, Money* out,
                                  SimdStats& stats);

/// Dense-gather sibling of the above: samples the global occurrence range
/// [i_begin, i_end), writing exact +0.0 for kNoLoss sentinel rows (the
/// vector pass adds those lanes where the scalar kernel `continue`s, which
/// cannot change a non-negative annual sum). Streams are keyed with
/// seq = i - yelt_offsets[t], the scalar dense walk's key. Returns the
/// found-lookup count.
std::uint64_t fill_ground_up_dense_range(const Slot& s, const Philox4x32& philox,
                                         TrialId trial_base, TrialId t_first,
                                         std::span<const std::uint64_t> yelt_offsets,
                                         std::uint64_t i_begin, std::uint64_t i_end,
                                         Money* out, SimdStats& stats);

}  // namespace detail

}  // namespace riskan::core::batch
