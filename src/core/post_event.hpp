// Rapid post-event analysis.
//
// The authors' companion workshop paper ("Rapid Post-Event Catastrophe
// Modelling and Visualisation", DEXA'12 — reference [2] of the target
// paper) motivates the interactive counterpart of stage 2: a catastrophe
// has just happened; the reinsurer needs, in seconds, the answer to "what
// does this event do to my book?" — per-contract losses, which layers
// attach or exhaust, and how the year's remaining aggregate capacity
// changes.
//
// Because the ELTs are already in memory (the paper's accumulate-large-
// memory architecture), this is a pure lookup-and-terms pass: O(portfolio)
// per event, no simulation.
#pragma once

#include <optional>
#include <vector>

#include "data/ylt.hpp"
#include "finance/contract.hpp"
#include "util/types.hpp"

namespace riskan::core {

/// Impact of one event on one layer of one contract.
struct LayerImpact {
  ContractId contract = 0;
  LayerId layer = 0;
  Money ground_up = 0.0;       ///< modelled mean loss to the contract
  Money occurrence_loss = 0.0; ///< after occurrence terms
  Money net_loss = 0.0;        ///< after share
  bool attaches = false;       ///< loss enters the layer
  bool exhausts = false;       ///< occurrence limit fully consumed
  /// Remaining aggregate capacity after this event, given `prior_annual`
  /// occurrence losses already booked this year.
  Money remaining_agg_capacity = 0.0;
};

/// Whole-book impact of one event.
struct EventImpact {
  EventId event = kInvalidEvent;
  Money portfolio_ground_up = 0.0;
  Money portfolio_net = 0.0;
  std::size_t contracts_hit = 0;
  std::size_t layers_attaching = 0;
  std::size_t layers_exhausted = 0;
  std::vector<LayerImpact> layers;  ///< only layers with non-zero ground-up
};

class PostEventAnalyzer {
 public:
  /// Keeps a reference to the portfolio (the in-memory book).
  explicit PostEventAnalyzer(const finance::Portfolio& portfolio);

  /// Impact of `event`. `intensity_scale` scales the modelled mean loss
  /// (early post-event intensity estimates are revised repeatedly; 1.0 =
  /// the catalogue's modelled event). `prior_annual_by_contract`, when
  /// provided, carries each contract's already-booked occurrence losses
  /// this year so remaining aggregate capacity is computed net of them.
  EventImpact analyse(EventId event, double intensity_scale = 1.0,
                      std::span<const Money> prior_annual_by_contract = {}) const;

  /// Ranks the catalogue's worst events for this book: the `top_n` events
  /// by portfolio net loss. The realistic-disaster-scenario table.
  std::vector<EventImpact> worst_events(std::span<const EventId> candidates,
                                        std::size_t top_n) const;

 private:
  const finance::Portfolio& portfolio_;
};

}  // namespace riskan::core
