// Reinsurance program engine — ordered layers with inuring recoveries.
//
// The flat aggregate engine treats every layer independently against the
// same ground-up loss, which is exact for side-by-side quota shares and
// non-overlapping towers. Real programs also contain *inuring* structures:
// layer k+1 attaches to the loss net of what layers 1..k already paid (a
// per-risk cover inures to the benefit of the cat tower, etc.). The
// cascade couples the layers per occurrence, so it cannot be decomposed
// layer-major; this engine walks each occurrence through the ordered
// layers, maintaining per-layer annual aggregates, and emits per-layer and
// program-net YLTs.
//
// Invariants (tested): total recoveries never exceed the ground-up loss;
// with non-overlapping layers the cascade equals the flat engine; adding
// an inuring layer never increases losses to the layers after it.
#pragma once

#include <vector>

#include "data/yelt.hpp"
#include "data/ylt.hpp"
#include "finance/contract.hpp"

namespace riskan::core {

struct ProgramConfig {
  std::uint64_t seed = 2012;
  bool secondary_uncertainty = false;
  /// Occurrence losses cascade: each layer sees the ground-up loss net of
  /// recoveries from the layers before it in `contract.layers()` order.
  /// When false this engine reproduces the flat engine exactly (tested).
  bool inuring = true;
};

struct ProgramResult {
  /// Per-layer net YLTs, in the contract's layer order.
  std::vector<data::YearLossTable> layer_ylts;
  /// Ground-up annual losses per trial (before any recovery).
  data::YearLossTable gross_ylt;
  /// Retained: gross minus all recoveries.
  data::YearLossTable retained_ylt;
  double seconds = 0.0;
};

/// Runs the cascade for one contract's layer program over the YELT.
ProgramResult run_program(const finance::Contract& contract,
                          const data::YearEventLossTable& yelt,
                          const ProgramConfig& config = {});

}  // namespace riskan::core
