// Capital allocation — the Enterprise Risk Management step.
//
// "these metrics then flow into the final stage in the risk analysis
// pipeline, namely Enterprise Risk Management, where liability, asset, and
// other forms of risks are combined and correlated to generate an
// enterprise wide view of risk."
//
// Combining is only half of ERM; the other half is handing the combined
// capital requirement back to the businesses that caused it. We implement
// Euler allocation under TVaR (the standard coherent choice): component
// i's share of enterprise TVaR_p is its expected loss *on the trials where
// the enterprise is in its tail*,
//
//   A_i = E[ X_i | X_total >= VaR_p(X_total) ]  (co-TVaR)
//
// which by linearity sums exactly to the enterprise TVaR_p — the full
// additivity property that makes the allocation auditable (tested).
// Works on any trial-aligned decomposition: DFA risk sources, warehouse
// cells, or individual contracts.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/ylt.hpp"
#include "util/types.hpp"

namespace riskan::core {

struct Allocation {
  std::string component;
  Money co_tvar = 0.0;        ///< contribution to enterprise TVaR_p
  Money standalone_tvar = 0.0;
  /// co_tvar / standalone_tvar: < 1 means the component is rewarded for
  /// diversifying the book, > 1 means it concentrates the tail.
  double diversification_factor = 0.0;
  double share_of_total = 0.0;  ///< co_tvar / enterprise TVaR_p
};

struct AllocationResult {
  std::vector<Allocation> components;
  Money enterprise_tvar = 0.0;
  Money enterprise_var = 0.0;
  double level = 0.0;
  std::size_t tail_trials = 0;
};

/// Allocates enterprise TVaR at `p` to `components`, whose trial-aligned
/// YLTs must sum to `total` (checked to a tolerance, since they were
/// produced together). Components are labelled by their YLT labels, or
/// "component-<i>" when unlabelled.
AllocationResult allocate_co_tvar(std::span<const data::YearLossTable> components,
                                  const data::YearLossTable& total, double p);

}  // namespace riskan::core
