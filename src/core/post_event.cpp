#include "core/post_event.hpp"

#include <algorithm>

#include "finance/terms.hpp"
#include "util/require.hpp"

namespace riskan::core {

PostEventAnalyzer::PostEventAnalyzer(const finance::Portfolio& portfolio)
    : portfolio_(portfolio) {
  RISKAN_REQUIRE(!portfolio.empty(), "post-event analysis needs a portfolio");
}

EventImpact PostEventAnalyzer::analyse(EventId event, double intensity_scale,
                                       std::span<const Money> prior_annual_by_contract) const {
  RISKAN_REQUIRE(intensity_scale > 0.0, "intensity scale must be positive");
  RISKAN_REQUIRE(prior_annual_by_contract.empty() ||
                     prior_annual_by_contract.size() == portfolio_.size(),
                 "prior annual losses must align with the portfolio");

  EventImpact impact;
  impact.event = event;

  for (std::size_t c = 0; c < portfolio_.size(); ++c) {
    const auto& contract = portfolio_.contract(c);
    const auto row = contract.elt().find(event);
    if (row == data::EventLossTable::npos) {
      continue;
    }
    const Money ground_up = contract.elt().mean_loss()[row] * intensity_scale;
    if (ground_up <= 0.0) {
      continue;
    }
    ++impact.contracts_hit;
    impact.portfolio_ground_up += ground_up;

    const Money prior =
        prior_annual_by_contract.empty() ? 0.0 : prior_annual_by_contract[c];

    for (const auto& layer : contract.layers()) {
      const auto& terms = layer.terms;
      LayerImpact li;
      li.contract = contract.id();
      li.layer = layer.id;
      li.ground_up = ground_up;
      li.occurrence_loss = finance::apply_occurrence(terms, ground_up);
      li.attaches = li.occurrence_loss > 0.0;
      li.exhausts = li.occurrence_loss >= terms.occ_limit;

      // Aggregate capacity: what the year can still pay after prior losses
      // plus this occurrence.
      const Money consumed_before = finance::apply_aggregate(terms, prior);
      const Money consumed_after =
          finance::apply_aggregate(terms, prior + li.occurrence_loss);
      li.net_loss = (consumed_after - consumed_before) * terms.share;
      li.remaining_agg_capacity = std::max(Money{0.0}, terms.agg_limit - consumed_after);

      if (li.attaches) {
        ++impact.layers_attaching;
      }
      if (li.exhausts) {
        ++impact.layers_exhausted;
      }
      impact.portfolio_net += li.net_loss;
      impact.layers.push_back(li);
    }
  }
  return impact;
}

std::vector<EventImpact> PostEventAnalyzer::worst_events(
    std::span<const EventId> candidates, std::size_t top_n) const {
  RISKAN_REQUIRE(top_n > 0, "need at least one event in the ranking");
  std::vector<EventImpact> impacts;
  impacts.reserve(candidates.size());
  for (const EventId event : candidates) {
    auto impact = analyse(event);
    if (impact.contracts_hit > 0) {
      // The ranking table carries totals only; drop the per-layer detail
      // to keep worst-event sweeps over full catalogues cheap.
      impact.layers.clear();
      impact.layers.shrink_to_fit();
      impacts.push_back(std::move(impact));
    }
  }
  const std::size_t keep = std::min(top_n, impacts.size());
  std::partial_sort(impacts.begin(), impacts.begin() + static_cast<std::ptrdiff_t>(keep),
                    impacts.end(), [](const EventImpact& a, const EventImpact& b) {
                      return a.portfolio_net > b.portfolio_net;
                    });
  impacts.resize(keep);
  return impacts;
}

}  // namespace riskan::core
