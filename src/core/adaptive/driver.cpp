#include "core/adaptive/driver.hpp"

#include <algorithm>
#include <utility>

#include "data/trial_source.hpp"
#include "obs/obs.hpp"
#include "util/require.hpp"

namespace riskan::core::adaptive {

namespace detail {

void init_result_shapes(const EngineResult& proto, TrialId trials, EngineResult& out) {
  out.portfolio_ylt = data::YearLossTable(trials, proto.portfolio_ylt.label());
  out.reinstatement_premium =
      data::YearLossTable(trials, proto.reinstatement_premium.label());
  if (!proto.portfolio_occurrence_ylt.empty()) {
    out.portfolio_occurrence_ylt =
        data::YearLossTable(trials, proto.portfolio_occurrence_ylt.label());
  }
  out.contract_ylts.reserve(proto.contract_ylts.size());
  for (const data::YearLossTable& ylt : proto.contract_ylts) {
    out.contract_ylts.emplace_back(trials, ylt.label());
  }
}

namespace {

void copy_span(const data::YearLossTable& from, TrialId offset, data::YearLossTable& to) {
  RISKAN_ENSURE(offset + from.trials() <= to.trials(),
                "adaptive block result overflows the preallocated output");
  std::copy(from.losses().begin(), from.losses().end(),
            to.mutable_losses().begin() + offset);
}

}  // namespace

void copy_block_result(const EngineResult& block, TrialId offset, EngineResult& out) {
  copy_span(block.portfolio_ylt, offset, out.portfolio_ylt);
  copy_span(block.reinstatement_premium, offset, out.reinstatement_premium);
  if (!block.portfolio_occurrence_ylt.empty()) {
    copy_span(block.portfolio_occurrence_ylt, offset, out.portfolio_occurrence_ylt);
  }
  RISKAN_ENSURE(block.contract_ylts.size() == out.contract_ylts.size(),
                "adaptive block result changed its contract set between blocks");
  for (std::size_t c = 0; c < block.contract_ylts.size(); ++c) {
    copy_span(block.contract_ylts[c], offset, out.contract_ylts[c]);
  }
  out.occurrences_processed += block.occurrences_processed;
  out.elt_lookups += block.elt_lookups;
  out.resolve_seconds += block.resolve_seconds;
}

void truncate_result(EngineResult& result, TrialId trials) {
  result.portfolio_ylt.truncate(trials);
  result.portfolio_occurrence_ylt.truncate(trials);
  result.reinstatement_premium.truncate(trials);
  for (data::YearLossTable& ylt : result.contract_ylts) {
    ylt.truncate(trials);
  }
}

}  // namespace detail

EngineResult run_adaptive_aggregate(const finance::Portfolio& portfolio,
                                    data::TrialSource& source,
                                    const EngineConfig& config) {
  const AdaptiveConfig& adaptive = config.adaptive;
  RISKAN_REQUIRE(adaptive.enabled(), "adaptive driver invoked with adaptivity off");
  validate_engine_config(config);
  RISKAN_REQUIRE(source.trials() > 0, "trial source must contain trials");
  // The adaptive driver is the outermost scope of its run: the per-block
  // re-entries below carry a cleared obs config, so their spans/counters
  // accumulate into THIS scope's window instead of starting nested ones.
  obs::RunObsScope obs_scope(config.obs);
  obs::Timer timer("adaptive.run");

  data::ReblockedSource grid(source, adaptive.block_trials, adaptive.max_trials);
  ConvergenceController controller(adaptive, grid.trials());

  // Each grid block re-enters the plain entry point: adaptivity cleared
  // (terminating the recursion after exactly one level) and the block's
  // trial offset moved onto trial_base, so sampling streams — and hence
  // every loss — match the same trials of a fixed-budget run bit for bit.
  EngineResult out;
  bool shaped = false;
  data::TrialBlock block;
  while (!controller.should_stop() && grid.next(block)) {
    EngineConfig inner = config;
    inner.adaptive = {};
    inner.obs = {};
    inner.trial_base = config.trial_base + block.trial_offset;
    data::SingleBlockSource one(block.yelt);
    const EngineResult r = run_aggregate_analysis(portfolio, one, inner);
    if (!shaped) {
      detail::init_result_shapes(r, controller.trial_cap(), out);
      shaped = true;
    }
    detail::copy_block_result(r, block.trial_offset, out);
    controller.fold(r.portfolio_ylt.losses(),
                    config.compute_oep ? r.portfolio_occurrence_ylt.losses()
                                       : std::span<const Money>{});
  }

  detail::truncate_result(out, controller.trials_folded());
  out.adaptive = controller.report();
  out.adaptive.trials_available = source.trials();
  out.seconds = timer.stop();
  out.obs_report = obs_scope.finish();
  return out;
}

}  // namespace riskan::core::adaptive
