// Convergence-adaptive trial control — stop when the estimate is good
// enough, not when a fixed budget runs out.
//
// Every fixed-trial run answers "what do 50k trials say?"; risk questions
// are really "how many trials until VaR/TVaR are within x% at y%
// confidence?". This layer supplies the oracle: per decision block of
// trials, the per-trial YLT partials are folded into streaming estimators
// — running mean/variance (Welford), P² streaming quantiles for the
// full-stream VaR point estimate, and *batch means* for the confidence
// intervals: each block's exact sample metric (mean, type-7 VaR, TVaR) is
// one i.i.d. batch value, so a Student-t interval over batch values is
// valid even for the nonlinear tail metrics where per-sample CLT
// machinery is not. Once every monitored metric's relative half-width
// closes under target_rel_err (and min_trials is met), the run stops.
//
// Determinism is contractual, not statistical luck: the decision grid is a
// pure function of (block_trials, trials) — data::ReblockedSource re-cuts
// any inner source onto it — blocks are folded in trial order, and the
// per-trial losses are the engine's (keyed by global trial_base). So a
// given (seed, config) reaches a bit-identical stopping trial count and
// YLT prefix across Sequential/Threaded/DeviceSim, in-memory or streamed,
// single-process or any dist worker count. With adaptivity off
// (target_rel_err = 0) nothing here runs at all and every entry point is
// bit-identical to pre-adaptive behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace riskan::core::adaptive {

/// Metrics the stopping rule can monitor, as a bitmask
/// (AdaptiveConfig::metrics). Occurrence metrics read the OEP YLT and so
/// require compute_oep wherever they are monitored.
enum Metric : unsigned {
  kMean = 1u << 0,     ///< mean annual aggregate loss (AAL)
  kVar = 1u << 1,      ///< aggregate VaR at tail_level
  kTvar = 1u << 2,     ///< aggregate TVaR at tail_level
  kOccVar = 1u << 3,   ///< occurrence VaR at tail_level (needs OEP)
  kOccTvar = 1u << 4,  ///< occurrence TVaR at tail_level (needs OEP)
};

inline constexpr unsigned kOccurrenceMetrics = kOccVar | kOccTvar;
inline constexpr unsigned kAllMetrics = kMean | kVar | kTvar | kOccurrenceMetrics;

const char* metric_name(Metric metric) noexcept;

struct AdaptiveConfig {
  /// Relative CI half-width to stop at; 0 disables adaptivity entirely
  /// (the default — every entry point then behaves exactly as before).
  double target_rel_err = 0.0;
  /// Confidence level of the batch-means intervals (two-sided).
  double confidence = 0.95;
  /// Floor/ceiling on trials consumed. min guards against lucky early
  /// stops on a handful of blocks; max (0 = source size) bounds the spend
  /// when the target never closes.
  TrialId min_trials = 2'000;
  TrialId max_trials = 0;
  /// Which metrics must all converge before stopping.
  unsigned metrics = kMean | kVar | kTvar;
  /// Tail level of the VaR/TVaR metrics (type-7 quantile level).
  double tail_level = 0.99;
  /// Trials per decision block — the convergence-check granularity and
  /// the batch size of the batch-means CIs. The stopping decision depends
  /// on this grid, never on how the data source chunks its trials.
  TrialId block_trials = 1'000;
  /// Batches required before a CI is trusted at all (t intervals on 2-3
  /// batches are wild).
  std::uint64_t min_batches = 8;

  bool enabled() const noexcept { return target_rel_err > 0.0; }
};

/// Cross-field sanity with ContractViolation, mirroring
/// validate_engine_config (which calls this): bounded levels, non-zero
/// known metric set, min <= max. Called even when adaptivity is off so a
/// nonsensical config never rides along silently.
void validate_adaptive_config(const AdaptiveConfig& config);

enum class StopReason : std::uint8_t {
  None,       ///< adaptivity off (or controller never ran)
  Converged,  ///< every monitored metric closed under target
  Exhausted,  ///< hit max_trials / the source's end without converging
};

const char* to_string(StopReason reason) noexcept;

/// One monitored metric's state at the stopping point.
struct MetricEstimate {
  Metric metric = kMean;
  /// Batch-means point estimate (centre of the CI below).
  double estimate = 0.0;
  /// Full-stream streaming estimate: Welford mean for kMean, the P²
  /// quantile for kVar/kOccVar; equal to `estimate` for the TVaRs (which
  /// have no constant-memory single-stream form here).
  double streaming = 0.0;
  double half_width = 0.0;
  double rel_half_width = 0.0;
  bool converged = false;
};

struct AdaptiveReport {
  bool enabled = false;
  StopReason stop_reason = StopReason::None;
  /// The stopping trial count — deterministic in (seed, config).
  TrialId trials_run = 0;
  /// Trials the source offered (what a non-adaptive run would consume).
  TrialId trials_available = 0;
  std::uint64_t blocks_folded = 0;
  /// One entry per monitored metric, in Metric bit order.
  std::vector<MetricEstimate> estimates;

  bool converged() const noexcept { return stop_reason == StopReason::Converged; }
  /// Estimate for `metric`; REQUIREs that it was monitored.
  const MetricEstimate& estimate(Metric metric) const;
};

/// Folds per-block YLT partials in trial order and answers "stop now?".
/// Pure accumulator — it never runs trials itself, so the per-block
/// drivers (core/adaptive/driver, the scenario sweep, the MapReduce job,
/// the dist coordinator's completion frontier) all share one stopping
/// rule and therefore one stopping trial count.
class ConvergenceController {
 public:
  /// `trials_available` is what the source can offer; the effective cap is
  /// min(available, config.max_trials when set).
  ConvergenceController(const AdaptiveConfig& config, TrialId trials_available);

  /// Folds the next block's per-trial partials, in trial order.
  /// `aggregate` is the block's AEP slice; `occurrence` its OEP slice
  /// (pass empty when OEP is off — required to be non-empty only when an
  /// occurrence metric is monitored). Trials past the cap are clipped, so
  /// a cap landing mid-block folds exactly the grid prefix every driver
  /// agrees on.
  void fold(std::span<const Money> aggregate, std::span<const Money> occurrence);

  /// True once converged or at the trial cap. Checked between blocks.
  bool should_stop() const;
  bool converged() const;

  TrialId trials_folded() const noexcept { return folded_; }
  /// The effective trial ceiling (output sizing for drivers).
  TrialId trial_cap() const noexcept { return cap_; }

  AdaptiveReport report() const;

 private:
  struct MetricTrack {
    Metric metric = kMean;
    BatchMeans batches;
  };

  MetricEstimate estimate_of(const MetricTrack& track) const;

  AdaptiveConfig config_;
  TrialId available_ = 0;
  TrialId cap_ = 0;
  TrialId min_trials_ = 0;
  TrialId folded_ = 0;
  std::uint64_t blocks_ = 0;
  bool stop_marked_ = false;  ///< obs: the stop decision is traced once

  std::vector<MetricTrack> tracks_;  ///< monitored metrics, Metric bit order
  OnlineStats stream_stats_;         ///< full-stream aggregate moments
  P2Quantile p2_var_;                ///< full-stream aggregate quantile
  P2Quantile p2_occ_var_;            ///< full-stream occurrence quantile
};

}  // namespace riskan::core::adaptive
