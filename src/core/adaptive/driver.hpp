// The adaptive block driver — how an entry point runs "until converged".
//
// run_adaptive_aggregate re-cuts any TrialSource onto the adaptive
// decision grid (data::ReblockedSource), runs each grid block through the
// *normal* entry point with adaptivity cleared and the block's offset
// moved onto EngineConfig::trial_base (so every loss is bit-identical to
// the same trial of a full fixed-budget run), folds the block's YLT
// partials into a ConvergenceController, and stops early once the
// monitored metrics converge. Outputs are the converged prefix: the YLTs
// are truncated to the stopping trial count and EngineResult::adaptive
// carries the report.
//
// The detail helpers are shared with the scenario sweep's adaptive path
// (scenario/sweep.cpp), which drives the same loop over
// run_scenario_sweep per block.
#pragma once

#include "core/aggregate_engine.hpp"

namespace riskan::data {
class TrialSource;
}

namespace riskan::core::adaptive {

/// Adaptive counterpart of run_aggregate_analysis over a source; called by
/// the engine entry points when config.adaptive is enabled (never call
/// with it disabled). Honours batch_contracts, backends, OEP, contract
/// YLTs — each block runs the exact non-adaptive path.
EngineResult run_adaptive_aggregate(const finance::Portfolio& portfolio,
                                    data::TrialSource& source,
                                    const EngineConfig& config);

namespace detail {

/// Shapes `out`'s per-trial tables like `proto`'s (same labels, same
/// contract set, same OEP presence) but sized for `trials` trials.
void init_result_shapes(const EngineResult& proto, TrialId trials, EngineResult& out);

/// Copies one block result's per-trial outputs into `out` at trial
/// `offset` and accumulates its counters/telemetry.
void copy_block_result(const EngineResult& block, TrialId offset, EngineResult& out);

/// Truncates every per-trial table of `result` to `trials` (the stop).
void truncate_result(EngineResult& result, TrialId trials);

}  // namespace detail

}  // namespace riskan::core::adaptive
