#include "core/adaptive/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace riskan::core::adaptive {

namespace {

constexpr TrialId kMaxBlockTrials = TrialId{1} << 30;
constexpr std::uint64_t kMaxMinBatches = std::uint64_t{1} << 30;

}  // namespace

const char* metric_name(Metric metric) noexcept {
  switch (metric) {
    case kMean: return "mean";
    case kVar: return "var";
    case kTvar: return "tvar";
    case kOccVar: return "occ_var";
    case kOccTvar: return "occ_tvar";
  }
  return "unknown";
}

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::None: return "none";
    case StopReason::Converged: return "converged";
    case StopReason::Exhausted: return "exhausted";
  }
  return "unknown";
}

void validate_adaptive_config(const AdaptiveConfig& config) {
  RISKAN_REQUIRE(config.target_rel_err >= 0.0 && config.target_rel_err < 1.0,
                 "adaptive target_rel_err must lie in [0,1)");
  RISKAN_REQUIRE(config.confidence > 0.5 && config.confidence < 1.0,
                 "adaptive confidence must lie in (0.5,1)");
  RISKAN_REQUIRE(config.tail_level > 0.0 && config.tail_level < 1.0,
                 "adaptive tail_level must lie in (0,1)");
  RISKAN_REQUIRE((config.metrics & ~kAllMetrics) == 0,
                 "adaptive metric set contains unknown metric bits");
  RISKAN_REQUIRE(config.block_trials > 0, "adaptive block_trials must be positive");
  RISKAN_REQUIRE(config.block_trials <= kMaxBlockTrials,
                 "adaptive block_trials is absurdly large (max 2^30)");
  RISKAN_REQUIRE(config.min_batches >= 2,
                 "adaptive min_batches must be at least 2 (a CI needs variance)");
  RISKAN_REQUIRE(config.min_batches <= kMaxMinBatches,
                 "adaptive min_batches is absurdly large (max 2^30)");
  if (config.enabled()) {
    RISKAN_REQUIRE(config.metrics != 0, "adaptive run monitors no metrics");
    RISKAN_REQUIRE(config.min_trials > 0, "adaptive min_trials must be positive");
    RISKAN_REQUIRE(config.max_trials == 0 || config.max_trials >= config.min_trials,
                   "adaptive max_trials must be 0 (uncapped) or >= min_trials");
  }
}

const MetricEstimate& AdaptiveReport::estimate(Metric metric) const {
  for (const MetricEstimate& e : estimates) {
    if (e.metric == metric) {
      return e;
    }
  }
  RISKAN_REQUIRE(false, "metric was not monitored by this adaptive run");
  // Unreachable; REQUIRE throws.
  return estimates.front();
}

ConvergenceController::ConvergenceController(const AdaptiveConfig& config,
                                             TrialId trials_available)
    : config_(config),
      available_(trials_available),
      p2_var_(config.tail_level),
      p2_occ_var_(config.tail_level) {
  validate_adaptive_config(config);
  RISKAN_REQUIRE(config.enabled(), "ConvergenceController needs adaptivity enabled");
  RISKAN_REQUIRE(trials_available > 0, "adaptive run needs trials to fold");
  cap_ = config.max_trials > 0 ? std::min(available_, config.max_trials) : available_;
  min_trials_ = std::min(config.min_trials, cap_);
  for (const Metric m : {kMean, kVar, kTvar, kOccVar, kOccTvar}) {
    if ((config.metrics & m) != 0) {
      tracks_.push_back({m, {}});
    }
  }
}

void ConvergenceController::fold(std::span<const Money> aggregate,
                                 std::span<const Money> occurrence) {
  RISKAN_REQUIRE(folded_ < cap_, "fold past the adaptive trial cap");
  // Clip to the cap: on grids coarser than the cap (mapreduce/dist blocks)
  // the final fold takes exactly the cap prefix, matching the grid the
  // single-process driver cuts.
  const TrialId take =
      std::min<TrialId>(static_cast<TrialId>(aggregate.size()), cap_ - folded_);
  RISKAN_REQUIRE(take > 0, "fold of an empty trial block");
  aggregate = aggregate.first(take);
  const bool want_occ = (config_.metrics & kOccurrenceMetrics) != 0;
  if (want_occ) {
    RISKAN_REQUIRE(occurrence.size() >= take,
                   "occurrence metrics monitored but no OEP partials folded");
  }
  occurrence = occurrence.size() >= take ? occurrence.first(take)
                                         : std::span<const Money>{};

  for (const Money x : aggregate) {
    stream_stats_.add(x);
    p2_var_.add(x);
  }
  for (const Money x : occurrence) {
    p2_occ_var_.add(x);
  }

  // Per-block exact sample metrics — one batch value per metric per block.
  std::vector<double> sorted(aggregate.begin(), aggregate.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> occ_sorted(occurrence.begin(), occurrence.end());
  std::sort(occ_sorted.begin(), occ_sorted.end());

  double block_sum = 0.0;
  for (const double x : sorted) {
    block_sum += x;
  }
  for (MetricTrack& track : tracks_) {
    switch (track.metric) {
      case kMean:
        track.batches.add(block_sum / static_cast<double>(take));
        break;
      case kVar:
        track.batches.add(quantile_sorted(sorted, config_.tail_level));
        break;
      case kTvar:
        track.batches.add(tail_mean_above(sorted, config_.tail_level));
        break;
      case kOccVar:
        track.batches.add(quantile_sorted(occ_sorted, config_.tail_level));
        break;
      case kOccTvar:
        track.batches.add(tail_mean_above(occ_sorted, config_.tail_level));
        break;
    }
  }
  folded_ += take;
  ++blocks_;

  // Controller telemetry: each fold counts, and the first fold that tips
  // the run into converged marks the stop decision on the timeline.
  static const obs::Counter folds =
      obs::MetricsRegistry::global().counter("adaptive.blocks_folded");
  static const obs::Counter trials =
      obs::MetricsRegistry::global().counter("adaptive.trials_folded");
  folds.add();
  trials.add(static_cast<double>(take));
  if (!stop_marked_ && should_stop()) {
    stop_marked_ = true;
    static const obs::Counter stops =
        obs::MetricsRegistry::global().counter("adaptive.stop_decisions");
    stops.add();
    static const std::uint32_t stop_event = obs::span_id("adaptive.stop");
    obs::trace_instant(stop_event);
  }
}

MetricEstimate ConvergenceController::estimate_of(const MetricTrack& track) const {
  MetricEstimate out;
  out.metric = track.metric;
  out.estimate = track.batches.mean();
  out.half_width = track.batches.half_width(config_.confidence);
  switch (track.metric) {
    case kMean: out.streaming = stream_stats_.mean(); break;
    case kVar: out.streaming = p2_var_.value(); break;
    case kOccVar: out.streaming = p2_occ_var_.value(); break;
    default: out.streaming = out.estimate; break;
  }
  const double scale = std::abs(out.estimate);
  if (out.half_width == 0.0) {
    // Degenerate-but-settled stream (e.g. constant losses): converged.
    out.rel_half_width = 0.0;
  } else if (scale == 0.0 || !std::isfinite(out.half_width)) {
    out.rel_half_width = std::numeric_limits<double>::infinity();
  } else {
    out.rel_half_width = out.half_width / scale;
  }
  out.converged = track.batches.batches() >= config_.min_batches &&
                  out.rel_half_width <= config_.target_rel_err;
  return out;
}

bool ConvergenceController::converged() const {
  if (folded_ < min_trials_) {
    return false;
  }
  for (const MetricTrack& track : tracks_) {
    if (!estimate_of(track).converged) {
      return false;
    }
  }
  return true;
}

bool ConvergenceController::should_stop() const {
  return folded_ >= cap_ || converged();
}

AdaptiveReport ConvergenceController::report() const {
  AdaptiveReport out;
  out.enabled = true;
  out.stop_reason = converged() ? StopReason::Converged : StopReason::Exhausted;
  out.trials_run = folded_;
  out.trials_available = available_;
  out.blocks_folded = blocks_;
  out.estimates.reserve(tracks_.size());
  for (const MetricTrack& track : tracks_) {
    out.estimates.push_back(estimate_of(track));
  }
  return out;
}

}  // namespace riskan::core::adaptive
