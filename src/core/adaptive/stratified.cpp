#include "core/adaptive/stratified.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/portfolio_batch.hpp"
#include "core/secondary.hpp"
#include "data/resolved_yelt.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "util/alias_table.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::core::adaptive {

namespace {

/// Golden-ratio stream split: distinct, deterministic sub-seeds for the
/// per-stratum shuffles and per-round interleaves.
std::uint64_t sub_seed(std::uint64_t seed, std::uint64_t stream) {
  return seed + 0x9e3779b97f4a7c15ull * (stream + 1);
}

/// Seeded Fisher-Yates: the stratum's deterministic without-replacement
/// draw order.
void shuffle_members(std::vector<TrialId>& members, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  for (std::size_t i = members.size(); i > 1; --i) {
    std::swap(members[i - 1], members[sample_index(rng, i)]);
  }
}

}  // namespace

void validate_stratified_config(const StratifiedConfig& config) {
  RISKAN_REQUIRE(config.strata >= 1 && config.strata <= 4096,
                 "stratified sampling needs between 1 and 4096 strata");
  RISKAN_REQUIRE(config.pilot_per_stratum >= 2 &&
                     config.pilot_per_stratum <= (TrialId{1} << 20),
                 "pilot_per_stratum must be in [2, 2^20] (variance needs 2 draws)");
  RISKAN_REQUIRE(config.round_trials >= 1, "round_trials must be positive");
  RISKAN_REQUIRE(config.max_trials >= 1, "max_trials must be positive");
  RISKAN_REQUIRE(config.target_rel_err >= 0.0 && config.target_rel_err < 1.0,
                 "target_rel_err must be in [0, 1)");
  RISKAN_REQUIRE(config.confidence > 0.5 && config.confidence < 1.0,
                 "confidence must be in (0.5, 1)");
}

StrataPartition StrataPartition::build(const data::YearEventLossTable& yelt,
                                       std::size_t strata) {
  RISKAN_REQUIRE(strata >= 1, "need at least one stratum");
  const TrialId trials = yelt.trials();
  RISKAN_REQUIRE(trials > 0, "cannot stratify an empty table");
  const auto offsets = yelt.offsets();

  // Histogram of occurrence counts; cuts go between distinct counts only,
  // so equal-frequency trials can never split across strata.
  std::vector<std::uint64_t> counts(trials);
  std::uint64_t max_count = 0;
  for (TrialId t = 0; t < trials; ++t) {
    counts[t] = offsets[t + 1] - offsets[t];
    max_count = std::max(max_count, counts[t]);
  }
  std::vector<TrialId> histogram(max_count + 1, 0);
  for (const std::uint64_t c : counts) {
    ++histogram[c];
  }

  StrataPartition part;
  const TrialId target = (trials + static_cast<TrialId>(strata) - 1) /
                         static_cast<TrialId>(strata);
  std::uint64_t lo = 0;
  TrialId in_stratum = 0;
  for (std::uint64_t c = 0; c <= max_count; ++c) {
    in_stratum += histogram[c];
    const bool last = c == max_count;
    if (in_stratum == 0 && !last) {
      continue;  // leading empty counts fold into the next stratum
    }
    if (in_stratum >= target || last ||
        part.lo_.size() + 1 == strata) {  // the final stratum takes the rest
      if (part.lo_.size() + 1 == strata || last) {
        // Close out at max_count below.
        if (!last) {
          continue;
        }
      }
      part.lo_.push_back(lo);
      part.hi_.push_back(c);
      lo = c + 1;
      in_stratum = 0;
    }
  }
  RISKAN_ENSURE(!part.lo_.empty() && part.hi_.back() == max_count,
                "strata failed to cover the occurrence-count range");

  part.members_.resize(part.lo_.size());
  for (TrialId t = 0; t < trials; ++t) {
    part.members_[part.stratum_of(counts[t])].push_back(t);
  }
  return part;
}

std::size_t StrataPartition::stratum_of(std::uint64_t occurrences) const {
  // hi_ is ascending; the owning stratum is the first with hi >= count.
  const auto it = std::lower_bound(hi_.begin(), hi_.end(), occurrences);
  RISKAN_REQUIRE(it != hi_.end(), "occurrence count beyond the partition's range");
  return static_cast<std::size_t>(it - hi_.begin());
}

const std::vector<TrialId>& StrataPartition::members(std::size_t h) const {
  RISKAN_REQUIRE(h < members_.size(), "stratum index out of range");
  return members_[h];
}

std::uint64_t StrataPartition::min_occurrences(std::size_t h) const {
  RISKAN_REQUIRE(h < lo_.size(), "stratum index out of range");
  return lo_[h];
}

std::uint64_t StrataPartition::max_occurrences(std::size_t h) const {
  RISKAN_REQUIRE(h < hi_.size(), "stratum index out of range");
  return hi_[h];
}

std::vector<TrialId> neyman_allocation(std::span<const TrialId> population,
                                       std::span<const TrialId> sampled,
                                       std::span<const double> stddev,
                                       TrialId budget) {
  const std::size_t strata = population.size();
  RISKAN_REQUIRE(sampled.size() == strata && stddev.size() == strata,
                 "neyman_allocation spans must be parallel");
  std::vector<TrialId> alloc(strata, 0);
  std::vector<TrialId> capacity(strata);
  TrialId total_capacity = 0;
  for (std::size_t h = 0; h < strata; ++h) {
    RISKAN_REQUIRE(sampled[h] <= population[h],
                   "stratum has more samples than population");
    RISKAN_REQUIRE(stddev[h] >= 0.0, "stddev must be non-negative");
    capacity[h] = population[h] - sampled[h];
    total_capacity += capacity[h];
  }
  TrialId remaining = std::min(budget, total_capacity);

  // Largest-remainder rounding against the Neyman weights, re-run on the
  // still-capacitated strata until the budget is placed (caps can push a
  // stratum's share onto the others). Each pass places >= 1 draw, so the
  // loop is bounded.
  while (remaining > 0) {
    double weight_sum = 0.0;
    for (std::size_t h = 0; h < strata; ++h) {
      if (alloc[h] < capacity[h]) {
        weight_sum += static_cast<double>(population[h]) * stddev[h];
      }
    }
    std::vector<double> share(strata, 0.0);
    double active_sum = 0.0;
    for (std::size_t h = 0; h < strata; ++h) {
      if (alloc[h] >= capacity[h]) {
        continue;
      }
      // All-zero variances (the pilot round) degrade to proportional.
      share[h] = weight_sum > 0.0
                     ? static_cast<double>(population[h]) * stddev[h] / weight_sum
                     : static_cast<double>(population[h]);
      active_sum += share[h];
    }
    RISKAN_ENSURE(active_sum > 0.0, "no stratum left to allocate to");

    TrialId placed = 0;
    std::vector<std::pair<double, std::size_t>> remainder;
    for (std::size_t h = 0; h < strata; ++h) {
      if (share[h] <= 0.0) {
        continue;
      }
      const double target =
          static_cast<double>(remaining) * share[h] / active_sum;
      const TrialId whole = std::min<TrialId>(capacity[h] - alloc[h],
                                              static_cast<TrialId>(target));
      alloc[h] += whole;
      placed += whole;
      if (alloc[h] < capacity[h]) {
        remainder.emplace_back(target - static_cast<double>(whole), h);
      }
    }
    // Leftover from the floors: one draw each, largest remainder first,
    // ties by lowest stratum index (sort is total, so deterministic).
    std::sort(remainder.begin(), remainder.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) {
                  return a.first > b.first;
                }
                return a.second < b.second;
              });
    for (const auto& [frac, h] : remainder) {
      if (placed >= remaining) {
        break;
      }
      if (alloc[h] < capacity[h]) {
        ++alloc[h];
        ++placed;
      }
    }
    remaining -= placed;
  }
  return alloc;
}

StratifiedResult run_stratified_mean(const finance::Portfolio& portfolio,
                                     const data::YearEventLossTable& yelt,
                                     const EngineConfig& engine,
                                     const StratifiedConfig& config) {
  validate_engine_config(engine);
  validate_stratified_config(config);
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(yelt.trials() > 0, "stratified sampling needs trials");
  obs::Timer watch("adaptive.stratified_run");

  const TrialId trials = yelt.trials();
  StrataPartition part = StrataPartition::build(yelt, config.strata);
  const std::size_t strata = part.size();

  // ---- Per-trial evaluator: the one trial kernel, one trial at a time.
  // Dense-gather slots exactly like the per-contract lowering builds, so a
  // drawn trial's loss is bit-identical to the same trial of a full run
  // (the sampling streams are keyed by trial_base + t, not by draw order).
  std::vector<SecondarySampler> samplers;
  if (engine.secondary_uncertainty) {
    samplers.reserve(portfolio.size());
    for (const auto& contract : portfolio.contracts()) {
      samplers.emplace_back(contract.elt());
    }
  }
  data::ResolverCache local_cache;
  data::ResolverCache& cache = engine.resolver_cache != nullptr
                                   ? *engine.resolver_cache
                                   : local_cache;
  const ParallelConfig resolve_cfg{nullptr, std::numeric_limits<std::size_t>::max()};
  std::vector<std::shared_ptr<const data::ResolvedYelt>> resolved;
  resolved.reserve(portfolio.size());
  for (const auto& contract : portfolio.contracts()) {
    resolved.push_back(cache.get_or_build(contract.elt(), yelt, resolve_cfg));
  }

  std::vector<Money> portfolio_losses(trials, 0.0);
  std::vector<Money> reinstatement_prem(trials, 0.0);
  std::vector<batch::Slot> slots;
  slots.reserve(portfolio.layer_count());
  for (std::size_t c = 0; c < portfolio.size(); ++c) {
    const auto& contract = portfolio.contract(c);
    for (const auto& layer : contract.layers()) {
      batch::Slot slot;
      slot.gather = batch::Gather::Dense;
      slot.dense_rows = resolved[c]->rows().data();
      slot.elt = &contract.elt();
      slot.means = contract.elt().mean_loss().data();
      slot.sampler = engine.secondary_uncertainty ? &samplers[c] : nullptr;
      slot.contract_id = contract.id();
      slot.layer_id = layer.id;
      slot.terms = layer.terms;
      slot.reinstatements = layer.reinstatements;
      slot.upfront_premium = layer.upfront_premium;
      slot.portfolio_losses = portfolio_losses;
      slot.reinstatement_prem = reinstatement_prem;
      slots.push_back(slot);
    }
  }
  const auto groups = batch::group_slots(slots);
  std::vector<Money> annual_scratch(slots.size());
  const Philox4x32 philox(engine.seed);
  const auto yelt_offsets = yelt.offsets();

  StratifiedResult result;
  result.trials_available = trials;

  // ---- Draw state: seeded per-stratum shuffles are the without-
  // replacement order; OnlineStats accumulate each stratum's drawn losses.
  std::vector<std::vector<TrialId>> order(strata);
  std::vector<std::size_t> next(strata, 0);
  std::vector<OnlineStats> stats(strata);
  for (std::size_t h = 0; h < strata; ++h) {
    order[h] = part.members(h);
    shuffle_members(order[h], sub_seed(engine.seed, h));
  }
  const auto draw = [&](std::size_t h) {
    const TrialId t = order[h][next[h]++];
    batch::process_trials(slots, groups, yelt_offsets, philox,
                          engine.secondary_uncertainty, engine.trial_base, t,
                          t + 1, annual_scratch);
    stats[h].add(portfolio_losses[t]);
    result.samples.push_back({t, portfolio_losses[t]});
  };

  const double total = static_cast<double>(trials);
  const double z = normal_quantile(0.5 + config.confidence / 2.0);
  const auto estimate = [&]() {
    double mean = 0.0;
    double variance = 0.0;
    for (std::size_t h = 0; h < strata; ++h) {
      const double weight = static_cast<double>(part.members(h).size()) / total;
      const double n = static_cast<double>(stats[h].count());
      const double population = static_cast<double>(part.members(h).size());
      if (n > 0.0) {
        mean += weight * stats[h].mean();
      }
      if (n >= 1.0 && n < population) {
        // Finite-population correction: a fully-drawn stratum contributes
        // zero sampling variance.
        variance += weight * weight * (1.0 - n / population) *
                    stats[h].sample_variance() / n;
      }
    }
    result.mean = mean;
    result.half_width = z * std::sqrt(variance);
  };
  const auto converged = [&]() {
    if (config.target_rel_err <= 0.0) {
      return false;
    }
    const double scale = std::abs(result.mean);
    return scale > 0.0 && result.half_width / scale <= config.target_rel_err;
  };

  // ---- Pilot: equal per-stratum draws seed the variance estimates.
  TrialId budget = std::min(config.max_trials, trials);
  for (std::size_t h = 0; h < strata && budget > 0; ++h) {
    const TrialId pilot = std::min<TrialId>(
        config.pilot_per_stratum, static_cast<TrialId>(order[h].size()));
    for (TrialId i = 0; i < pilot && budget > 0; ++i, --budget) {
      draw(h);
    }
  }
  estimate();

  // ---- Neyman rounds: reallocate what the variances earned, interleave
  // the draws across strata through a seeded alias table over the round's
  // allocations (stream order is deterministic and estimate-neutral — the
  // loss of trial t does not depend on when t is drawn).
  std::vector<TrialId> population(strata);
  std::vector<TrialId> sampled(strata);
  std::vector<double> stddev(strata);
  for (std::size_t h = 0; h < strata; ++h) {
    population[h] = static_cast<TrialId>(part.members(h).size());
  }
  std::uint64_t round = 0;
  while (budget > 0 && !converged()) {
    for (std::size_t h = 0; h < strata; ++h) {
      sampled[h] = static_cast<TrialId>(stats[h].count());
      stddev[h] = stats[h].stdev();
    }
    const auto alloc = neyman_allocation(
        population, sampled, stddev, std::min(config.round_trials, budget));
    TrialId round_total = 0;
    std::vector<double> weights(strata);
    for (std::size_t h = 0; h < strata; ++h) {
      round_total += alloc[h];
      weights[h] = static_cast<double>(alloc[h]);
    }
    if (round_total == 0) {
      break;  // every stratum exhausted
    }
    AliasTable interleave(weights);
    Xoshiro256ss pick(sub_seed(engine.seed, 0x5157 + round));
    std::vector<TrialId> left = alloc;
    for (TrialId drawn = 0; drawn < round_total; ++drawn) {
      std::size_t h = interleave.sample(pick);
      while (left[h] == 0) {
        h = (h + 1) % strata;  // alias picked a spent stratum: next live one
      }
      draw(h);
      --left[h];
    }
    budget -= round_total;
    ++round;
    estimate();
  }

  result.converged = converged();
  result.trials_sampled = static_cast<TrialId>(result.samples.size());
  result.strata.resize(strata);
  for (std::size_t h = 0; h < strata; ++h) {
    StratumSummary& s = result.strata[h];
    s.min_occurrences = part.min_occurrences(h);
    s.max_occurrences = part.max_occurrences(h);
    s.population = population[h];
    s.sampled = static_cast<TrialId>(stats[h].count());
    s.mean = stats[h].mean();
    s.variance = stats[h].sample_variance();
  }
  result.seconds = watch.stop();
  return result;
}

}  // namespace riskan::core::adaptive
