// Stratified trial sampling over event-frequency strata — the variance-
// reduction companion of the convergence controller (core/adaptive).
//
// A YELT's trials differ enormously in how much they can move the mean:
// a 0-occurrence trial contributes exactly zero, a 12-occurrence trial is
// where the tail lives. Stratifying the trial population by occurrence
// count and spending the sampling budget where the per-stratum variance
// actually is (Neyman allocation, re-estimated between rounds from the
// samples drawn so far) estimates the portfolio mean loss to a target CI
// with a fraction of the uniform-sampling budget.
//
// The mechanics reuse the repo's one trial kernel: a drawn trial t is
// computed by core::batch::process_trials(lo = t, hi = t + 1) against the
// full table's offsets with the engine's global trial_base — which, because
// every sampling stream is keyed by (contract, layer, trial_base + t, seq),
// reproduces trial t's losses bit-identically to a full fixed-budget run.
// The strata only decide WHICH trials are computed, never what any trial
// is worth — the "unstratified path is today's sampler" invariant the
// tests pin.
//
// Determinism: strata are a pure function of the table; per-stratum draw
// order is a seeded Fisher-Yates shuffle; round allocations are
// largest-remainder rounded (ties by stratum index); the cross-stratum
// draw interleave samples a util::AliasTable built over the round's
// allocations with a seeded generator. Same (table, book, seed, config) ⇒
// same drawn trials, same estimate, bit for bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"

namespace riskan::core::adaptive {

struct StratifiedConfig {
  /// Event-frequency strata to partition the trial population into (an
  /// upper bound: trials with equal occurrence counts never split, so
  /// degenerate tables yield fewer).
  std::size_t strata = 8;
  /// Draws per stratum in the pilot round (clipped to the stratum's
  /// population) — seeds the per-stratum variance estimates Neyman
  /// reallocation needs. At least 2, so every stratum gets a variance.
  TrialId pilot_per_stratum = 64;
  /// Budget per Neyman-reallocated round after the pilot.
  TrialId round_trials = 1024;
  /// Total draw budget (pilot included); clipped to the trial population.
  TrialId max_trials = 10'000;
  /// Stop early once half_width / |mean| closes under this; 0 = spend the
  /// whole budget.
  double target_rel_err = 0.0;
  /// Confidence level of the reported half-width.
  double confidence = 0.95;
};

/// ContractViolation on nonsense: strata in [1, 4096], pilot_per_stratum
/// in [2, 2^20], round_trials >= 1, max_trials >= 1, target_rel_err in
/// [0, 1), confidence in (0.5, 1).
void validate_stratified_config(const StratifiedConfig& config);

/// Partition of a table's trials by occurrence count: contiguous count
/// ranges, populations as equal as splitting only between distinct counts
/// allows. Every trial lands in exactly one stratum (tests enforce the
/// exact-partition invariant).
class StrataPartition {
 public:
  static StrataPartition build(const data::YearEventLossTable& yelt,
                               std::size_t strata);

  std::size_t size() const noexcept { return members_.size(); }
  /// Stratum index owning trials with this occurrence count.
  std::size_t stratum_of(std::uint64_t occurrences) const;
  /// Trial ids of stratum `h`, ascending.
  const std::vector<TrialId>& members(std::size_t h) const;
  /// Inclusive occurrence-count range of stratum `h`.
  std::uint64_t min_occurrences(std::size_t h) const;
  std::uint64_t max_occurrences(std::size_t h) const;

 private:
  std::vector<std::uint64_t> lo_;  ///< per-stratum inclusive count lower bound
  std::vector<std::uint64_t> hi_;  ///< per-stratum inclusive count upper bound
  std::vector<std::vector<TrialId>> members_;
};

/// Neyman allocation of `budget` draws across strata: targets proportional
/// to population[h] * stddev[h] (proportional to population alone when
/// every stddev is zero, e.g. the pilot round), rounded by largest
/// remainder (ties broken by lowest stratum index), each stratum capped at
/// its unsampled remainder population[h] - sampled[h] (draws are without
/// replacement). The returned allocations sum to min(budget, total
/// unsampled capacity) — the budget-conservation invariant the tests pin.
std::vector<TrialId> neyman_allocation(std::span<const TrialId> population,
                                       std::span<const TrialId> sampled,
                                       std::span<const double> stddev,
                                       TrialId budget);

struct StratumSummary {
  std::uint64_t min_occurrences = 0;  ///< inclusive count range of the stratum
  std::uint64_t max_occurrences = 0;
  TrialId population = 0;  ///< trials in the stratum
  TrialId sampled = 0;     ///< trials actually drawn
  double mean = 0.0;       ///< sample mean of the drawn losses
  double variance = 0.0;   ///< sample (n-1) variance of the drawn losses
};

/// One drawn trial, in draw order — lets tests assert each computed loss
/// against the corresponding trial of a full fixed-budget run.
struct StratifiedSample {
  TrialId trial = 0;
  Money loss = 0.0;
};

struct StratifiedResult {
  /// Stratified estimate of the portfolio mean annual loss:
  /// sum_h (N_h / N) * mean_h.
  double mean = 0.0;
  /// Half-width of the confidence interval at config.confidence, with
  /// finite-population correction per stratum.
  double half_width = 0.0;
  /// target_rel_err reached before the budget ran out.
  bool converged = false;
  TrialId trials_sampled = 0;
  TrialId trials_available = 0;
  std::vector<StratumSummary> strata;
  std::vector<StratifiedSample> samples;  ///< draw order
  double seconds = 0.0;
};

/// Estimates the portfolio mean annual loss by stratified sampling without
/// replacement over event-frequency strata, with Neyman reallocation
/// between rounds. Honours engine seed / secondary_uncertainty /
/// trial_base; each drawn trial's loss is bit-identical to the same trial
/// of run_aggregate_analysis with the same engine config.
StratifiedResult run_stratified_mean(const finance::Portfolio& portfolio,
                                     const data::YearEventLossTable& yelt,
                                     const EngineConfig& engine,
                                     const StratifiedConfig& config = {});

}  // namespace riskan::core::adaptive
