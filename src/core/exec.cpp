#include "core/exec.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "core/secondary.hpp"
#include "core/simd.hpp"
#include "obs/obs.hpp"
#include "parallel/device.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"

namespace riskan::core::exec {

namespace {

/// Per-backend dispatch telemetry: one execution count plus one duration
/// histogram per executor kind, all in the global registry (near-zero cost
/// when obs is disabled). The Timer doubles as the trace span emitter.
struct ExecObs {
  obs::Counter executions;
  obs::Histogram seconds;

  explicit ExecObs(const char* backend)
      : executions(obs::MetricsRegistry::global().counter(std::string("exec.") + backend +
                                                          ".executions")),
        seconds(obs::MetricsRegistry::global().histogram(std::string("exec.") + backend +
                                                         ".seconds")) {}
};

bool same_source(const ExecutionPlan::Source& src, const batch::Slot& s) noexcept {
  return src.gather == s.gather && src.elt == s.elt && src.hit_offsets == s.hit_offsets &&
         src.seqs == s.seqs && src.rows == s.rows && src.dense_rows == s.dense_rows &&
         src.search_events == s.search_events;
}

/// Per-slot invariants shared by lower() and rebind(): every slot carries
/// exactly its gather mode's columns, scenario transforms stay compact-only,
/// and the sampling/means inputs match the secondary setting.
void validate_slots(std::span<const batch::Slot> slots,
                    std::span<const std::uint64_t> yelt_offsets, TrialId trials,
                    bool secondary) {
  const std::uint64_t entries = yelt_offsets.empty() ? 0 : yelt_offsets[trials];
  for (const batch::Slot& s : slots) {
    RISKAN_REQUIRE(s.elt != nullptr, "slot needs its gather ELT");
    switch (s.gather) {
      case batch::Gather::Compact:
        RISKAN_REQUIRE(s.hit_offsets != nullptr, "compact slot needs its CSR index");
        RISKAN_REQUIRE((s.seqs != nullptr && s.rows != nullptr) ||
                           s.hit_offsets[trials] == 0,
                       "compact slot needs seq and row columns");
        break;
      case batch::Gather::Dense:
        RISKAN_REQUIRE(s.dense_rows != nullptr || entries == 0,
                       "dense slot needs its pre-joined row column");
        break;
      case batch::Gather::Search:
        RISKAN_REQUIRE(s.search_events != nullptr || entries == 0,
                       "search slot needs the YELT event column");
        break;
    }
    if (s.gather != batch::Gather::Compact) {
      RISKAN_REQUIRE(s.mask_seq == nullptr && s.loss_scale == 1.0 &&
                         s.conditioned_ground_up < 0.0,
                     "dense/search slots take no scenario transforms");
    }
    RISKAN_REQUIRE(!secondary || s.sampler != nullptr,
                   "secondary sampling needs a per-slot sampler");
    RISKAN_REQUIRE(s.means != nullptr || secondary, "means-path slot needs ELT means");
  }
}

/// Packed ELT row as uploaded to simulated constant memory: event id, mean
/// (for secondary-off gathers) and the secondary-uncertainty parameters —
/// the per-gather unit of constant-memory traffic.
struct DeviceEltRow {
  EventId event_id = 0;
  Money mean_loss = 0.0;
  SecondarySampler::Param param;
};

// Approximate FLOP cost of one beta draw (two Marsaglia-Tsang gammas plus
// transforms) and of the per-occurrence layer terms; feeds the performance
// model only.
constexpr std::uint64_t kBetaFlops = 220;
constexpr std::uint64_t kOccTermFlops = 4;

/// Bytes one binary-search probe sequence over `rows` sorted ELT rows
/// touches (16 bytes per probed cache line, log2(rows) probes).
std::uint64_t probe_bytes(std::size_t rows) noexcept {
  return 16 * (64 - static_cast<std::uint64_t>(__builtin_clzll(rows | 1)));
}

/// Greedy constant-memory residency planning: walk the groups in slot
/// order, packing each new source's table (capped at device_elt_chunk_rows
/// rows when set) into the current chunk while the constant segment fits;
/// when a table does not fit alongside the current residents, close the
/// chunk (one launch each) and start the next. A table too large for an
/// empty segment is staged partially — its leading rows are resident, the
/// tail gathers from global memory.
void plan_device_chunks(ExecutionPlan& plan, const EngineConfig& config) {
  const std::size_t row_bytes = sizeof(DeviceEltRow);
  const std::size_t capacity = config.device_spec.const_mem_bytes;
  const std::size_t budget = capacity > 64 ? capacity - 64 : 0;
  // Each const_upload starts 16-byte aligned, so charge aligned sizes —
  // the sum then upper-bounds the arena's actual usage.
  const auto charge = [row_bytes](std::size_t rows) {
    return (rows * row_bytes + 15) & ~std::size_t{15};
  };

  ExecutionPlan::DeviceChunk cur;
  std::size_t cur_bytes = 0;
  const auto close = [&plan, &cur, &cur_bytes]() {
    if (cur.group_end > cur.group_begin) {
      plan.device_chunks.push_back(std::move(cur));
    }
    cur = ExecutionPlan::DeviceChunk{};
    cur_bytes = 0;
  };

  for (std::uint32_t g = 0; g < plan.groups.size(); ++g) {
    const std::uint32_t s = plan.group_source[g];
    const bool seen = std::any_of(cur.staged_rows.begin(), cur.staged_rows.end(),
                                  [s](const auto& e) { return e.first == s; });
    if (seen) {
      cur.group_end = g + 1;
      continue;
    }
    std::size_t want = plan.sources[s].elt->size();
    if (config.device_elt_chunk_rows > 0) {
      want = std::min(want, config.device_elt_chunk_rows);
    }
    if (cur.group_end > cur.group_begin && cur_bytes + charge(want) > budget) {
      close();
      cur.group_begin = g;
    }
    // Partial residency when the table exceeds even an empty segment;
    // shaving the alignment pad off the remainder keeps charge(want)
    // within it.
    const std::size_t avail = budget - cur_bytes;
    want = std::min(want, avail >= 15 ? (avail - 15) / row_bytes : 0);
    cur.staged_rows.emplace_back(s, want);
    cur_bytes += charge(want);
    cur.group_end = g + 1;
  }
  close();
}

class SequentialExecutor final : public Executor {
 public:
  std::uint64_t execute(const ExecutionPlan& plan, const Philox4x32& philox) override {
    static const ExecObs metrics("sequential");
    obs::Timer timer("exec.sequential");
    std::vector<Money> scratch(plan.max_group_size);
    const std::uint64_t found =
        batch::process_trials(plan.slots, plan.groups, plan.yelt_offsets, philox,
                              plan.secondary, plan.trial_base, 0, plan.trials, scratch);
    metrics.executions.add();
    metrics.seconds.observe(timer.stop());
    return found;
  }
};

class ThreadedExecutor final : public Executor {
 public:
  ThreadedExecutor(ThreadPool* pool, std::size_t grain) : pool_(pool), grain_(grain) {}

  std::uint64_t execute(const ExecutionPlan& plan, const Philox4x32& philox) override {
    static const ExecObs metrics("threaded");
    obs::Timer timer("exec.threaded");
    const std::uint64_t found = parallel_reduce<std::uint64_t>(
        0, plan.trials, 0,
        [&](std::size_t lo, std::size_t hi) {
          std::vector<Money> scratch(plan.max_group_size);
          return batch::process_trials(plan.slots, plan.groups, plan.yelt_offsets, philox,
                                       plan.secondary, plan.trial_base,
                                       static_cast<TrialId>(lo), static_cast<TrialId>(hi),
                                       scratch);
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; },
        ParallelConfig{pool_, grain_});
    metrics.executions.add();
    metrics.seconds.observe(timer.stop());
    return found;
  }

 private:
  ThreadPool* pool_;
  std::size_t grain_;
};

/// The vectorized trial kernel on the runtime-dispatched ISA
/// (core/batch_simd.hpp). Backend::Simd runs the whole range inline on the
/// caller's thread — pool-free, so it can substitute for Sequential
/// anywhere (dist workers use it); Backend::ThreadedSimd reuses the
/// Threaded trial-chunk partition with a per-chunk scratch set. Lane
/// utilization and the dispatched width are published as exec.simd.*.
class SimdExecutor final : public Executor {
 public:
  SimdExecutor(const EngineConfig& config, bool threaded)
      : pool_(config.pool),
        grain_(config.trial_grain),
        threaded_(threaded),
        dispatch_(simd_dispatch()) {}

  std::uint64_t execute(const ExecutionPlan& plan, const Philox4x32& philox) override {
    static const ExecObs simd_metrics("simd");
    static const ExecObs threaded_metrics("threaded-simd");
    static const obs::Gauge width_gauge =
        obs::MetricsRegistry::global().gauge("exec.simd.width");
    static const obs::Counter vector_occ =
        obs::MetricsRegistry::global().counter("exec.simd.vector_occurrences");
    static const obs::Counter tail_occ =
        obs::MetricsRegistry::global().counter("exec.simd.tail_occurrences");
    static const obs::Counter scalar_occ =
        obs::MetricsRegistry::global().counter("exec.simd.scalar_occurrences");
    static const obs::Counter sampler_fast =
        obs::MetricsRegistry::global().counter("exec.simd.sampler.fast");
    static const obs::Counter sampler_tail =
        obs::MetricsRegistry::global().counter("exec.simd.sampler.tail");
    // validate_engine_config rejected unavailable dispatches at config
    // time; this guards executors constructed around it.
    RISKAN_REQUIRE(dispatch_.kernel != nullptr,
                   "Simd executor without a usable vector ISA");
    const ExecObs& metrics = threaded_ ? threaded_metrics : simd_metrics;
    obs::Timer timer(threaded_ ? "exec.threaded-simd" : "exec.simd");
    width_gauge.set(dispatch_.width);

    batch::SimdStats stats;
    std::uint64_t found = 0;
    if (!threaded_) {
      std::vector<Money> annual_scratch(plan.max_group_size);
      found = dispatch_.kernel(plan.slots, plan.groups, plan.yelt_offsets, philox,
                               plan.secondary, plan.trial_base, 0, plan.trials,
                               annual_scratch, stats);
    } else {
      std::mutex stats_mutex;
      found = parallel_reduce<std::uint64_t>(
          0, plan.trials, 0,
          [&](std::size_t lo, std::size_t hi) {
            std::vector<Money> annual_scratch(plan.max_group_size);
            batch::SimdStats chunk_stats;
            const std::uint64_t chunk_found = dispatch_.kernel(
                plan.slots, plan.groups, plan.yelt_offsets, philox, plan.secondary,
                plan.trial_base, static_cast<TrialId>(lo), static_cast<TrialId>(hi),
                annual_scratch, chunk_stats);
            const std::lock_guard lock(stats_mutex);
            stats += chunk_stats;
            return chunk_found;
          },
          [](std::uint64_t a, std::uint64_t b) { return a + b; },
          ParallelConfig{pool_, grain_});
    }
    vector_occ.add(static_cast<double>(stats.vector_occurrences));
    tail_occ.add(static_cast<double>(stats.tail_occurrences));
    scalar_occ.add(static_cast<double>(stats.scalar_occurrences));
    sampler_fast.add(static_cast<double>(stats.sampler_fast));
    sampler_tail.add(static_cast<double>(stats.sampler_tail));
    metrics.executions.add();
    metrics.seconds.observe(timer.stop());
    return found;
  }

 private:
  ThreadPool* pool_;
  std::size_t grain_;
  bool threaded_;
  SimdDispatch dispatch_;
};

/// The GPU execution model: runs the same process_trials kernel inside
/// simulated device blocks, one launch per constant-memory residency chunk
/// of the plan, staging each block's slot column slices into shared memory
/// when they fit. Staged copies are what the kernel actually reads (values
/// are identical by construction, so outputs stay bit-exact); traffic is
/// metered per access class and converted to a modeled device time.
class DeviceSimExecutor final : public Executor {
 public:
  explicit DeviceSimExecutor(const EngineConfig& config)
      : device_(config.device_spec, config.pool),
        block_dim_(config.device_block_dim),
        info_(config.device_info) {}

  std::uint64_t execute(const ExecutionPlan& plan, const Philox4x32& philox) override;

 private:
  Device device_;
  int block_dim_;
  DeviceRunInfo* info_;
};

/// Adjusts a staged column pointer so that indexing with the *global*
/// offsets the kernel uses lands inside the block's staged slice (which
/// starts at global index `base`). Routed through uintptr_t: the biased
/// pointer is never dereferenced outside [base, base + slice).
template <typename T>
const T* rebase(const T* staged, std::uint64_t base) noexcept {
  return reinterpret_cast<const T*>(reinterpret_cast<std::uintptr_t>(staged) -
                                    static_cast<std::uintptr_t>(base) * sizeof(T));
}

std::uint64_t DeviceSimExecutor::execute(const ExecutionPlan& plan,
                                         const Philox4x32& philox) {
  static const ExecObs metrics("devicesim");
  obs::Timer exec_timer("exec.devicesim");
  const TrialId trials = plan.trials;
  const int block_dim = block_dim_;
  const int grid_dim = static_cast<int>((static_cast<std::uint64_t>(trials) + block_dim - 1) /
                                        static_cast<std::uint64_t>(block_dim));
  const auto yelt_offsets = plan.yelt_offsets;
  std::uint64_t lookups = 0;

  DeviceRunInfo scratch_info;
  DeviceRunInfo& info = info_ != nullptr ? *info_ : scratch_info;
  info.elt_chunks += plan.device_chunks.size();

  for (const ExecutionPlan::DeviceChunk& chunk : plan.device_chunks) {
    // Per-source resident row counts for this chunk (0 = fully global).
    std::vector<std::size_t> resident(plan.sources.size(), 0);
    device_.const_clear();
    for (const auto& [src, rows] : chunk.staged_rows) {
      resident[src] = rows;
      if (rows == 0) {
        continue;
      }
      // Upload the packed leading rows — real data in the real arena, so
      // the 64 KiB capacity contract is enforced exactly like CUDA's.
      const ExecutionPlan::Source& source = plan.sources[src];
      std::vector<DeviceEltRow> packed(rows);
      const auto ids = source.elt->event_ids();
      const auto means = source.elt->mean_loss();
      // Any slot of the source shares the sampler (same ELT); find one.
      const SecondarySampler* sampler = nullptr;
      for (std::uint32_t g = chunk.group_begin; g < chunk.group_end; ++g) {
        if (plan.group_source[g] == src) {
          sampler = plan.slots[plan.groups[g].begin].sampler;
          break;
        }
      }
      RISKAN_REQUIRE(!plan.secondary || sampler != nullptr,
                     "staged source has no slot in its residency chunk");
      for (std::size_t i = 0; i < rows; ++i) {
        packed[i].event_id = ids[i];
        packed[i].mean_loss = means[i];
        if (sampler != nullptr) {
          packed[i].param = sampler->param(i);
        }
      }
      (void)device_.const_upload(packed.data(), rows * sizeof(DeviceEltRow));
    }

    const std::uint32_t slot_lo = plan.groups[chunk.group_begin].begin;
    const batch::Group& last_group = plan.groups[chunk.group_end - 1];
    const std::uint32_t slot_hi = last_group.begin + last_group.size;

    std::vector<std::uint64_t> block_found(static_cast<std::size_t>(grid_dim), 0);
    std::vector<std::uint8_t> block_staged(static_cast<std::size_t>(grid_dim), 2);

    const auto stats = device_.launch_blocks(grid_dim, block_dim, [&](BlockContext& ctx) {
      const auto first =
          static_cast<TrialId>(std::min<std::uint64_t>(trials,
              static_cast<std::uint64_t>(ctx.block_id()) * block_dim));
      const auto last =
          static_cast<TrialId>(std::min<std::uint64_t>(trials,
              static_cast<std::uint64_t>(first) + static_cast<std::uint64_t>(block_dim)));
      if (first >= last) {
        return;
      }
      const std::uint64_t occ_lo = yelt_offsets[first];
      const std::uint64_t occ_hi = yelt_offsets[last];

      // ---- Stage this block's column slices into shared memory, greedily
      // in source order. Search sources share the YELT event column, so it
      // is staged at most once.
      std::vector<const std::uint32_t*> staged_seqs(plan.sources.size(), nullptr);
      std::vector<const std::uint32_t*> staged_rows(plan.sources.size(), nullptr);
      std::vector<const std::uint32_t*> staged_dense(plan.sources.size(), nullptr);
      const EventId* staged_events = nullptr;
      bool all_staged = true;
      for (const auto& [src, rows_resident] : chunk.staged_rows) {
        (void)rows_resident;
        const ExecutionPlan::Source& source = plan.sources[src];
        if (source.gather == batch::Gather::Compact) {
          const std::uint64_t hit_lo = source.hit_offsets[first];
          const std::uint64_t n = source.hit_offsets[last] - hit_lo;
          const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(std::uint32_t);
          if (2 * bytes + ctx.shared_used() <= ctx.shared_capacity()) {
            if (n > 0) {
              auto* seqs = ctx.shared_alloc<std::uint32_t>(n);
              auto* rows = ctx.shared_alloc<std::uint32_t>(n);
              std::memcpy(seqs, source.seqs + hit_lo, bytes);
              std::memcpy(rows, source.rows + hit_lo, bytes);
              staged_seqs[src] = rebase(seqs, hit_lo);
              staged_rows[src] = rebase(rows, hit_lo);
            }
            ctx.meter_global_read(2 * bytes);
            ctx.meter_shared_write(2 * bytes);
          } else {
            all_staged = false;
          }
          continue;
        }
        const std::uint64_t n = occ_hi - occ_lo;
        const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(std::uint32_t);
        if (source.gather == batch::Gather::Dense) {
          if (bytes + ctx.shared_used() <= ctx.shared_capacity()) {
            if (n > 0) {
              auto* dense = ctx.shared_alloc<std::uint32_t>(n);
              std::memcpy(dense, source.dense_rows + occ_lo, bytes);
              staged_dense[src] = rebase(dense, occ_lo);
            }
            ctx.meter_global_read(bytes);
            ctx.meter_shared_write(bytes);
          } else {
            all_staged = false;
          }
        } else if (staged_events == nullptr) {
          if (bytes + ctx.shared_used() <= ctx.shared_capacity()) {
            if (n > 0) {
              auto* events = ctx.shared_alloc<EventId>(n);
              std::memcpy(events, source.search_events + occ_lo, bytes);
              staged_events = rebase(events, occ_lo);
            }
            ctx.meter_global_read(bytes);
            ctx.meter_shared_write(bytes);
          } else {
            all_staged = false;
          }
        }
      }

      // ---- The one trial kernel, over this block's trial range. Slots are
      // copied with staged columns swapped in only when something actually
      // staged; spill blocks read the plan's slots in place.
      const bool anything_staged = ctx.shared_used() > 0;
      std::vector<Money> annual_scratch(plan.max_group_size);
      std::uint64_t found = 0;
      if (anything_staged) {
        std::vector<batch::Slot> local(plan.slots.begin() + slot_lo,
                                       plan.slots.begin() + slot_hi);
        std::vector<batch::Group> local_groups(plan.groups.begin() + chunk.group_begin,
                                               plan.groups.begin() + chunk.group_end);
        for (batch::Group& g : local_groups) {
          g.begin -= slot_lo;
        }
        for (std::uint32_t g = chunk.group_begin; g < chunk.group_end; ++g) {
          const std::uint32_t src = plan.group_source[g];
          const batch::Group& group = plan.groups[g];
          for (std::uint32_t i = 0; i < group.size; ++i) {
            batch::Slot& s = local[group.begin + i - slot_lo];
            if (staged_seqs[src] != nullptr) {
              s.seqs = staged_seqs[src];
              s.rows = staged_rows[src];
            }
            if (staged_dense[src] != nullptr) {
              s.dense_rows = staged_dense[src];
            }
            if (s.gather == batch::Gather::Search && staged_events != nullptr) {
              s.search_events = staged_events;
            }
          }
        }
        found = batch::process_trials(local, local_groups, yelt_offsets, philox,
                                      plan.secondary, plan.trial_base, first, last,
                                      annual_scratch);
      } else {
        found = batch::process_trials(
            plan.slots,
            std::span<const batch::Group>(plan.groups)
                .subspan(chunk.group_begin, chunk.group_end - chunk.group_begin),
            yelt_offsets, philox, plan.secondary, plan.trial_base, first, last,
            annual_scratch);
      }
      block_found[static_cast<std::size_t>(ctx.block_id())] = found;

      // ---- Meter the gather/compute traffic analytically, per group.
      std::uint64_t noncompact_slots = 0;
      double noncompact_frac = 0.0;
      for (std::uint32_t g = chunk.group_begin; g < chunk.group_end; ++g) {
        const std::uint32_t src = plan.group_source[g];
        const ExecutionPlan::Source& source = plan.sources[src];
        const batch::Group& group = plan.groups[g];
        const std::size_t elt_rows = source.elt->size();
        const double frac =
            elt_rows == 0 ? 0.0
                          : static_cast<double>(std::min(resident[src], elt_rows)) /
                                static_cast<double>(elt_rows);
        if (source.gather == batch::Gather::Compact) {
          const std::uint64_t hits = source.hit_offsets[last] - source.hit_offsets[first];
          const std::uint64_t col_bytes = hits * 2 * sizeof(std::uint32_t);
          if (staged_seqs[src] != nullptr) {
            ctx.meter_shared_read(col_bytes);
          } else {
            ctx.meter_global_read(col_bytes);
          }
          const auto row_traffic = hits * static_cast<std::uint64_t>(sizeof(DeviceEltRow));
          ctx.meter_const_read(static_cast<std::uint64_t>(frac * row_traffic));
          ctx.meter_global_read(row_traffic - static_cast<std::uint64_t>(frac * row_traffic));
          if (plan.secondary) {
            ctx.meter_flops(hits * kBetaFlops);
          }
          ctx.meter_flops(hits * kOccTermFlops * group.size);
          for (std::uint32_t i = 0; i < group.size; ++i) {
            const batch::Slot& s = plan.slots[group.begin + i];
            if (s.occurrence_accum != nullptr) {
              ctx.meter_global_write(hits * sizeof(Money));
            }
          }
          // Annual finish per trial with hits.
          std::uint64_t busy_trials = 0;
          for (TrialId t = first; t < last; ++t) {
            busy_trials += source.hit_offsets[t + 1] > source.hit_offsets[t] ? 1 : 0;
          }
          ctx.meter_flops(busy_trials * 6 * group.size);
          ctx.meter_global_write(busy_trials * 3 * sizeof(Money) * group.size);
        } else {
          const std::uint64_t occ = occ_hi - occ_lo;
          const std::uint64_t col_bytes = occ * sizeof(std::uint32_t);
          const bool col_staged = source.gather == batch::Gather::Dense
                                      ? staged_dense[src] != nullptr
                                      : staged_events != nullptr;
          if (col_staged) {
            ctx.meter_shared_read(col_bytes);
          } else {
            ctx.meter_global_read(col_bytes);
          }
          if (source.gather == batch::Gather::Search) {
            // Every occurrence binary-searches the table; probes split
            // between the resident prefix and the global tail.
            const std::uint64_t probes = occ * probe_bytes(elt_rows);
            ctx.meter_const_read(static_cast<std::uint64_t>(frac * probes));
            ctx.meter_global_read(probes - static_cast<std::uint64_t>(frac * probes));
          }
          noncompact_slots += group.size;
          noncompact_frac = frac;
          ctx.meter_flops((occ_hi > occ_lo ? last - first : 0) * 6 * group.size);
          ctx.meter_global_write((occ_hi > occ_lo ? last - first : 0) * 3 *
                                 sizeof(Money) * group.size);
        }
      }
      if (noncompact_slots > 0) {
        // Found-lookup gathers of the dense/search slots: per found row one
        // packed-row read (const for the resident fraction) plus sampling
        // and term FLOPs. The per-group split is not tracked — plans are
        // one noncompact source in practice (the per-layer lowering); a
        // mix meters under the last source's residency fraction.
        const auto row_traffic = found * static_cast<std::uint64_t>(sizeof(DeviceEltRow));
        const auto const_part = static_cast<std::uint64_t>(noncompact_frac *
                                                           static_cast<double>(row_traffic));
        ctx.meter_const_read(const_part);
        ctx.meter_global_read(row_traffic - const_part);
        if (plan.secondary) {
          ctx.meter_flops(found * kBetaFlops);
        }
        ctx.meter_flops(found * kOccTermFlops);
      }

      block_staged[static_cast<std::size_t>(ctx.block_id())] = all_staged ? 1 : 0;
    });

    info.counters += stats.counters;
    info.modeled_seconds += stats.modeled_seconds;
    ++info.launches;
    for (const std::uint64_t found : block_found) {
      lookups += found;
    }
    for (const std::uint8_t staged : block_staged) {
      if (staged == 1) {
        ++info.shared_staged_blocks;
      } else if (staged == 0) {
        ++info.shared_spill_blocks;
      }
    }
  }
  metrics.executions.add();
  metrics.seconds.observe(exec_timer.stop());
  return lookups;
}

}  // namespace

ExecutionPlan ExecutionPlan::lower(std::span<const batch::Slot> slots,
                                   std::span<const std::uint64_t> yelt_offsets,
                                   TrialId trials, const EngineConfig& config) {
  RISKAN_REQUIRE(!slots.empty(), "execution plan needs at least one slot");
  ExecutionPlan plan;
  plan.slots = slots;
  plan.yelt_offsets = yelt_offsets;
  plan.trials = trials;
  plan.trial_base = config.trial_base;
  plan.secondary = config.secondary_uncertainty;

  validate_slots(slots, yelt_offsets, trials, plan.secondary);

  plan.groups = batch::group_slots(slots);
  for (const batch::Group& g : plan.groups) {
    plan.max_group_size = std::max<std::size_t>(plan.max_group_size, g.size);
    if (g.size > 1) {
      RISKAN_REQUIRE(slots[g.begin].gather == batch::Gather::Compact,
                     "shared-gather groups are compact-mode only");
    }
  }

  plan.group_source.reserve(plan.groups.size());
  for (const batch::Group& g : plan.groups) {
    const batch::Slot& lead = slots[g.begin];
    std::uint32_t src = 0;
    while (src < plan.sources.size() && !same_source(plan.sources[src], lead)) {
      ++src;
    }
    if (src == plan.sources.size()) {
      Source source;
      source.gather = lead.gather;
      source.elt = lead.elt;
      source.hit_offsets = lead.hit_offsets;
      source.seqs = lead.seqs;
      source.rows = lead.rows;
      source.dense_rows = lead.dense_rows;
      source.search_events = lead.search_events;
      plan.sources.push_back(source);
    }
    plan.group_source.push_back(src);
  }

  if (config.backend == Backend::DeviceSim) {
    plan_device_chunks(plan, config);
  }
  return plan;
}

void ExecutionPlan::rebind(std::span<const batch::Slot> new_slots,
                           std::span<const std::uint64_t> new_yelt_offsets,
                           TrialId new_trials, TrialId new_trial_base) {
  RISKAN_REQUIRE(new_slots.size() == slots.size(),
                 "rebind requires the lowered slot-list shape");
  validate_slots(new_slots, new_yelt_offsets, new_trials, secondary);

  const auto new_groups = batch::group_slots(new_slots);
  RISKAN_REQUIRE(new_groups.size() == groups.size(),
                 "rebind changed the gather-group structure");
  for (std::size_t g = 0; g < groups.size(); ++g) {
    RISKAN_REQUIRE(new_groups[g].begin == groups[g].begin &&
                       new_groups[g].size == groups[g].size,
                   "rebind changed the gather-group structure");
    const batch::Slot& lead = new_slots[groups[g].begin];
    Source& src = sources[group_source[g]];
    RISKAN_REQUIRE(src.gather == lead.gather && src.elt == lead.elt,
                   "rebind changed a gather source's mode or table");
    src.hit_offsets = lead.hit_offsets;
    src.seqs = lead.seqs;
    src.rows = lead.rows;
    src.dense_rows = lead.dense_rows;
    src.search_events = lead.search_events;
  }
  // Groups sharing a source must still share columns in the new block, or
  // the device's per-source staging would misattribute reads.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    RISKAN_REQUIRE(same_source(sources[group_source[g]], new_slots[groups[g].begin]),
                   "rebind broke gather-source sharing across groups");
  }

  slots = new_slots;
  yelt_offsets = new_yelt_offsets;
  trials = new_trials;
  trial_base = new_trial_base;
}

std::unique_ptr<Executor> make_executor(const EngineConfig& config) {
  switch (config.backend) {
    case Backend::Sequential:
      return std::make_unique<SequentialExecutor>();
    case Backend::Threaded:
      return std::make_unique<ThreadedExecutor>(config.pool, config.trial_grain);
    case Backend::DeviceSim:
      return std::make_unique<DeviceSimExecutor>(config);
    case Backend::Simd:
      return std::make_unique<SimdExecutor>(config, /*threaded=*/false);
    case Backend::ThreadedSimd:
      return std::make_unique<SimdExecutor>(config, /*threaded=*/true);
  }
  RISKAN_REQUIRE(false, "unknown backend");
  return nullptr;
}

}  // namespace riskan::core::exec
