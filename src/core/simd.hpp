// Runtime SIMD dispatch for the vectorized trial kernel.
//
// The scalar build is the portable default: the wide kernels
// (src/core/batch_simd*.cpp) are compiled only under the CMake option
// RISKAN_ENABLE_SIMD, which defines RISKAN_SIMD_AVX2 (x86-64) or
// RISKAN_SIMD_NEON (aarch64) for the library. At run time simd_dispatch()
// picks the widest compiled ISA the host actually supports — AVX2 via
// cpuid, NEON unconditionally on aarch64 — and hands back the kernel
// pointer the SimdExecutor runs.
//
// Environment override (documented with RISKAN_OBS / RISKAN_TRACE in
// docs/architecture.md):
//   RISKAN_SIMD=off|0   — disable dispatch; Backend::Simd is then rejected
//                         by validate_engine_config instead of silently
//                         running scalar.
//   RISKAN_SIMD=avx2    — require AVX2 (unavailable → rejected).
//   RISKAN_SIMD=neon    — require NEON (unavailable → rejected).
// The environment is re-read on every call so a process can flip the
// override between runs (tests do).
#pragma once

#include "core/batch_simd.hpp"

namespace riskan::core::exec {

enum class SimdIsa {
  None,
  Avx2,
  Neon,
};

/// The resolved dispatch decision: which ISA (if any) the vector kernels
/// will run on, its Money lane width, and the kernel entry point.
struct SimdDispatch {
  SimdIsa isa = SimdIsa::None;
  unsigned width = 0;  ///< Money lanes per vector; 0 = SIMD unavailable
  const char* name = "none";
  batch::SimdKernelFn kernel = nullptr;
  /// Whether any wide kernel was compiled into this build at all
  /// (RISKAN_ENABLE_SIMD); false means only the portable scalar kernel
  /// exists.
  bool compiled = false;
  /// Why width == 0, for validate_engine_config's rejection message.
  const char* reason = "";
};

/// Resolves the dispatch from the compiled kernels, the host CPU and the
/// RISKAN_SIMD override. Cheap (a getenv and, on x86, a cached cpuid);
/// called per executor construction and per config validation.
SimdDispatch simd_dispatch();

/// True when Backend::Simd / Backend::ThreadedSimd can run here.
inline bool simd_available() { return simd_dispatch().width > 0; }

}  // namespace riskan::core::exec
