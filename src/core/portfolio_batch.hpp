// The trial kernel of aggregate analysis — core::batch::process_trials —
// and the portfolio-batched front end over it.
//
// Since the executor refactor this file holds the repo's ONE stage-2 trial
// loop. Every entry point (per-contract run, batched run, scenario sweep,
// MapReduce map task, pricer run_layer) lowers to a list of Slots, is
// shaped into an exec::ExecutionPlan, and is dispatched onto this kernel by
// an exec::Executor (Sequential / Threaded / DeviceSim) — see
// src/core/exec.hpp for the plan/executor layer.
//
// A Slot is one consumer of the streamed pass — a (contract, layer), with
// one of three gather modes:
//   compact — hit-compacted CSR columns (data::CompactResolvedYelt): the
//             batched regime; the pass touches 8 bytes per *hit*.
//   dense   — the full pre-joined row column (data::ResolvedYelt): the
//             per-contract regime (`batch_contracts = false`); the pass
//             touches 4 bytes and branches per *occurrence*, which is the
//             legacy per-contract kernel's access pattern and what E10's
//             batched-vs-loop ratio measures.
//   search  — per-occurrence binary search of the contract's ELT: the
//             `use_resolver = false` reference path of the equivalence
//             tests and the E2b ablation.
// All three run through the same per-trial loop structure, so outputs are
// bit-identical across modes, backends and scheduling (tests enforce).
//
// The batched path pre-resolves every contract's ELT against the YELT
// (data::MultiResolution, hit-compacted through the ResolverCache) and
// flattens the book into compact slots; a single data-parallel pass over
// trial chunks then walks each trial once and feeds every slot — per-
// occurrence terms, annual terms, OEP scratch and reinstatement premium
// exactly as the per-contract lowering orders them.
//
// The runner additionally groups *multiple* analyses by YELT identity:
// books added over the same table are served by the same streamed pass,
// each landing in its own EngineResult.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "core/secondary.hpp"
#include "data/elt.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"
#include "parallel/parallel_for.hpp"

namespace riskan::core::batch {

/// Sentinel in a mask's adjusted-seq column: the occurrence is excluded.
inline constexpr std::uint32_t kMaskedOut = ~std::uint32_t{0};

/// How a slot reaches its ELT rows (see the file header).
enum class Gather : std::uint8_t {
  Compact,  ///< hit-compacted CSR columns (batched regime)
  Dense,    ///< full pre-joined row column (per-contract regime)
  Search,   ///< per-occurrence binary search (use_resolver=false reference)
};

/// One consumer of the streamed pass: a (contract, layer) with its gather
/// inputs, optional per-slot transforms, financial terms and output sinks.
///
/// The base batched engine uses inert transforms; the scenario engine
/// (src/scenario) rides the same kernel with one slot per
/// (scenario, contract, layer), each slot carrying its scenario's transform
/// parameters:
///   loss_scale            — multiplies the sampled/mean ground-up loss
///                           (demand-surge inflation); 1.0 is a no-op that
///                           costs one predicted branch.
///   mask_seq              — YELT-entry-aligned adjusted occurrence-sequence
///                           column (scenario::MaskColumn): kMaskedOut drops
///                           the occurrence, any other value is the sequence
///                           number the occurrence would have in a physically
///                           filtered YELT (the secondary-uncertainty stream
///                           key, which is what makes mask scenarios
///                           bit-identical to filtered tables).
///   conditioned_ground_up — when >= 0, an extra deterministic occurrence of
///                           this ground-up loss is injected at the start of
///                           every trial (post-event conditioning; the value
///                           arrives pre-scaled by intensity and loss_scale).
struct Slot {
  // Gather inputs — shared by every slot of a gather group. `gather`
  // selects the mode; the mode's columns must be set (they may be null
  // only when the YELT/hit span is empty). `elt` is always required (the
  // DeviceSim executor sizes constant-memory residency from it; search
  // mode probes it).
  Gather gather = Gather::Compact;
  const std::uint64_t* hit_offsets = nullptr;  // compact CSR index, by trial
  const std::uint32_t* seqs = nullptr;         // in-trial occurrence sequence
  const std::uint32_t* rows = nullptr;         // ELT rows, parallel to seqs
  /// Dense mode: full row column aligned with yelt.events()
  /// (data::ResolvedYelt::rows); entries are ELT rows or kNoLoss.
  const std::uint32_t* dense_rows = nullptr;
  /// Search mode: the YELT event column; each occurrence binary-searches
  /// `elt` in-kernel (the legacy `use_resolver = false` reference path).
  const EventId* search_events = nullptr;
  const data::EventLossTable* elt = nullptr;
  const Money* means = nullptr;
  const SecondarySampler* sampler = nullptr;  // null = use ELT means
  ContractId contract_id = 0;
  LayerId layer_id = 0;

  // Per-slot transform hooks; defaults are inert (the base batched path).
  double loss_scale = 1.0;
  const std::uint32_t* mask_seq = nullptr;
  Money conditioned_ground_up = -1.0;

  // Financial terms.
  finance::LayerTerms terms;
  finance::Reinstatements reinstatements;
  Money upfront_premium = 0.0;

  // Outputs. Spans/pointers belong to this slot's analysis (scenario).
  std::span<Money> contract_losses;     // empty when contract YLTs are off
  std::span<Money> portfolio_losses;
  std::span<Money> reinstatement_prem;
  Money* occurrence_accum = nullptr;    // per-occurrence OEP scratch; null = off
  Money* conditioned_accum = nullptr;   // per-trial injected-occurrence scratch
};

/// Contiguous run of slots sharing gather inputs and sampling identity
/// (contract, layer): the kernel computes each occurrence's ground-up loss
/// once per group and feeds it to every slot, which is where an S-scenario
/// sweep's sampling dedupe comes from.
struct Group {
  std::uint32_t begin = 0;
  std::uint32_t size = 0;
};

/// Splits `slots` into maximal shared-gather groups (consecutive slots with
/// identical hit columns, mean/sampler sources, contract and layer ids).
std::vector<Group> group_slots(std::span<const Slot> slots);

/// Processes trials [lo, hi) for every slot, group by group. Per trial and
/// group, each occurrence's ground-up loss is resolved once (sample or ELT
/// mean) and every slot of the group applies its own transforms and terms;
/// a masked slot whose adjusted sequence differs re-samples under the
/// filtered-table stream key. Accumulation order per output slot matches
/// the per-contract lowering (annual sums in occurrence order; shared
/// accumulators in slot order), which is what keeps inert-transform slots
/// bit-identical across lowerings. State is indexed by trial (or the
/// trial's occurrence range), so disjoint chunks never race.
/// `annual_scratch` needs one entry per slot of the largest group.
///
/// Returns the number of occurrences that resolved to an ELT row in dense
/// and search slots (the legacy lookup telemetry; compact slots report
/// hits via their resolution instead and contribute 0 here).
std::uint64_t process_trials(std::span<const Slot> slots, std::span<const Group> groups,
                             std::span<const std::uint64_t> yelt_offsets,
                             const Philox4x32& philox, bool secondary, TrialId trial_base,
                             TrialId lo, TrialId hi, std::span<Money> annual_scratch);

/// Per-trial OEP finalisation: oep[t] = max over the trial's occurrence
/// accumulator range, seeded by the conditioned per-trial slot when
/// `conditioned_accum` is non-empty (scenario conditioning injects one
/// extra occurrence per trial that has no slot in the occurrence range).
void finalize_oep(std::span<Money> oep, std::span<const Money> occurrence_accum,
                  std::span<const std::uint64_t> yelt_offsets,
                  std::span<const Money> conditioned_accum);

}  // namespace riskan::core::batch

namespace riskan::core {

/// Batched counterpart of run_aggregate_analysis: same inputs, same
/// bit-identical EngineResult, one streamed YELT pass for the whole
/// portfolio instead of one per (contract, layer). The resolver is
/// intrinsic to this path, so `config.use_resolver` is ignored.
EngineResult run_portfolio_batch(const finance::Portfolio& portfolio,
                                 const data::YearEventLossTable& yelt,
                                 const EngineConfig& config = {});

/// Batched run over any data::TrialSource: the out-of-core twin of the
/// in-memory overload (which wraps its table in a one-block source and
/// calls this). The plan is lowered against the first trial block and
/// re-bound per block — resolutions per block through the ResolverCache,
/// per-trial outputs sliced by block, the block's trial offset riding the
/// sampling stream base — so a streamed run is bit-identical to the
/// in-memory one on every backend.
EngineResult run_portfolio_batch(const finance::Portfolio& portfolio,
                                 data::TrialSource& source,
                                 const EngineConfig& config = {});

/// Multi-book front end: register any number of (portfolio, YELT) analyses,
/// then run them with one streamed pass per *distinct* YELT — contracts of
/// different books sharing a table ride the same scan.
class PortfolioBatchRunner {
 public:
  explicit PortfolioBatchRunner(EngineConfig config = {});

  /// Registers a book. Both referents must outlive run(). Returns the
  /// index of this analysis in run()'s result vector.
  std::size_t add(const finance::Portfolio& portfolio,
                  const data::YearEventLossTable& yelt);

  /// Runs every registered analysis; results are indexed as added. Each
  /// result is bit-identical to run_aggregate_analysis on that
  /// (portfolio, yelt) with the same config.
  std::vector<EngineResult> run() const;

  std::size_t analyses() const noexcept { return analyses_.size(); }
  /// Distinct YELTs among the registered analyses (= streamed passes run()
  /// will make).
  std::size_t group_count() const noexcept;

 private:
  struct Analysis {
    const finance::Portfolio* portfolio = nullptr;
    const data::YearEventLossTable* yelt = nullptr;
  };

  EngineConfig config_;
  std::vector<Analysis> analyses_;
};

}  // namespace riskan::core
