// Portfolio-batched aggregate analysis — one YELT pass serving every
// contract.
//
// The per-contract engine (aggregate_engine.cpp) re-streams the YELT's
// occurrence structure once per (contract, layer): a book of C contracts
// walks the same trial offsets and per-trial slices C times and pays C
// fork/join barriers. That is the remaining O(contracts) redundancy after
// PR 1 hoisted the per-occurrence lookups — the paper's "scan, don't seek"
// argument applied one level up: scan the shared table once, serve every
// consumer from the scan.
//
// The batched path inverts the loop nest. Up front it pre-resolves every
// contract's ELT against the YELT (data::MultiResolution, hit-compacted
// through the ResolverCache) and flattens the book into a slot list, one
// slot per (contract, layer). Then a single data-parallel pass over trial
// chunks walks each trial once and, per trial, feeds every slot from the
// contract's compacted hit columns — per-occurrence terms, annual terms,
// OEP scratch and reinstatement premium exactly as the per-contract kernel
// orders them, so every output is bit-identical (tests enforce).
//
// Backend behaviour:
//   Sequential — the whole pass runs inline on the caller's thread (never
//                touches a pool; MapReduce map tasks rely on this).
//   Threaded   — parallel_for over trial chunks; `trial_grain` is the same
//                chunking knob as the per-contract path.
//   DeviceSim  — falls back to the per-contract device engine (the device
//                kernel stages one layer at a time by design); outputs are
//                still bit-identical, only the batching win is absent.
//
// The runner additionally groups *multiple* analyses by YELT identity:
// books added over the same table are served by the same streamed pass,
// each landing in its own EngineResult.
#pragma once

#include <cstddef>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"

namespace riskan::core {

/// Batched counterpart of run_aggregate_analysis: same inputs, same
/// bit-identical EngineResult, one streamed YELT pass for the whole
/// portfolio instead of one per (contract, layer). The resolver is
/// intrinsic to this path, so `config.use_resolver` is ignored.
EngineResult run_portfolio_batch(const finance::Portfolio& portfolio,
                                 const data::YearEventLossTable& yelt,
                                 const EngineConfig& config = {});

/// Multi-book front end: register any number of (portfolio, YELT) analyses,
/// then run them with one streamed pass per *distinct* YELT — contracts of
/// different books sharing a table ride the same scan.
class PortfolioBatchRunner {
 public:
  explicit PortfolioBatchRunner(EngineConfig config = {});

  /// Registers a book. Both referents must outlive run(). Returns the
  /// index of this analysis in run()'s result vector.
  std::size_t add(const finance::Portfolio& portfolio,
                  const data::YearEventLossTable& yelt);

  /// Runs every registered analysis; results are indexed as added. Each
  /// result is bit-identical to run_aggregate_analysis on that
  /// (portfolio, yelt) with the same config.
  std::vector<EngineResult> run() const;

  std::size_t analyses() const noexcept { return analyses_.size(); }
  /// Distinct YELTs among the registered analyses (= streamed passes run()
  /// will make).
  std::size_t group_count() const noexcept;

 private:
  struct Analysis {
    const finance::Portfolio* portfolio = nullptr;
    const data::YearEventLossTable* yelt = nullptr;
  };

  EngineConfig config_;
  std::vector<Analysis> analyses_;
};

}  // namespace riskan::core
