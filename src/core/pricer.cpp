#include "core/pricer.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/stats.hpp"

namespace riskan::core {

RealTimePricer::RealTimePricer(const data::YearEventLossTable& yelt, EngineConfig config,
                               finance::PricingTerms pricing)
    : yelt_(yelt), config_(config), pricing_(pricing) {}

PricingQuote RealTimePricer::price(const finance::Contract& contract,
                                   const finance::Layer& layer) const {
  obs::Timer watch("pricer.quote");
  const auto losses = run_layer(contract, layer, yelt_, config_);
  PricingQuote quote;
  quote.seconds = watch.stop();
  quote.trials = yelt_.trials();
  quote.loss_stats = finance::summarise_losses(losses);
  quote.technical_premium = finance::technical_premium(quote.loss_stats, pricing_);
  quote.rate_on_line = finance::rate_on_line(quote.technical_premium, layer.terms.occ_limit);

  std::vector<double> sorted(losses.begin(), losses.end());
  std::sort(sorted.begin(), sorted.end());
  quote.pml_250 = quantile_sorted(sorted, 1.0 - 1.0 / 250.0);
  return quote;
}

}  // namespace riskan::core
