#include "core/pricer.hpp"

#include <algorithm>

#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace riskan::core {

RealTimePricer::RealTimePricer(const data::YearEventLossTable& yelt, EngineConfig config,
                               finance::PricingTerms pricing)
    : yelt_(yelt), config_(config), pricing_(pricing) {}

PricingQuote RealTimePricer::price(const finance::Contract& contract,
                                   const finance::Layer& layer) const {
  Stopwatch watch;
  const auto losses = run_layer(contract, layer, yelt_, config_);
  PricingQuote quote;
  quote.seconds = watch.seconds();
  quote.trials = yelt_.trials();
  quote.loss_stats = finance::summarise_losses(losses);
  quote.technical_premium = finance::technical_premium(quote.loss_stats, pricing_);
  quote.rate_on_line = finance::rate_on_line(quote.technical_premium, layer.terms.occ_limit);

  std::vector<double> sorted(losses.begin(), losses.end());
  std::sort(sorted.begin(), sorted.end());
  quote.pml_250 = quantile_sorted(sorted, 1.0 - 1.0 / 250.0);
  return quote;
}

}  // namespace riskan::core
