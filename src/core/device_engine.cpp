#include "core/device_engine.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "core/secondary.hpp"
#include "finance/terms.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace riskan::core {

namespace {

/// Packed ELT row as uploaded to simulated constant memory: the event id,
/// the mean (for secondary-off runs), and the secondary-uncertainty
/// parameters.
struct DeviceEltRow {
  EventId event_id;
  Money mean_loss;
  SecondarySampler::Param param;
};

/// Binary search over the chunk's rows (sorted by event id).
inline std::size_t chunk_find(const DeviceEltRow* rows, std::size_t n, EventId event) noexcept {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (rows[mid].event_id < event) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n && rows[lo].event_id == event) {
    return lo;
  }
  return static_cast<std::size_t>(-1);
}

// Approximate FLOP cost of one beta draw (two Marsaglia-Tsang gammas plus
// transforms); feeds the performance model only.
constexpr std::uint64_t kBetaFlops = 220;
constexpr std::uint64_t kOccTermFlops = 4;

}  // namespace

EngineResult run_aggregate_device(const finance::Portfolio& portfolio,
                                  const data::YearEventLossTable& yelt,
                                  const EngineConfig& config, DeviceSpec spec,
                                  DeviceRunInfo* info) {
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(yelt.trials() > 0, "YELT must contain trials");
  RISKAN_REQUIRE(config.device_block_dim > 0, "device block dim must be positive");

  Stopwatch watch;
  Device device(spec, config.pool);

  const TrialId trials = yelt.trials();
  const int block_dim = config.device_block_dim;
  const int grid_dim = static_cast<int>((trials + block_dim - 1) / block_dim);

  EngineResult result;
  result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
  result.reinstatement_premium = data::YearLossTable(trials, "reinstatement-premium");
  if (config.keep_contract_ylts) {
    result.contract_ylts.reserve(portfolio.size());
    for (const auto& contract : portfolio.contracts()) {
      result.contract_ylts.emplace_back(trials,
                                        "contract-" + std::to_string(contract.id()));
    }
  }

  // Global-memory buffers of the simulated device.
  std::vector<Money> layer_scratch(yelt.entries(), 0.0);
  std::vector<Money> occurrence_accum;
  if (config.compute_oep) {
    occurrence_accum.assign(yelt.entries(), 0.0);
  }

  DeviceRunInfo run_info;
  const Philox4x32 philox(config.seed);
  std::uint64_t lookups = 0;
  data::ResolverCache& cache =
      config.resolver_cache ? *config.resolver_cache : data::ResolverCache::shared();

  const auto offsets = yelt.offsets();
  const auto events = yelt.events();

  for (std::size_t c = 0; c < portfolio.size(); ++c) {
    const auto& contract = portfolio.contract(c);
    const auto& elt = contract.elt();
    std::optional<SecondarySampler> sampler;
    if (config.secondary_uncertainty) {
      sampler.emplace(elt);
    }

    // Host-side pre-join, shared across the contract's layers and cached
    // across runs. On the modelled device the row column is one more
    // streamed global-memory input replacing the per-occurrence
    // constant-memory binary search.
    std::shared_ptr<const data::ResolvedYelt> resolved;
    const std::uint32_t* resolved_rows = nullptr;
    if (config.use_resolver) {
      Stopwatch resolve_watch;
      resolved = cache.get_or_build(elt, yelt, ParallelConfig{config.pool, 0});
      result.resolve_seconds += resolve_watch.seconds();
      resolved_rows = resolved->rows().data();
    }

    // Pack ELT rows for constant-memory upload.
    std::vector<DeviceEltRow> packed(elt.size());
    for (std::size_t i = 0; i < elt.size(); ++i) {
      packed[i].event_id = elt.event_ids()[i];
      packed[i].mean_loss = elt.mean_loss()[i];
      if (sampler) {
        packed[i].param = sampler->param(i);
      }
    }

    std::size_t chunk_rows = config.device_elt_chunk_rows;
    if (chunk_rows == 0) {
      chunk_rows = std::max<std::size_t>(
          1, (device.const_capacity() - 64) / sizeof(DeviceEltRow));
    }

    for (const auto& layer : contract.layers()) {
      const auto terms = layer.terms;
      const bool secondary = config.secondary_uncertainty;
      const ContractId contract_id = contract.id();
      const LayerId layer_id = layer.id;

      std::fill(layer_scratch.begin(), layer_scratch.end(), 0.0);

      // ---- Phase 1: per-occurrence losses, one launch per ELT chunk.
      std::size_t chunk_count = 0;
      for (std::size_t chunk_lo = 0; chunk_lo < packed.size(); chunk_lo += chunk_rows) {
        const std::size_t rows = std::min(chunk_rows, packed.size() - chunk_lo);
        ++chunk_count;
        device.const_clear();
        const std::size_t const_off =
            device.const_upload(packed.data() + chunk_lo, rows * sizeof(DeviceEltRow));
        const auto* chunk =
            reinterpret_cast<const DeviceEltRow*>(device.const_data(const_off));
        const std::uint64_t probe_bytes =
            16 * (64 - static_cast<std::uint64_t>(__builtin_clzll(rows | 1)));

        auto stats = device.launch_blocks(grid_dim, block_dim, [&](BlockContext& ctx) {
          const auto first_trial =
              static_cast<TrialId>(static_cast<std::uint64_t>(ctx.block_id()) * block_dim);
          const auto last_trial =
              std::min<TrialId>(trials, first_trial + static_cast<TrialId>(block_dim));
          if (first_trial >= last_trial) {
            return;
          }
          const std::uint64_t slice_lo = offsets[first_trial];
          const std::uint64_t slice_hi = offsets[last_trial];
          const std::size_t slice_len = static_cast<std::size_t>(slice_hi - slice_lo);

          // Stage the block's per-occurrence column into shared memory when
          // it fits; otherwise fall back to global reads. With the resolver
          // on, the column is the pre-joined row indices (the kernel never
          // touches event ids); off, it is the event-id column the chunk
          // binary search consumes. Both are 4 bytes per occurrence, so the
          // staging economics are identical.
          const std::uint32_t* global_column =
              resolved_rows != nullptr ? resolved_rows : events.data();
          const std::uint32_t* slice_column = nullptr;
          const bool staged = slice_len * sizeof(std::uint32_t) <= ctx.shared_capacity();
          if (staged && slice_len > 0) {
            std::uint32_t* shared_column = ctx.shared_alloc<std::uint32_t>(slice_len);
            std::memcpy(shared_column, global_column + slice_lo,
                        slice_len * sizeof(std::uint32_t));
            ctx.meter_global_read(slice_len * sizeof(std::uint32_t));
            ctx.meter_shared_write(slice_len * sizeof(std::uint32_t));
            slice_column = shared_column;
          }

          std::uint64_t local_lookups = 0;
          for (TrialId t = first_trial; t < last_trial; ++t) {
            const std::uint64_t begin = offsets[t];
            const std::uint64_t end = offsets[t + 1];
            for (std::uint64_t i = begin; i < end; ++i) {
              std::uint32_t cell;
              if (slice_column != nullptr) {
                cell = slice_column[i - slice_lo];
                ctx.meter_shared_read(sizeof(std::uint32_t));
              } else {
                cell = global_column[i];
                ctx.meter_global_read(sizeof(std::uint32_t));
              }
              std::size_t row;
              if (resolved_rows != nullptr) {
                // Direct membership test against this constant-memory
                // chunk's global row range — no search.
                row = (cell != data::ResolvedYelt::kNoLoss && cell >= chunk_lo &&
                       cell < chunk_lo + rows)
                          ? static_cast<std::size_t>(cell) - chunk_lo
                          : static_cast<std::size_t>(-1);
                if (row != static_cast<std::size_t>(-1)) {
                  ctx.meter_const_read(sizeof(DeviceEltRow));
                }
              } else {
                ctx.meter_const_read(probe_bytes);
                row = chunk_find(chunk, rows, cell);
              }
              if (row == static_cast<std::size_t>(-1)) {
                continue;
              }
              ++local_lookups;
              Money ground_up;
              if (secondary) {
                auto stream = occurrence_stream(philox, contract_id, layer_id,
                                                config.trial_base + t,
                                                static_cast<std::uint32_t>(i - begin));
                SecondarySampler::Param p = chunk[row].param;
                if (p.degenerate) {
                  ground_up = p.exposure * p.mean_ratio;
                } else {
                  ground_up = p.exposure * sample_beta(stream, p.alpha, p.beta);
                }
                ctx.meter_flops(kBetaFlops);
              } else {
                ground_up = chunk[row].mean_loss;
              }
              const Money occ = finance::apply_occurrence(terms, ground_up);
              ctx.meter_flops(kOccTermFlops);
              if (occ != 0.0) {
                layer_scratch[i] += occ;
                ctx.meter_global_write(sizeof(Money));
              }
            }
          }
          ctx.meter_flops(local_lookups);  // loop bookkeeping, negligible
        });

        run_info.counters += stats.counters;
        run_info.modeled_seconds += stats.modeled_seconds;
        ++run_info.launches;
      }
      run_info.elt_chunks += chunk_count;

      // Count staged/spilled blocks once per layer for the report.
      for (int b = 0; b < grid_dim; ++b) {
        const auto first_trial =
            static_cast<TrialId>(static_cast<std::uint64_t>(b) * block_dim);
        const auto last_trial =
            std::min<TrialId>(trials, first_trial + static_cast<TrialId>(block_dim));
        if (first_trial >= last_trial) {
          continue;
        }
        const auto len = offsets[last_trial] - offsets[first_trial];
        if (len * sizeof(EventId) <= spec.shared_mem_per_block) {
          ++run_info.shared_staged_blocks;
        } else {
          ++run_info.shared_spill_blocks;
        }
      }

      // ---- Phase 2: per-trial reduction + annual terms.
      auto portfolio_losses = result.portfolio_ylt.mutable_losses();
      auto reinst = result.reinstatement_premium.mutable_losses();
      auto contract_losses = config.keep_contract_ylts
                                 ? result.contract_ylts[c].mutable_losses()
                                 : std::span<Money>{};
      const auto reinstatements = layer.reinstatements;
      const Money upfront = layer.upfront_premium;
      std::vector<std::uint64_t> block_lookups(static_cast<std::size_t>(grid_dim), 0);

      auto stats = device.launch_blocks(grid_dim, block_dim, [&](BlockContext& ctx) {
        const auto first_trial =
            static_cast<TrialId>(static_cast<std::uint64_t>(ctx.block_id()) * block_dim);
        const auto last_trial =
            std::min<TrialId>(trials, first_trial + static_cast<TrialId>(block_dim));
        std::uint64_t found = 0;
        for (TrialId t = first_trial; t < last_trial; ++t) {
          Money annual = 0.0;
          for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
            const Money occ = layer_scratch[i];
            ctx.meter_global_read(sizeof(Money));
            annual += occ;
            if (occ != 0.0) {
              ++found;
              if (!occurrence_accum.empty()) {
                occurrence_accum[i] += occ * terms.share;
                ctx.meter_global_write(sizeof(Money));
              }
            }
          }
          const Money consumed = finance::apply_aggregate(terms, annual);
          const Money net = consumed * terms.share;
          ctx.meter_flops(6);
          if (net > 0.0) {
            if (!contract_losses.empty()) {
              contract_losses[t] += net;
            }
            portfolio_losses[t] += net;
            reinst[t] += reinstatements.premium_due(consumed, terms.occ_limit, upfront);
            ctx.meter_global_write(3 * sizeof(Money));
          }
        }
        block_lookups[static_cast<std::size_t>(ctx.block_id())] = found;
      });
      run_info.counters += stats.counters;
      run_info.modeled_seconds += stats.modeled_seconds;
      ++run_info.launches;
      for (const auto found : block_lookups) {
        lookups += found;
      }
    }
  }

  if (config.compute_oep) {
    result.portfolio_occurrence_ylt = data::YearLossTable(trials, "portfolio-oep");
    auto oep = result.portfolio_occurrence_ylt.mutable_losses();
    for (TrialId t = 0; t < trials; ++t) {
      Money worst = 0.0;
      for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
        worst = std::max(worst, occurrence_accum[i]);
      }
      oep[t] = worst;
    }
  }

  result.seconds = watch.seconds();
  result.occurrences_processed =
      yelt.entries() * static_cast<std::uint64_t>(portfolio.layer_count());
  result.elt_lookups = lookups;

  run_info.host_seconds = result.seconds;
  if (info != nullptr) {
    *info = run_info;
  }
  return result;
}

}  // namespace riskan::core
