// NEON stamp of the vectorized trial kernel: 2 Money lanes per float64x2_t.
// aarch64 has no hardware gather, so the gather primitives assemble lanes
// with scalar loads — the per-lane term algebra and the occurrence-order
// reduction contract are identical to the AVX2 stamp.
#ifdef RISKAN_SIMD_NEON

#include <arm_neon.h>

#include "core/batch_simd_impl.hpp"

namespace riskan::core::batch {

namespace {

struct NeonOps {
  static constexpr std::size_t kWidth = 2;
  using Vec = float64x2_t;

  static Vec broadcast(Money x) noexcept { return vdupq_n_f64(x); }
  static Vec load(const Money* p) noexcept { return vld1q_f64(p); }
  static void store(Money* p, Vec v) noexcept { vst1q_f64(p, v); }
  static Vec mul(Vec a, Vec b) noexcept { return vmulq_f64(a, b); }
  static Vec sub(Vec a, Vec b) noexcept { return vsubq_f64(a, b); }
  static Vec min(Vec a, Vec b) noexcept {
    // vminq_f64 is IEEE minNum; bitwise-match the x86/scalar pick instead:
    // a < b ? a : b (equal positives share a bit pattern, so the tie leg
    // cannot diverge).
    return vbslq_f64(vcltq_f64(a, b), a, b);
  }
  static Vec gt_mask(Vec a, Vec b) noexcept {
    return vreinterpretq_f64_u64(vcgtq_f64(a, b));
  }
  static Vec mask_and(Vec v, Vec m) noexcept {
    return vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(v), vreinterpretq_u64_f64(m)));
  }

  static Vec gather(const Money* base, const std::uint32_t* idx) noexcept {
    Vec v = vdupq_n_f64(0.0);
    v = vsetq_lane_f64(base[idx[0]], v, 0);
    v = vsetq_lane_f64(base[idx[1]], v, 1);
    return v;
  }

  struct MaskedGather {
    Vec values;
    unsigned found;
  };
  static MaskedGather gather_masked(const Money* base, const std::uint32_t* rows) noexcept {
    constexpr std::uint32_t kNoLoss = ~std::uint32_t{0};
    Vec v = vdupq_n_f64(0.0);
    unsigned found = 0;
    if (rows[0] != kNoLoss) {
      v = vsetq_lane_f64(base[rows[0]], v, 0);
      ++found;
    }
    if (rows[1] != kNoLoss) {
      v = vsetq_lane_f64(base[rows[1]], v, 1);
      ++found;
    }
    return MaskedGather{v, found};
  }
};

}  // namespace

std::uint64_t process_trials_simd_neon(std::span<const Slot> slots,
                                       std::span<const Group> groups,
                                       std::span<const std::uint64_t> yelt_offsets,
                                       const Philox4x32& philox, bool secondary,
                                       TrialId trial_base, TrialId lo, TrialId hi,
                                       std::span<Money> annual_scratch, SimdStats& stats) {
  return impl::process_trials_simd<NeonOps>(slots, groups, yelt_offsets, philox, secondary,
                                            trial_base, lo, hi, annual_scratch, stats);
}

void apply_occurrence_lanes_neon(const finance::LayerTerms& terms, const Money* ground_up,
                                 std::size_t n, Money* occ) {
  impl::apply_occurrence_lanes_impl<NeonOps>(terms, ground_up, n, occ);
}

Money max_range_lanes_neon(const Money* values, std::size_t n, Money init) {
  // Safe to reorder bitwise for finalize_oep's input class (non-NaN,
  // >= +0.0): equal non-negative doubles share one bit pattern, so the
  // tie leg of vmaxq cannot diverge from std::max's.
  std::size_t k = 0;
  float64x2_t m = vdupq_n_f64(init);
  for (; k + 2 <= n; k += 2) {
    m = vmaxq_f64(m, vld1q_f64(values + k));
  }
  Money best = std::max(vgetq_lane_f64(m, 0), vgetq_lane_f64(m, 1));
  for (; k < n; ++k) {
    best = std::max(best, values[k]);
  }
  return best;
}

}  // namespace riskan::core::batch

#endif  // RISKAN_SIMD_NEON
