// Bootstrap confidence intervals for tail metrics.
//
// A 50k-trial YLT pins the mean tightly but leaves real sampling noise in
// PML(250) and TVaR99 — exactly the metrics the paper says flow to
// regulators. The paper's remedy is more trials ("the more simulation
// trials you can run the better you can manage your aggregate risk"); the
// honest companion is to quantify how unsettled a metric still is at a
// given trial count. Nonparametric bootstrap: resample the YLT with
// replacement B times, recompute the metric, report percentile intervals.
// Resampling is counter-based (Philox keyed by replicate x draw), so CIs
// are reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "data/ylt.hpp"
#include "util/types.hpp"

namespace riskan::core {

struct BootstrapConfig {
  std::uint32_t replicates = 200;
  double confidence = 0.90;  ///< central interval mass
  std::uint64_t seed = 808;
};

struct ConfidenceInterval {
  Money point = 0.0;  ///< metric on the original sample
  Money lo = 0.0;
  Money hi = 0.0;
  double confidence = 0.0;

  Money width() const noexcept { return hi - lo; }
  bool contains(Money x) const noexcept { return lo <= x && x <= hi; }
};

/// Metric signature: sorted-ascending losses -> value.
using SortedMetric = std::function<Money(std::span<const Money>)>;

/// Bootstrap CI for an arbitrary metric of the YLT's loss distribution.
ConfidenceInterval bootstrap_ci(const data::YearLossTable& ylt, const SortedMetric& metric,
                                const BootstrapConfig& config = {});

/// Conveniences for the reporting staples.
ConfidenceInterval bootstrap_var(const data::YearLossTable& ylt, double p,
                                 const BootstrapConfig& config = {});
ConfidenceInterval bootstrap_tvar(const data::YearLossTable& ylt, double p,
                                  const BootstrapConfig& config = {});
ConfidenceInterval bootstrap_pml(const data::YearLossTable& ylt, double return_period_years,
                                 const BootstrapConfig& config = {});

}  // namespace riskan::core
