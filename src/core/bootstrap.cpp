#include "core/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::core {

ConfidenceInterval bootstrap_ci(const data::YearLossTable& ylt, const SortedMetric& metric,
                                const BootstrapConfig& config) {
  RISKAN_REQUIRE(!ylt.empty(), "bootstrap of an empty YLT");
  RISKAN_REQUIRE(config.replicates >= 10, "need at least 10 bootstrap replicates");
  RISKAN_REQUIRE(config.confidence > 0.0 && config.confidence < 1.0,
                 "confidence must lie in (0,1)");

  const auto losses = ylt.losses();
  const std::size_t n = losses.size();

  std::vector<Money> sorted(losses.begin(), losses.end());
  std::sort(sorted.begin(), sorted.end());

  ConfidenceInterval ci;
  ci.point = metric(sorted);
  ci.confidence = config.confidence;

  const Philox4x32 philox(config.seed);
  std::vector<Money> replicate(n);
  std::vector<Money> estimates;
  estimates.reserve(config.replicates);

  for (std::uint32_t b = 0; b < config.replicates; ++b) {
    PhiloxStream stream(philox, 0xB007ull, b);
    for (std::size_t i = 0; i < n; ++i) {
      replicate[i] = losses[sample_index(stream, n)];
    }
    std::sort(replicate.begin(), replicate.end());
    estimates.push_back(metric(replicate));
  }

  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - config.confidence) / 2.0;
  ci.lo = quantile_sorted(estimates, alpha);
  ci.hi = quantile_sorted(estimates, 1.0 - alpha);
  return ci;
}

ConfidenceInterval bootstrap_var(const data::YearLossTable& ylt, double p,
                                 const BootstrapConfig& config) {
  return bootstrap_ci(
      ylt, [p](std::span<const Money> sorted) { return quantile_sorted(sorted, p); },
      config);
}

ConfidenceInterval bootstrap_tvar(const data::YearLossTable& ylt, double p,
                                  const BootstrapConfig& config) {
  return bootstrap_ci(
      ylt, [p](std::span<const Money> sorted) { return tail_mean_above(sorted, p); },
      config);
}

ConfidenceInterval bootstrap_pml(const data::YearLossTable& ylt, double return_period_years,
                                 const BootstrapConfig& config) {
  RISKAN_REQUIRE(return_period_years > 1.0, "PML needs a return period above 1 year");
  const double p = 1.0 - 1.0 / return_period_years;
  return bootstrap_var(ylt, p, config);
}

}  // namespace riskan::core
