// Portfolio risk metrics — what stage 2/3 report to "actuaries and decision
// makers ... internal risk management and reporting to regulators and
// rating agencies".
//
// From a YLT the paper derives "important portfolio risk metrics such as
// the Probable Maximum Loss (PML) [8] and the Tail Value at Risk (TVAR)
// [9]". We implement:
//   * VaR(p)            — the p-quantile of annual loss;
//   * TVaR(p)           — mean loss beyond VaR(p);
//   * PML(return period)— quantile at p = 1 - 1/rp, the industry's
//                         "1-in-250-year loss";
//   * exceedance-probability curves (AEP from the aggregate YLT, OEP from
//                         the occurrence YLT).
// Coherence properties (TVaR >= VaR, monotonicity in p, positive
// homogeneity) are covered by property tests.
#pragma once

#include <span>
#include <vector>

#include "data/ylt.hpp"
#include "util/types.hpp"

namespace riskan::core {

/// Value at Risk: the p-quantile of the trial-loss sample (type-7
/// interpolation).
Money value_at_risk(const data::YearLossTable& ylt, double p);

/// Tail Value at Risk: mean of losses strictly beyond VaR(p); equals VaR(p)
/// when the tail is empty.
Money tail_value_at_risk(const data::YearLossTable& ylt, double p);

/// Probable Maximum Loss at a return period in years: PML(rp) =
/// VaR(1 - 1/rp). PML(250) is the regulatory staple.
Money probable_maximum_loss(const data::YearLossTable& ylt, double return_period_years);

/// One point of an exceedance-probability curve.
struct EpPoint {
  double return_period_years;
  double exceedance_probability;
  Money loss;
};

/// Exceedance-probability curve at the given return periods (sorted
/// ascending). Pass the aggregate YLT for AEP, the occurrence YLT for OEP.
std::vector<EpPoint> exceedance_curve(const data::YearLossTable& ylt,
                                      std::span<const double> return_periods);

/// The standard reporting grid: 2, 5, 10, 25, 50, 100, 250, 500, 1000 years.
std::vector<double> standard_return_periods();

/// Full metric bundle computed in one sort of the YLT.
struct RiskSummary {
  Money mean_annual_loss = 0.0;
  Money stdev_annual_loss = 0.0;
  Money var_95 = 0.0;
  Money var_99 = 0.0;
  Money var_99_6 = 0.0;  ///< 1-in-250
  Money tvar_99 = 0.0;
  Money pml_100 = 0.0;
  Money pml_250 = 0.0;
  Money max_loss = 0.0;
};

RiskSummary summarise(const data::YearLossTable& ylt);

}  // namespace riskan::core
