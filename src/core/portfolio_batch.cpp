#include "core/portfolio_batch.hpp"

#include <algorithm>
#include <limits>

#include "core/secondary.hpp"
#include "data/resolved_yelt.hpp"
#include "finance/terms.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace riskan::core {

namespace {

/// One (contract, layer) of the flattened batch, with everything the
/// trial-chunk kernel gathers from or accumulates into. Slots are ordered
/// (analysis, contract, layer) — the exact accumulation order of the
/// per-contract engine, which is what makes the outputs bit-identical.
struct Slot {
  const std::uint64_t* hit_offsets = nullptr;  // compact CSR index, by trial
  const std::uint32_t* seqs = nullptr;         // in-trial occurrence sequence
  const std::uint32_t* rows = nullptr;         // ELT rows, parallel to seqs
  const Money* means = nullptr;
  const SecondarySampler* sampler = nullptr;  // null = use ELT means
  finance::LayerTerms terms;
  finance::Reinstatements reinstatements;
  Money upfront_premium = 0.0;
  ContractId contract_id = 0;
  LayerId layer_id = 0;
  std::span<Money> contract_losses;     // empty when keep_contract_ylts off
  std::span<Money> portfolio_losses;    // this slot's analysis
  std::span<Money> reinstatement_prem;  // this slot's analysis
  Money* occurrence_accum = nullptr;    // this slot's analysis; null = OEP off
};

/// Processes trials [lo, hi) for every slot: per trial, each slot walks its
/// compacted hits in occurrence order, so per-slot annual sums, the shared
/// per-trial accumulators and the per-occurrence OEP scratch see additions
/// in the same order as the per-contract kernel. State is indexed by trial
/// (or the trial's occurrence range), so disjoint chunks never race.
void process_batch_trials(std::span<const Slot> slots,
                          std::span<const std::uint64_t> yelt_offsets,
                          const Philox4x32& philox, bool secondary, TrialId trial_base,
                          TrialId lo, TrialId hi) {
  for (TrialId t = lo; t < hi; ++t) {
    const std::uint64_t trial_begin = yelt_offsets[t];
    for (const Slot& slot : slots) {
      Money annual = 0.0;
      const std::uint64_t k_end = slot.hit_offsets[t + 1];
      for (std::uint64_t k = slot.hit_offsets[t]; k < k_end; ++k) {
        const std::uint32_t seq = slot.seqs[k];
        const std::uint32_t row = slot.rows[k];
        Money ground_up;
        if (secondary) {
          auto stream = occurrence_stream(philox, slot.contract_id, slot.layer_id,
                                          trial_base + t, seq);
          ground_up = slot.sampler->sample(row, stream);
        } else {
          ground_up = slot.means[row];
        }
        const Money occ = finance::apply_occurrence(slot.terms, ground_up);
        annual += occ;
        if (slot.occurrence_accum != nullptr && occ > 0.0) {
          slot.occurrence_accum[trial_begin + seq] += occ * slot.terms.share;
        }
      }
      const Money consumed = finance::apply_aggregate(slot.terms, annual);
      const Money net = consumed * slot.terms.share;
      if (net > 0.0) {
        if (!slot.contract_losses.empty()) {
          slot.contract_losses[t] += net;
        }
        slot.portfolio_losses[t] += net;
        slot.reinstatement_prem[t] += slot.reinstatements.premium_due(
            consumed, slot.terms.occ_limit, slot.upfront_premium);
      }
    }
  }
}

/// Per-analysis mutable state while its group runs.
struct AnalysisRun {
  const finance::Portfolio* portfolio = nullptr;
  std::size_t result_index = 0;
  data::MultiResolution resolution;  // one entry per contract
  std::vector<SecondarySampler> samplers;
  std::vector<Money> occurrence_accum;  // entries-sized; empty when OEP off
  EngineResult result;
};

/// Runs one YELT group: a single streamed pass over `yelt` serving every
/// slot of every analysis in the group.
void run_group(std::span<AnalysisRun> group, const data::YearEventLossTable& yelt,
               const EngineConfig& config) {
  Stopwatch watch;
  const TrialId trials = yelt.trials();
  const bool sequential = config.backend == Backend::Sequential;
  // Sequential must stay off the pool (single-thread contract; MapReduce
  // map tasks run it from pool workers, where blocking can deadlock).
  const ParallelConfig par_cfg =
      sequential ? ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()}
                 : ParallelConfig{config.pool, config.trial_grain};

  data::ResolverCache& cache =
      config.resolver_cache ? *config.resolver_cache : data::ResolverCache::shared();

  std::vector<Slot> slots;
  for (AnalysisRun& run : group) {
    const finance::Portfolio& portfolio = *run.portfolio;

    run.result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
    run.result.reinstatement_premium =
        data::YearLossTable(trials, "reinstatement-premium");
    if (config.keep_contract_ylts) {
      run.result.contract_ylts.reserve(portfolio.size());
      for (const auto& contract : portfolio.contracts()) {
        run.result.contract_ylts.emplace_back(trials,
                                              "contract-" + std::to_string(contract.id()));
      }
    }
    if (config.compute_oep) {
      run.occurrence_accum.assign(yelt.entries(), 0.0);
    }

    // Up-front resolution of every contract's ELT, shared through the
    // cache, then hit-compacted for the gather kernel.
    Stopwatch resolve_watch;
    std::vector<const data::EventLossTable*> elts;
    elts.reserve(portfolio.size());
    for (const auto& contract : portfolio.contracts()) {
      elts.push_back(&contract.elt());
    }
    run.resolution = data::MultiResolution::build(elts, yelt, &cache, par_cfg);
    run.result.resolve_seconds = resolve_watch.seconds();

    if (config.secondary_uncertainty) {
      run.samplers.reserve(portfolio.size());
      for (const auto& contract : portfolio.contracts()) {
        run.samplers.emplace_back(contract.elt());
      }
    }
  }

  // Flatten to slots only after every analysis's buffers are sized — spans
  // into them must not be invalidated by later growth.
  for (AnalysisRun& run : group) {
    const finance::Portfolio& portfolio = *run.portfolio;
    for (std::size_t c = 0; c < portfolio.size(); ++c) {
      const auto& contract = portfolio.contract(c);
      const auto& entry = run.resolution.entry(c);
      run.result.elt_lookups +=
          entry.compact->hits() * static_cast<std::uint64_t>(contract.layers().size());
      for (const auto& layer : contract.layers()) {
        Slot slot;
        slot.hit_offsets = entry.compact->trial_offsets().data();
        slot.seqs = entry.compact->seqs().data();
        slot.rows = entry.compact->rows().data();
        slot.means = contract.elt().mean_loss().data();
        slot.sampler = config.secondary_uncertainty ? &run.samplers[c] : nullptr;
        slot.terms = layer.terms;
        slot.reinstatements = layer.reinstatements;
        slot.upfront_premium = layer.upfront_premium;
        slot.contract_id = contract.id();
        slot.layer_id = layer.id;
        slot.contract_losses = config.keep_contract_ylts
                                   ? run.result.contract_ylts[c].mutable_losses()
                                   : std::span<Money>{};
        slot.portfolio_losses = run.result.portfolio_ylt.mutable_losses();
        slot.reinstatement_prem = run.result.reinstatement_premium.mutable_losses();
        slot.occurrence_accum =
            config.compute_oep ? run.occurrence_accum.data() : nullptr;
        slots.push_back(slot);
      }
    }
  }

  // The one streamed pass: every trial chunk is walked once, serving every
  // slot of every analysis in the group.
  const Philox4x32 philox(config.seed);
  const auto yelt_offsets = yelt.offsets();
  const bool secondary = config.secondary_uncertainty;
  const std::span<const Slot> slot_view = slots;
  parallel_for(
      0, trials,
      [&](std::size_t lo, std::size_t hi) {
        process_batch_trials(slot_view, yelt_offsets, philox, secondary,
                             config.trial_base, static_cast<TrialId>(lo),
                             static_cast<TrialId>(hi));
      },
      par_cfg);

  for (AnalysisRun& run : group) {
    if (config.compute_oep) {
      run.result.portfolio_occurrence_ylt = data::YearLossTable(trials, "portfolio-oep");
      auto oep = run.result.portfolio_occurrence_ylt.mutable_losses();
      for (TrialId t = 0; t < trials; ++t) {
        Money worst = 0.0;
        for (std::uint64_t i = yelt_offsets[t]; i < yelt_offsets[t + 1]; ++i) {
          worst = std::max(worst, run.occurrence_accum[i]);
        }
        oep[t] = worst;
      }
    }
    run.result.occurrences_processed =
        yelt.entries() * static_cast<std::uint64_t>(run.portfolio->layer_count());
  }

  // The pass is shared, so each analysis reports the group's wall-clock —
  // the time it actually took to produce its result.
  const double seconds = watch.seconds();
  for (AnalysisRun& run : group) {
    run.result.seconds = seconds;
  }
}

}  // namespace

PortfolioBatchRunner::PortfolioBatchRunner(EngineConfig config) : config_(config) {}

std::size_t PortfolioBatchRunner::add(const finance::Portfolio& portfolio,
                                      const data::YearEventLossTable& yelt) {
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(yelt.trials() > 0, "YELT must contain trials");
  analyses_.push_back(Analysis{&portfolio, &yelt});
  return analyses_.size() - 1;
}

std::size_t PortfolioBatchRunner::group_count() const noexcept {
  std::vector<const data::YearEventLossTable*> seen;
  for (const Analysis& a : analyses_) {
    if (std::find(seen.begin(), seen.end(), a.yelt) == seen.end()) {
      seen.push_back(a.yelt);
    }
  }
  return seen.size();
}

std::vector<EngineResult> PortfolioBatchRunner::run() const {
  std::vector<EngineResult> results(analyses_.size());

  if (config_.backend == Backend::DeviceSim) {
    // The device kernel stages one layer at a time by design; batching
    // degenerates to the per-contract device path (bit-identical outputs,
    // no batching win). See the backend matrix in docs/architecture.md.
    EngineConfig per_contract = config_;
    per_contract.batch_contracts = false;
    for (std::size_t i = 0; i < analyses_.size(); ++i) {
      results[i] = run_aggregate_analysis(*analyses_[i].portfolio, *analyses_[i].yelt,
                                          per_contract);
    }
    return results;
  }

  // Group analyses by YELT identity (in-run pointer identity — referents
  // are pinned by add()'s lifetime contract) so books sharing a table share
  // its streamed pass.
  std::vector<const data::YearEventLossTable*> group_yelts;
  std::vector<std::vector<AnalysisRun>> groups;
  for (std::size_t i = 0; i < analyses_.size(); ++i) {
    const Analysis& a = analyses_[i];
    std::size_t g = 0;
    while (g < group_yelts.size() && group_yelts[g] != a.yelt) {
      ++g;
    }
    if (g == group_yelts.size()) {
      group_yelts.push_back(a.yelt);
      groups.emplace_back();
    }
    AnalysisRun run;
    run.portfolio = a.portfolio;
    run.result_index = i;
    groups[g].push_back(std::move(run));
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    run_group(groups[g], *group_yelts[g], config_);
    for (AnalysisRun& run : groups[g]) {
      results[run.result_index] = std::move(run.result);
    }
  }
  return results;
}

EngineResult run_portfolio_batch(const finance::Portfolio& portfolio,
                                 const data::YearEventLossTable& yelt,
                                 const EngineConfig& config) {
  PortfolioBatchRunner runner(config);
  runner.add(portfolio, yelt);
  auto results = runner.run();
  return std::move(results.front());
}

}  // namespace riskan::core
