#include "core/portfolio_batch.hpp"

#include <algorithm>
#include <limits>

#include "core/adaptive/driver.hpp"
#include "core/batch_simd.hpp"
#include "core/exec.hpp"
#include "core/secondary.hpp"
#include "core/simd.hpp"
#include "data/resolved_yelt.hpp"
#include "data/trial_source.hpp"
#include "finance/terms.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"

namespace riskan::core::batch {

namespace {

bool same_gather(const Slot& a, const Slot& b) noexcept {
  return a.gather == b.gather && a.hit_offsets == b.hit_offsets && a.seqs == b.seqs &&
         a.rows == b.rows && a.dense_rows == b.dense_rows &&
         a.search_events == b.search_events && a.elt == b.elt && a.means == b.means &&
         a.sampler == b.sampler && a.contract_id == b.contract_id &&
         a.layer_id == b.layer_id;
}

/// The conditioned occurrence of one (slot, trial), if any: applied before
/// the trial's own occurrences. Returns its contribution to the annual sum.
inline Money conditioned_annual(const Slot& s, TrialId t) {
  if (s.conditioned_ground_up < 0.0) {
    return 0.0;
  }
  const Money occ = finance::apply_occurrence(s.terms, s.conditioned_ground_up);
  if (s.conditioned_accum != nullptr && occ > 0.0) {
    s.conditioned_accum[t] += occ * s.terms.share;
  }
  return occ;
}

/// Annual terms + output accumulation of one (slot, trial).
inline void finish_slot_trial(const Slot& s, TrialId t, Money annual) {
  const Money consumed = finance::apply_aggregate(s.terms, annual);
  const Money net = consumed * s.terms.share;
  if (net > 0.0) {
    if (!s.contract_losses.empty()) {
      s.contract_losses[t] += net;
    }
    s.portfolio_losses[t] += net;
    s.reinstatement_prem[t] +=
        s.reinstatements.premium_due(consumed, s.terms.occ_limit, s.upfront_premium);
  }
}

inline bool inert_transforms(const Slot& s) noexcept {
  return s.mask_seq == nullptr && s.loss_scale == 1.0 && s.conditioned_ground_up < 0.0;
}

/// Singleton-group fast path: the base batched engine's regime (every slot
/// its own gather group). Keeps the annual sum in a register — the grouped
/// kernel's scratch-array accumulation costs a per-occurrence memory RMW
/// that shows up at streaming rates — and compiles the transform hooks out
/// entirely for inert slots (kTransforms = false), so the base path keeps
/// the pre-scenario kernel's instruction stream.
template <bool kTransforms>
inline void process_singleton_trial(const Slot& s, const Philox4x32& philox,
                                    bool secondary, TrialId trial_base, TrialId t,
                                    std::uint64_t trial_begin) {
  Money annual = kTransforms ? conditioned_annual(s, t) : 0.0;
  const std::uint64_t k_end = s.hit_offsets[t + 1];
  for (std::uint64_t k = s.hit_offsets[t]; k < k_end; ++k) {
    const std::uint32_t seq = s.seqs[k];
    const std::uint32_t row = s.rows[k];
    std::uint32_t eff_seq = seq;
    if constexpr (kTransforms) {
      if (s.mask_seq != nullptr) {
        const std::uint32_t adjusted = s.mask_seq[trial_begin + seq];
        if (adjusted == kMaskedOut) {
          continue;
        }
        eff_seq = adjusted;
      }
    }
    Money ground_up;
    if (secondary) {
      auto stream =
          occurrence_stream(philox, s.contract_id, s.layer_id, trial_base + t, eff_seq);
      ground_up = s.sampler->sample(row, stream);
    } else {
      ground_up = s.means[row];
    }
    if constexpr (kTransforms) {
      if (s.loss_scale != 1.0) {
        ground_up *= s.loss_scale;
      }
    }
    const Money occ = finance::apply_occurrence(s.terms, ground_up);
    annual += occ;
    if (s.occurrence_accum != nullptr && occ > 0.0) {
      s.occurrence_accum[trial_begin + seq] += occ * s.terms.share;
    }
  }
  finish_slot_trial(s, t, annual);
}

/// Dense/search singleton: one trial of a slot that walks the *full*
/// occurrence range [trial_begin, trial_end) — `row_of(i)` maps the global
/// occurrence index to an ELT row or npos. This is the legacy per-contract
/// kernel's loop body (same sampling keys, same accumulation order), kept
/// as a gather mode of the one trial kernel. Transforms are inert on these
/// slots by plan contract. Returns the found-lookup count.
template <typename RowOf>
inline std::uint64_t process_full_range_trial(const Slot& s, const Philox4x32& philox,
                                              bool secondary, TrialId trial_base, TrialId t,
                                              std::uint64_t trial_begin,
                                              std::uint64_t trial_end, const RowOf& row_of) {
  Money annual = 0.0;
  std::uint64_t found = 0;
  for (std::uint64_t i = trial_begin; i < trial_end; ++i) {
    const std::size_t row = row_of(i);
    if (row == data::EventLossTable::npos) {
      continue;
    }
    ++found;
    Money ground_up;
    if (secondary) {
      auto stream = occurrence_stream(philox, s.contract_id, s.layer_id, trial_base + t,
                                      static_cast<std::uint32_t>(i - trial_begin));
      ground_up = s.sampler->sample(row, stream);
    } else {
      ground_up = s.means[row];
    }
    const Money occ = finance::apply_occurrence(s.terms, ground_up);
    annual += occ;
    if (s.occurrence_accum != nullptr && occ > 0.0) {
      s.occurrence_accum[i] += occ * s.terms.share;
    }
  }
  finish_slot_trial(s, t, annual);
  return found;
}

inline std::uint64_t process_noncompact_trial(const Slot& s, const Philox4x32& philox,
                                              bool secondary, TrialId trial_base, TrialId t,
                                              std::uint64_t trial_begin,
                                              std::uint64_t trial_end) {
  if (s.gather == Gather::Dense) {
    const std::uint32_t* dense = s.dense_rows;
    return process_full_range_trial(
        s, philox, secondary, trial_base, t, trial_begin, trial_end,
        [dense](std::uint64_t i) {
          const std::uint32_t row = dense[i];
          return row == data::ResolvedYelt::kNoLoss ? data::EventLossTable::npos
                                                    : static_cast<std::size_t>(row);
        });
  }
  const data::EventLossTable* elt = s.elt;
  const EventId* events = s.search_events;
  return process_full_range_trial(
      s, philox, secondary, trial_base, t, trial_begin, trial_end,
      [elt, events](std::uint64_t i) { return elt->find(events[i]); });
}

inline bool compact_gather(const Slot& s) noexcept { return s.gather == Gather::Compact; }

}  // namespace

std::vector<Group> group_slots(std::span<const Slot> slots) {
  std::vector<Group> groups;
  std::size_t i = 0;
  while (i < slots.size()) {
    std::size_t j = i + 1;
    while (j < slots.size() && same_gather(slots[i], slots[j])) {
      ++j;
    }
    groups.push_back(Group{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  return groups;
}

std::uint64_t process_trials(std::span<const Slot> slots, std::span<const Group> groups,
                             std::span<const std::uint64_t> yelt_offsets,
                             const Philox4x32& philox, bool secondary, TrialId trial_base,
                             TrialId lo, TrialId hi, std::span<Money> annual_scratch) {
  std::uint64_t noncompact_found = 0;

  // The base batched engine flattens to all-inert singleton groups; that
  // regime takes a dedicated loop whose body is exactly the pre-scenario
  // kernel (slots iterated directly, no group machinery, transform hooks
  // compiled out), so growing the scenario hooks costs the base path
  // nothing. Checked once per chunk.
  bool all_inert_singletons = slots.size() == groups.size();
  if (all_inert_singletons) {
    for (const Slot& s : slots) {
      if (!inert_transforms(s)) {
        all_inert_singletons = false;
        break;
      }
    }
  }
  if (all_inert_singletons) {
    for (TrialId t = lo; t < hi; ++t) {
      const std::uint64_t trial_begin = yelt_offsets[t];
      for (const Slot& s : slots) {
        if (compact_gather(s)) {
          process_singleton_trial<false>(s, philox, secondary, trial_base, t, trial_begin);
        } else {
          noncompact_found += process_noncompact_trial(s, philox, secondary, trial_base,
                                                       t, trial_begin, yelt_offsets[t + 1]);
        }
      }
    }
    return noncompact_found;
  }

  for (TrialId t = lo; t < hi; ++t) {
    const std::uint64_t trial_begin = yelt_offsets[t];
    for (const Group& group : groups) {
      const Slot* gs = slots.data() + group.begin;
      const std::size_t gsize = group.size;
      if (gsize == 1) {
        if (!compact_gather(gs[0])) {
          noncompact_found += process_noncompact_trial(gs[0], philox, secondary, trial_base,
                                                       t, trial_begin, yelt_offsets[t + 1]);
        } else if (inert_transforms(gs[0])) {
          process_singleton_trial<false>(gs[0], philox, secondary, trial_base, t,
                                         trial_begin);
        } else {
          process_singleton_trial<true>(gs[0], philox, secondary, trial_base, t,
                                        trial_begin);
        }
        continue;
      }
      const Slot& lead = gs[0];

      // Conditioned occurrences come first: the event has already happened
      // when the trial year's own occurrences play out.
      for (std::size_t i = 0; i < gsize; ++i) {
        annual_scratch[i] = conditioned_annual(gs[i], t);
      }

      const std::uint64_t k_end = lead.hit_offsets[t + 1];
      for (std::uint64_t k = lead.hit_offsets[t]; k < k_end; ++k) {
        const std::uint32_t seq = lead.seqs[k];
        const std::uint32_t row = lead.rows[k];
        // The occurrence's ground-up loss is identical for every unmasked
        // slot of the group (the stream is keyed by contract/layer/trial/
        // seq, none of which a transform changes), so it is resolved once.
        // Masked slots with a shifted sequence sample under the key the
        // occurrence has in the physically filtered table; that sample too
        // depends only on eff_seq within the group, so scenarios sharing a
        // (deduped) mask column share it through a one-entry cache.
        Money shared_gu = 0.0;
        bool shared_ready = false;
        std::uint32_t shifted_seq = kMaskedOut;
        Money shifted_gu = 0.0;
        for (std::size_t i = 0; i < gsize; ++i) {
          const Slot& s = gs[i];
          std::uint32_t eff_seq = seq;
          if (s.mask_seq != nullptr) {
            const std::uint32_t adjusted = s.mask_seq[trial_begin + seq];
            if (adjusted == kMaskedOut) {
              continue;
            }
            eff_seq = adjusted;
          }
          Money ground_up;
          if (secondary) {
            if (eff_seq == seq) {
              if (!shared_ready) {
                auto stream = occurrence_stream(philox, s.contract_id, s.layer_id,
                                                trial_base + t, seq);
                shared_gu = s.sampler->sample(row, stream);
                shared_ready = true;
              }
              ground_up = shared_gu;
            } else {
              if (eff_seq != shifted_seq) {
                auto stream = occurrence_stream(philox, s.contract_id, s.layer_id,
                                                trial_base + t, eff_seq);
                shifted_gu = s.sampler->sample(row, stream);
                shifted_seq = eff_seq;
              }
              ground_up = shifted_gu;
            }
          } else {
            ground_up = s.means[row];
          }
          if (s.loss_scale != 1.0) {
            ground_up *= s.loss_scale;
          }
          const Money occ = finance::apply_occurrence(s.terms, ground_up);
          annual_scratch[i] += occ;
          if (s.occurrence_accum != nullptr && occ > 0.0) {
            s.occurrence_accum[trial_begin + seq] += occ * s.terms.share;
          }
        }
      }

      for (std::size_t i = 0; i < gsize; ++i) {
        finish_slot_trial(gs[i], t, annual_scratch[i]);
      }
    }
  }
  return noncompact_found;
}

void finalize_oep(std::span<Money> oep, std::span<const Money> occurrence_accum,
                  std::span<const std::uint64_t> yelt_offsets,
                  std::span<const Money> conditioned_accum) {
  // Per-trial max over the accumulator range, lane-parallel where a wide
  // ISA dispatches. Reordering the max is bitwise safe for this input:
  // every accumulator cell is a sum of non-negative contributions seeded
  // with 0.0 (no NaN, no -0.0), and equal non-negative doubles share one
  // bit pattern, so any reduction order picks the same bits. The dispatch
  // is resolved once per call, not per trial.
  const exec::SimdDispatch dispatch = exec::simd_dispatch();
  using MaxFn = Money (*)(const Money*, std::size_t, Money);
  MaxFn max_fn = nullptr;
  switch (dispatch.isa) {
#if defined(RISKAN_SIMD_AVX2)
    case exec::SimdIsa::Avx2:
      max_fn = max_range_lanes_avx2;
      break;
#endif
#if defined(RISKAN_SIMD_NEON)
    case exec::SimdIsa::Neon:
      max_fn = max_range_lanes_neon;
      break;
#endif
    default:
      break;
  }
  for (TrialId t = 0; t < static_cast<TrialId>(oep.size()); ++t) {
    Money worst = conditioned_accum.empty() ? 0.0 : std::max(0.0, conditioned_accum[t]);
    const std::uint64_t begin = yelt_offsets[t];
    const std::uint64_t end = yelt_offsets[t + 1];
    if (max_fn != nullptr) {
      worst = max_fn(occurrence_accum.data() + begin,
                     static_cast<std::size_t>(end - begin), worst);
    } else {
      for (std::uint64_t i = begin; i < end; ++i) {
        worst = std::max(worst, occurrence_accum[i]);
      }
    }
    oep[t] = worst;
  }
}

namespace detail {

// Out-of-line exports of the kernel's scalar helpers for the per-ISA SIMD
// TUs (core/batch_simd*.cpp): sampling and the trial finish stay compiled
// with the portable baseline flags, so a wide TU links them instead of
// re-instantiating PRNG/beta templates under its own ISA.

Money conditioned_annual_slot(const Slot& s, TrialId t) { return conditioned_annual(s, t); }

void finish_slot_trials_out(const Slot& s, TrialId t0, TrialId t1, const Money* annuals) {
  for (TrialId t = t0; t < t1; ++t) {
    finish_slot_trial(s, t, annuals[t - t0]);
  }
}

namespace {

/// Stream-key scratch batch for the batched fills (16 KiB of stack).
constexpr std::size_t kFillBatch = 1024;

inline std::uint64_t slot_hi_key(const Slot& s) noexcept {
  return (static_cast<std::uint64_t>(s.contract_id) << 16) |
         static_cast<std::uint64_t>(s.layer_id);
}

inline std::uint64_t stream_lo_key(TrialId trial, std::uint32_t seq) noexcept {
  return (static_cast<std::uint64_t>(trial) << 20) | static_cast<std::uint64_t>(seq);
}

}  // namespace

void fill_ground_up_compact_range(const Slot& s, const Philox4x32& philox,
                                  TrialId trial_base, TrialId t_first,
                                  std::uint64_t k_begin, std::uint64_t k_end, Money* out,
                                  SimdStats& stats) {
  // Build each occurrence's stream-lo key (trial << 20 | seq — the exact
  // occurrence_stream key) in batches, then hand the whole batch to the
  // lane-parallel sampler. hi is constant per slot.
  const std::uint64_t hi = slot_hi_key(s);
  std::uint64_t lo[kFillBatch];
  TrialId t = t_first;
  for (std::uint64_t b = k_begin; b < k_end; b += kFillBatch) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kFillBatch, k_end - b));
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = b + i;
      while (k >= s.hit_offsets[t + 1]) {
        ++t;
      }
      lo[i] = stream_lo_key(trial_base + t, s.seqs[k]);
    }
    s.sampler->sample_lanes(philox, hi, s.rows + b, lo, n, out + (b - k_begin),
                            stats.sampler_fast, stats.sampler_tail);
  }
}

std::uint64_t fill_ground_up_dense_range(const Slot& s, const Philox4x32& philox,
                                         TrialId trial_base, TrialId t_first,
                                         std::span<const std::uint64_t> yelt_offsets,
                                         std::uint64_t i_begin, std::uint64_t i_end,
                                         Money* out, SimdStats& stats) {
  // Dense rows carry kNoLoss sentinels: compact the live occurrences into
  // a batch (rows + stream keys + output positions), sample lane-parallel,
  // scatter back. Sentinel cells get exact +0.0 so the vector pass can add
  // them where the scalar kernel skips (annual sums of non-negatives).
  const std::uint64_t hi = slot_hi_key(s);
  std::uint32_t rows[kFillBatch];
  std::uint64_t lo[kFillBatch];
  std::uint32_t pos[kFillBatch];
  Money buf[kFillBatch];
  std::uint64_t found = 0;
  TrialId t = t_first;
  for (std::uint64_t b = i_begin; b < i_end; b += kFillBatch) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kFillBatch, i_end - b));
    std::size_t live = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t i = b + j;
      while (i >= yelt_offsets[t + 1]) {
        ++t;
      }
      const std::uint32_t row = s.dense_rows[i];
      if (row == data::ResolvedYelt::kNoLoss) {
        out[i - i_begin] = 0.0;
        continue;
      }
      rows[live] = row;
      lo[live] = stream_lo_key(trial_base + t,
                               static_cast<std::uint32_t>(i - yelt_offsets[t]));
      pos[live] = static_cast<std::uint32_t>(i - i_begin);
      ++live;
    }
    found += live;
    s.sampler->sample_lanes(philox, hi, rows, lo, live, buf, stats.sampler_fast,
                            stats.sampler_tail);
    for (std::size_t j = 0; j < live; ++j) {
      out[pos[j]] = buf[j];
    }
  }
  return found;
}

}  // namespace detail

}  // namespace riskan::core::batch

namespace riskan::core {

namespace {

/// Per-analysis mutable state while its group runs.
struct AnalysisRun {
  const finance::Portfolio* portfolio = nullptr;
  std::size_t result_index = 0;
  data::MultiResolution resolution;  // one entry per contract
  std::vector<SecondarySampler> samplers;
  std::vector<Money> occurrence_accum;  // entries-sized; empty when OEP off
  EngineResult result;
};

/// Runs one YELT group over a trial source: per block, a single streamed
/// pass serves every slot of every analysis in the group. The plan is
/// lowered on the first block and re-bound to each subsequent one; an
/// in-memory run is the one-block special case.
void run_group(std::span<AnalysisRun> group, data::TrialSource& source,
               const EngineConfig& config) {
  obs::Timer timer("batch.run_group");
  static const obs::Counter group_runs =
      obs::MetricsRegistry::global().counter("batch.group_runs");
  static const obs::Histogram resolve_hist =
      obs::MetricsRegistry::global().histogram("batch.resolve_seconds");
  group_runs.add();
  const TrialId trials = source.trials();
  // Pool-free backends must stay off the pool end to end (single-thread
  // contract; MapReduce map tasks run them from pool workers, where
  // blocking can deadlock).
  const ParallelConfig par_cfg =
      pool_free(config.backend)
          ? ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()}
          : ParallelConfig{config.pool, config.trial_grain};

  data::ResolverCache local_cache;
  data::ResolverCache& cache = resolver_cache_for(config, source, local_cache);

  // Output buffers are sized for the whole source up front; samplers are
  // pure functions of each contract's ELT, so both are block-invariant.
  for (AnalysisRun& run : group) {
    const finance::Portfolio& portfolio = *run.portfolio;

    run.result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
    run.result.reinstatement_premium =
        data::YearLossTable(trials, "reinstatement-premium");
    if (config.keep_contract_ylts) {
      run.result.contract_ylts.reserve(portfolio.size());
      for (const auto& contract : portfolio.contracts()) {
        run.result.contract_ylts.emplace_back(trials,
                                              "contract-" + std::to_string(contract.id()));
      }
    }
    if (config.compute_oep) {
      run.result.portfolio_occurrence_ylt = data::YearLossTable(trials, "portfolio-oep");
    }

    if (config.secondary_uncertainty) {
      run.samplers.reserve(portfolio.size());
      for (const auto& contract : portfolio.contracts()) {
        run.samplers.emplace_back(contract.elt());
      }
    }
  }

  const Philox4x32 philox(config.seed);
  const auto executor = exec::make_executor(config);
  exec::ExecutionPlan plan;
  bool lowered = false;
  std::vector<batch::Slot> slots;

  for_each_trial_block(source, config, local_cache,
                       [&](const data::TrialBlock& block, TrialId base) {
    const data::YearEventLossTable& yelt = *block.yelt;
    const TrialId block_trials = yelt.trials();
    const auto yelt_offsets = yelt.offsets();

    // Per-block resolution of every contract's ELT, shared through the
    // cache, then hit-compacted for the gather kernel.
    for (AnalysisRun& run : group) {
      const finance::Portfolio& portfolio = *run.portfolio;
      obs::Timer resolve_timer("batch.resolve");
      std::vector<const data::EventLossTable*> elts;
      elts.reserve(portfolio.size());
      for (const auto& contract : portfolio.contracts()) {
        elts.push_back(&contract.elt());
      }
      run.resolution = data::MultiResolution::build(elts, yelt, &cache, par_cfg);
      const double resolve_s = resolve_timer.stop();
      run.result.resolve_seconds += resolve_s;
      resolve_hist.observe(resolve_s);
      if (config.compute_oep) {
        run.occurrence_accum.assign(yelt.entries(), 0.0);
      }
    }

    // Flatten to slots (buffers were sized above, so the spans taken here
    // stay valid). The slot order — analyses, contracts, layers — is the
    // same every block, which is what lets the plan re-bind structurally.
    slots.clear();
    for (AnalysisRun& run : group) {
      const finance::Portfolio& portfolio = *run.portfolio;
      for (std::size_t c = 0; c < portfolio.size(); ++c) {
        const auto& contract = portfolio.contract(c);
        const auto& entry = run.resolution.entry(c);
        run.result.elt_lookups +=
            entry.compact->hits() * static_cast<std::uint64_t>(contract.layers().size());
        for (const auto& layer : contract.layers()) {
          batch::Slot slot;
          slot.hit_offsets = entry.compact->trial_offsets().data();
          slot.seqs = entry.compact->seqs().data();
          slot.rows = entry.compact->rows().data();
          slot.elt = &contract.elt();
          slot.means = contract.elt().mean_loss().data();
          slot.sampler = config.secondary_uncertainty ? &run.samplers[c] : nullptr;
          slot.terms = layer.terms;
          slot.reinstatements = layer.reinstatements;
          slot.upfront_premium = layer.upfront_premium;
          slot.contract_id = contract.id();
          slot.layer_id = layer.id;
          slot.contract_losses =
              config.keep_contract_ylts
                  ? run.result.contract_ylts[c].mutable_losses().subspan(
                        block.trial_offset, block_trials)
                  : std::span<Money>{};
          slot.portfolio_losses = run.result.portfolio_ylt.mutable_losses().subspan(
              block.trial_offset, block_trials);
          slot.reinstatement_prem =
              run.result.reinstatement_premium.mutable_losses().subspan(
                  block.trial_offset, block_trials);
          slot.occurrence_accum =
              config.compute_oep ? run.occurrence_accum.data() : nullptr;
          slots.push_back(slot);
        }
      }
    }

    // The one streamed pass: every trial chunk is walked once, serving
    // every slot of every analysis in the group. Base slots are one
    // (contract, layer) each, so every gather group is a singleton here;
    // the scenario engine is the multi-slot-group consumer of the same
    // kernel. The plan / executor layer (src/core/exec.hpp) owns the
    // partitioning — Sequential runs inline, Threaded chunks trials on the
    // pool, DeviceSim launches simulated blocks with plan-decided
    // constant-memory residency (one launch sequence per trial block).
    if (!lowered) {
      EngineConfig lower_config = config;
      lower_config.trial_base = base;
      plan = exec::ExecutionPlan::lower(slots, yelt_offsets, block_trials, lower_config);
      lowered = true;
    } else {
      plan.rebind(slots, yelt_offsets, block_trials, base);
    }
    (void)executor->execute(plan, philox);

    for (AnalysisRun& run : group) {
      if (config.compute_oep) {
        batch::finalize_oep(run.result.portfolio_occurrence_ylt.mutable_losses().subspan(
                                block.trial_offset, block_trials),
                            run.occurrence_accum, yelt_offsets, {});
      }
      run.result.occurrences_processed +=
          yelt.entries() * static_cast<std::uint64_t>(run.portfolio->layer_count());
    }
  });

  // The pass is shared, so each analysis reports the group's wall-clock —
  // the time it actually took to produce its result.
  const double seconds = timer.stop();
  for (AnalysisRun& run : group) {
    run.result.seconds = seconds;
  }
  // Accumulated (not assigned) and under DeviceSim only: a multi-YELT
  // runner calls run_group once per group and the other DeviceRunInfo
  // fields accumulate too, so the host/modeled scopes stay matched.
  if (config.backend == Backend::DeviceSim && config.device_info != nullptr) {
    config.device_info->host_seconds += seconds;
  }
}

}  // namespace

PortfolioBatchRunner::PortfolioBatchRunner(EngineConfig config) : config_(config) {
  validate_engine_config(config_);
}

std::size_t PortfolioBatchRunner::add(const finance::Portfolio& portfolio,
                                      const data::YearEventLossTable& yelt) {
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(yelt.trials() > 0, "YELT must contain trials");
  analyses_.push_back(Analysis{&portfolio, &yelt});
  return analyses_.size() - 1;
}

std::size_t PortfolioBatchRunner::group_count() const noexcept {
  std::vector<const data::YearEventLossTable*> seen;
  for (const Analysis& a : analyses_) {
    if (std::find(seen.begin(), seen.end(), a.yelt) == seen.end()) {
      seen.push_back(a.yelt);
    }
  }
  return seen.size();
}

std::vector<EngineResult> PortfolioBatchRunner::run() const {
  // One observation window for the whole batch; the shared report is
  // attached to every result (the pass is shared, so is its telemetry).
  obs::RunObsScope obs_scope(config_.obs);
  std::vector<EngineResult> results(analyses_.size());

  // Group analyses by YELT identity (in-run pointer identity — referents
  // are pinned by add()'s lifetime contract) so books sharing a table share
  // its streamed pass.
  std::vector<const data::YearEventLossTable*> group_yelts;
  std::vector<std::vector<AnalysisRun>> groups;
  for (std::size_t i = 0; i < analyses_.size(); ++i) {
    const Analysis& a = analyses_[i];
    std::size_t g = 0;
    while (g < group_yelts.size() && group_yelts[g] != a.yelt) {
      ++g;
    }
    if (g == group_yelts.size()) {
      group_yelts.push_back(a.yelt);
      groups.emplace_back();
    }
    AnalysisRun run;
    run.portfolio = a.portfolio;
    run.result_index = i;
    groups[g].push_back(std::move(run));
  }

  // The groups must not re-observe inside this window: run_group takes the
  // config as-is, so clear obs on the copy handed down.
  EngineConfig inner = config_;
  inner.obs = {};
  for (std::size_t g = 0; g < groups.size(); ++g) {
    data::InMemorySource source(*group_yelts[g]);
    run_group(groups[g], source, inner);
    for (AnalysisRun& run : groups[g]) {
      results[run.result_index] = std::move(run.result);
    }
  }
  const auto report = obs_scope.finish();
  for (EngineResult& result : results) {
    result.obs_report = report;
  }
  return results;
}

EngineResult run_portfolio_batch(const finance::Portfolio& portfolio,
                                 const data::YearEventLossTable& yelt,
                                 const EngineConfig& config) {
  PortfolioBatchRunner runner(config);
  runner.add(portfolio, yelt);
  auto results = runner.run();
  return std::move(results.front());
}

EngineResult run_portfolio_batch(const finance::Portfolio& portfolio,
                                 data::TrialSource& source, const EngineConfig& config) {
  validate_engine_config(config);
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(source.trials() > 0, "trial source must contain trials");
  if (config.adaptive.enabled()) {
    // The adaptive driver re-enters run_aggregate_analysis per decision
    // block; forcing batch_contracts keeps each block on this batched
    // lowering (outputs are bit-identical either way).
    EngineConfig batched = config;
    batched.batch_contracts = true;
    return adaptive::run_adaptive_aggregate(portfolio, source, batched);
  }
  obs::RunObsScope obs_scope(config.obs);
  AnalysisRun run;
  run.portfolio = &portfolio;
  EngineConfig inner = config;
  inner.obs = {};
  run_group({&run, 1}, source, inner);
  run.result.obs_report = obs_scope.finish();
  return std::move(run.result);
}

}  // namespace riskan::core
