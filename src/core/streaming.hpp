// Streaming aggregate analysis — stage 2 with bounded memory.
//
// The paper's approach (i) accumulates "large quantities of physical
// memory to support in-memory analytics on large but not enormous datasets
// (less than 1TB)". When the YELT is enormous — a 50M-trial view does not
// fit a node — the same engine can stream it: the YELT lives on disk as a
// chunked file of trial blocks; each block is decoded, analysed with
// trial_base set so counter-based sampling lines up, and discarded. Memory
// high-water = one block + the YLT (one Money per trial), and the output
// is bit-identical to the in-memory run (tested).
#pragma once

#include <cstdint>
#include <string>

#include "core/aggregate_engine.hpp"
#include "data/yelt.hpp"

namespace riskan::core {

struct StreamingResult {
  data::YearLossTable portfolio_ylt;
  double seconds = 0.0;
  std::uint64_t bytes_read = 0;
  std::size_t blocks = 0;
  /// Peak bytes held for YELT data at any point (largest single block).
  std::size_t peak_block_bytes = 0;
};

/// Writes `yelt` as a chunked file of `trials_per_chunk`-trial blocks —
/// the on-disk layout run_aggregate_streaming consumes. Returns chunks
/// written.
std::size_t save_yelt_chunked(const data::YearEventLossTable& yelt, const std::string& path,
                              TrialId trials_per_chunk);

/// Streams aggregate analysis over a chunked YELT file. `config.backend`
/// applies within each block (Sequential/Threaded); per-contract YLTs and
/// the OEP view are not produced in streaming mode (the occurrence scratch
/// would defeat the bounded-memory point).
StreamingResult run_aggregate_streaming(const finance::Portfolio& portfolio,
                                        const std::string& chunked_yelt_path,
                                        const EngineConfig& config = {});

}  // namespace riskan::core
