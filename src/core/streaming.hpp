// Streaming aggregate analysis — stage 2 with bounded memory.
//
// The paper's approach (i) accumulates "large quantities of physical
// memory to support in-memory analytics on large but not enormous datasets
// (less than 1TB)". When the YELT is enormous — a 50M-trial view does not
// fit a node — the same engine streams it: the YELT lives on disk as a
// chunked file of trial blocks (data::ChunkedFileSource), and the run rides
// the exact execution machinery of the in-memory engine — the plan is
// lowered once and re-bound per block — while a background prefetch
// pipeline reads and decodes block c+1 as block c computes. Memory
// high-water = the pipeline's decoded blocks plus the output YLTs, and the
// output is bit-identical to the in-memory run (tested) with every engine
// feature available: all backends (Sequential/Threaded/DeviceSim),
// `batch_contracts`, per-contract YLTs, OEP and reinstatement premium.
// Scenario sweeps stream the same way via scenario::run_scenario_sweep's
// TrialSource overload.
#pragma once

#include <cstdint>
#include <string>

#include "core/aggregate_engine.hpp"
#include "data/yelt.hpp"

namespace riskan::core {

struct StreamingResult : EngineResult {
  std::uint64_t bytes_read = 0;
  std::size_t blocks = 0;
  /// Largest single encoded block read (bounded-memory accounting).
  std::size_t peak_block_bytes = 0;
  /// Time the compute side stalled waiting on the prefetch pipeline (~0
  /// when read+decode fully hides behind the trial kernel).
  double prefetch_wait_seconds = 0.0;
};

/// Writes `yelt` as a chunked file of `trials_per_chunk`-trial blocks —
/// the on-disk layout run_aggregate_streaming consumes. Trial blocks are
/// encoded by slicing the table's column spans directly (no per-trial
/// rebuild), and each chunk carries a CRC-32 verified on read. Returns
/// chunks written.
std::size_t save_yelt_chunked(const data::YearEventLossTable& yelt, const std::string& path,
                              TrialId trials_per_chunk);

/// Streams aggregate analysis over a chunked YELT file: a thin entry point
/// that opens a data::ChunkedFileSource (prefetch on) and lowers through
/// core::exec like every other run. `config` is honoured in full — all
/// backends, batching, per-contract YLTs and OEP included — and the YLTs
/// are bit-identical to run_aggregate_analysis over the in-memory table.
StreamingResult run_aggregate_streaming(const finance::Portfolio& portfolio,
                                        const std::string& chunked_yelt_path,
                                        const EngineConfig& config = {});

}  // namespace riskan::core
