#include "core/program.hpp"

#include <algorithm>
#include <optional>

#include "core/secondary.hpp"
#include "finance/terms.hpp"
#include "obs/obs.hpp"
#include "util/require.hpp"

namespace riskan::core {

ProgramResult run_program(const finance::Contract& contract,
                          const data::YearEventLossTable& yelt,
                          const ProgramConfig& config) {
  RISKAN_REQUIRE(yelt.trials() > 0, "YELT must contain trials");
  obs::Timer watch("program.run");

  const auto& layers = contract.layers();
  const auto& elt = contract.elt();
  const TrialId trials = yelt.trials();

  std::optional<SecondarySampler> sampler;
  if (config.secondary_uncertainty) {
    sampler.emplace(elt);
  }
  const Philox4x32 philox(config.seed);

  ProgramResult result;
  result.layer_ylts.reserve(layers.size());
  for (const auto& layer : layers) {
    result.layer_ylts.emplace_back(trials, "layer-" + std::to_string(layer.id));
  }
  result.gross_ylt = data::YearLossTable(trials, "gross");
  result.retained_ylt = data::YearLossTable(trials, "retained");

  const auto offsets = yelt.offsets();
  const auto events = yelt.events();
  const auto means = elt.mean_loss();

  // Per-layer running annual occurrence sums for the current trial.
  std::vector<Money> annual(layers.size());

  for (TrialId t = 0; t < trials; ++t) {
    std::fill(annual.begin(), annual.end(), 0.0);
    Money gross_year = 0.0;

    const std::uint64_t begin = offsets[t];
    const std::uint64_t end = offsets[t + 1];
    for (std::uint64_t i = begin; i < end; ++i) {
      const auto row = elt.find(events[i]);
      if (row == data::EventLossTable::npos) {
        continue;
      }
      Money ground_up;
      if (sampler) {
        auto stream = occurrence_stream(philox, contract.id(), 0, t,
                                        static_cast<std::uint32_t>(i - begin));
        ground_up = sampler->sample(row, stream);
      } else {
        ground_up = means[row];
      }
      gross_year += ground_up;

      // Cascade: each layer sees the loss net of prior recoveries (or the
      // full ground-up when inuring is off).
      Money remaining = ground_up;
      for (std::size_t l = 0; l < layers.size(); ++l) {
        const Money subject = config.inuring ? remaining : ground_up;
        const Money occ = finance::apply_occurrence(layers[l].terms, subject);
        annual[l] += occ;
        if (config.inuring) {
          remaining = std::max(Money{0.0}, remaining - occ);
        }
      }
    }

    Money recovered_year = 0.0;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const Money net =
          finance::apply_aggregate(layers[l].terms, annual[l]) * layers[l].terms.share;
      result.layer_ylts[l][t] = net;
      recovered_year += net;
    }
    result.gross_ylt[t] = gross_year;
    // Aggregate terms can only shrink recoveries, so retained stays >= 0
    // when inuring; without inuring overlapping layers may recover more
    // than gross (double counting is the point of the comparison).
    result.retained_ylt[t] = gross_year - recovered_year;
  }

  result.seconds = watch.stop();
  return result;
}

}  // namespace riskan::core
