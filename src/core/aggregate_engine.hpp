// Aggregate analysis — the paper's stage-2 Monte Carlo engine.
//
// "An additional Monte Carlo simulation, referred to as aggregate analysis,
// is necessary for generating an alternate view of which events occur and
// in which order they occur within a contractual year... a pre-simulated
// Year-Event-Loss Table containing between several thousand and millions of
// alternative views of a single contractual year is used. The output of
// aggregate analysis is a Year-Loss Table."
//
// For every (contract, layer, trial): walk the trial's YELT occurrences,
// gather each occurrence's ELT row, optionally sample secondary
// uncertainty, apply per-occurrence terms, sum, apply annual aggregate
// terms and share, and accumulate into the contract's and the portfolio's
// YLT.
//
// There is exactly ONE implementation of that loop in the repo:
// core::batch::process_trials (src/core/portfolio_batch.hpp). Every entry
// point — this per-contract front end, the batched runner, the scenario
// sweep, MapReduce map tasks and the pricer's run_layer — lowers its
// request into batch slots via an exec::ExecutionPlan (src/core/exec.hpp)
// and dispatches it on a pluggable executor:
//   Sequential — single thread, pool-free; the baseline of the paper's
//                "15x" claim (MapReduce map tasks rely on the pool-free
//                contract).
//   Threaded   — parallel trial chunks on the shared-memory pool.
//   DeviceSim  — the GPU execution model: the same kernel runs inside
//                simulated device blocks with slot columns staged to
//                shared memory and ELT tables resident in constant memory,
//                residency chosen by the plan.
// Outputs are bit-identical across backends, lowerings and scheduling
// (tests enforce).
//
// The event→row mapping is identical for every layer of a contract and on
// every run, so by default it is pre-joined once per (contract, YELT)
// (data::ResolvedYelt, cached by data::ResolverCache) and the kernel
// gathers by direct index; EngineConfig::use_resolver = off selects the
// legacy per-occurrence binary search, which survives as a plan flag.
//
// Multi-contract books should prefer the portfolio-batched lowering
// (EngineConfig::batch_contracts / src/core/portfolio_batch.hpp): one
// streamed YELT pass serves every contract's layer stack, bit-identically,
// instead of the per-(contract, layer) re-walk this front end plans.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/adaptive/adaptive.hpp"
#include "data/resolved_yelt.hpp"
#include "data/yelt.hpp"
#include "data/ylt.hpp"
#include "finance/contract.hpp"
#include "obs/obs.hpp"
#include "parallel/device.hpp"
#include "parallel/thread_pool.hpp"

namespace riskan::data {
class TrialSource;  // data/trial_source.hpp — the engine's data plane
struct TrialBlock;
}

namespace riskan::core {

enum class Backend {
  Sequential,
  Threaded,
  DeviceSim,
  /// Vectorized trial kernel (AVX2/NEON, runtime-dispatched) on the
  /// caller's thread — pool-free like Sequential. Requires a build with
  /// RISKAN_ENABLE_SIMD and a supporting host (validate_engine_config
  /// rejects it otherwise; RISKAN_SIMD=off forces rejection).
  Simd,
  /// The vectorized kernel under the Threaded trial-chunk partition
  /// (trial_grain applies unchanged).
  ThreadedSimd,
};

const char* to_string(Backend backend) noexcept;

/// Every always-available backend, in to_string order — the shared
/// iteration helper for equivalence-matrix tests and benches (no per-file
/// backend lists). The Simd backends are excluded because scalar-only
/// builds reject them; matrices add kSimdBackends rows behind
/// exec::simd_available().
inline constexpr Backend kAllBackends[] = {Backend::Sequential, Backend::Threaded,
                                           Backend::DeviceSim};
/// The host backends (everything but the simulated device), for matrices
/// that sweep `trial_grain` or other host-only knobs.
inline constexpr Backend kHostBackends[] = {Backend::Sequential, Backend::Threaded};
/// The vectorized backends, usable only when exec::simd_available()
/// (core/simd.hpp) — SIMD-gated matrix rows iterate these.
inline constexpr Backend kSimdBackends[] = {Backend::Simd, Backend::ThreadedSimd};

/// Backends bound to the caller's thread (never the pool): resolution
/// builds and block decodes under them must run inline, both for the
/// single-thread contract (MapReduce map tasks invoke the engine from pool
/// workers, where submitting and blocking can deadlock) and for dist
/// workers, which are forked processes without a pool.
constexpr bool pool_free(Backend backend) noexcept {
  return backend == Backend::Sequential || backend == Backend::Simd;
}

/// Per-run telemetry of the DeviceSim executor, for the E2/E4 reports:
/// metered traffic per access class plus the calibrated performance-model
/// time (see src/parallel/device.hpp).
struct DeviceRunInfo {
  double modeled_seconds = 0.0;  ///< performance-model device time
  double host_seconds = 0.0;     ///< wall-clock of the simulation on this host
  DeviceCounters counters;
  /// Kernel launches. One per residency chunk, so this currently equals
  /// elt_chunks; both are kept because the launch structure (e.g. a
  /// future multi-kernel pipeline) and the residency plan are distinct
  /// concepts that happen to coincide today.
  int launches = 0;
  /// Constant-memory residency chunks the plan scheduled (one launch each).
  std::size_t elt_chunks = 0;
  std::size_t shared_staged_blocks = 0;
  std::size_t shared_spill_blocks = 0;
};

struct EngineConfig {
  Backend backend = Backend::Threaded;
  /// Master seed for secondary uncertainty streams.
  std::uint64_t seed = 2012;
  /// Sample per-occurrence secondary uncertainty (beta). Off = use ELT
  /// means; the ablation bench measures the cost.
  bool secondary_uncertainty = true;
  /// Trials per parallel chunk (Threaded) — the chunking knob of E4.
  /// 0 = library default.
  std::size_t trial_grain = 0;
  /// Also produce the per-trial maximum occurrence loss (OEP input).
  /// Costs one Money per YELT occurrence of scratch.
  bool compute_oep = true;
  /// Keep per-contract YLTs in the result. Off saves contracts x trials
  /// doubles when only the portfolio view is needed (large benches).
  bool keep_contract_ylts = true;
  /// Pool for the Threaded backend; nullptr = shared pool.
  ThreadPool* pool = nullptr;
  /// Global id of this YELT's first trial. Secondary-uncertainty streams
  /// are keyed by (trial_base + local trial), so a partition of the YELT
  /// processed separately (MapReduce splits) reproduces the exact losses of
  /// a monolithic run.
  TrialId trial_base = 0;
  /// Trials per device block (DeviceSim); one thread per trial.
  int device_block_dim = 128;
  /// Cap on ELT rows staged into constant memory per gather source
  /// (DeviceSim); 0 = stage as much as the constant segment fits. Smaller
  /// caps pack more contracts' tables into one residency chunk (fewer
  /// launches, more global-memory gather traffic); larger caps give each
  /// table fuller residency at the cost of more launches.
  std::size_t device_elt_chunk_rows = 0;
  /// Hardware model for the DeviceSim executor's performance accounting.
  DeviceSpec device_spec{};
  /// When non-null and backend == DeviceSim, receives the run's accumulated
  /// device telemetry (counters, launches, modeled time).
  DeviceRunInfo* device_info = nullptr;
  /// Pre-join each contract's ELT to the YELT once (data::ResolvedYelt) and
  /// gather rows by direct index in the trial kernel. Off = the legacy
  /// per-occurrence binary search, retained as the reference plan flag for
  /// the equivalence tests and the resolver-on/off bench comparison.
  bool use_resolver = true;
  /// Cache of resolutions shared across layers and runs; nullptr = the
  /// process-wide data::ResolverCache::shared().
  data::ResolverCache* resolver_cache = nullptr;
  /// Portfolio-batched stage 2 (core::PortfolioBatchRunner): stream each
  /// trial chunk once, serving every contract's layer stack in the same
  /// pass, instead of re-walking the YELT per (contract, layer). Outputs
  /// are bit-identical either way; batching is the wall-clock win on
  /// multi-contract books and composes with every backend, DeviceSim
  /// included. Implies the resolver (`use_resolver` is ignored on this
  /// path).
  bool batch_contracts = false;
  /// Convergence-adaptive stopping (core/adaptive): with
  /// adaptive.target_rel_err > 0 the run consumes trials in decision
  /// blocks, folds streaming estimators after each, and stops once the
  /// monitored metrics' CIs close — returning the (bit-identical) prefix
  /// of the fixed-budget run plus EngineResult::adaptive. The default
  /// (target_rel_err = 0) disables the path entirely.
  adaptive::AdaptiveConfig adaptive;
  /// Per-run observability (src/obs/): end-of-run metrics report and/or
  /// chrome-trace export. Zero-initialized = off; the always-on global
  /// registry and RISKAN_TRACE/RISKAN_OBS env controls work regardless.
  /// Exactly one scope — the outermost entry point — observes a run:
  /// delegating paths (adaptive driver re-entry, batch lowering, dist
  /// workers) clear this on their inner configs.
  obs::ObsConfig obs;
};

/// Validates the cross-field sanity of `config` up front with
/// ContractViolation errors instead of silent misbehavior downstream:
/// positive, bounded device_block_dim; bounded trial_grain and
/// device_elt_chunk_rows. Every engine entry point calls this before
/// planning.
void validate_engine_config(const EngineConfig& config);

/// Result of one aggregate-analysis run.
struct EngineResult {
  /// Per-trial portfolio net loss (annual aggregate) — the AEP sample.
  data::YearLossTable portfolio_ylt;
  /// Per-trial maximum single-occurrence portfolio net loss — the OEP
  /// sample. Empty when compute_oep is off.
  data::YearLossTable portfolio_occurrence_ylt;
  /// Per-contract aggregate YLTs, indexed as the portfolio's contracts.
  std::vector<data::YearLossTable> contract_ylts;
  /// Per-trial reinstatement premium earned back by the portfolio.
  data::YearLossTable reinstatement_premium;

  double seconds = 0.0;
  std::uint64_t occurrences_processed = 0;
  std::uint64_t elt_lookups = 0;
  /// Wall-clock spent building event→row resolutions (0 on cache hits or
  /// when use_resolver is off); included in `seconds`.
  double resolve_seconds = 0.0;
  /// Convergence report of an adaptive run (enabled = false otherwise):
  /// stopping trial count, stop reason, per-metric estimates and CIs.
  adaptive::AdaptiveReport adaptive;
  /// End-of-run observability report (EngineConfig::obs.collect_report /
  /// report_path); nullptr when not requested.
  std::shared_ptr<const obs::ObsReport> obs_report;
};

/// Runs aggregate analysis for `portfolio` over `yelt` with `config`.
/// Deterministic in (portfolio, yelt, seed) — backend and scheduling do not
/// change a single bit of the YLTs.
EngineResult run_aggregate_analysis(const finance::Portfolio& portfolio,
                                    const data::YearEventLossTable& yelt,
                                    const EngineConfig& config = {});

/// The same analysis over any data::TrialSource — the one data plane behind
/// every entry point. The in-memory overload wraps its table in a one-block
/// InMemorySource and calls this; an out-of-core run passes a
/// ChunkedFileSource and streams trial blocks through the *same* execution
/// plans (lowered once, re-bound per block, with each block's trial offset
/// keying the sampling streams), so the outputs are bit-identical to the
/// in-memory run across every backend, with batching, per-contract YLTs and
/// OEP all available.
EngineResult run_aggregate_analysis(const finance::Portfolio& portfolio,
                                    data::TrialSource& source,
                                    const EngineConfig& config = {});

/// Resolver cache for a run over `source`: always `local` when the
/// source's blocks are transient decodes (their resolutions must not park
/// dead keys in any durable cache, the caller's included — the block
/// driver clears `local` between blocks); otherwise config.resolver_cache
/// when set, else ResolverCache::shared().
data::ResolverCache& resolver_cache_for(const EngineConfig& config,
                                        const data::TrialSource& source,
                                        data::ResolverCache& local);

/// The one block-consumption driver every runner shares. Yields each of
/// `source`'s blocks to `body` together with the block's effective
/// sampling stream base (config.trial_base + block.trial_offset — the
/// invariant that keeps streamed runs bit-identical to monolithic ones)
/// and ENSUREs in-order delivery covering exactly source.trials().
/// `run_local_cache` is the run's local resolver cache (the one
/// resolver_cache_for selected for ephemeral sources): after each
/// ephemeral block it is cleared, so transient resolutions cannot outlive
/// the block whose pointers key them.
void for_each_trial_block(data::TrialSource& source, const EngineConfig& config,
                          data::ResolverCache& run_local_cache,
                          const std::function<void(const data::TrialBlock&, TrialId)>& body);

/// Single-layer convenience used by the pricer and micro-benches: returns
/// the layer's per-trial net losses (a 1-slot execution plan).
std::vector<Money> run_layer(const finance::Contract& contract, const finance::Layer& layer,
                             const data::YearEventLossTable& yelt, const EngineConfig& config);

}  // namespace riskan::core
