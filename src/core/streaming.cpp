#include "core/streaming.hpp"

#include <algorithm>

#include "data/chunked_file.hpp"
#include "data/serialize.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace riskan::core {

std::size_t save_yelt_chunked(const data::YearEventLossTable& yelt, const std::string& path,
                              TrialId trials_per_chunk) {
  RISKAN_REQUIRE(trials_per_chunk > 0, "trials per chunk must be positive");
  data::ChunkedFileWriter writer(path);
  const TrialId trials = yelt.trials();
  for (TrialId lo = 0; lo < trials; lo += trials_per_chunk) {
    const TrialId hi = std::min<TrialId>(trials, lo + trials_per_chunk);
    data::YearEventLossTable::Builder builder(hi - lo);
    for (TrialId t = lo; t < hi; ++t) {
      builder.begin_trial();
      const auto events = yelt.trial_events(t);
      const auto days = yelt.trial_days(t);
      for (std::size_t i = 0; i < events.size(); ++i) {
        builder.add(events[i], days[i]);
      }
    }
    const auto block = builder.finish();
    ByteWriter bytes;
    data::encode(block, bytes);
    writer.append(bytes.buffer());
  }
  const auto chunks = writer.chunks_written();
  writer.finish();
  return chunks;
}

StreamingResult run_aggregate_streaming(const finance::Portfolio& portfolio,
                                        const std::string& chunked_yelt_path,
                                        const EngineConfig& config) {
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(config.backend != Backend::DeviceSim,
                 "streaming mode supports Sequential/Threaded backends");

  Stopwatch watch;
  data::ChunkedFileReader reader(chunked_yelt_path);

  StreamingResult result;
  result.blocks = reader.chunk_count();

  std::vector<Money> losses;
  TrialId trial_base = 0;

  for (std::size_t c = 0; c < reader.chunk_count(); ++c) {
    const auto chunk = reader.chunk(c);
    result.bytes_read += chunk.size();
    result.peak_block_bytes = std::max(result.peak_block_bytes, chunk.size());

    ByteReader bytes(chunk);
    const auto block = data::decode_yelt(bytes);

    EngineConfig block_config = config;
    block_config.trial_base = trial_base;
    block_config.compute_oep = false;
    block_config.keep_contract_ylts = false;
    const auto block_result = run_aggregate_analysis(portfolio, block, block_config);

    const auto block_losses = block_result.portfolio_ylt.losses();
    losses.insert(losses.end(), block_losses.begin(), block_losses.end());
    trial_base += block.trials();
  }

  result.portfolio_ylt = data::YearLossTable(std::move(losses), "portfolio-streamed");
  result.seconds = watch.seconds();
  return result;
}

}  // namespace riskan::core
