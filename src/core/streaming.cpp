#include "core/streaming.hpp"

#include <algorithm>

#include "data/chunked_file.hpp"
#include "data/serialize.hpp"
#include "data/trial_source.hpp"
#include "util/require.hpp"

namespace riskan::core {

std::size_t save_yelt_chunked(const data::YearEventLossTable& yelt, const std::string& path,
                              TrialId trials_per_chunk) {
  RISKAN_REQUIRE(trials_per_chunk > 0, "trials per chunk must be positive");
  data::ChunkedFileWriter writer(path);
  const TrialId trials = yelt.trials();
  ByteWriter bytes;
  for (TrialId lo = 0; lo < trials; lo += trials_per_chunk) {
    const TrialId hi = std::min<TrialId>(trials, lo + trials_per_chunk);
    bytes.clear();
    data::encode_yelt_slice(yelt, lo, hi, bytes);
    writer.append(bytes.buffer());
  }
  const auto chunks = writer.chunks_written();
  writer.finish();
  return chunks;
}

StreamingResult run_aggregate_streaming(const finance::Portfolio& portfolio,
                                        const std::string& chunked_yelt_path,
                                        const EngineConfig& config) {
  data::ChunkedFileSource source(chunked_yelt_path);

  StreamingResult result;
  static_cast<EngineResult&>(result) = run_aggregate_analysis(portfolio, source, config);

  const data::ChunkedFileSourceStats& stats = source.stats();
  result.bytes_read = stats.bytes_read;
  result.blocks = stats.blocks_delivered;
  result.peak_block_bytes = stats.peak_block_bytes;
  result.prefetch_wait_seconds = stats.wait_seconds;
  return result;
}

}  // namespace riskan::core
