#include "core/aggregate_engine.hpp"

#include <algorithm>
#include <limits>

#include "core/exec.hpp"
#include "core/portfolio_batch.hpp"
#include "core/secondary.hpp"
#include "finance/terms.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace riskan::core {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::Sequential: return "sequential";
    case Backend::Threaded: return "threaded";
    case Backend::DeviceSim: return "device-sim";
  }
  return "unknown";
}

namespace {

/// Bounds beyond which a knob is a bug, not a tuning choice.
constexpr int kMaxDeviceBlockDim = 1 << 20;
constexpr std::size_t kMaxTrialGrain = std::size_t{1} << 30;
constexpr std::size_t kMaxDeviceEltChunkRows = std::size_t{1} << 30;

}  // namespace

void validate_engine_config(const EngineConfig& config) {
  RISKAN_REQUIRE(config.trial_grain <= kMaxTrialGrain,
                 "trial_grain is absurdly large (max 2^30 trials per chunk)");
  RISKAN_REQUIRE(config.device_block_dim > 0, "device block dim must be positive");
  RISKAN_REQUIRE(config.device_block_dim <= kMaxDeviceBlockDim,
                 "device block dim is absurdly large (max 2^20 trials per block)");
  RISKAN_REQUIRE(config.device_elt_chunk_rows <= kMaxDeviceEltChunkRows,
                 "device_elt_chunk_rows is absurdly large (max 2^30 rows per chunk)");
  if (config.backend == Backend::DeviceSim) {
    RISKAN_REQUIRE(config.device_spec.const_mem_bytes > 0,
                   "DeviceSim needs a constant-memory segment");
    RISKAN_REQUIRE(config.device_spec.shared_mem_per_block > 0,
                   "DeviceSim needs a shared-memory arena");
  }
}

EngineResult run_aggregate_analysis(const finance::Portfolio& portfolio,
                                    const data::YearEventLossTable& yelt,
                                    const EngineConfig& config) {
  validate_engine_config(config);
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(yelt.trials() > 0, "YELT must contain trials");

  if (config.batch_contracts) {
    return run_portfolio_batch(portfolio, yelt, config);
  }

  // The per-contract lowering: one 1-slot execution plan per (contract,
  // layer), dispatched in layer-major order on the configured executor so
  // a layer's ELT stays hot while its trials stream — the legacy engine's
  // loop nest, now expressed as plans over the one batch kernel. With the
  // resolver on each slot gathers through the contract's dense pre-joined
  // row column; off, it binary-searches the ELT per occurrence (the
  // reference plan flag).
  Stopwatch watch;
  const TrialId trials = yelt.trials();

  EngineResult result;
  result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
  result.reinstatement_premium = data::YearLossTable(trials, "reinstatement-premium");
  if (config.keep_contract_ylts) {
    result.contract_ylts.reserve(portfolio.size());
    for (const auto& contract : portfolio.contracts()) {
      result.contract_ylts.emplace_back(
          trials, "contract-" + std::to_string(contract.id()));
    }
  }

  std::vector<Money> occurrence_accum;
  if (config.compute_oep) {
    occurrence_accum.assign(yelt.entries(), 0.0);
  }

  const Philox4x32 philox(config.seed);
  std::uint64_t lookups = 0;
  data::ResolverCache& cache =
      config.resolver_cache ? *config.resolver_cache : data::ResolverCache::shared();
  const auto executor = exec::make_executor(config);
  const auto yelt_offsets = yelt.offsets();
  const auto events = yelt.events();

  for (std::size_t c = 0; c < portfolio.size(); ++c) {
    const auto& contract = portfolio.contract(c);
    std::optional<SecondarySampler> sampler;
    if (config.secondary_uncertainty) {
      sampler.emplace(contract.elt());
    }

    // One pre-join per contract, shared by all of its layers (and, via the
    // cache, by subsequent runs over the same tables). The Sequential
    // backend builds inline — it must stay off the pool, both for its
    // single-thread contract and because MapReduce map tasks run it from
    // pool workers (submitting and blocking there can deadlock).
    std::shared_ptr<const data::ResolvedYelt> resolved;
    if (config.use_resolver) {
      Stopwatch resolve_watch;
      const ParallelConfig resolve_cfg =
          config.backend == Backend::Sequential
              ? ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()}
              : ParallelConfig{config.pool, 0};
      resolved = cache.get_or_build(contract.elt(), yelt, resolve_cfg);
      result.resolve_seconds += resolve_watch.seconds();
    }

    for (const auto& layer : contract.layers()) {
      batch::Slot slot;
      slot.elt = &contract.elt();
      if (resolved) {
        slot.gather = batch::Gather::Dense;
        slot.dense_rows = resolved->rows().data();
      } else {
        slot.gather = batch::Gather::Search;
        slot.search_events = events.data();
      }
      slot.means = contract.elt().mean_loss().data();
      slot.sampler = sampler ? &*sampler : nullptr;
      slot.terms = layer.terms;
      slot.reinstatements = layer.reinstatements;
      slot.upfront_premium = layer.upfront_premium;
      slot.contract_id = contract.id();
      slot.layer_id = layer.id;
      slot.contract_losses = config.keep_contract_ylts
                                 ? result.contract_ylts[c].mutable_losses()
                                 : std::span<Money>{};
      slot.portfolio_losses = result.portfolio_ylt.mutable_losses();
      slot.reinstatement_prem = result.reinstatement_premium.mutable_losses();
      slot.occurrence_accum = config.compute_oep ? occurrence_accum.data() : nullptr;

      const exec::ExecutionPlan plan =
          exec::ExecutionPlan::lower({&slot, 1}, yelt_offsets, trials, config);
      lookups += executor->execute(plan, philox);
    }
  }

  if (config.compute_oep) {
    result.portfolio_occurrence_ylt = data::YearLossTable(trials, "portfolio-oep");
    batch::finalize_oep(result.portfolio_occurrence_ylt.mutable_losses(), occurrence_accum,
                        yelt_offsets, {});
  }

  result.seconds = watch.seconds();
  result.occurrences_processed =
      yelt.entries() * static_cast<std::uint64_t>(portfolio.layer_count());
  result.elt_lookups = lookups;
  // Accumulated under DeviceSim only, mirroring the executor's counter
  // accumulation so host/modeled scopes stay matched across runs.
  if (config.backend == Backend::DeviceSim && config.device_info != nullptr) {
    config.device_info->host_seconds += result.seconds;
  }
  return result;
}

std::vector<Money> run_layer(const finance::Contract& contract, const finance::Layer& layer,
                             const data::YearEventLossTable& yelt,
                             const EngineConfig& config) {
  finance::Portfolio single;
  single.add(finance::Contract(contract.id(), contract.elt(), {layer}, contract.region(),
                               contract.lob(), contract.peril()));
  EngineConfig cfg = config;
  cfg.keep_contract_ylts = false;
  cfg.compute_oep = false;
  // The single-contract portfolio copies the ELT, so its resolution is
  // keyed to a temporary — keep it out of the shared cache.
  data::ResolverCache local_cache;
  cfg.resolver_cache = &local_cache;
  auto result = run_aggregate_analysis(single, yelt, cfg);
  auto losses = result.portfolio_ylt.losses();
  return std::vector<Money>(losses.begin(), losses.end());
}

}  // namespace riskan::core
