#include "core/aggregate_engine.hpp"

#include <algorithm>
#include <limits>

#include "core/device_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "core/secondary.hpp"
#include "finance/terms.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace riskan::core {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::Sequential: return "sequential";
    case Backend::Threaded: return "threaded";
    case Backend::DeviceSim: return "device-sim";
  }
  return "unknown";
}

namespace {

/// Everything the per-trial kernel needs about one layer.
struct LayerContext {
  const data::EventLossTable* elt = nullptr;
  const SecondarySampler* sampler = nullptr;  // null = use ELT means
  finance::LayerTerms terms;
  finance::Reinstatements reinstatements;
  Money upfront_premium = 0.0;
  ContractId contract_id = 0;
  LayerId layer_id = 0;
  TrialId trial_base = 0;
};

struct TrialOutputs {
  std::span<Money> contract_losses;      // per-trial, may be empty
  std::span<Money> portfolio_losses;     // per-trial
  std::span<Money> occurrence_accum;     // per-occurrence, may be empty (OEP off)
  std::span<Money> reinstatement_prem;   // per-trial
};

/// Processes trials [lo, hi) of one layer; `row_of(i)` maps global
/// occurrence index i to the contract's ELT row (or npos). The only state
/// shared between concurrent calls is indexed by trial (or by the trial's
/// occurrence range), so disjoint trial ranges never race.
template <typename RowOf>
std::uint64_t process_layer_trials(const LayerContext& ctx,
                                   const data::YearEventLossTable& yelt,
                                   const Philox4x32& philox, bool secondary, TrialId lo,
                                   TrialId hi, const TrialOutputs& out,
                                   const RowOf& row_of) {
  const auto offsets = yelt.offsets();
  const auto means = ctx.elt->mean_loss();
  std::uint64_t lookups_found = 0;

  for (TrialId t = lo; t < hi; ++t) {
    Money annual = 0.0;
    const std::uint64_t begin = offsets[t];
    const std::uint64_t end = offsets[t + 1];
    for (std::uint64_t i = begin; i < end; ++i) {
      const auto row = row_of(i);
      if (row == data::EventLossTable::npos) {
        continue;
      }
      ++lookups_found;
      Money ground_up;
      if (secondary) {
        auto stream = occurrence_stream(philox, ctx.contract_id, ctx.layer_id,
                                        ctx.trial_base + t,
                                        static_cast<std::uint32_t>(i - begin));
        ground_up = ctx.sampler->sample(row, stream);
      } else {
        ground_up = means[row];
      }
      const Money occ = finance::apply_occurrence(ctx.terms, ground_up);
      annual += occ;
      if (!out.occurrence_accum.empty() && occ > 0.0) {
        out.occurrence_accum[i] += occ * ctx.terms.share;
      }
    }
    const Money consumed = finance::apply_aggregate(ctx.terms, annual);
    const Money net = consumed * ctx.terms.share;
    if (net > 0.0) {
      if (!out.contract_losses.empty()) {
        out.contract_losses[t] += net;
      }
      out.portfolio_losses[t] += net;
      out.reinstatement_prem[t] += ctx.reinstatements.premium_due(
          consumed, ctx.terms.occ_limit, ctx.upfront_premium);
    }
  }
  return lookups_found;
}

/// Runs one layer over [0, trials) on the configured backend, accumulating
/// the found-lookup count per chunk (parallel_reduce) instead of bouncing a
/// contended atomic between cores.
template <typename RowOf>
std::uint64_t run_layer_trials(const LayerContext& ctx, const data::YearEventLossTable& yelt,
                               const Philox4x32& philox, const EngineConfig& config,
                               TrialId trials, const TrialOutputs& out,
                               const RowOf& row_of) {
  const bool secondary = config.secondary_uncertainty;
  if (config.backend == Backend::Sequential) {
    return process_layer_trials(ctx, yelt, philox, secondary, 0, trials, out, row_of);
  }
  return parallel_reduce<std::uint64_t>(
      0, trials, 0,
      [&](std::size_t lo, std::size_t hi) {
        return process_layer_trials(ctx, yelt, philox, secondary,
                                    static_cast<TrialId>(lo), static_cast<TrialId>(hi),
                                    out, row_of);
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; },
      ParallelConfig{config.pool, config.trial_grain});
}

}  // namespace

EngineResult run_aggregate_analysis(const finance::Portfolio& portfolio,
                                    const data::YearEventLossTable& yelt,
                                    const EngineConfig& config) {
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  RISKAN_REQUIRE(yelt.trials() > 0, "YELT must contain trials");

  if (config.backend == Backend::DeviceSim) {
    return run_aggregate_device(portfolio, yelt, config);
  }
  if (config.batch_contracts) {
    return run_portfolio_batch(portfolio, yelt, config);
  }

  Stopwatch watch;
  const TrialId trials = yelt.trials();

  EngineResult result;
  result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
  result.reinstatement_premium = data::YearLossTable(trials, "reinstatement-premium");
  if (config.keep_contract_ylts) {
    result.contract_ylts.reserve(portfolio.size());
    for (const auto& contract : portfolio.contracts()) {
      result.contract_ylts.emplace_back(
          trials, "contract-" + std::to_string(contract.id()));
    }
  }

  std::vector<Money> occurrence_accum;
  if (config.compute_oep) {
    occurrence_accum.assign(yelt.entries(), 0.0);
  }

  const Philox4x32 philox(config.seed);
  std::uint64_t lookups = 0;
  data::ResolverCache& cache =
      config.resolver_cache ? *config.resolver_cache : data::ResolverCache::shared();

  for (std::size_t c = 0; c < portfolio.size(); ++c) {
    const auto& contract = portfolio.contract(c);
    std::optional<SecondarySampler> sampler;
    if (config.secondary_uncertainty) {
      sampler.emplace(contract.elt());
    }

    // One pre-join per contract, shared by all of its layers (and, via the
    // cache, by subsequent runs over the same tables). The Sequential
    // backend builds inline — it must stay off the pool, both for its
    // single-thread contract and because MapReduce map tasks run it from
    // pool workers (submitting and blocking there can deadlock).
    std::shared_ptr<const data::ResolvedYelt> resolved;
    if (config.use_resolver) {
      Stopwatch resolve_watch;
      const ParallelConfig resolve_cfg =
          config.backend == Backend::Sequential
              ? ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()}
              : ParallelConfig{config.pool, 0};
      resolved = cache.get_or_build(contract.elt(), yelt, resolve_cfg);
      result.resolve_seconds += resolve_watch.seconds();
    }

    for (const auto& layer : contract.layers()) {
      LayerContext ctx;
      ctx.elt = &contract.elt();
      ctx.sampler = sampler ? &*sampler : nullptr;
      ctx.terms = layer.terms;
      ctx.reinstatements = layer.reinstatements;
      ctx.upfront_premium = layer.upfront_premium;
      ctx.contract_id = contract.id();
      ctx.layer_id = layer.id;
      ctx.trial_base = config.trial_base;

      TrialOutputs out;
      out.contract_losses = config.keep_contract_ylts
                                ? result.contract_ylts[c].mutable_losses()
                                : std::span<Money>{};
      out.portfolio_losses = result.portfolio_ylt.mutable_losses();
      out.occurrence_accum = occurrence_accum;
      out.reinstatement_prem = result.reinstatement_premium.mutable_losses();

      if (resolved) {
        const std::uint32_t* rows = resolved->rows().data();
        lookups += run_layer_trials(
            ctx, yelt, philox, config, trials, out, [rows](std::uint64_t i) {
              const std::uint32_t row = rows[i];
              return row == data::ResolvedYelt::kNoLoss
                         ? data::EventLossTable::npos
                         : static_cast<std::size_t>(row);
            });
      } else {
        const auto events = yelt.events();
        const auto& elt = contract.elt();
        lookups += run_layer_trials(
            ctx, yelt, philox, config, trials, out,
            [&elt, events](std::uint64_t i) { return elt.find(events[i]); });
      }
    }
  }

  if (config.compute_oep) {
    result.portfolio_occurrence_ylt = data::YearLossTable(trials, "portfolio-oep");
    auto oep = result.portfolio_occurrence_ylt.mutable_losses();
    const auto offsets = yelt.offsets();
    for (TrialId t = 0; t < trials; ++t) {
      Money worst = 0.0;
      for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
        worst = std::max(worst, occurrence_accum[i]);
      }
      oep[t] = worst;
    }
  }

  result.seconds = watch.seconds();
  result.occurrences_processed =
      yelt.entries() * static_cast<std::uint64_t>(portfolio.layer_count());
  result.elt_lookups = lookups;
  return result;
}

std::vector<Money> run_layer(const finance::Contract& contract, const finance::Layer& layer,
                             const data::YearEventLossTable& yelt,
                             const EngineConfig& config) {
  finance::Portfolio single;
  single.add(finance::Contract(contract.id(), contract.elt(), {layer}, contract.region(),
                               contract.lob(), contract.peril()));
  EngineConfig cfg = config;
  cfg.keep_contract_ylts = false;
  cfg.compute_oep = false;
  // The single-contract portfolio copies the ELT, so its resolution is
  // keyed to a temporary — keep it out of the shared cache.
  data::ResolverCache local_cache;
  cfg.resolver_cache = &local_cache;
  auto result = run_aggregate_analysis(single, yelt, cfg);
  auto losses = result.portfolio_ylt.losses();
  return std::vector<Money>(losses.begin(), losses.end());
}

}  // namespace riskan::core
