#include "core/aggregate_engine.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "core/adaptive/driver.hpp"
#include "core/exec.hpp"
#include "core/portfolio_batch.hpp"
#include "core/secondary.hpp"
#include "core/simd.hpp"
#include "data/trial_source.hpp"
#include "finance/terms.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"

namespace riskan::core {

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::Sequential: return "sequential";
    case Backend::Threaded: return "threaded";
    case Backend::DeviceSim: return "device-sim";
    case Backend::Simd: return "simd";
    case Backend::ThreadedSimd: return "threaded-simd";
  }
  return "unknown";
}

namespace {

/// Bounds beyond which a knob is a bug, not a tuning choice.
constexpr int kMaxDeviceBlockDim = 1 << 20;
constexpr std::size_t kMaxTrialGrain = std::size_t{1} << 30;
constexpr std::size_t kMaxDeviceEltChunkRows = std::size_t{1} << 30;

}  // namespace

void validate_engine_config(const EngineConfig& config) {
  obs::validate_obs_config(config.obs);
  adaptive::validate_adaptive_config(config.adaptive);
  if (config.adaptive.enabled() &&
      (config.adaptive.metrics & adaptive::kOccurrenceMetrics) != 0) {
    RISKAN_REQUIRE(config.compute_oep,
                   "adaptive occurrence metrics (occ_var/occ_tvar) need compute_oep");
  }
  RISKAN_REQUIRE(config.trial_grain <= kMaxTrialGrain,
                 "trial_grain is absurdly large (max 2^30 trials per chunk)");
  RISKAN_REQUIRE(config.device_block_dim > 0, "device block dim must be positive");
  RISKAN_REQUIRE(config.device_block_dim <= kMaxDeviceBlockDim,
                 "device block dim is absurdly large (max 2^20 trials per block)");
  RISKAN_REQUIRE(config.device_elt_chunk_rows <= kMaxDeviceEltChunkRows,
                 "device_elt_chunk_rows is absurdly large (max 2^30 rows per chunk)");
  if (config.backend == Backend::DeviceSim) {
    RISKAN_REQUIRE(config.device_spec.const_mem_bytes > 0,
                   "DeviceSim needs a constant-memory segment");
    RISKAN_REQUIRE(config.device_spec.shared_mem_per_block > 0,
                   "DeviceSim needs a shared-memory arena");
  }
  if (config.backend == Backend::Simd || config.backend == Backend::ThreadedSimd) {
    // Reject up front rather than silently running the scalar kernel
    // mid-run: the caller asked for wide execution and should learn at
    // config time that this build/host/override cannot provide it.
    const exec::SimdDispatch dispatch = exec::simd_dispatch();
    RISKAN_REQUIRE(dispatch.width > 0,
                   std::string("Simd backend unavailable: ") + dispatch.reason +
                       " (build with -DRISKAN_ENABLE_SIMD=ON on an AVX2/NEON host; "
                       "check RISKAN_SIMD)");
  }
}

data::ResolverCache& resolver_cache_for(const EngineConfig& config,
                                        const data::TrialSource& source,
                                        data::ResolverCache& local) {
  // Ephemeral blocks die with the pass, so caching their resolutions
  // anywhere durable — the caller's cache included — only parks dead keys
  // and evicts genuinely warm entries; the run-local cache (cleared per
  // block) wins unconditionally there.
  if (source.ephemeral_blocks()) {
    return local;
  }
  return config.resolver_cache != nullptr ? *config.resolver_cache
                                          : data::ResolverCache::shared();
}

void for_each_trial_block(data::TrialSource& source, const EngineConfig& config,
                          data::ResolverCache& run_local_cache,
                          const std::function<void(const data::TrialBlock&, TrialId)>& body) {
  const TrialId trials = source.trials();
  data::TrialBlock block;
  TrialId seen = 0;
  while (source.next(block)) {
    const TrialId block_trials = block.yelt->trials();
    RISKAN_ENSURE(block.trial_offset == seen && seen + block_trials <= trials,
                  "trial source delivered blocks out of order or past its trial count");
    body(block, config.trial_base + block.trial_offset);
    seen += block_trials;
    // Ephemeral blocks resolve through the run-local cache (see
    // resolver_cache_for); dropping those resolutions with the block keeps
    // memory bounded and pointer-keyed entries from outliving their table.
    if (source.ephemeral_blocks()) {
      run_local_cache.clear();
    }
  }
  RISKAN_ENSURE(seen == trials, "trial source delivered fewer trials than declared");
}

EngineResult run_aggregate_analysis(const finance::Portfolio& portfolio,
                                    const data::YearEventLossTable& yelt,
                                    const EngineConfig& config) {
  data::InMemorySource source(yelt);
  return run_aggregate_analysis(portfolio, source, config);
}

EngineResult run_aggregate_analysis(const finance::Portfolio& portfolio,
                                    data::TrialSource& source,
                                    const EngineConfig& config) {
  validate_engine_config(config);
  RISKAN_REQUIRE(!portfolio.empty(), "portfolio must contain contracts");
  const TrialId trials = source.trials();
  RISKAN_REQUIRE(trials > 0, "trial source must contain trials");

  // Adaptive stopping wraps this very entry point: the driver re-enters it
  // per decision block with adaptivity cleared, so everything below runs
  // unchanged — bit-identically — whether the budget is fixed or adaptive.
  if (config.adaptive.enabled()) {
    return adaptive::run_adaptive_aggregate(portfolio, source, config);
  }

  if (config.batch_contracts) {
    return run_portfolio_batch(portfolio, source, config);
  }

  // The per-contract lowering: one 1-slot execution plan per (contract,
  // layer), dispatched in layer-major order on the configured executor so
  // a layer's ELT stays hot while its trials stream — the legacy engine's
  // loop nest, now expressed as plans over the one batch kernel. With the
  // resolver on each slot gathers through the contract's dense pre-joined
  // row column; off, it binary-searches the ELT per occurrence (the
  // reference plan flag). Plans are lowered against the first trial block
  // and re-bound to each subsequent one (an in-memory run is the one-block
  // special case); per-trial accumulators are sliced by block, and the
  // block's trial offset rides the sampling stream base, so a streamed run
  // is bit-identical to the monolithic one.
  obs::RunObsScope obs_scope(config.obs);
  obs::Timer timer("engine.per_contract_run");
  static const obs::Counter runs_counter =
      obs::MetricsRegistry::global().counter("engine.runs");
  static const obs::Histogram block_hist =
      obs::MetricsRegistry::global().histogram("engine.block_seconds");
  static const obs::Histogram resolve_hist =
      obs::MetricsRegistry::global().histogram("engine.resolve_seconds");
  runs_counter.add();

  EngineResult result;
  result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
  result.reinstatement_premium = data::YearLossTable(trials, "reinstatement-premium");
  if (config.keep_contract_ylts) {
    result.contract_ylts.reserve(portfolio.size());
    for (const auto& contract : portfolio.contracts()) {
      result.contract_ylts.emplace_back(
          trials, "contract-" + std::to_string(contract.id()));
    }
  }
  if (config.compute_oep) {
    result.portfolio_occurrence_ylt = data::YearLossTable(trials, "portfolio-oep");
  }

  // Samplers are pure functions of each contract's ELT — block-invariant,
  // so they are built once per run.
  std::vector<SecondarySampler> samplers;
  if (config.secondary_uncertainty) {
    samplers.reserve(portfolio.size());
    for (const auto& contract : portfolio.contracts()) {
      samplers.emplace_back(contract.elt());
    }
  }

  const Philox4x32 philox(config.seed);
  std::uint64_t lookups = 0;
  data::ResolverCache local_cache;
  data::ResolverCache& cache = resolver_cache_for(config, source, local_cache);
  const auto executor = exec::make_executor(config);

  const std::uint64_t layer_count = portfolio.layer_count();
  std::vector<batch::Slot> slot_storage(layer_count);
  std::vector<exec::ExecutionPlan> plans(layer_count);
  bool lowered = false;

  std::vector<Money> occurrence_accum;
  for_each_trial_block(source, config, local_cache,
                       [&](const data::TrialBlock& block, TrialId base) {
    obs::Timer block_timer("engine.block");
    const data::YearEventLossTable& yelt = *block.yelt;
    const TrialId block_trials = yelt.trials();
    const auto yelt_offsets = yelt.offsets();
    const auto events = yelt.events();
    if (config.compute_oep) {
      occurrence_accum.assign(yelt.entries(), 0.0);
    }

    std::size_t p = 0;
    for (std::size_t c = 0; c < portfolio.size(); ++c) {
      const auto& contract = portfolio.contract(c);

      // One pre-join per contract per block, shared by all of its layers
      // (and, via the cache, by subsequent runs over the same tables). The
      // Sequential backend builds inline — it must stay off the pool, both
      // for its single-thread contract and because MapReduce map tasks run
      // it from pool workers (submitting and blocking there can deadlock).
      std::shared_ptr<const data::ResolvedYelt> resolved;
      if (config.use_resolver) {
        obs::Timer resolve_timer("engine.resolve");
        const ParallelConfig resolve_cfg =
            pool_free(config.backend)
                ? ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()}
                : ParallelConfig{config.pool, 0};
        resolved = cache.get_or_build(contract.elt(), yelt, resolve_cfg);
        const double resolve_s = resolve_timer.stop();
        result.resolve_seconds += resolve_s;
        resolve_hist.observe(resolve_s);
      }

      for (const auto& layer : contract.layers()) {
        batch::Slot& slot = slot_storage[p];
        slot = batch::Slot{};
        slot.elt = &contract.elt();
        if (resolved) {
          slot.gather = batch::Gather::Dense;
          slot.dense_rows = resolved->rows().data();
        } else {
          slot.gather = batch::Gather::Search;
          slot.search_events = events.data();
        }
        slot.means = contract.elt().mean_loss().data();
        slot.sampler = config.secondary_uncertainty ? &samplers[c] : nullptr;
        slot.terms = layer.terms;
        slot.reinstatements = layer.reinstatements;
        slot.upfront_premium = layer.upfront_premium;
        slot.contract_id = contract.id();
        slot.layer_id = layer.id;
        slot.contract_losses =
            config.keep_contract_ylts
                ? result.contract_ylts[c].mutable_losses().subspan(block.trial_offset,
                                                                   block_trials)
                : std::span<Money>{};
        slot.portfolio_losses =
            result.portfolio_ylt.mutable_losses().subspan(block.trial_offset, block_trials);
        slot.reinstatement_prem = result.reinstatement_premium.mutable_losses().subspan(
            block.trial_offset, block_trials);
        slot.occurrence_accum = config.compute_oep ? occurrence_accum.data() : nullptr;

        if (!lowered) {
          EngineConfig lower_config = config;
          lower_config.trial_base = base;
          plans[p] = exec::ExecutionPlan::lower({&slot, 1}, yelt_offsets, block_trials,
                                                lower_config);
        } else {
          plans[p].rebind({&slot, 1}, yelt_offsets, block_trials, base);
        }
        lookups += executor->execute(plans[p], philox);
        ++p;
      }
    }
    lowered = true;

    if (config.compute_oep) {
      batch::finalize_oep(result.portfolio_occurrence_ylt.mutable_losses().subspan(
                              block.trial_offset, block_trials),
                          occurrence_accum, yelt_offsets, {});
    }
    result.occurrences_processed += yelt.entries() * layer_count;
    block_hist.observe(block_timer.stop());
  });

  result.seconds = timer.stop();
  result.elt_lookups = lookups;
  result.obs_report = obs_scope.finish();
  // Accumulated under DeviceSim only, mirroring the executor's counter
  // accumulation so host/modeled scopes stay matched across runs.
  if (config.backend == Backend::DeviceSim && config.device_info != nullptr) {
    config.device_info->host_seconds += result.seconds;
  }
  return result;
}

std::vector<Money> run_layer(const finance::Contract& contract, const finance::Layer& layer,
                             const data::YearEventLossTable& yelt,
                             const EngineConfig& config) {
  finance::Portfolio single;
  single.add(finance::Contract(contract.id(), contract.elt(), {layer}, contract.region(),
                               contract.lob(), contract.peril()));
  EngineConfig cfg = config;
  cfg.keep_contract_ylts = false;
  cfg.compute_oep = false;
  // The single-contract portfolio copies the ELT, so its resolution is
  // keyed to a temporary — keep it out of the shared cache.
  data::ResolverCache local_cache;
  cfg.resolver_cache = &local_cache;
  auto result = run_aggregate_analysis(single, yelt, cfg);
  auto losses = result.portfolio_ylt.losses();
  return std::vector<Money>(losses.begin(), losses.end());
}

}  // namespace riskan::core
