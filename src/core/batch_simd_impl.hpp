// Width-generic body of the vectorized trial kernel — included by the
// per-ISA TUs (batch_simd_avx2.cpp / batch_simd_neon.cpp), which each
// supply a VecOps policy and stamp one kernel.
//
// A VecOps policy provides:
//   static constexpr std::size_t kWidth;     Money lanes per vector
//   using Vec;                               the vector type
//   Vec broadcast(Money) / load(const Money*) / store(Money*, Vec)
//   Vec mul / sub / min(Vec, Vec)
//   Vec gt_mask(Vec, Vec)                    all-ones lanes where a > b
//   Vec mask_and(Vec, Vec)                   bitwise and (value ∧ mask)
//   Vec gather(const Money* base, const std::uint32_t* idx)
//   MaskedGather gather_masked(const Money* base, const std::uint32_t* rows)
//       — kNoLoss rows become 0.0 lanes without touching memory; returns
//         {Vec values, unsigned found}.
//
// Shape: trials are walked in blocks of kTrialBlock; per (group, block)
// the vector paths compute occurrence losses for the block's contiguous
// hit range in kOccChunk-sized stack chunks (a pure vector pass — gather,
// scale, terms, store), then a scalar fold pass consumes each chunk in
// occurrence order, advancing a trial cursor over the CSR offsets. One
// extern finish call per (slot, block) flushes the annual sums. This keeps
// the hot loops long (the per-trial hit count is typically ~a dozen) and
// the portable-TU call overhead off the per-trial path.
//
// Bit-identity contract (tests enforce; docs/architecture.md documents):
// every lane computes exactly the scalar finance::apply_occurrence —
//   Deductible: excess = gu - ret; excess > 0 ? min(excess, lim) : 0
//   Franchise:  gu > ret ? min(gu, lim) : 0
// via sub/min/compare-mask on the same operands (IEEE ops are correctly
// rounded, min of distinct positives picks the same value, the masked-out
// lanes are exact +0.0), and the fold pass consumes the occurrence losses
// in occurrence order per (slot, trial), so every reduction order is the
// scalar kernel's. No FMA, no reassociation, no reduced precision
// anywhere.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/batch_simd.hpp"
#include "data/elt.hpp"
#include "finance/terms.hpp"

namespace riskan::core::batch {

namespace impl {

/// Trials per finish batch (bounds the stack annuals buffer).
inline constexpr std::size_t kTrialBlock = 1024;
/// Occurrences per vector chunk (bounds the stack occ/ground-up buffers;
/// 2048 Money = 16 KiB each, L1/L2-resident with the gather sources).
inline constexpr std::size_t kOccChunk = 2048;

/// How the kernel runs one (group, block).
enum class GroupClass : std::uint8_t {
  VecCompact,  ///< singleton compact group, no mask column
  VecDense,    ///< singleton dense group, secondary off
  Scalar,      ///< everything else → batch::process_trials fallback
};

inline GroupClass classify(const Slot* gs, std::uint32_t gsize, bool secondary) noexcept {
  (void)secondary;  // secondary-on now rides both vector paths (batched sampling)
  if (gsize != 1) {
    return GroupClass::Scalar;
  }
  const Slot& s = gs[0];
  if (s.gather == Gather::Compact) {
    // loss_scale / conditioned_ground_up vectorize; a mask column re-keys
    // sampling per lane and stays scalar.
    return s.mask_seq == nullptr ? GroupClass::VecCompact : GroupClass::Scalar;
  }
  if (s.gather == Gather::Dense) {
    return GroupClass::VecDense;
  }
  return GroupClass::Scalar;
}

/// The occurrence algebra on W lanes; see the header contract above.
template <typename V>
inline typename V::Vec occurrence_lanes(const finance::LayerTerms& terms,
                                        typename V::Vec gu) noexcept {
  const auto ret = V::broadcast(terms.occ_retention);
  const auto lim = V::broadcast(terms.occ_limit);
  if (terms.retention_kind == finance::RetentionKind::Deductible) {
    const auto excess = V::sub(gu, ret);
    return V::mask_and(V::min(excess, lim), V::gt_mask(excess, V::broadcast(0.0)));
  }
  return V::mask_and(V::min(gu, lim), V::gt_mask(gu, ret));
}

/// One vector-compact (slot, block): chunked vector pass over the block's
/// hit range, occurrence-order fold with a trial cursor, one batched
/// finish.
template <typename V>
inline void vec_compact_block(const Slot& s, const Philox4x32& philox, bool secondary,
                              TrialId trial_base, TrialId t0, TrialId t1,
                              std::span<const std::uint64_t> yelt_offsets,
                              SimdStats& stats) {
  constexpr std::size_t W = V::kWidth;
  alignas(64) Money occ_chunk[kOccChunk];
  alignas(64) Money gu_chunk[kOccChunk];
  Money annuals[kTrialBlock];
  const bool conditioned = s.conditioned_ground_up >= 0.0;
  for (TrialId t = t0; t < t1; ++t) {
    annuals[t - t0] = conditioned ? detail::conditioned_annual_slot(s, t) : 0.0;
  }

  const std::uint64_t h0 = s.hit_offsets[t0];
  const std::uint64_t h1 = s.hit_offsets[t1];
  const Money scale = s.loss_scale;
  const bool scaled = scale != 1.0;
  const auto vscale = V::broadcast(scale);
  Money* const accum = s.occurrence_accum;
  const Money share = s.terms.share;

  TrialId t = t0;  // fold cursor: the trial whose hits are being consumed
  for (std::uint64_t c0 = h0; c0 < h1; c0 += kOccChunk) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kOccChunk, h1 - c0));
    const std::uint32_t* rows = s.rows + c0;
    const std::uint32_t* seqs = s.seqs + c0;
    const Money* gu = gu_chunk;
    if (secondary) {
      detail::fill_ground_up_compact_range(s, philox, trial_base, t, c0, c0 + n, gu_chunk,
                                           stats);
    }

    std::size_t k = 0;
    for (; k + W <= n; k += W) {
      auto v = secondary ? V::load(gu + k) : V::gather(s.means, rows + k);
      if (scaled) {
        v = V::mul(v, vscale);
      }
      V::store(occ_chunk + k, occurrence_lanes<V>(s.terms, v));
    }
    stats.vector_occurrences += k;
    stats.tail_occurrences += n - k;
    for (; k < n; ++k) {
      Money g = secondary ? gu[k] : s.means[rows[k]];
      if (scaled) {
        g *= scale;
      }
      occ_chunk[k] = finance::apply_occurrence(s.terms, g);
    }

    // Occurrence-order fold, one CSR trial segment at a time: the annual
    // sums and the OEP accumulator see the losses exactly as the scalar
    // loop would, with the annual in a register per segment.
    std::size_t j = 0;
    while (j < n) {
      while (c0 + j >= s.hit_offsets[t + 1]) {
        ++t;
      }
      const std::size_t seg_end =
          static_cast<std::size_t>(std::min<std::uint64_t>(s.hit_offsets[t + 1] - c0, n));
      Money a = annuals[t - t0];
      if (accum != nullptr) {
        const std::uint64_t trial_begin = yelt_offsets[t];
        for (; j < seg_end; ++j) {
          const Money occ = occ_chunk[j];
          a += occ;
          if (occ > 0.0) {
            accum[trial_begin + seqs[j]] += occ * share;
          }
        }
      } else {
        for (; j < seg_end; ++j) {
          a += occ_chunk[j];
        }
      }
      annuals[t - t0] = a;
    }
  }
  detail::finish_slot_trials_out(s, t0, t1, annuals);
}

/// One vector-dense (slot, block): the block's full occurrence range,
/// kNoLoss rows as masked gather lanes (secondary off) or sampled into the
/// ground-up buffer with sentinels as exact +0.0 (secondary on — the fill
/// and the batched sampler live in portable TUs). Returns the found-lookup
/// count (scalar parity). Dense slots have inert transforms by plan
/// contract, so every annual base is 0.
template <typename V>
inline std::uint64_t vec_dense_block(const Slot& s, const Philox4x32& philox,
                                     bool secondary, TrialId trial_base, TrialId t0,
                                     TrialId t1,
                                     std::span<const std::uint64_t> yelt_offsets,
                                     SimdStats& stats) {
  constexpr std::size_t W = V::kWidth;
  alignas(64) Money occ_chunk[kOccChunk];
  alignas(64) Money gu_chunk[kOccChunk];
  Money annuals[kTrialBlock];
  std::fill(annuals, annuals + (t1 - t0), 0.0);

  const std::uint64_t h0 = yelt_offsets[t0];
  const std::uint64_t h1 = yelt_offsets[t1];
  Money* const accum = s.occurrence_accum;
  const Money share = s.terms.share;
  std::uint64_t found = 0;

  TrialId t = t0;
  for (std::uint64_t c0 = h0; c0 < h1; c0 += kOccChunk) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kOccChunk, h1 - c0));
    const std::uint32_t* dense = s.dense_rows + c0;
    const Money* gu = gu_chunk;
    if (secondary) {
      found += detail::fill_ground_up_dense_range(s, philox, trial_base, t, yelt_offsets,
                                                  c0, c0 + n, gu_chunk, stats);
    }

    std::size_t k = 0;
    for (; k + W <= n; k += W) {
      // Masked-out lanes gather (or fill as) exact +0.0;
      // apply_occurrence(terms, 0) is +0.0 for both retention kinds
      // (retention ≥ 0 by terms.validate), and the annual sum is a sum of
      // non-negatives, so adding those lanes in place of the scalar
      // `continue` never changes a bit.
      if (secondary) {
        V::store(occ_chunk + k, occurrence_lanes<V>(s.terms, V::load(gu + k)));
      } else {
        const auto mg = V::gather_masked(s.means, dense + k);
        found += mg.found;
        V::store(occ_chunk + k, occurrence_lanes<V>(s.terms, mg.values));
      }
    }
    stats.vector_occurrences += k;
    stats.tail_occurrences += n - k;
    for (; k < n; ++k) {
      if (secondary) {
        occ_chunk[k] = finance::apply_occurrence(s.terms, gu[k]);
        continue;
      }
      const std::uint32_t row = dense[k];
      if (row == data::ResolvedYelt::kNoLoss) {
        occ_chunk[k] = 0.0;
        continue;
      }
      ++found;
      occ_chunk[k] = finance::apply_occurrence(s.terms, s.means[row]);
    }

    std::size_t j = 0;
    while (j < n) {
      while (c0 + j >= yelt_offsets[t + 1]) {
        ++t;
      }
      const std::size_t seg_end =
          static_cast<std::size_t>(std::min<std::uint64_t>(yelt_offsets[t + 1] - c0, n));
      Money a = annuals[t - t0];
      if (accum != nullptr) {
        for (; j < seg_end; ++j) {
          const Money occ = occ_chunk[j];
          a += occ;
          if (occ > 0.0) {
            accum[c0 + j] += occ * share;
          }
        }
      } else {
        for (; j < seg_end; ++j) {
          a += occ_chunk[j];
        }
      }
      annuals[t - t0] = a;
    }
  }
  detail::finish_slot_trials_out(s, t0, t1, annuals);
  return found;
}

/// The kernel: per (group, trial-block) classification, vector paths for
/// the singleton compact/dense regimes, batch::process_trials for the
/// rest. The block loop is outermost and groups run in plan order, so
/// shared output cells accumulate in the scalar kernel's order.
template <typename V>
std::uint64_t process_trials_simd(std::span<const Slot> slots, std::span<const Group> groups,
                                  std::span<const std::uint64_t> yelt_offsets,
                                  const Philox4x32& philox, bool secondary,
                                  TrialId trial_base, TrialId lo, TrialId hi,
                                  std::span<Money> annual_scratch, SimdStats& stats) {
  std::uint64_t found = 0;
  for (TrialId b0 = lo; b0 < hi; b0 += static_cast<TrialId>(kTrialBlock)) {
    const TrialId b1 = std::min<TrialId>(hi, b0 + static_cast<TrialId>(kTrialBlock));
    for (const Group& group : groups) {
      const Slot* gs = slots.data() + group.begin;
      switch (classify(gs, group.size, secondary)) {
        case GroupClass::VecCompact:
          vec_compact_block<V>(gs[0], philox, secondary, trial_base, b0, b1, yelt_offsets,
                               stats);
          break;
        case GroupClass::VecDense:
          found += vec_dense_block<V>(gs[0], philox, secondary, trial_base, b0, b1,
                                      yelt_offsets, stats);
          break;
        case GroupClass::Scalar: {
          // Bit-identical by construction: the scalar kernel itself, one
          // (group, block) at a time (trial-major group order within the
          // block preserved per shared output cell — see the header).
          const Group local{0, group.size};
          found += process_trials(std::span<const Slot>(gs, group.size), {&local, 1},
                                  yelt_offsets, philox, secondary, trial_base, b0, b1,
                                  annual_scratch);
          stats.scalar_occurrences +=
              gs[0].gather == Gather::Compact
                  ? gs[0].hit_offsets[b1] - gs[0].hit_offsets[b0]
                  : yelt_offsets[b1] - yelt_offsets[b0];
          break;
        }
      }
    }
  }
  return found;
}

/// Generic body of apply_occurrence_lanes for one ISA: full-width chunks
/// through the vector algebra, scalar remainder.
template <typename V>
void apply_occurrence_lanes_impl(const finance::LayerTerms& terms, const Money* ground_up,
                                 std::size_t n, Money* occ) {
  constexpr std::size_t W = V::kWidth;
  std::size_t k = 0;
  for (; k + W <= n; k += W) {
    V::store(occ + k, occurrence_lanes<V>(terms, V::load(ground_up + k)));
  }
  for (; k < n; ++k) {
    occ[k] = finance::apply_occurrence(terms, ground_up[k]);
  }
}

}  // namespace impl

}  // namespace riskan::core::batch
