#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::core {

namespace {

std::vector<double> sorted_losses(const data::YearLossTable& ylt) {
  const auto losses = ylt.losses();
  std::vector<double> sorted(losses.begin(), losses.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

Money value_at_risk(const data::YearLossTable& ylt, double p) {
  RISKAN_REQUIRE(!ylt.empty(), "VaR of an empty YLT");
  const auto sorted = sorted_losses(ylt);
  return quantile_sorted(sorted, p);
}

Money tail_value_at_risk(const data::YearLossTable& ylt, double p) {
  RISKAN_REQUIRE(!ylt.empty(), "TVaR of an empty YLT");
  const auto sorted = sorted_losses(ylt);
  return tail_mean_above(sorted, p);
}

Money probable_maximum_loss(const data::YearLossTable& ylt, double return_period_years) {
  RISKAN_REQUIRE(return_period_years > 1.0, "PML needs a return period above 1 year");
  return value_at_risk(ylt, 1.0 - 1.0 / return_period_years);
}

std::vector<EpPoint> exceedance_curve(const data::YearLossTable& ylt,
                                      std::span<const double> return_periods) {
  RISKAN_REQUIRE(!ylt.empty(), "EP curve of an empty YLT");
  const auto sorted = sorted_losses(ylt);
  std::vector<EpPoint> curve;
  curve.reserve(return_periods.size());
  for (const double rp : return_periods) {
    RISKAN_REQUIRE(rp > 1.0, "return periods must exceed 1 year");
    EpPoint point;
    point.return_period_years = rp;
    point.exceedance_probability = 1.0 / rp;
    point.loss = quantile_sorted(sorted, 1.0 - 1.0 / rp);
    curve.push_back(point);
  }
  return curve;
}

std::vector<double> standard_return_periods() {
  return {2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};
}

RiskSummary summarise(const data::YearLossTable& ylt) {
  RISKAN_REQUIRE(!ylt.empty(), "summary of an empty YLT");
  const auto sorted = sorted_losses(ylt);

  OnlineStats stats;
  for (const double loss : sorted) {
    stats.add(loss);
  }

  RiskSummary out;
  out.mean_annual_loss = stats.mean();
  out.stdev_annual_loss = std::sqrt(stats.sample_variance());
  out.var_95 = quantile_sorted(sorted, 0.95);
  out.var_99 = quantile_sorted(sorted, 0.99);
  out.var_99_6 = quantile_sorted(sorted, 1.0 - 1.0 / 250.0);
  out.tvar_99 = tail_mean_above(sorted, 0.99);
  out.pml_100 = quantile_sorted(sorted, 1.0 - 1.0 / 100.0);
  out.pml_250 = out.var_99_6;
  out.max_loss = sorted.back();
  return out;
}

}  // namespace riskan::core
