// Real-time pricing — the paper's stage-2 payoff.
//
// "A 1 million trial aggregate simulation on a typical contract only takes
// 25 seconds and can therefore support real-time pricing."
//
// The RealTimePricer runs a single-layer aggregate simulation against the
// shared YELT and turns the resulting loss sample into a technical premium
// and rate on line. bench_e3_realtime_pricing measures the 1M-trial
// wall-clock; the quickstart example prices a layer end to end.
#pragma once

#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"
#include "finance/premium.hpp"

namespace riskan::core {

/// A priced layer.
struct PricingQuote {
  finance::LossStatistics loss_stats;
  Money technical_premium = 0.0;
  double rate_on_line = 0.0;
  Money pml_250 = 0.0;
  double seconds = 0.0;       ///< simulation wall-clock
  TrialId trials = 0;
};

class RealTimePricer {
 public:
  /// The pricer keeps a reference to the pre-simulated YELT — the
  /// "consistent lens" shared by every quote.
  RealTimePricer(const data::YearEventLossTable& yelt, EngineConfig config = {},
                 finance::PricingTerms pricing = {});

  /// Prices one layer of one contract.
  PricingQuote price(const finance::Contract& contract, const finance::Layer& layer) const;

 private:
  const data::YearEventLossTable& yelt_;
  EngineConfig config_;
  finance::PricingTerms pricing_;
};

}  // namespace riskan::core
