#include "core/allocation.hpp"

#include <algorithm>
#include <cmath>

#include "core/metrics.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::core {

AllocationResult allocate_co_tvar(std::span<const data::YearLossTable> components,
                                  const data::YearLossTable& total, double p) {
  RISKAN_REQUIRE(!components.empty(), "allocation needs components");
  RISKAN_REQUIRE(!total.empty(), "allocation needs a total YLT");
  RISKAN_REQUIRE(p > 0.0 && p < 1.0, "allocation level must lie in (0,1)");
  for (const auto& component : components) {
    RISKAN_REQUIRE(component.trials() == total.trials(),
                   "component YLT trials must align with the total");
  }

  const TrialId trials = total.trials();

  // Verify the decomposition on a sample of trials (full check would be
  // O(components x trials); the property must hold by construction).
  for (TrialId t = 0; t < trials; t += std::max<TrialId>(1, trials / 64)) {
    Money sum = 0.0;
    for (const auto& component : components) {
      sum += component[t];
    }
    RISKAN_REQUIRE(std::abs(sum - total[t]) <=
                       1e-6 * std::max<Money>(1.0, std::abs(total[t])),
                   "components do not sum to the total YLT");
  }

  AllocationResult result;
  result.level = p;
  result.enterprise_var = value_at_risk(total, p);

  // Tail membership: trials with total strictly above VaR (consistent with
  // tail_mean_above, so additivity against tail_value_at_risk is exact).
  std::vector<TrialId> tail;
  for (TrialId t = 0; t < trials; ++t) {
    if (total[t] > result.enterprise_var) {
      tail.push_back(t);
    }
  }
  result.tail_trials = tail.size();
  result.enterprise_tvar = tail_value_at_risk(total, p);

  result.components.reserve(components.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    const auto& component = components[i];
    Allocation allocation;
    allocation.component = component.label().empty()
                               ? "component-" + std::to_string(i)
                               : component.label();

    if (tail.empty()) {
      // Degenerate tail (all losses equal): fall back to the VaR itself,
      // split by standalone means.
      allocation.co_tvar = component.mean();
    } else {
      Money sum = 0.0;
      for (const TrialId t : tail) {
        sum += component[t];
      }
      allocation.co_tvar = sum / static_cast<double>(tail.size());
    }
    allocation.standalone_tvar = tail_value_at_risk(component, p);
    allocation.diversification_factor =
        allocation.standalone_tvar != 0.0
            ? allocation.co_tvar / allocation.standalone_tvar
            : 0.0;
    allocation.share_of_total = result.enterprise_tvar != 0.0
                                    ? allocation.co_tvar / result.enterprise_tvar
                                    : 0.0;
    result.components.push_back(std::move(allocation));
  }
  return result;
}

}  // namespace riskan::core
