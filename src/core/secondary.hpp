// Secondary uncertainty — sampling an actual loss around the ELT mean.
//
// Catastrophe models report, per event, a mean loss and a spread; the loss
// given that the event occurs is Beta-distributed on [0, exposure]
// (industry convention; see Meyers et al. [5] of the paper). Aggregate
// analysis optionally samples this distribution per (trial, event)
// occurrence, which is the dominant FLOP cost of stage 2.
//
// Determinism contract: the sample depends only on (seed, contract, layer,
// trial, occurrence-sequence) through a counter-based Philox stream, so all
// engine backends produce bit-identical YLTs regardless of scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "data/elt.hpp"
#include "util/aligned.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"

namespace riskan::core {

/// Precomputed per-ELT-row beta parameters (method of moments on the
/// normalised loss mean/sigma). Computing these once per table keeps the
/// per-occurrence hot path to a gamma-pair draw.
///
/// Two layouts over the same parameters: the AoS Param array serves the
/// scalar per-occurrence path (and device constant-memory packing), and a
/// cache-line-packed LaneRow array serves sample_lanes — the vector pass's
/// batched path, which draws all Philox blocks lane-parallel and runs the
/// Marsaglia–Tsang first-attempt fast path per lane, falling back to the
/// scalar sampler (fresh stream, in occurrence order) for the rejection
/// tail. Fallback recomputes from the stream's start, so a bail at any
/// point costs draws, never correctness. Occurrence rows arrive in random
/// catalogue order, so everything the fast path touches for one row —
/// squeeze constants for both marginals, boost exponents, exposure, flags
/// — is packed into exactly one 64-byte line.
class SecondarySampler {
 public:
  /// Precomputes parameters for every row of `elt`.
  explicit SecondarySampler(const data::EventLossTable& elt);

  /// Samples the loss for ELT row `row` under stream `stream`.
  /// Mean of the samples converges to the row's mean_loss.
  template <typename Rng>
  Money sample(std::size_t row, Rng& rng) const {
    const Param& p = params_[row];
    if (p.degenerate) {
      return p.exposure * p.mean_ratio;
    }
    return p.exposure * sample_beta(rng, p.alpha, p.beta);
  }

  /// Batched sampling for the vector pass: out[i] = sample(rows[i], s_i)
  /// where s_i is the occurrence stream (engine, hi_key, lo[i]) — exactly
  /// what the scalar kernel would construct per occurrence. `fast` / `tail`
  /// count occurrences resolved by the lane fast path (degenerate rows
  /// included) vs the scalar rejection-tail fallback.
  void sample_lanes(const Philox4x32& engine, std::uint64_t hi_key,
                    const std::uint32_t* rows, const std::uint64_t* lo, std::size_t n,
                    Money* out, std::uint64_t& fast, std::uint64_t& tail) const;

  std::size_t size() const noexcept { return params_.size(); }

  /// Parameter bytes (device chunk planning).
  std::size_t byte_size() const noexcept { return params_.size() * sizeof(Param); }

  struct Param {
    double alpha = 1.0;
    double beta = 1.0;
    Money exposure = 0.0;
    double mean_ratio = 0.0;
    bool degenerate = false;
  };

  const Param& param(std::size_t row) const { return params_[row]; }

 private:
  // Row classification bits of LaneRow::flags.
  static constexpr std::uint32_t kDegenerate = 1;  ///< no draws; value precomputed
  static constexpr std::uint32_t kBoostAlpha = 2;  ///< alpha < 1: one boost uniform
  static constexpr std::uint32_t kBoostBeta = 4;   ///< beta < 1: one boost uniform

  /// One cache line of everything sample_lanes reads for a row. The squeeze
  /// constants are precomputed per gamma marginal with the boosted shape
  /// where the scalar sampler would boost, via the same expressions
  /// sample_gamma evaluates — so the committed fast-path values are
  /// bit-identical. Degenerate rows stash their precomputed value in d_a
  /// (the gamma constants are never read for them).
  struct alignas(64) LaneRow {
    double d_a = 0.0;   ///< alpha marginal: shape - 1/3 (degenerate: the value)
    double c_a = 0.0;   ///< alpha marginal: 1/sqrt(9 d)
    double inv_a = 0.0; ///< 1/alpha (read only when kBoostAlpha)
    double d_b = 0.0;
    double c_b = 0.0;
    double inv_b = 0.0;
    Money exposure = 0.0;
    std::uint32_t flags = 0;
    std::uint32_t pad_ = 0;
  };
  static_assert(sizeof(LaneRow) == 64, "LaneRow must fill one cache line");

  std::vector<Param> params_;
  util::AlignedVector<LaneRow> lane_rows_;
};

/// Builds the Philox stream for one (contract, layer, trial, occurrence).
inline PhiloxStream occurrence_stream(const Philox4x32& engine, ContractId contract,
                                      LayerId layer, TrialId trial,
                                      std::uint32_t occurrence_seq) noexcept {
  const std::uint64_t hi =
      (static_cast<std::uint64_t>(contract) << 16) | static_cast<std::uint64_t>(layer);
  const std::uint64_t lo =
      (static_cast<std::uint64_t>(trial) << 20) | static_cast<std::uint64_t>(occurrence_seq);
  return PhiloxStream(engine, hi, lo);
}

}  // namespace riskan::core
