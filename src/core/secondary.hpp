// Secondary uncertainty — sampling an actual loss around the ELT mean.
//
// Catastrophe models report, per event, a mean loss and a spread; the loss
// given that the event occurs is Beta-distributed on [0, exposure]
// (industry convention; see Meyers et al. [5] of the paper). Aggregate
// analysis optionally samples this distribution per (trial, event)
// occurrence, which is the dominant FLOP cost of stage 2.
//
// Determinism contract: the sample depends only on (seed, contract, layer,
// trial, occurrence-sequence) through a counter-based Philox stream, so all
// engine backends produce bit-identical YLTs regardless of scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "data/elt.hpp"
#include "util/distributions.hpp"
#include "util/prng.hpp"

namespace riskan::core {

/// Precomputed per-ELT-row beta parameters (method of moments on the
/// normalised loss mean/sigma). Computing these once per table keeps the
/// per-occurrence hot path to a gamma-pair draw.
class SecondarySampler {
 public:
  /// Precomputes parameters for every row of `elt`.
  explicit SecondarySampler(const data::EventLossTable& elt);

  /// Samples the loss for ELT row `row` under stream `stream`.
  /// Mean of the samples converges to the row's mean_loss.
  template <typename Rng>
  Money sample(std::size_t row, Rng& rng) const {
    const Param& p = params_[row];
    if (p.degenerate) {
      return p.exposure * p.mean_ratio;
    }
    return p.exposure * sample_beta(rng, p.alpha, p.beta);
  }

  std::size_t size() const noexcept { return params_.size(); }

  /// Parameter bytes (device chunk planning).
  std::size_t byte_size() const noexcept { return params_.size() * sizeof(Param); }

  struct Param {
    double alpha = 1.0;
    double beta = 1.0;
    Money exposure = 0.0;
    double mean_ratio = 0.0;
    bool degenerate = false;
  };

  const Param& param(std::size_t row) const { return params_[row]; }

 private:
  std::vector<Param> params_;
};

/// Builds the Philox stream for one (contract, layer, trial, occurrence).
inline PhiloxStream occurrence_stream(const Philox4x32& engine, ContractId contract,
                                      LayerId layer, TrialId trial,
                                      std::uint32_t occurrence_seq) noexcept {
  const std::uint64_t hi =
      (static_cast<std::uint64_t>(contract) << 16) | static_cast<std::uint64_t>(layer);
  const std::uint64_t lo =
      (static_cast<std::uint64_t>(trial) << 20) | static_cast<std::uint64_t>(occurrence_seq);
  return PhiloxStream(engine, hi, lo);
}

}  // namespace riskan::core
