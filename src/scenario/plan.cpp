#include "scenario/plan.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace riskan::scenario {

namespace {

/// Publishes the planner's dedupe savings to the global registry: how many
/// resolutions and masks the sharing avoided, per plan build.
void publish_plan_stats(const PlanStats& stats) {
  static const obs::Counter plans =
      obs::MetricsRegistry::global().counter("scenario.plans_built");
  static const obs::Counter scenarios =
      obs::MetricsRegistry::global().counter("scenario.scenarios_planned");
  static const obs::Counter resolutions_avoided =
      obs::MetricsRegistry::global().counter("scenario.resolutions_avoided");
  static const obs::Counter masks_deduped =
      obs::MetricsRegistry::global().counter("scenario.masks_deduped");
  plans.add();
  scenarios.add(static_cast<double>(stats.scenarios));
  resolutions_avoided.add(static_cast<double>(stats.resolutions_avoided));
  masks_deduped.add(
      static_cast<double>(stats.mask_references - stats.distinct_masks));
}

}  // namespace

MaskColumn MaskColumn::build(const data::YearEventLossTable& yelt,
                             std::span<const EventId> excluded_events,
                             ParallelConfig cfg) {
  MaskColumn mask;
  mask.adjusted_seq.resize(yelt.entries());
  const auto offsets = yelt.offsets();
  const auto events = yelt.events();
  const auto excluded_begin = excluded_events.begin();
  const auto excluded_end = excluded_events.end();

  std::uint32_t* out = mask.adjusted_seq.data();
  RISKAN_DEBUG_ASSERT_ALIGNED(out);
  const std::uint64_t excluded_total = parallel_reduce<std::uint64_t>(
      0, yelt.trials(), 0,
      [&](std::size_t lo, std::size_t hi) {
        std::uint64_t excluded = 0;
        for (std::size_t t = lo; t < hi; ++t) {
          std::uint32_t excluded_before = 0;
          for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
            if (std::binary_search(excluded_begin, excluded_end, events[i])) {
              out[i] = core::batch::kMaskedOut;
              ++excluded_before;
            } else {
              out[i] = static_cast<std::uint32_t>(i - offsets[t]) - excluded_before;
            }
          }
          excluded += excluded_before;
        }
        return excluded;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, cfg);
  mask.excluded_occurrences = excluded_total;
  return mask;
}

ScenarioPlan ScenarioPlan::build(const finance::Portfolio& base,
                                 const data::YearEventLossTable& yelt,
                                 std::span<const ScenarioSpec> specs,
                                 data::ResolverCache* cache, ParallelConfig cfg) {
  RISKAN_REQUIRE(!base.empty(), "scenario plan needs a non-empty base book");
  RISKAN_REQUIRE(yelt.trials() > 0, "scenario plan needs a YELT with trials");

  ScenarioPlan plan;
  plan.stats_.scenarios = specs.size();

  // 1. Contract universe: base book order, then added contracts in
  //    first-reference order (pointer identity — referents are pinned by
  //    the spec's lifetime contract).
  for (const finance::Contract& contract : base.contracts()) {
    plan.contracts_.push_back(&contract);
  }
  const std::size_t base_count = plan.contracts_.size();
  for (const ScenarioSpec& spec : specs) {
    for (const finance::Contract* added : spec.added_contracts) {
      if (std::find(plan.contracts_.begin(), plan.contracts_.end(), added) ==
          plan.contracts_.end()) {
        plan.contracts_.push_back(added);
      }
    }
  }

  // 2. One resolution per distinct contract, shared through the cache.
  obs::Timer resolve_timer("scenario.plan_resolve");
  std::vector<const data::EventLossTable*> elts;
  elts.reserve(plan.contracts_.size());
  for (const finance::Contract* contract : plan.contracts_) {
    elts.push_back(&contract->elt());
  }
  plan.resolution_ = data::MultiResolution::build(elts, yelt, cache, cfg);
  plan.resolve_seconds_ = resolve_timer.stop();
  plan.stats_.contracts_resolved = plan.contracts_.size();

  // 3. Mask dedupe by excluded-set content (specs are normalised, so
  //    equality is a plain vector compare).
  std::vector<const std::vector<EventId>*> mask_keys;
  std::vector<int> mask_of_scenario(specs.size(), -1);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const auto& excluded = specs[s].excluded_events;
    if (excluded.empty()) {
      continue;
    }
    ++plan.stats_.mask_references;
    std::size_t m = 0;
    while (m < mask_keys.size() && *mask_keys[m] != excluded) {
      ++m;
    }
    if (m == mask_keys.size()) {
      mask_keys.push_back(&excluded);
      plan.masks_.push_back(MaskColumn::build(yelt, excluded, cfg));
      plan.mask_excluded_.push_back(excluded);
    }
    mask_of_scenario[s] = static_cast<int>(m);
  }
  plan.stats_.distinct_masks = plan.masks_.size();

  // 4. Per-scenario books as plan-contract indices, plus the inverse map
  //    used during slot emission. Overrides are checked against the book
  //    here so a sweep cannot silently target a contract or layer that is
  //    not in the scenario.
  plan.scenario_books_.resize(specs.size());
  std::vector<std::vector<int>> book_position(
      specs.size(), std::vector<int>(plan.contracts_.size(), -1));
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const ScenarioSpec& spec = specs[s];
    auto& book = plan.scenario_books_[s];
    auto dropped = [&](ContractId id) {
      return std::find(spec.dropped_contracts.begin(), spec.dropped_contracts.end(),
                       id) != spec.dropped_contracts.end();
    };
    for (std::size_t c = 0; c < base_count; ++c) {
      if (!dropped(plan.contracts_[c]->id())) {
        book_position[s][c] = static_cast<int>(book.size());
        book.push_back(c);
      }
    }
    for (const finance::Contract* added : spec.added_contracts) {
      const std::size_t c =
          std::find(plan.contracts_.begin(), plan.contracts_.end(), added) -
          plan.contracts_.begin();
      RISKAN_REQUIRE(book_position[s][c] < 0,
                     "scenario adds a contract already in its book");
      book_position[s][c] = static_cast<int>(book.size());
      book.push_back(c);
    }
    RISKAN_REQUIRE(!book.empty(), "scenario leaves no contracts in the book");
    plan.stats_.resolutions_avoided += book.size();

    for (const TargetedOverride& o : spec.overrides) {
      bool contract_found = false;
      for (const std::size_t c : book) {
        if (plan.contracts_[c]->id() != o.contract) {
          continue;
        }
        contract_found = true;
        if (o.layer != TargetedOverride::kAllLayers) {
          const auto& layers = plan.contracts_[c]->layers();
          const bool layer_found =
              std::any_of(layers.begin(), layers.end(),
                          [&](const finance::Layer& l) { return l.id == o.layer; });
          RISKAN_REQUIRE(layer_found, "override targets a layer the contract lacks");
        }
      }
      RISKAN_REQUIRE(contract_found,
                     "override targets a contract outside the scenario's book");
    }
  }
  plan.stats_.resolutions_avoided -= plan.stats_.contracts_resolved;

  // 5. Blueprint emission in pass order: (contract, layer)-major, scenarios
  //    innermost, so the executor's gather groups resolve each occurrence's
  //    ground-up loss once and serve every scenario.
  std::vector<bool> conditioning_hits(specs.size(), false);
  for (std::size_t c = 0; c < plan.contracts_.size(); ++c) {
    const finance::Contract& contract = *plan.contracts_[c];

    // Conditioned ground-up per scenario (contract-level, shared by all of
    // its layers, pre-scaled by intensity and the scenario's loss scale).
    std::vector<Money> conditioned(specs.size(), -1.0);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      if (book_position[s][c] < 0 || !specs[s].conditioning) {
        continue;
      }
      const auto row = contract.elt().find(specs[s].conditioning->event);
      if (row == data::EventLossTable::npos) {
        continue;
      }
      conditioned[s] = contract.elt().mean_loss()[row] *
                       specs[s].conditioning->intensity_scale * specs[s].loss_scale;
      conditioning_hits[s] = true;
    }

    for (const finance::Layer& layer : contract.layers()) {
      bool group_emitted = false;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        if (book_position[s][c] < 0) {
          continue;
        }
        const ScenarioSpec& spec = specs[s];
        SlotBlueprint bp;
        bp.scenario = s;
        bp.contract = c;
        bp.contract_in_scenario = static_cast<std::size_t>(book_position[s][c]);
        bp.layer_id = layer.id;
        bp.terms = layer.terms;
        bp.reinstatements = layer.reinstatements;
        bp.upfront_premium = layer.upfront_premium;
        for (const TargetedOverride& o : spec.overrides) {
          if (o.contract == contract.id() &&
              (o.layer == TargetedOverride::kAllLayers || o.layer == layer.id)) {
            o.override.apply(bp.terms, bp.reinstatements, bp.upfront_premium);
          }
        }
        bp.loss_scale = spec.loss_scale;
        bp.mask = mask_of_scenario[s];
        bp.conditioned_ground_up = conditioned[s];
        plan.blueprints_.push_back(bp);
        group_emitted = true;
      }
      if (group_emitted) {
        ++plan.stats_.gather_groups;
      }
    }
  }
  plan.stats_.slots = plan.blueprints_.size();

  // A conditioned event that no contract of the scenario's book models
  // would silently degenerate the scenario into the identity — zero deltas
  // read as "no impact" when the real answer is "wrong event id".
  for (std::size_t s = 0; s < specs.size(); ++s) {
    RISKAN_REQUIRE(!specs[s].conditioning || conditioning_hits[s],
                   "conditioning event is in no contract ELT of the scenario's book");
  }
  publish_plan_stats(plan.stats_);
  return plan;
}

void ScenarioPlan::rebind(const data::YearEventLossTable& yelt, data::ResolverCache* cache,
                          ParallelConfig cfg) {
  RISKAN_REQUIRE(!contracts_.empty(), "rebind before build");
  RISKAN_REQUIRE(yelt.trials() > 0, "scenario plan needs a YELT with trials");

  obs::Timer resolve_timer("scenario.plan_resolve");
  std::vector<const data::EventLossTable*> elts;
  elts.reserve(contracts_.size());
  for (const finance::Contract* contract : contracts_) {
    elts.push_back(&contract->elt());
  }
  resolution_ = data::MultiResolution::build(elts, yelt, cache, cfg);
  resolve_seconds_ = resolve_timer.stop();

  for (std::size_t m = 0; m < masks_.size(); ++m) {
    masks_[m] = MaskColumn::build(yelt, mask_excluded_[m], cfg);
  }
}

}  // namespace riskan::scenario
