// Scenario sweep executor — S what-if variants on one streamed YELT pass.
//
// run_scenario_sweep extends the portfolio-batched engine's slot list
// (core::batch) so that the base book and every scenario variant ride the
// *same* trial-chunk pass: slots are ordered (contract, layer)-major with
// scenarios innermost, so each occurrence's ground-up loss — the beta
// sample that dominates stage-2 FLOPs — is resolved once per (contract,
// layer) and served to all S scenarios, each slot applying its own
// transform parameters (loss scale, exclusion mask, term overrides,
// conditioning) on the way to its own EngineResult.
//
// Two hard contracts, enforced by tests/test_scenario.cpp across backends ×
// secondary-uncertainty × grain sizes:
//   * the identity scenario is bit-identical to run_portfolio_batch on the
//     base book (the sweep is a pure extension of the batched pass);
//   * an exclusion-mask scenario is bit-identical to run_portfolio_batch on
//     the physically filtered YELT (filter_yelt) — masks are dropped
//     in-kernel with filtered-table sequence keys, not by rebuilding
//     tables.
//
// Backend behaviour matches the batched engine: the sweep's slot list is
// lowered through core::exec::ExecutionPlan and dispatched on the
// configured executor — Sequential runs the whole sweep inline off the
// pool; Threaded parallelises over trial chunks with the same trial_grain
// knob; DeviceSim runs the sweep in simulated device blocks with
// plan-decided constant-memory residency. Outputs are backend-invariant
// (the engine's determinism contract), so the backend changes wall-clock
// and telemetry only.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "data/yelt.hpp"
#include "obs/obs.hpp"
#include "finance/contract.hpp"
#include "scenario/plan.hpp"
#include "scenario/report.hpp"
#include "scenario/scenario.hpp"

namespace riskan::scenario {

struct ScenarioSweepResult {
  /// The unperturbed book, always computed — it rides the same pass and is
  /// the reference of every delta. Bit-identical to run_portfolio_batch.
  core::EngineResult base;
  /// One result per spec, indexed as passed.
  std::vector<core::EngineResult> scenarios;
  /// Deltas vs base (AAL, VaR/TVaR, PML, EP curves).
  ScenarioReport report;
  /// Work-dedupe telemetry from the planner.
  PlanStats plan;
  /// Whole-sweep wall-clock (plan + pass + report).
  double seconds = 0.0;
  /// End-of-run observability report when EngineConfig::obs requested one.
  std::shared_ptr<const obs::ObsReport> obs_report;
};

/// Runs every scenario in `specs` (plus the implicit base) over the book
/// with one streamed YELT pass. Specs are validated internally; referents
/// of added contracts must outlive the call. EngineConfig is honoured as in
/// run_portfolio_batch (backend, seed, secondary_uncertainty, compute_oep,
/// keep_contract_ylts, trial_grain, pool, trial_base, resolver_cache).
ScenarioSweepResult run_scenario_sweep(const finance::Portfolio& portfolio,
                                       const data::YearEventLossTable& yelt,
                                       std::span<const ScenarioSpec> specs,
                                       const core::EngineConfig& config = {});

/// The same sweep over any data::TrialSource — out-of-core what-if sweeps.
/// The in-memory overload wraps its table in a one-block InMemorySource and
/// calls this; a ChunkedFileSource streams the sweep over a book bigger
/// than RAM. Per block, the planner re-binds the same blueprint list
/// (masks and resolutions are rebuilt against the block, both trial-local)
/// onto the same execution plan, so streamed sweeps are bit-identical to
/// in-memory ones on every backend.
ScenarioSweepResult run_scenario_sweep(const finance::Portfolio& portfolio,
                                       data::TrialSource& source,
                                       std::span<const ScenarioSpec> specs,
                                       const core::EngineConfig& config = {});

}  // namespace riskan::scenario
