// Scenario specifications — declarative what-if perturbations of one book.
//
// The workloads the target paper motivates around stage 2 — pricing sweeps,
// post-event revisions ("Rapid Post-Event Catastrophe Modelling", DEXA'12,
// reference [2]), and the 100-scenario DFA sweeps sized in
// src/core/elasticity.hpp — all evaluate *many perturbed variants of one
// portfolio against one shared YELT*. A ScenarioSpec declares one variant
// as data, so the planner (plan.hpp) can dedupe the work the variants share
// and the executor (sweep.hpp) can ride every variant on a single streamed
// YELT pass:
//
//   * loss_scale        — demand-surge inflation: every ground-up loss
//                         (sampled or mean) is multiplied before terms;
//   * excluded_events   — per-event exclusion mask: the scenario behaves
//                         exactly as if those events were absent from the
//                         YELT (bit-identical to filter_yelt, tests enforce);
//   * overrides         — layer term overrides (attachment / limit / share /
//                         reinstatements) addressed by (contract, layer);
//   * dropped_contracts / added_contracts — book composition changes;
//   * conditioning      — intensity-scaled post-event conditioning: the
//                         given event is injected into every trial year at
//                         intensity_scale × its modelled mean loss. This
//                         subsumes core::PostEventAnalyzer's single-event
//                         what-if with the full conditional annual
//                         distribution (ΔAAL, ΔPML, ΔTVaR vs the base book).
//
// Every transform preserves the YELT's event-id structure, which is what
// lets the planner reuse one set of event→row resolutions for all
// scenarios; only *added contracts* introduce new ELTs to resolve.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/yelt.hpp"
#include "finance/contract.hpp"
#include "finance/terms.hpp"
#include "util/types.hpp"

namespace riskan::scenario {

/// Term override addressed to one layer of a contract, or to every layer of
/// the contract via kAllLayers. Matching overrides apply in spec order.
struct TargetedOverride {
  static constexpr LayerId kAllLayers = ~LayerId{0};

  ContractId contract = 0;
  LayerId layer = kAllLayers;
  finance::LayerOverride override;
};

/// Post-event conditioning: every trial year additionally experiences
/// `event` at intensity_scale × its modelled mean loss to each contract,
/// before the year's own occurrences. The injected occurrence is
/// deterministic (mean-based, like PostEventAnalyzer — early post-event
/// intensity estimates are revisions of the mean, not fresh samples) and is
/// subject to the scenario's loss_scale.
struct PostEventConditioning {
  EventId event = kInvalidEvent;
  double intensity_scale = 1.0;
};

struct ScenarioSpec {
  std::string name;

  double loss_scale = 1.0;
  /// Normalised (sorted, deduped) by validate().
  std::vector<EventId> excluded_events;
  std::vector<TargetedOverride> overrides;
  std::vector<ContractId> dropped_contracts;
  /// Contracts added to the book for this scenario. Referents must outlive
  /// the sweep (same lifetime contract as PortfolioBatchRunner::add).
  std::vector<const finance::Contract*> added_contracts;
  std::optional<PostEventConditioning> conditioning;

  /// True when every transform is inert — the scenario is the base book.
  bool is_identity() const noexcept;

  /// Normalises the exclusion mask (sort, dedupe) and checks invariants.
  void validate();

  static ScenarioSpec identity(std::string name = "base");
};

/// Physically applies the YELT side of a spec: a copy of `yelt` without the
/// excluded events' occurrences. This is the reference semantics of the
/// exclusion mask — the sweep's in-kernel mask is bit-identical to running
/// on this table (tests/test_scenario.cpp enforces it).
data::YearEventLossTable filter_yelt(const data::YearEventLossTable& yelt,
                                     std::span<const EventId> excluded_events);

/// Physically applies the book side of a spec: drops, adds, and term
/// overrides, preserving base contract order (survivors first, additions
/// after). Loss scaling, masks and conditioning are kernel-side transforms
/// and are not materialised here. Reference semantics for tests.
finance::Portfolio materialize_portfolio(const ScenarioSpec& spec,
                                         const finance::Portfolio& base);

}  // namespace riskan::scenario
