#include "scenario/report.hpp"

#include <ostream>

#include "util/format.hpp"
#include "util/report.hpp"
#include "util/require.hpp"

namespace riskan::scenario {

namespace {

ScenarioRow make_row(const std::string& name, const core::EngineResult& result,
                     std::span<const double> return_periods) {
  ScenarioRow row;
  row.name = name;
  row.aal = result.portfolio_ylt.mean();
  row.var_99 = core::value_at_risk(result.portfolio_ylt, 0.99);
  row.tvar_99 = core::tail_value_at_risk(result.portfolio_ylt, 0.99);
  row.pml_250 = core::probable_maximum_loss(result.portfolio_ylt, 250.0);
  for (const auto& point : core::exceedance_curve(result.portfolio_ylt, return_periods)) {
    row.aep.push_back(point.loss);
  }
  if (!result.portfolio_occurrence_ylt.empty()) {
    for (const auto& point :
         core::exceedance_curve(result.portfolio_occurrence_ylt, return_periods)) {
      row.oep.push_back(point.loss);
    }
  }
  return row;
}

void fill_deltas(ScenarioRow& row, const ScenarioRow& base) {
  row.delta_aal = row.aal - base.aal;
  row.delta_var_99 = row.var_99 - base.var_99;
  row.delta_tvar_99 = row.tvar_99 - base.tvar_99;
  row.delta_pml_250 = row.pml_250 - base.pml_250;
  row.delta_aep.resize(row.aep.size());
  for (std::size_t i = 0; i < row.aep.size(); ++i) {
    row.delta_aep[i] = row.aep[i] - base.aep[i];
  }
  row.delta_oep.resize(row.oep.size());
  for (std::size_t i = 0; i < row.oep.size() && i < base.oep.size(); ++i) {
    row.delta_oep[i] = row.oep[i] - base.oep[i];
  }
}

std::string signed_count(Money delta) {
  if (delta < 0.0) {
    return "-" + format_count(-delta);
  }
  return "+" + format_count(delta);
}

}  // namespace

ScenarioReport build_report(const core::EngineResult& base,
                            std::span<const core::EngineResult> results,
                            std::span<const ScenarioSpec> specs) {
  RISKAN_REQUIRE(results.size() == specs.size(),
                 "scenario results and specs must be parallel");
  ScenarioReport report;
  report.return_periods = core::standard_return_periods();
  report.base = make_row("base", base, report.return_periods);
  report.rows.reserve(results.size());
  for (std::size_t s = 0; s < results.size(); ++s) {
    report.rows.push_back(make_row(specs[s].name, results[s], report.return_periods));
    fill_deltas(report.rows.back(), report.base);
  }
  return report;
}

void ScenarioReport::print(std::ostream& os) const {
  ReportTable table({"scenario", "AAL", "dAAL", "VaR99", "dVaR99", "TVaR99", "dTVaR99",
                     "PML250", "dPML250"});
  table.add_row({base.name, format_count(base.aal), "-", format_count(base.var_99), "-",
                 format_count(base.tvar_99), "-", format_count(base.pml_250), "-"});
  for (const ScenarioRow& row : rows) {
    table.add_row({row.name, format_count(row.aal), signed_count(row.delta_aal),
                   format_count(row.var_99), signed_count(row.delta_var_99),
                   format_count(row.tvar_99), signed_count(row.delta_tvar_99),
                   format_count(row.pml_250), signed_count(row.delta_pml_250)});
  }
  table.print(os);
}

}  // namespace riskan::scenario
