// Scenario deltas — what a sweep reports to the decision maker.
//
// A what-if answer is a *difference*: what does excluding these events,
// re-striking this layer, or conditioning on that event do to the book's
// AAL, tail metrics and EP curves, relative to the base run that rode the
// same streamed pass? ScenarioReport carries, per scenario, the absolute
// metrics (core/metrics: AAL, VaR/TVaR 99, PML 250, AEP/OEP at the
// standard return periods) and their deltas vs base.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "core/metrics.hpp"
#include "scenario/scenario.hpp"
#include "util/types.hpp"

namespace riskan::scenario {

/// Metrics of one scenario (or the base book) and its deltas vs base.
struct ScenarioRow {
  std::string name;
  Money aal = 0.0;
  Money var_99 = 0.0;
  Money tvar_99 = 0.0;
  Money pml_250 = 0.0;
  Money delta_aal = 0.0;
  Money delta_var_99 = 0.0;
  Money delta_tvar_99 = 0.0;
  Money delta_pml_250 = 0.0;
  /// AEP losses at ScenarioReport::return_periods, and their deltas.
  std::vector<Money> aep;
  std::vector<Money> delta_aep;
  /// OEP losses / deltas; empty when the sweep ran with compute_oep off.
  std::vector<Money> oep;
  std::vector<Money> delta_oep;
};

struct ScenarioReport {
  std::vector<double> return_periods;  ///< core::standard_return_periods()
  ScenarioRow base;                    ///< deltas are all zero
  std::vector<ScenarioRow> rows;       ///< parallel to the sweep's specs

  /// Prints the delta table (AAL / VaR / TVaR / PML columns).
  void print(std::ostream& os) const;
};

/// Builds the report from finished engine results. `specs` provides names
/// and must be parallel to `results`.
ScenarioReport build_report(const core::EngineResult& base,
                            std::span<const core::EngineResult> results,
                            std::span<const ScenarioSpec> specs);

}  // namespace riskan::scenario
