// Scenario planner — dedupes the work an S-scenario sweep shares.
//
// Three dedupe levels, in decreasing order of cost avoided:
//
//   1. Event→row resolutions. Every ScenarioSpec transform preserves the
//      YELT's event-id structure (scaling, masks, term overrides and
//      conditioning never change *which* event an occurrence is), so the
//      base book's `data::ResolverCache` resolutions serve every scenario;
//      only contracts *added* by a scenario introduce new ELTs to resolve,
//      and those go through the same cache. A naive per-scenario plan
//      resolves Σ_s |book_s| ELTs; this planner resolves |distinct
//      contracts| (PlanStats records the difference).
//   2. Exclusion masks. Scenarios with identical excluded-event sets share
//      one MaskColumn — the YELT-entry-aligned adjusted-sequence column the
//      kernel consumes — and the column itself is contract-independent, so
//      one build serves every slot of every scenario using that mask.
//   3. Ground-up losses. The planner orders slots (contract, layer)-major
//      with scenarios innermost, so the executor's gather groups
//      (core::batch::group_slots) resolve each occurrence's sampled/mean
//      ground-up loss once per (contract, layer) and feed all S scenarios —
//      under secondary uncertainty (beta sampling, the dominant FLOP cost
//      of stage 2) this is where most of the sweep's compute dedupe is.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/portfolio_batch.hpp"
#include "data/resolved_yelt.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"
#include "parallel/parallel_for.hpp"
#include "scenario/scenario.hpp"
#include "util/aligned.hpp"

namespace riskan::scenario {

/// Adjusted-sequence column of one distinct exclusion mask: slot i (aligned
/// with yelt.events()) holds the sequence number occurrence i would have in
/// the physically filtered YELT, or core::batch::kMaskedOut when the
/// occurrence's event is excluded. Using the filtered-table sequence as the
/// secondary-uncertainty stream key is what makes a mask scenario
/// bit-identical to running on filter_yelt() output.
struct MaskColumn {
  util::AlignedVector<std::uint32_t> adjusted_seq;  // gather column — 64-byte aligned
  std::uint64_t excluded_occurrences = 0;

  /// One streamed pass over the YELT, parallel over trial slabs (each
  /// trial's slots are written independently of scheduling).
  static MaskColumn build(const data::YearEventLossTable& yelt,
                          std::span<const EventId> excluded_events,
                          ParallelConfig cfg = {});
};

/// Work-dedupe telemetry the planner reports (asserted by tests, printed by
/// the bench and the examples).
struct PlanStats {
  std::size_t scenarios = 0;         ///< scenarios in the sweep (incl. base)
  std::size_t slots = 0;             ///< (scenario, contract, layer) slots
  std::size_t gather_groups = 0;     ///< shared-gather groups in the pass
  std::size_t contracts_resolved = 0;   ///< distinct ELT resolutions needed
  std::size_t resolutions_avoided = 0;  ///< Σ|book_s| minus the distinct set
  std::size_t distinct_masks = 0;    ///< mask columns built after dedupe
  std::size_t mask_references = 0;   ///< scenarios that reference a mask
};

/// One planned (scenario, contract, layer) slot, before output buffers
/// exist. Blueprints are emitted in pass order: (contract, layer)-major,
/// scenarios innermost.
struct SlotBlueprint {
  std::size_t scenario = 0;             ///< index into the sweep's scenarios
  std::size_t contract = 0;             ///< index into ScenarioPlan::contracts()
  std::size_t contract_in_scenario = 0; ///< position in the scenario's own book
  LayerId layer_id = 0;
  finance::LayerTerms terms;            ///< overrides already applied
  finance::Reinstatements reinstatements;
  Money upfront_premium = 0.0;
  double loss_scale = 1.0;
  int mask = -1;                        ///< index into masks(), -1 = none
  Money conditioned_ground_up = -1.0;   ///< pre-scaled; < 0 = no conditioning
};

class ScenarioPlan {
 public:
  /// Plans `specs` (already validated) over the base book. Resolutions go
  /// through `cache` (nullptr = ResolverCache::shared()).
  static ScenarioPlan build(const finance::Portfolio& base,
                            const data::YearEventLossTable& yelt,
                            std::span<const ScenarioSpec> specs,
                            data::ResolverCache* cache, ParallelConfig cfg = {});

  /// Re-binds the plan's per-block half — resolutions and mask columns,
  /// both trial-local — to a new YELT block, keeping the structural half
  /// (contract universe, books, blueprints, stats), which depends only on
  /// (book, specs). The out-of-core sweep builds once against the first
  /// block and re-binds per block, mirroring ExecutionPlan::rebind.
  void rebind(const data::YearEventLossTable& yelt, data::ResolverCache* cache,
              ParallelConfig cfg = {});

  /// Distinct contracts across all scenarios: base book order, then added
  /// contracts in first-reference order.
  std::span<const finance::Contract* const> contracts() const noexcept {
    return contracts_;
  }
  const data::MultiResolution& resolution() const noexcept { return resolution_; }
  std::span<const MaskColumn> masks() const noexcept { return masks_; }
  std::span<const SlotBlueprint> blueprints() const noexcept { return blueprints_; }
  /// Per scenario, the plan-contract indices of its book, in book order.
  std::span<const std::vector<std::size_t>> scenario_books() const noexcept {
    return scenario_books_;
  }
  const PlanStats& stats() const noexcept { return stats_; }
  double resolve_seconds() const noexcept { return resolve_seconds_; }

 private:
  std::vector<const finance::Contract*> contracts_;
  data::MultiResolution resolution_;
  std::vector<MaskColumn> masks_;
  /// Deduped excluded-event sets, parallel to masks_ — what rebind()
  /// rebuilds each mask column from.
  std::vector<std::vector<EventId>> mask_excluded_;
  std::vector<SlotBlueprint> blueprints_;
  std::vector<std::vector<std::size_t>> scenario_books_;
  PlanStats stats_;
  double resolve_seconds_ = 0.0;
};

}  // namespace riskan::scenario
