#include "scenario/sweep.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "core/adaptive/driver.hpp"
#include "core/exec.hpp"
#include "core/portfolio_batch.hpp"
#include "core/secondary.hpp"
#include "data/resolved_yelt.hpp"
#include "data/trial_source.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"

namespace riskan::scenario {

namespace {

/// Per-scenario mutable state while the pass runs.
struct ScenarioRun {
  core::EngineResult result;
  std::vector<Money> occurrence_accum;   // block-entries-sized; empty = OEP off
  std::vector<Money> conditioned_accum;  // trials-sized; empty = no conditioning
};

/// Adaptive sweep: the core/adaptive block driver's loop, driving the
/// non-adaptive sweep per decision block. Convergence is judged on the
/// BASE book's metrics (the reference every delta is against); all
/// scenarios stop at the same trial, keeping the report's deltas aligned.
ScenarioSweepResult run_adaptive_sweep(const finance::Portfolio& portfolio,
                                       data::TrialSource& source,
                                       std::span<const ScenarioSpec> specs,
                                       const core::EngineConfig& config) {
  namespace adaptive = core::adaptive;
  const adaptive::AdaptiveConfig& ad = config.adaptive;
  // The adaptive loop is the outermost scope of its sweep: the per-block
  // re-entries below carry a cleared obs config, so the whole run is one
  // observability window.
  obs::RunObsScope obs_scope(config.obs);
  obs::Timer timer("scenario.adaptive_sweep");

  data::ReblockedSource grid(source, ad.block_trials, ad.max_trials);
  adaptive::ConvergenceController controller(ad, grid.trials());

  ScenarioSweepResult out;
  bool shaped = false;
  data::TrialBlock block;
  while (!controller.should_stop() && grid.next(block)) {
    core::EngineConfig inner = config;
    inner.adaptive = {};
    inner.obs = {};
    inner.trial_base = config.trial_base + block.trial_offset;
    data::SingleBlockSource one(block.yelt);
    ScenarioSweepResult r = run_scenario_sweep(portfolio, one, specs, inner);
    if (!shaped) {
      adaptive::detail::init_result_shapes(r.base, controller.trial_cap(), out.base);
      out.scenarios.resize(r.scenarios.size());
      for (std::size_t s = 0; s < r.scenarios.size(); ++s) {
        adaptive::detail::init_result_shapes(r.scenarios[s], controller.trial_cap(),
                                             out.scenarios[s]);
      }
      out.plan = r.plan;
      shaped = true;
    }
    adaptive::detail::copy_block_result(r.base, block.trial_offset, out.base);
    RISKAN_ENSURE(r.scenarios.size() == out.scenarios.size(),
                  "adaptive sweep block changed its scenario count");
    for (std::size_t s = 0; s < r.scenarios.size(); ++s) {
      adaptive::detail::copy_block_result(r.scenarios[s], block.trial_offset,
                                          out.scenarios[s]);
    }
    controller.fold(r.base.portfolio_ylt.losses(),
                    config.compute_oep ? r.base.portfolio_occurrence_ylt.losses()
                                       : std::span<const Money>{});
  }

  const TrialId stop = controller.trials_folded();
  adaptive::detail::truncate_result(out.base, stop);
  for (core::EngineResult& scenario : out.scenarios) {
    adaptive::detail::truncate_result(scenario, stop);
  }
  out.base.adaptive = controller.report();
  out.base.adaptive.trials_available = source.trials();

  // Rebuild the report over the converged prefix with the same normalised
  // specs the per-block sweeps used.
  std::vector<ScenarioSpec> validated(specs.begin(), specs.end());
  for (ScenarioSpec& spec : validated) {
    spec.validate();
  }
  out.report = build_report(out.base, out.scenarios, validated);
  out.seconds = timer.stop();
  for (core::EngineResult& scenario : out.scenarios) {
    scenario.seconds = out.seconds;
  }
  out.base.seconds = out.seconds;
  out.obs_report = obs_scope.finish();
  return out;
}

}  // namespace

ScenarioSweepResult run_scenario_sweep(const finance::Portfolio& portfolio,
                                       const data::YearEventLossTable& yelt,
                                       std::span<const ScenarioSpec> specs,
                                       const core::EngineConfig& config) {
  data::InMemorySource source(yelt);
  return run_scenario_sweep(portfolio, source, specs, config);
}

ScenarioSweepResult run_scenario_sweep(const finance::Portfolio& portfolio,
                                       data::TrialSource& source,
                                       std::span<const ScenarioSpec> specs,
                                       const core::EngineConfig& config) {
  core::validate_engine_config(config);
  RISKAN_REQUIRE(!portfolio.empty(), "scenario sweep needs a non-empty base book");
  const TrialId trials = source.trials();
  RISKAN_REQUIRE(trials > 0, "scenario sweep needs a trial source with trials");

  // Adaptive stopping wraps this entry point exactly like the aggregate
  // engine's: the driver re-enters it per decision block with adaptivity
  // cleared, so the pass below runs unchanged either way.
  if (config.adaptive.enabled()) {
    return run_adaptive_sweep(portfolio, source, specs, config);
  }
  obs::RunObsScope obs_scope(config.obs);
  obs::Timer timer("scenario.sweep");

  // Normalise validated copies; the base book is the implicit scenario 0.
  std::vector<ScenarioSpec> all;
  all.reserve(specs.size() + 1);
  all.push_back(ScenarioSpec::identity());
  for (const ScenarioSpec& spec : specs) {
    all.push_back(spec);
    all.back().validate();
  }

  // Pool-free backends stay off the pool (single-thread contract, shared
  // with MapReduce map tasks); the executor layer owns the backend dispatch.
  const ParallelConfig par_cfg =
      core::pool_free(config.backend)
          ? ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()}
          : ParallelConfig{config.pool, config.trial_grain};
  data::ResolverCache local_cache;
  data::ResolverCache& cache = core::resolver_cache_for(config, source, local_cache);

  std::vector<ScenarioRun> runs(all.size());
  // One sampler per distinct contract — shared by every scenario touching
  // it, exactly like the resolutions. Contracts (and the blueprint list)
  // are block-invariant: the plan re-derives them per block from the same
  // (book, specs), so pointers and ordering repeat exactly.
  std::vector<core::SecondarySampler> samplers;

  const Philox4x32 philox(config.seed);
  const auto executor = core::exec::make_executor(config);
  core::exec::ExecutionPlan exec_plan;
  bool lowered = false;
  std::vector<core::batch::Slot> slots;
  ScenarioPlan plan;
  PlanStats stats;
  double resolve_seconds = 0.0;

  core::for_each_trial_block(source, config, local_cache,
                             [&](const data::TrialBlock& block, TrialId base) {
    const data::YearEventLossTable& yelt = *block.yelt;
    const TrialId block_trials = yelt.trials();
    const auto yelt_offsets = yelt.offsets();

    // Planning splits like the exec layer: the structural half (books,
    // blueprints, stats — pure functions of (book, specs)) is built once
    // against the first block; later blocks re-bind only the trial-local
    // half (resolutions and mask columns, whose per-block builds reproduce
    // the monolithic columns slice for slice).
    if (!lowered) {
      plan = ScenarioPlan::build(portfolio, yelt, all, &cache, par_cfg);
    } else {
      plan.rebind(yelt, &cache, par_cfg);
    }
    resolve_seconds += plan.resolve_seconds();

    if (!lowered) {
      stats = plan.stats();
      for (std::size_t s = 0; s < all.size(); ++s) {
        ScenarioRun& run = runs[s];
        run.result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
        run.result.reinstatement_premium =
            data::YearLossTable(trials, "reinstatement-premium");
        if (config.keep_contract_ylts) {
          const auto& book = plan.scenario_books()[s];
          run.result.contract_ylts.reserve(book.size());
          for (const std::size_t c : book) {
            run.result.contract_ylts.emplace_back(
                trials, "contract-" + std::to_string(plan.contracts()[c]->id()));
          }
        }
        if (config.compute_oep) {
          run.result.portfolio_occurrence_ylt =
              data::YearLossTable(trials, "portfolio-oep");
          if (all[s].conditioning) {
            run.conditioned_accum.assign(trials, 0.0);
          }
        }
      }
      if (config.secondary_uncertainty) {
        samplers.reserve(plan.contracts().size());
        for (const finance::Contract* contract : plan.contracts()) {
          samplers.emplace_back(contract->elt());
        }
      }
    }
    if (config.compute_oep) {
      for (ScenarioRun& run : runs) {
        run.occurrence_accum.assign(yelt.entries(), 0.0);
      }
    }

    // Flatten the blueprints into kernel slots (buffers are sized above, so
    // the spans taken here stay valid), per-trial outputs sliced by block.
    slots.clear();
    slots.reserve(plan.blueprints().size());
    for (const SlotBlueprint& bp : plan.blueprints()) {
      const auto& entry = plan.resolution().entry(bp.contract);
      const finance::Contract& contract = *plan.contracts()[bp.contract];
      ScenarioRun& run = runs[bp.scenario];

      core::batch::Slot slot;
      slot.hit_offsets = entry.compact->trial_offsets().data();
      slot.seqs = entry.compact->seqs().data();
      slot.rows = entry.compact->rows().data();
      slot.elt = &contract.elt();
      slot.means = contract.elt().mean_loss().data();
      slot.sampler = config.secondary_uncertainty ? &samplers[bp.contract] : nullptr;
      slot.contract_id = contract.id();
      slot.layer_id = bp.layer_id;
      slot.loss_scale = bp.loss_scale;
      slot.mask_seq = bp.mask >= 0 ? plan.masks()[bp.mask].adjusted_seq.data() : nullptr;
      slot.conditioned_ground_up = bp.conditioned_ground_up;
      slot.terms = bp.terms;
      slot.reinstatements = bp.reinstatements;
      slot.upfront_premium = bp.upfront_premium;
      slot.contract_losses =
          config.keep_contract_ylts
              ? run.result.contract_ylts[bp.contract_in_scenario]
                    .mutable_losses()
                    .subspan(block.trial_offset, block_trials)
              : std::span<Money>{};
      slot.portfolio_losses = run.result.portfolio_ylt.mutable_losses().subspan(
          block.trial_offset, block_trials);
      slot.reinstatement_prem = run.result.reinstatement_premium.mutable_losses().subspan(
          block.trial_offset, block_trials);
      slot.occurrence_accum = config.compute_oep ? run.occurrence_accum.data() : nullptr;
      slot.conditioned_accum = run.conditioned_accum.empty()
                                   ? nullptr
                                   : run.conditioned_accum.data() + block.trial_offset;
      slots.push_back(slot);
    }

    // The one streamed pass serving every scenario, dispatched on the
    // configured executor (DeviceSim sweeps run in simulated device blocks
    // like any other plan — no CPU fallback). Lowered once, re-bound per
    // block.
    if (!lowered) {
      core::EngineConfig lower_config = config;
      lower_config.trial_base = base;
      exec_plan = core::exec::ExecutionPlan::lower(slots, yelt_offsets, block_trials,
                                                   lower_config);
      lowered = true;
    } else {
      exec_plan.rebind(slots, yelt_offsets, block_trials, base);
    }
    (void)executor->execute(exec_plan, philox);

    // OEP finalisation and telemetry, per scenario per block.
    for (std::size_t s = 0; s < all.size(); ++s) {
      ScenarioRun& run = runs[s];
      if (config.compute_oep) {
        const std::span<const Money> conditioned =
            run.conditioned_accum.empty()
                ? std::span<const Money>{}
                : std::span<const Money>(run.conditioned_accum)
                      .subspan(block.trial_offset, block_trials);
        core::batch::finalize_oep(run.result.portfolio_occurrence_ylt.mutable_losses()
                                      .subspan(block.trial_offset, block_trials),
                                  run.occurrence_accum, yelt_offsets, conditioned);
      }
      std::uint64_t layer_count = 0;
      for (const std::size_t c : plan.scenario_books()[s]) {
        const std::uint64_t layers = plan.contracts()[c]->layers().size();
        run.result.elt_lookups += plan.resolution().entry(c).compact->hits() * layers;
        layer_count += layers;
      }
      run.result.occurrences_processed += yelt.entries() * layer_count;
    }
  });

  const double engine_seconds = timer.seconds();
  for (ScenarioRun& run : runs) {
    run.result.seconds = engine_seconds;
    run.result.resolve_seconds = resolve_seconds;
  }

  ScenarioSweepResult out;
  out.base = std::move(runs[0].result);
  out.scenarios.reserve(specs.size());
  for (std::size_t s = 1; s < runs.size(); ++s) {
    out.scenarios.push_back(std::move(runs[s].result));
  }
  out.plan = stats;
  out.report = build_report(out.base, out.scenarios,
                            std::span<const ScenarioSpec>(all).subspan(1));
  out.seconds = timer.stop();
  out.obs_report = obs_scope.finish();
  return out;
}

}  // namespace riskan::scenario
