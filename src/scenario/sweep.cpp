#include "scenario/sweep.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "core/exec.hpp"
#include "core/portfolio_batch.hpp"
#include "core/secondary.hpp"
#include "data/resolved_yelt.hpp"
#include "parallel/parallel_for.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace riskan::scenario {

namespace {

/// Per-scenario mutable state while the pass runs.
struct ScenarioRun {
  core::EngineResult result;
  std::vector<Money> occurrence_accum;   // yelt.entries()-sized; empty = OEP off
  std::vector<Money> conditioned_accum;  // trials-sized; empty = no conditioning
};

}  // namespace

ScenarioSweepResult run_scenario_sweep(const finance::Portfolio& portfolio,
                                       const data::YearEventLossTable& yelt,
                                       std::span<const ScenarioSpec> specs,
                                       const core::EngineConfig& config) {
  core::validate_engine_config(config);
  RISKAN_REQUIRE(!portfolio.empty(), "scenario sweep needs a non-empty base book");
  RISKAN_REQUIRE(yelt.trials() > 0, "scenario sweep needs a YELT with trials");
  Stopwatch watch;

  // Normalise validated copies; the base book is the implicit scenario 0.
  std::vector<ScenarioSpec> all;
  all.reserve(specs.size() + 1);
  all.push_back(ScenarioSpec::identity());
  for (const ScenarioSpec& spec : specs) {
    all.push_back(spec);
    all.back().validate();
  }

  // Sequential stays off the pool (single-thread contract, shared with
  // MapReduce map tasks); the executor layer owns the backend dispatch.
  const bool sequential = config.backend == core::Backend::Sequential;
  const ParallelConfig par_cfg =
      sequential ? ParallelConfig{nullptr, std::numeric_limits<std::size_t>::max()}
                 : ParallelConfig{config.pool, config.trial_grain};
  data::ResolverCache& cache =
      config.resolver_cache ? *config.resolver_cache : data::ResolverCache::shared();

  const ScenarioPlan plan = ScenarioPlan::build(portfolio, yelt, all, &cache, par_cfg);

  const TrialId trials = yelt.trials();
  std::vector<ScenarioRun> runs(all.size());
  for (std::size_t s = 0; s < all.size(); ++s) {
    ScenarioRun& run = runs[s];
    run.result.portfolio_ylt = data::YearLossTable(trials, "portfolio");
    run.result.reinstatement_premium =
        data::YearLossTable(trials, "reinstatement-premium");
    if (config.keep_contract_ylts) {
      const auto& book = plan.scenario_books()[s];
      run.result.contract_ylts.reserve(book.size());
      for (const std::size_t c : book) {
        run.result.contract_ylts.emplace_back(
            trials, "contract-" + std::to_string(plan.contracts()[c]->id()));
      }
    }
    if (config.compute_oep) {
      run.occurrence_accum.assign(yelt.entries(), 0.0);
      if (all[s].conditioning) {
        run.conditioned_accum.assign(trials, 0.0);
      }
    }
    run.result.resolve_seconds = plan.resolve_seconds();
  }

  // One sampler per distinct contract — shared by every scenario touching
  // it, exactly like the resolutions.
  std::vector<core::SecondarySampler> samplers;
  if (config.secondary_uncertainty) {
    samplers.reserve(plan.contracts().size());
    for (const finance::Contract* contract : plan.contracts()) {
      samplers.emplace_back(contract->elt());
    }
  }

  // Flatten the blueprints into kernel slots (buffers are sized above, so
  // the spans taken here stay valid).
  std::vector<core::batch::Slot> slots;
  slots.reserve(plan.blueprints().size());
  for (const SlotBlueprint& bp : plan.blueprints()) {
    const auto& entry = plan.resolution().entry(bp.contract);
    const finance::Contract& contract = *plan.contracts()[bp.contract];
    ScenarioRun& run = runs[bp.scenario];

    core::batch::Slot slot;
    slot.hit_offsets = entry.compact->trial_offsets().data();
    slot.seqs = entry.compact->seqs().data();
    slot.rows = entry.compact->rows().data();
    slot.elt = &contract.elt();
    slot.means = contract.elt().mean_loss().data();
    slot.sampler = config.secondary_uncertainty ? &samplers[bp.contract] : nullptr;
    slot.contract_id = contract.id();
    slot.layer_id = bp.layer_id;
    slot.loss_scale = bp.loss_scale;
    slot.mask_seq = bp.mask >= 0 ? plan.masks()[bp.mask].adjusted_seq.data() : nullptr;
    slot.conditioned_ground_up = bp.conditioned_ground_up;
    slot.terms = bp.terms;
    slot.reinstatements = bp.reinstatements;
    slot.upfront_premium = bp.upfront_premium;
    slot.contract_losses =
        config.keep_contract_ylts
            ? run.result.contract_ylts[bp.contract_in_scenario].mutable_losses()
            : std::span<Money>{};
    slot.portfolio_losses = run.result.portfolio_ylt.mutable_losses();
    slot.reinstatement_prem = run.result.reinstatement_premium.mutable_losses();
    slot.occurrence_accum = config.compute_oep ? run.occurrence_accum.data() : nullptr;
    slot.conditioned_accum =
        run.conditioned_accum.empty() ? nullptr : run.conditioned_accum.data();
    slots.push_back(slot);
  }

  // The one streamed pass serving every scenario, dispatched on the
  // configured executor (DeviceSim sweeps run in simulated device blocks
  // like any other plan — no CPU fallback).
  const Philox4x32 philox(config.seed);
  const auto yelt_offsets = yelt.offsets();
  const core::exec::ExecutionPlan exec_plan =
      core::exec::ExecutionPlan::lower(slots, yelt_offsets, trials, config);
  (void)core::exec::make_executor(config)->execute(exec_plan, philox);

  // OEP finalisation and telemetry, per scenario.
  for (std::size_t s = 0; s < all.size(); ++s) {
    ScenarioRun& run = runs[s];
    if (config.compute_oep) {
      run.result.portfolio_occurrence_ylt = data::YearLossTable(trials, "portfolio-oep");
      core::batch::finalize_oep(run.result.portfolio_occurrence_ylt.mutable_losses(),
                                run.occurrence_accum, yelt_offsets,
                                run.conditioned_accum);
    }
    std::uint64_t layer_count = 0;
    for (const std::size_t c : plan.scenario_books()[s]) {
      const std::uint64_t layers = plan.contracts()[c]->layers().size();
      run.result.elt_lookups += plan.resolution().entry(c).compact->hits() * layers;
      layer_count += layers;
    }
    run.result.occurrences_processed = yelt.entries() * layer_count;
  }

  const double engine_seconds = watch.seconds();
  for (ScenarioRun& run : runs) {
    run.result.seconds = engine_seconds;
  }

  ScenarioSweepResult out;
  out.base = std::move(runs[0].result);
  out.scenarios.reserve(specs.size());
  for (std::size_t s = 1; s < runs.size(); ++s) {
    out.scenarios.push_back(std::move(runs[s].result));
  }
  out.plan = plan.stats();
  out.report = build_report(out.base, out.scenarios,
                            std::span<const ScenarioSpec>(all).subspan(1));
  out.seconds = watch.seconds();
  return out;
}

}  // namespace riskan::scenario
