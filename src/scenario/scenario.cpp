#include "scenario/scenario.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace riskan::scenario {

bool ScenarioSpec::is_identity() const noexcept {
  if (loss_scale != 1.0 || !excluded_events.empty() || !dropped_contracts.empty() ||
      !added_contracts.empty() || conditioning.has_value()) {
    return false;
  }
  for (const TargetedOverride& o : overrides) {
    if (!o.override.empty()) {
      return false;
    }
  }
  return true;
}

void ScenarioSpec::validate() {
  RISKAN_REQUIRE(loss_scale > 0.0, "scenario loss scale must be positive");
  std::sort(excluded_events.begin(), excluded_events.end());
  excluded_events.erase(std::unique(excluded_events.begin(), excluded_events.end()),
                        excluded_events.end());
  for (const finance::Contract* added : added_contracts) {
    RISKAN_REQUIRE(added != nullptr, "added contract must not be null");
  }
  if (conditioning) {
    RISKAN_REQUIRE(conditioning->event != kInvalidEvent,
                   "conditioning needs a valid event id");
    RISKAN_REQUIRE(conditioning->intensity_scale > 0.0,
                   "conditioning intensity scale must be positive");
  }
}

ScenarioSpec ScenarioSpec::identity(std::string name) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  return spec;
}

data::YearEventLossTable filter_yelt(const data::YearEventLossTable& yelt,
                                     std::span<const EventId> excluded_events) {
  std::vector<EventId> excluded(excluded_events.begin(), excluded_events.end());
  std::sort(excluded.begin(), excluded.end());

  data::YearEventLossTable::Builder builder(yelt.trials());
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    builder.begin_trial();
    const auto events = yelt.trial_events(t);
    const auto days = yelt.trial_days(t);
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!std::binary_search(excluded.begin(), excluded.end(), events[i])) {
        builder.add(events[i], days[i]);
      }
    }
  }
  return builder.finish();
}

finance::Portfolio materialize_portfolio(const ScenarioSpec& spec,
                                         const finance::Portfolio& base) {
  finance::Portfolio out;
  auto dropped = [&](ContractId id) {
    return std::find(spec.dropped_contracts.begin(), spec.dropped_contracts.end(), id) !=
           spec.dropped_contracts.end();
  };
  auto overridden = [&](const finance::Contract& contract) {
    std::vector<finance::Layer> layers = contract.layers();
    for (finance::Layer& layer : layers) {
      for (const TargetedOverride& o : spec.overrides) {
        if (o.contract == contract.id() &&
            (o.layer == TargetedOverride::kAllLayers || o.layer == layer.id)) {
          o.override.apply(layer.terms, layer.reinstatements, layer.upfront_premium);
        }
      }
    }
    return finance::Contract(contract.id(), contract.elt(), std::move(layers),
                             contract.region(), contract.lob(), contract.peril());
  };

  for (const finance::Contract& contract : base.contracts()) {
    if (!dropped(contract.id())) {
      out.add(overridden(contract));
    }
  }
  for (const finance::Contract* added : spec.added_contracts) {
    out.add(overridden(*added));
  }
  RISKAN_REQUIRE(!out.empty(), "scenario leaves no contracts in the book");
  return out;
}

}  // namespace riskan::scenario
