file(REMOVE_RECURSE
  "CMakeFiles/example_catmod_to_elt.dir/examples/catmod_to_elt.cpp.o"
  "CMakeFiles/example_catmod_to_elt.dir/examples/catmod_to_elt.cpp.o.d"
  "example_catmod_to_elt"
  "example_catmod_to_elt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_catmod_to_elt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
