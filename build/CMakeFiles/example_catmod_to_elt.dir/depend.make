# Empty dependencies file for example_catmod_to_elt.
# This may be replaced when dependencies are built.
