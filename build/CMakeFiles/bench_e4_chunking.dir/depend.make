# Empty dependencies file for bench_e4_chunking.
# This may be replaced when dependencies are built.
