file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_chunking.dir/bench/bench_e4_chunking.cpp.o"
  "CMakeFiles/bench_e4_chunking.dir/bench/bench_e4_chunking.cpp.o.d"
  "bench_e4_chunking"
  "bench_e4_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
