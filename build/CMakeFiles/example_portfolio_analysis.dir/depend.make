# Empty dependencies file for example_portfolio_analysis.
# This may be replaced when dependencies are built.
