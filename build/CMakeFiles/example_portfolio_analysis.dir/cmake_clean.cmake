file(REMOVE_RECURSE
  "CMakeFiles/example_portfolio_analysis.dir/examples/portfolio_analysis.cpp.o"
  "CMakeFiles/example_portfolio_analysis.dir/examples/portfolio_analysis.cpp.o.d"
  "example_portfolio_analysis"
  "example_portfolio_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_portfolio_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
