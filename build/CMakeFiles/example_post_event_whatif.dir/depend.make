# Empty dependencies file for example_post_event_whatif.
# This may be replaced when dependencies are built.
