file(REMOVE_RECURSE
  "CMakeFiles/example_post_event_whatif.dir/examples/post_event_whatif.cpp.o"
  "CMakeFiles/example_post_event_whatif.dir/examples/post_event_whatif.cpp.o.d"
  "example_post_event_whatif"
  "example_post_event_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_post_event_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
