# Empty dependencies file for bench_e5_scan_vs_index.
# This may be replaced when dependencies are built.
