file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_scan_vs_index.dir/bench/bench_e5_scan_vs_index.cpp.o"
  "CMakeFiles/bench_e5_scan_vs_index.dir/bench/bench_e5_scan_vs_index.cpp.o.d"
  "bench_e5_scan_vs_index"
  "bench_e5_scan_vs_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_scan_vs_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
