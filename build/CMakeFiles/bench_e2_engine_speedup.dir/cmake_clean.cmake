file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_engine_speedup.dir/bench/bench_e2_engine_speedup.cpp.o"
  "CMakeFiles/bench_e2_engine_speedup.dir/bench/bench_e2_engine_speedup.cpp.o.d"
  "bench_e2_engine_speedup"
  "bench_e2_engine_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_engine_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
