# Empty dependencies file for bench_e2_engine_speedup.
# This may be replaced when dependencies are built.
