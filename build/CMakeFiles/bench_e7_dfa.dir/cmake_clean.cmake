file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_dfa.dir/bench/bench_e7_dfa.cpp.o"
  "CMakeFiles/bench_e7_dfa.dir/bench/bench_e7_dfa.cpp.o.d"
  "bench_e7_dfa"
  "bench_e7_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
