# Empty dependencies file for bench_e7_dfa.
# This may be replaced when dependencies are built.
