# Empty dependencies file for bench_e9_metrics.
# This may be replaced when dependencies are built.
