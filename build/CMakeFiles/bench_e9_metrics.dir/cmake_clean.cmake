file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_metrics.dir/bench/bench_e9_metrics.cpp.o"
  "CMakeFiles/bench_e9_metrics.dir/bench/bench_e9_metrics.cpp.o.d"
  "bench_e9_metrics"
  "bench_e9_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
