file(REMOVE_RECURSE
  "CMakeFiles/example_dfa_enterprise.dir/examples/dfa_enterprise.cpp.o"
  "CMakeFiles/example_dfa_enterprise.dir/examples/dfa_enterprise.cpp.o.d"
  "example_dfa_enterprise"
  "example_dfa_enterprise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dfa_enterprise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
