# Empty dependencies file for example_dfa_enterprise.
# This may be replaced when dependencies are built.
