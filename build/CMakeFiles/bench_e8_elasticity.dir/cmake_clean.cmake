file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_elasticity.dir/bench/bench_e8_elasticity.cpp.o"
  "CMakeFiles/bench_e8_elasticity.dir/bench/bench_e8_elasticity.cpp.o.d"
  "bench_e8_elasticity"
  "bench_e8_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
