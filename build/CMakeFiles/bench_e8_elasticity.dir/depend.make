# Empty dependencies file for bench_e8_elasticity.
# This may be replaced when dependencies are built.
