file(REMOVE_RECURSE
  "CMakeFiles/riskan_cli.dir/tools/riskan_cli.cpp.o"
  "CMakeFiles/riskan_cli.dir/tools/riskan_cli.cpp.o.d"
  "riskan_cli"
  "riskan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riskan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
