# Empty dependencies file for riskan_cli.
# This may be replaced when dependencies are built.
