# Empty dependencies file for riskan.
# This may be replaced when dependencies are built.
