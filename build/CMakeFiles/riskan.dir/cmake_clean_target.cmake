file(REMOVE_RECURSE
  "libriskan.a"
)
