
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catmod/analytic_ep.cpp" "CMakeFiles/riskan.dir/src/catmod/analytic_ep.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/analytic_ep.cpp.o.d"
  "/root/repo/src/catmod/event_catalog.cpp" "CMakeFiles/riskan.dir/src/catmod/event_catalog.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/event_catalog.cpp.o.d"
  "/root/repo/src/catmod/exposure.cpp" "CMakeFiles/riskan.dir/src/catmod/exposure.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/exposure.cpp.o.d"
  "/root/repo/src/catmod/financial.cpp" "CMakeFiles/riskan.dir/src/catmod/financial.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/financial.cpp.o.d"
  "/root/repo/src/catmod/hazard.cpp" "CMakeFiles/riskan.dir/src/catmod/hazard.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/hazard.cpp.o.d"
  "/root/repo/src/catmod/pipeline.cpp" "CMakeFiles/riskan.dir/src/catmod/pipeline.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/pipeline.cpp.o.d"
  "/root/repo/src/catmod/spatial_index.cpp" "CMakeFiles/riskan.dir/src/catmod/spatial_index.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/spatial_index.cpp.o.d"
  "/root/repo/src/catmod/vulnerability.cpp" "CMakeFiles/riskan.dir/src/catmod/vulnerability.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/vulnerability.cpp.o.d"
  "/root/repo/src/catmod/yelt_bridge.cpp" "CMakeFiles/riskan.dir/src/catmod/yelt_bridge.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/catmod/yelt_bridge.cpp.o.d"
  "/root/repo/src/core/aggregate_engine.cpp" "CMakeFiles/riskan.dir/src/core/aggregate_engine.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/aggregate_engine.cpp.o.d"
  "/root/repo/src/core/allocation.cpp" "CMakeFiles/riskan.dir/src/core/allocation.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/allocation.cpp.o.d"
  "/root/repo/src/core/bootstrap.cpp" "CMakeFiles/riskan.dir/src/core/bootstrap.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/bootstrap.cpp.o.d"
  "/root/repo/src/core/device_engine.cpp" "CMakeFiles/riskan.dir/src/core/device_engine.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/device_engine.cpp.o.d"
  "/root/repo/src/core/elasticity.cpp" "CMakeFiles/riskan.dir/src/core/elasticity.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/elasticity.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "CMakeFiles/riskan.dir/src/core/metrics.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/metrics.cpp.o.d"
  "/root/repo/src/core/post_event.cpp" "CMakeFiles/riskan.dir/src/core/post_event.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/post_event.cpp.o.d"
  "/root/repo/src/core/pricer.cpp" "CMakeFiles/riskan.dir/src/core/pricer.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/pricer.cpp.o.d"
  "/root/repo/src/core/program.cpp" "CMakeFiles/riskan.dir/src/core/program.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/program.cpp.o.d"
  "/root/repo/src/core/secondary.cpp" "CMakeFiles/riskan.dir/src/core/secondary.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/secondary.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "CMakeFiles/riskan.dir/src/core/streaming.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/core/streaming.cpp.o.d"
  "/root/repo/src/data/chunked_file.cpp" "CMakeFiles/riskan.dir/src/data/chunked_file.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/chunked_file.cpp.o.d"
  "/root/repo/src/data/elt.cpp" "CMakeFiles/riskan.dir/src/data/elt.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/elt.cpp.o.d"
  "/root/repo/src/data/hash_index.cpp" "CMakeFiles/riskan.dir/src/data/hash_index.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/hash_index.cpp.o.d"
  "/root/repo/src/data/resolved_yelt.cpp" "CMakeFiles/riskan.dir/src/data/resolved_yelt.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/resolved_yelt.cpp.o.d"
  "/root/repo/src/data/scan.cpp" "CMakeFiles/riskan.dir/src/data/scan.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/scan.cpp.o.d"
  "/root/repo/src/data/serialize.cpp" "CMakeFiles/riskan.dir/src/data/serialize.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/serialize.cpp.o.d"
  "/root/repo/src/data/table_stats.cpp" "CMakeFiles/riskan.dir/src/data/table_stats.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/table_stats.cpp.o.d"
  "/root/repo/src/data/volcano.cpp" "CMakeFiles/riskan.dir/src/data/volcano.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/volcano.cpp.o.d"
  "/root/repo/src/data/yellt.cpp" "CMakeFiles/riskan.dir/src/data/yellt.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/yellt.cpp.o.d"
  "/root/repo/src/data/yelt.cpp" "CMakeFiles/riskan.dir/src/data/yelt.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/yelt.cpp.o.d"
  "/root/repo/src/data/ylt.cpp" "CMakeFiles/riskan.dir/src/data/ylt.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/data/ylt.cpp.o.d"
  "/root/repo/src/dfa/copula.cpp" "CMakeFiles/riskan.dir/src/dfa/copula.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/dfa/copula.cpp.o.d"
  "/root/repo/src/dfa/dfa_engine.cpp" "CMakeFiles/riskan.dir/src/dfa/dfa_engine.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/dfa/dfa_engine.cpp.o.d"
  "/root/repo/src/dfa/projection.cpp" "CMakeFiles/riskan.dir/src/dfa/projection.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/dfa/projection.cpp.o.d"
  "/root/repo/src/dfa/risk_sources.cpp" "CMakeFiles/riskan.dir/src/dfa/risk_sources.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/dfa/risk_sources.cpp.o.d"
  "/root/repo/src/finance/contract.cpp" "CMakeFiles/riskan.dir/src/finance/contract.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/finance/contract.cpp.o.d"
  "/root/repo/src/finance/premium.cpp" "CMakeFiles/riskan.dir/src/finance/premium.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/finance/premium.cpp.o.d"
  "/root/repo/src/finance/terms.cpp" "CMakeFiles/riskan.dir/src/finance/terms.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/finance/terms.cpp.o.d"
  "/root/repo/src/mapreduce/aggregate_job.cpp" "CMakeFiles/riskan.dir/src/mapreduce/aggregate_job.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/mapreduce/aggregate_job.cpp.o.d"
  "/root/repo/src/mapreduce/dfs.cpp" "CMakeFiles/riskan.dir/src/mapreduce/dfs.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/mapreduce/dfs.cpp.o.d"
  "/root/repo/src/parallel/device.cpp" "CMakeFiles/riskan.dir/src/parallel/device.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/parallel/device.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "CMakeFiles/riskan.dir/src/parallel/thread_pool.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/util/alias_table.cpp" "CMakeFiles/riskan.dir/src/util/alias_table.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/alias_table.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "CMakeFiles/riskan.dir/src/util/bytes.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/bytes.cpp.o.d"
  "/root/repo/src/util/distributions.cpp" "CMakeFiles/riskan.dir/src/util/distributions.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/distributions.cpp.o.d"
  "/root/repo/src/util/format.cpp" "CMakeFiles/riskan.dir/src/util/format.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/format.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "CMakeFiles/riskan.dir/src/util/prng.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/prng.cpp.o.d"
  "/root/repo/src/util/report.cpp" "CMakeFiles/riskan.dir/src/util/report.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/report.cpp.o.d"
  "/root/repo/src/util/require.cpp" "CMakeFiles/riskan.dir/src/util/require.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/require.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/riskan.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/types.cpp" "CMakeFiles/riskan.dir/src/util/types.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/util/types.cpp.o.d"
  "/root/repo/src/warehouse/cube.cpp" "CMakeFiles/riskan.dir/src/warehouse/cube.cpp.o" "gcc" "CMakeFiles/riskan.dir/src/warehouse/cube.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
