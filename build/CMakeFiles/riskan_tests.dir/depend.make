# Empty dependencies file for riskan_tests.
# This may be replaced when dependencies are built.
