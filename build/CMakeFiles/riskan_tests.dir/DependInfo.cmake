
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocation.cpp" "CMakeFiles/riskan_tests.dir/tests/test_allocation.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_allocation.cpp.o.d"
  "/root/repo/tests/test_analytic_ep.cpp" "CMakeFiles/riskan_tests.dir/tests/test_analytic_ep.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_analytic_ep.cpp.o.d"
  "/root/repo/tests/test_catmod.cpp" "CMakeFiles/riskan_tests.dir/tests/test_catmod.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_catmod.cpp.o.d"
  "/root/repo/tests/test_core_engine.cpp" "CMakeFiles/riskan_tests.dir/tests/test_core_engine.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_core_engine.cpp.o.d"
  "/root/repo/tests/test_core_metrics.cpp" "CMakeFiles/riskan_tests.dir/tests/test_core_metrics.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_core_metrics.cpp.o.d"
  "/root/repo/tests/test_data_access.cpp" "CMakeFiles/riskan_tests.dir/tests/test_data_access.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_data_access.cpp.o.d"
  "/root/repo/tests/test_data_tables.cpp" "CMakeFiles/riskan_tests.dir/tests/test_data_tables.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_data_tables.cpp.o.d"
  "/root/repo/tests/test_device_metering.cpp" "CMakeFiles/riskan_tests.dir/tests/test_device_metering.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_device_metering.cpp.o.d"
  "/root/repo/tests/test_dfa.cpp" "CMakeFiles/riskan_tests.dir/tests/test_dfa.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_dfa.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "CMakeFiles/riskan_tests.dir/tests/test_edge_cases.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "CMakeFiles/riskan_tests.dir/tests/test_extensions.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_extensions.cpp.o.d"
  "/root/repo/tests/test_finance.cpp" "CMakeFiles/riskan_tests.dir/tests/test_finance.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_finance.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/riskan_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_mapreduce.cpp" "CMakeFiles/riskan_tests.dir/tests/test_mapreduce.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_mapreduce.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "CMakeFiles/riskan_tests.dir/tests/test_parallel.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_parallel.cpp.o.d"
  "/root/repo/tests/test_program.cpp" "CMakeFiles/riskan_tests.dir/tests/test_program.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_program.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "CMakeFiles/riskan_tests.dir/tests/test_properties.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_properties.cpp.o.d"
  "/root/repo/tests/test_resolved_yelt.cpp" "CMakeFiles/riskan_tests.dir/tests/test_resolved_yelt.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_resolved_yelt.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "CMakeFiles/riskan_tests.dir/tests/test_robustness.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_robustness.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "CMakeFiles/riskan_tests.dir/tests/test_smoke.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_smoke.cpp.o.d"
  "/root/repo/tests/test_statistical_validation.cpp" "CMakeFiles/riskan_tests.dir/tests/test_statistical_validation.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_statistical_validation.cpp.o.d"
  "/root/repo/tests/test_streaming.cpp" "CMakeFiles/riskan_tests.dir/tests/test_streaming.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_streaming.cpp.o.d"
  "/root/repo/tests/test_util_distributions.cpp" "CMakeFiles/riskan_tests.dir/tests/test_util_distributions.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_util_distributions.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "CMakeFiles/riskan_tests.dir/tests/test_util_misc.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_util_prng.cpp" "CMakeFiles/riskan_tests.dir/tests/test_util_prng.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_util_prng.cpp.o.d"
  "/root/repo/tests/test_util_stats.cpp" "CMakeFiles/riskan_tests.dir/tests/test_util_stats.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_util_stats.cpp.o.d"
  "/root/repo/tests/test_warehouse.cpp" "CMakeFiles/riskan_tests.dir/tests/test_warehouse.cpp.o" "gcc" "CMakeFiles/riskan_tests.dir/tests/test_warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/riskan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
