# Empty dependencies file for example_realtime_pricing.
# This may be replaced when dependencies are built.
