file(REMOVE_RECURSE
  "CMakeFiles/example_realtime_pricing.dir/examples/realtime_pricing.cpp.o"
  "CMakeFiles/example_realtime_pricing.dir/examples/realtime_pricing.cpp.o.d"
  "example_realtime_pricing"
  "example_realtime_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_realtime_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
