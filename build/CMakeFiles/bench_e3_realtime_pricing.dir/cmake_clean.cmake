file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_realtime_pricing.dir/bench/bench_e3_realtime_pricing.cpp.o"
  "CMakeFiles/bench_e3_realtime_pricing.dir/bench/bench_e3_realtime_pricing.cpp.o.d"
  "bench_e3_realtime_pricing"
  "bench_e3_realtime_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_realtime_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
