# Empty dependencies file for bench_e3_realtime_pricing.
# This may be replaced when dependencies are built.
