# Empty dependencies file for bench_e6_mapreduce.
# This may be replaced when dependencies are built.
