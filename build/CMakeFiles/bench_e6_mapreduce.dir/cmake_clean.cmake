file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_mapreduce.dir/bench/bench_e6_mapreduce.cpp.o"
  "CMakeFiles/bench_e6_mapreduce.dir/bench/bench_e6_mapreduce.cpp.o.d"
  "bench_e6_mapreduce"
  "bench_e6_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
