# Empty dependencies file for bench_e1_data_volumes.
# This may be replaced when dependencies are built.
