file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_data_volumes.dir/bench/bench_e1_data_volumes.cpp.o"
  "CMakeFiles/bench_e1_data_volumes.dir/bench/bench_e1_data_volumes.cpp.o.d"
  "bench_e1_data_volumes"
  "bench_e1_data_volumes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_data_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
