#!/usr/bin/env python3
"""Compare two bench JSON records and print per-metric ratios.

The benches emit flat single-object JSON records (`bench::JsonReport`, see
docs/benchmarks.md) so the perf trajectory survives across PRs. This tool
diffs two of them — typically the committed record in bench/results/
against a freshly produced build/BENCH_*.json — and prints, per shared
numeric key, old value, new value and new/old ratio. String keys are
compared for equality; keys present on one side only are listed so schema
drift is visible.

Ratios are informational by default (CI runs the benches in quick mode, so
absolute times differ from the committed full-size records; the *ratio*
keys are the comparable ones). With --fail-above R, exit 1 if any numeric
key whose name ends in "ratio" grew by more than the factor R — that turns
the tool into a regression gate on the scale-free metrics.

Usage: python3 tools/bench_diff.py OLD.json NEW.json [--fail-above R]
"""

import argparse
import json
import sys
from pathlib import Path


def load(path: str) -> dict:
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"bench_diff: cannot read {path}: {error}")
    if not isinstance(record, dict):
        sys.exit(f"bench_diff: {path} is not a flat JSON object")
    return record


def is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline record (e.g. bench/results/BENCH_e10.json)")
    parser.add_argument("new", help="fresh record (e.g. build/BENCH_e10.json)")
    parser.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="R",
        help="exit 1 if any *ratio key grew by more than this factor",
    )
    args = parser.parse_args()

    old, new = load(args.old), load(args.new)
    print(f"bench_diff: {Path(args.old).name} (old) vs {Path(args.new).name} (new)")

    shared = [k for k in old if k in new]
    width = max((len(k) for k in shared), default=3)
    regressions = []
    for key in shared:
        a, b = old[key], new[key]
        if is_number(a) and is_number(b):
            ratio = b / a if a else float("inf") if b else 1.0
            print(f"  {key:<{width}}  {a:>14.6g}  ->  {b:>14.6g}   x{ratio:.3f}")
            if (
                args.fail_above is not None
                and key.endswith("ratio")
                and a > 0
                and ratio > args.fail_above
            ):
                regressions.append((key, ratio))
        elif a != b:
            print(f"  {key:<{width}}  {a!r}  ->  {b!r}   (changed)")

    for key in old:
        if key not in new:
            print(f"  {key}: only in old record")
    for key in new:
        if key not in old:
            print(f"  {key}: only in new record")

    if regressions:
        for key, ratio in regressions:
            print(f"bench_diff: REGRESSION {key} grew x{ratio:.3f} "
                  f"(> {args.fail_above})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
