#!/usr/bin/env python3
"""Check relative links in the repo's markdown documentation.

Scans README.md and every .md file under docs/ for markdown links,
resolves relative targets against the containing file, and fails (exit 1)
if a target file or a #fragment (GitHub-style heading anchor) does not
exist. External links (http/https/mailto) are not fetched — this is a
broken-*relative*-link gate, cheap enough for every CI run.

Usage: python3 tools/check_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def github_slug(heading: str) -> str:
    """Approximate GitHub's heading→anchor slug."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    # Keep word characters, spaces and hyphens; everything else vanishes
    # (→, punctuation, slashes, braces), matching GitHub's behaviour.
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(md_file: Path) -> set[str]:
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in md_file.read_text(encoding="utf-8").splitlines():
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(md_file: Path, root: Path) -> list[str]:
    errors: list[str] = []
    text = md_file.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if EXTERNAL_RE.match(target):
            continue  # http(s), mailto, etc.
        path_part, _, fragment = target.partition("#")
        resolved = (
            md_file if not path_part else (md_file.parent / path_part).resolve()
        )
        rel = md_file.relative_to(root)
        if path_part and not resolved.exists():
            errors.append(f"{rel}: broken link target '{target}'")
            continue
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                continue  # fragments only checked inside markdown
            if fragment not in anchors_of(resolved):
                errors.append(f"{rel}: missing anchor '#{fragment}' in '{target}'")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
    files = sorted((root / "docs").glob("**/*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.insert(0, readme)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1

    errors: list[str] = []
    for md_file in files:
        errors.extend(check_file(md_file, root))

    for error in errors:
        print(f"BROKEN: {error}", file=sys.stderr)
    print(f"check_links: {len(files)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
