// riskan — command-line front end for the pipeline's file formats.
//
// Subcommands mirror the stage boundaries:
//   gen-yelt    pre-simulate a YELT (stage-2 input) to a file
//   gen-elt     run a synthetic stage-1 (catalogue + exposure -> ELT file)
//   aggregate   stage 2: ELT + YELT + layer terms -> YLT file
//   metrics     stage 2/3 reporting: YLT -> summary + EP curve
//   info        identify a riskan binary file and print its shape
//
// Example end-to-end session:
//   riskan gen-elt  --events 20000 --sites 2000 --out /tmp/book.elt
//   riskan gen-yelt --events 20000 --trials 100000 --out /tmp/lens.yelt
//   riskan aggregate --elt /tmp/book.elt --yelt /tmp/lens.yelt
//          --retention 4e7 --limit 6e7 --out /tmp/book.ylt
//   riskan metrics --ylt /tmp/book.ylt
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/pipeline.hpp"
#include "catmod/yelt_bridge.hpp"
#include "core/aggregate_engine.hpp"
#include "core/bootstrap.hpp"
#include "core/metrics.hpp"
#include "data/serialize.hpp"
#include "util/bytes.hpp"
#include "util/format.hpp"
#include "util/report.hpp"
#include "util/require.hpp"

namespace riskan::cli {
namespace {

/// --key value argument map with typed getters and defaults.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      RISKAN_REQUIRE(key.rfind("--", 0) == 0, "expected --flag, got: " + key);
      values_[key.substr(2)] = argv[i + 1];
    }
    RISKAN_REQUIRE((argc - first) % 2 == 0, "flags must come in --key value pairs");
  }

  std::string str(const std::string& key, const std::string& fallback = {}) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      RISKAN_REQUIRE(!fallback.empty(), "missing required flag --" + key);
      return fallback;
    }
    return it->second;
  }

  double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  std::uint64_t integer(const std::string& key, std::uint64_t fallback) const {
    return static_cast<std::uint64_t>(num(key, static_cast<double>(fallback)));
  }

  bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_gen_yelt(const Args& args) {
  data::YeltGenConfig config;
  config.trials = static_cast<TrialId>(args.integer("trials", 10'000));
  config.seed = args.integer("seed", 42);
  config.mean_events_per_year = args.num("rate", 10.0);
  config.dispersion = args.num("dispersion", 0.0);
  config.sort_by_day = args.integer("sort-by-day", 0) != 0;
  const auto events = static_cast<EventId>(args.integer("events", 10'000));
  const auto out = args.str("out");

  const auto yelt = data::generate_yelt(events, config);
  data::save_yelt(yelt, out);
  std::cout << "wrote " << out << ": " << yelt.trials() << " trials, "
            << format_count(static_cast<double>(yelt.entries())) << " occurrences ("
            << format_bytes(static_cast<double>(yelt.byte_size())) << " columnar)\n";
  return 0;
}

int cmd_gen_elt(const Args& args) {
  catmod::CatalogConfig cc;
  cc.events = static_cast<EventId>(args.integer("events", 10'000));
  cc.seed = args.integer("seed", 42);
  catmod::ExposureConfig ec;
  ec.sites = static_cast<LocationId>(args.integer("sites", 1'000));
  ec.seed = cc.seed + 1;
  const auto out = args.str("out");

  const auto catalog = catmod::EventCatalog::generate(cc);
  const auto exposure = catmod::ExposureDatabase::generate(ec);
  catmod::PipelineConfig pipeline;
  pipeline.use_spatial_index = true;
  catmod::PipelineStats stats;
  const auto elt = run_cat_model(catalog, exposure, pipeline, &stats);
  data::save_elt(elt, out);
  std::cout << "cat model: "
            << format_count(static_cast<double>(stats.event_exposure_pairs))
            << " candidate pairs in " << format_seconds(stats.seconds) << "\n"
            << "wrote " << out << ": " << elt.size() << " ELT rows, total mean loss "
            << format_count(elt.total_mean_loss()) << "\n";
  if (args.has("yelt-out")) {
    catmod::CatalogYeltConfig yc;
    yc.trials = static_cast<TrialId>(args.integer("trials", 10'000));
    yc.seed = cc.seed + 2;
    const auto yelt = simulate_yelt(catalog, yc);
    data::save_yelt(yelt, args.str("yelt-out"));
    std::cout << "wrote " << args.str("yelt-out") << ": " << yelt.trials()
              << " trials from the catalogue's rates\n";
  }
  return 0;
}

int cmd_aggregate(const Args& args) {
  const auto elt = data::load_elt(args.str("elt"));
  const auto yelt = data::load_yelt(args.str("yelt"));
  const auto out = args.str("out");

  finance::Layer layer;
  layer.id = 0;
  layer.terms.occ_retention = args.num("retention", 0.0);
  layer.terms.occ_limit = args.num("limit", 1e18);
  layer.terms.agg_retention = args.num("agg-retention", 0.0);
  layer.terms.agg_limit = args.num("agg-limit", 1e18);
  layer.terms.share = args.num("share", 1.0);
  if (args.has("franchise") && args.integer("franchise", 0) != 0) {
    layer.terms.retention_kind = finance::RetentionKind::Franchise;
  }

  finance::Portfolio portfolio;
  portfolio.add(finance::Contract(0, elt, {layer}));

  core::EngineConfig config;
  config.seed = args.integer("seed", 2012);
  config.secondary_uncertainty = args.integer("secondary", 1) != 0;
  config.compute_oep = false;
  config.keep_contract_ylts = false;
  config.backend = core::Backend::Threaded;

  const auto result = core::run_aggregate_analysis(portfolio, yelt, config);
  data::save_ylt(result.portfolio_ylt, out);
  std::cout << "aggregate analysis: " << yelt.trials() << " trials in "
            << format_seconds(result.seconds) << " ("
            << format_rate(static_cast<double>(result.occurrences_processed) /
                           result.seconds)
            << " occurrences)\n"
            << "wrote " << out << ": mean annual loss "
            << format_count(result.portfolio_ylt.mean()) << "\n";
  return 0;
}

int cmd_metrics(const Args& args) {
  const auto ylt = data::load_ylt(args.str("ylt"));
  const auto summary = core::summarise(ylt);

  ReportTable table({"metric", "value"});
  table.add_row({"trials", format_count(static_cast<double>(ylt.trials()))});
  table.add_row({"mean annual loss", format_count(summary.mean_annual_loss)});
  table.add_row({"stdev", format_count(summary.stdev_annual_loss)});
  table.add_row({"VaR 95%", format_count(summary.var_95)});
  table.add_row({"VaR 99%", format_count(summary.var_99)});
  table.add_row({"TVaR 99%", format_count(summary.tvar_99)});
  table.add_row({"PML 100y", format_count(summary.pml_100)});
  table.add_row({"PML 250y", format_count(summary.pml_250)});
  table.add_row({"max loss", format_count(summary.max_loss)});
  table.print(std::cout);

  std::cout << "\nEP curve\n";
  ReportTable curve({"return period", "loss"});
  const auto rps = core::standard_return_periods();
  for (const auto& point : core::exceedance_curve(ylt, rps)) {
    curve.add_row({format_fixed(point.return_period_years, 0) + "y",
                   format_count(point.loss)});
  }
  curve.print(std::cout);

  if (args.has("ci") && args.integer("ci", 0) != 0) {
    const auto pml = core::bootstrap_pml(ylt, 250.0);
    std::cout << "\nPML 250y 90% CI: [" << format_count(pml.lo) << ", "
              << format_count(pml.hi) << "]\n";
  }
  return 0;
}

int cmd_info(const Args& args) {
  const auto path = args.str("file");
  const auto data = read_file(path);
  RISKAN_REQUIRE(data.size() >= 4, "file too small to identify: " + path);
  ByteReader reader(data);
  const auto magic = reader.u32();
  std::cout << path << ": " << format_bytes(static_cast<double>(data.size())) << ", ";
  switch (magic) {
    case 0x454C5431: {
      ByteReader fresh(data);
      const auto elt = data::decode_elt(fresh);
      std::cout << "ELT, " << elt.size() << " rows, total mean loss "
                << format_count(elt.total_mean_loss()) << "\n";
      return 0;
    }
    case 0x59454C31: {
      ByteReader fresh(data);
      const auto yelt = data::decode_yelt(fresh);
      std::cout << "YELT, " << yelt.trials() << " trials, "
                << format_count(static_cast<double>(yelt.entries()))
                << " occurrences, " << format_fixed(yelt.mean_events_per_trial(), 2)
                << " events/year\n";
      return 0;
    }
    case 0x594C5431: {
      ByteReader fresh(data);
      const auto ylt = data::decode_ylt(fresh);
      std::cout << "YLT '" << ylt.label() << "', " << ylt.trials()
                << " trials, mean " << format_count(ylt.mean()) << "\n";
      return 0;
    }
    default:
      std::cout << "unknown format (magic 0x" << std::hex << magic << ")\n";
      return 1;
  }
}

void usage(std::ostream& os) {
  os << "riskan — reinsurance risk-analytics pipeline CLI\n\n"
     << "  riskan gen-yelt   --out F [--events N --trials T --rate R --seed S\n"
     << "                    --dispersion D --sort-by-day 1]\n"
     << "  riskan gen-elt    --out F [--events N --sites M --seed S --yelt-out F2 --trials T]\n"
     << "  riskan aggregate  --elt F --yelt F --out F [--retention X --limit X\n"
     << "                    --agg-retention X --agg-limit X --share X --franchise 1\n"
     << "                    --secondary 0|1 --seed S]\n"
     << "  riskan metrics    --ylt F [--ci 1]\n"
     << "  riskan info       --file F\n";
}

int dispatch(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage(std::cout);
    return 0;
  }
  const Args args(argc, argv, 2);
  if (command == "gen-yelt") {
    return cmd_gen_yelt(args);
  }
  if (command == "gen-elt") {
    return cmd_gen_elt(args);
  }
  if (command == "aggregate") {
    return cmd_aggregate(args);
  }
  if (command == "metrics") {
    return cmd_metrics(args);
  }
  if (command == "info") {
    return cmd_info(args);
  }
  std::cerr << "unknown command: " << command << "\n";
  usage(std::cerr);
  return 2;
}

}  // namespace
}  // namespace riskan::cli

int main(int argc, char** argv) {
  try {
    return riskan::cli::dispatch(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
