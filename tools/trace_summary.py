#!/usr/bin/env python3
"""Summarise a riskan chrome://tracing export.

Reads the JSON array written by RISKAN_TRACE=<file> / ObsConfig::trace_path
and prints:

  * the top spans by self-time (duration minus time covered by nested spans
    on the same pid/tid), aggregated per span name;
  * per-lane utilisation: for every pid (0 = engine, 1+k = dist worker k),
    the fraction of the trace's wall-clock covered by at least one span,
    plus the lane's instant-event counts (lease grants, expiries, ...).

Usage:  python3 tools/trace_summary.py trace.json [--top N]
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        events = json.load(f)
    if not isinstance(events, list):
        raise SystemExit(f"{path}: expected a chrome-trace JSON array")
    return events


def lane_label(pid, names):
    if pid in names:
        return names[pid]
    return "engine" if pid == 0 else f"worker {pid - 1}"


def self_times(spans):
    """Per-name total duration and self-time.

    Spans are grouped per (pid, tid); within a group, a span's self-time is
    its duration minus the union of enclosed child spans (the trace comes
    from RAII scopes, so spans on one thread nest rather than overlap).
    """
    totals = defaultdict(float)  # name -> summed duration (us)
    selfs = defaultdict(float)   # name -> summed self-time (us)
    counts = defaultdict(int)

    by_thread = defaultdict(list)
    for s in spans:
        by_thread[(s["pid"], s["tid"])].append(s)

    for group in by_thread.values():
        group.sort(key=lambda s: (s["ts"], -s["dur"]))
        stack = []  # enclosing spans; child time accrues to the direct parent
        child_time = {}  # id(span) -> us covered by children
        for s in group:
            end = s["ts"] + s["dur"]
            while stack and s["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack and end <= stack[-1]["ts"] + stack[-1]["dur"]:
                child_time[id(stack[-1])] = child_time.get(id(stack[-1]), 0.0) + s["dur"]
            stack.append(s)
        for s in group:
            totals[s["name"]] += s["dur"]
            selfs[s["name"]] += s["dur"] - child_time.get(id(s), 0.0)
            counts[s["name"]] += 1
    return totals, selfs, counts


def lane_utilisation(spans, instants):
    """Per-pid covered-time fraction and instant counts."""
    if not spans and not instants:
        return {}, 0.0
    t0 = min(
        [s["ts"] for s in spans] + [i["ts"] for i in instants], default=0.0
    )
    t1 = max(
        [s["ts"] + s["dur"] for s in spans] + [i["ts"] for i in instants],
        default=0.0,
    )
    wall = max(t1 - t0, 1e-9)

    lanes = {}
    by_lane = defaultdict(list)
    for s in spans:
        by_lane[s["pid"]].append((s["ts"], s["ts"] + s["dur"]))
    for pid, intervals in by_lane.items():
        intervals.sort()
        covered = 0.0
        cur_lo, cur_hi = intervals[0]
        for lo, hi in intervals[1:]:
            if lo > cur_hi:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        covered += cur_hi - cur_lo
        lanes[pid] = {"covered_us": covered, "busy": covered / wall, "instants": {}}

    for i in instants:
        lane = lanes.setdefault(
            i["pid"], {"covered_us": 0.0, "busy": 0.0, "instants": {}}
        )
        lane["instants"][i["name"]] = lane["instants"].get(i["name"], 0) + 1
    return lanes, wall


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="chrome-trace JSON file")
    parser.add_argument("--top", type=int, default=15, help="rows in the span table")
    args = parser.parse_args()

    events = load_events(args.trace)
    spans = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }

    totals, selfs, counts = self_times(spans)
    lanes, wall = lane_utilisation(spans, instants)

    print(f"{args.trace}: {len(spans)} spans, {len(instants)} instants, "
          f"{len(lanes)} lanes, wall {wall / 1e3:.3f} ms")
    print()
    print(f"{'span':<34} {'count':>7} {'total ms':>10} {'self ms':>10} {'self %':>7}")
    total_self = sum(selfs.values()) or 1.0
    ranked = sorted(selfs.items(), key=lambda kv: kv[1], reverse=True)
    for name, self_us in ranked[: args.top]:
        print(f"{name:<34} {counts[name]:>7} {totals[name] / 1e3:>10.3f} "
              f"{self_us / 1e3:>10.3f} {100.0 * self_us / total_self:>6.1f}%")
    if len(ranked) > args.top:
        print(f"... {len(ranked) - args.top} more span names")
    print()
    print(f"{'lane':<12} {'busy ms':>10} {'util %':>7}  instants")
    for pid in sorted(lanes):
        lane = lanes[pid]
        marks = ", ".join(
            f"{n}×{c}" for n, c in sorted(lane["instants"].items())
        ) or "-"
        print(f"{lane_label(pid, process_names):<12} {lane['covered_us'] / 1e3:>10.3f} "
              f"{100.0 * lane['busy']:>6.1f}%  {marks}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
