// Euler / co-TVaR capital allocation: additivity, diversification, and
// integration with the DFA and warehouse decompositions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate_engine.hpp"
#include "core/allocation.hpp"
#include "core/metrics.hpp"
#include "dfa/dfa_engine.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan::core {
namespace {

std::vector<data::YearLossTable> random_components(TrialId trials, std::size_t n,
                                                   std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<data::YearLossTable> components;
  for (std::size_t i = 0; i < n; ++i) {
    std::string label = "c";  // two-step concat avoids a gcc-12 -Wrestrict false positive
    label += std::to_string(i);
    data::YearLossTable ylt(trials, std::move(label));
    for (TrialId t = 0; t < trials; ++t) {
      ylt[t] = -std::log(to_unit_double_open(rng())) * (50.0 + 30.0 * i);
    }
    components.push_back(std::move(ylt));
  }
  return components;
}

data::YearLossTable sum_of(std::span<const data::YearLossTable> components) {
  data::YearLossTable total(components.front().trials(), "total");
  for (const auto& component : components) {
    total += component;
  }
  return total;
}

TEST(Allocation, ContributionsSumToEnterpriseTvar) {
  const auto components = random_components(5'000, 4, 1);
  const auto total = sum_of(components);
  for (const double p : {0.9, 0.95, 0.99}) {
    const auto result = allocate_co_tvar(components, total, p);
    Money allocated = 0.0;
    for (const auto& a : result.components) {
      allocated += a.co_tvar;
    }
    ASSERT_NEAR(allocated, result.enterprise_tvar,
                1e-9 * std::abs(result.enterprise_tvar))
        << "p=" << p;
  }
}

TEST(Allocation, CoTvarNeverExceedsStandalone) {
  // Sub-additivity of Euler contributions: a component's co-TVaR cannot
  // exceed its standalone TVaR (conditioning on someone else's bad trials
  // is at most as bad as conditioning on your own).
  const auto components = random_components(10'000, 5, 2);
  const auto total = sum_of(components);
  const auto result = allocate_co_tvar(components, total, 0.95);
  for (const auto& a : result.components) {
    EXPECT_LE(a.co_tvar, a.standalone_tvar + 1e-6) << a.component;
    EXPECT_LE(a.diversification_factor, 1.0 + 1e-9);
    EXPECT_GT(a.share_of_total, 0.0);
  }
}

TEST(Allocation, PerfectlyDependentComponentGetsItsFullTail) {
  // A component equal to half the total must receive exactly half.
  Xoshiro256ss rng(3);
  data::YearLossTable half(4'000, "half");
  for (TrialId t = 0; t < 4'000; ++t) {
    half[t] = -std::log(to_unit_double_open(rng())) * 100.0;
  }
  auto other = half;
  other.set_label("other-half");
  std::vector<data::YearLossTable> components{half, other};
  const auto total = sum_of(components);
  const auto result = allocate_co_tvar(components, total, 0.99);
  EXPECT_NEAR(result.components[0].share_of_total, 0.5, 1e-9);
  EXPECT_NEAR(result.components[0].diversification_factor, 1.0, 1e-9);
}

TEST(Allocation, IndependentHedgeGetsDiversificationCredit) {
  // A small independent component should have co-TVaR well below its
  // standalone TVaR.
  auto components = random_components(20'000, 2, 4);
  const auto total = sum_of(components);
  const auto result = allocate_co_tvar(components, total, 0.99);
  EXPECT_LT(result.components[0].diversification_factor, 0.9);
}

TEST(Allocation, LabelsAreCarried) {
  const auto components = random_components(100, 2, 5);
  const auto total = sum_of(components);
  const auto result = allocate_co_tvar(components, total, 0.9);
  EXPECT_EQ(result.components[0].component, "c0");
  EXPECT_EQ(result.components[1].component, "c1");
}

TEST(Allocation, ContractsEnforced) {
  const auto components = random_components(100, 2, 6);
  const auto total = sum_of(components);
  EXPECT_THROW((void)allocate_co_tvar({}, total, 0.9), ContractViolation);
  EXPECT_THROW((void)allocate_co_tvar(components, total, 0.0), ContractViolation);
  EXPECT_THROW((void)allocate_co_tvar(components, total, 1.0), ContractViolation);
  // Mismatched decomposition rejected.
  auto broken = components;
  broken[0] *= 2.0;
  EXPECT_THROW((void)allocate_co_tvar(broken, total, 0.9), ContractViolation);
  data::YearLossTable short_total(50);
  EXPECT_THROW((void)allocate_co_tvar(components, short_total, 0.9), ContractViolation);
}

TEST(Allocation, WorksOnEngineContractDecomposition) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 6;
  pg.catalog_events = 200;
  pg.elt_rows = 50;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 2'000;
  const auto yelt = data::generate_yelt(200, yg);

  EngineConfig config;
  config.keep_contract_ylts = true;
  config.secondary_uncertainty = false;
  const auto result = run_aggregate_analysis(portfolio, yelt, config);

  const auto allocation =
      allocate_co_tvar(result.contract_ylts, result.portfolio_ylt, 0.99);
  ASSERT_EQ(allocation.components.size(), 6u);
  Money sum = 0.0;
  for (const auto& a : allocation.components) {
    sum += a.co_tvar;
  }
  EXPECT_NEAR(sum, allocation.enterprise_tvar, 1e-6 * allocation.enterprise_tvar);
}

TEST(Allocation, WorksOnDfaSourceDecomposition) {
  // DFA source YLTs + the cat residual do not decompose additively from
  // the engine result (the copula reorders the cat dimension), so build
  // the additive decomposition explicitly: sources + (enterprise - sum).
  Xoshiro256ss rng(7);
  data::YearLossTable cat(3'000, "cat");
  for (TrialId t = 0; t < 3'000; ++t) {
    cat[t] = -std::log(to_unit_double_open(rng())) * 5e7;
  }
  dfa::DfaEngine engine(dfa::standard_risk_sources(8), dfa::DfaConfig{});
  const auto dfa_result = engine.run(cat);

  std::vector<data::YearLossTable> components = dfa_result.source_ylts;
  data::YearLossTable residual(cat.trials(), "cat-resampled");
  for (TrialId t = 0; t < cat.trials(); ++t) {
    Money sources = 0.0;
    for (const auto& source : dfa_result.source_ylts) {
      sources += source[t];
    }
    residual[t] = dfa_result.enterprise_ylt[t] - sources;
  }
  components.push_back(std::move(residual));

  const auto allocation =
      allocate_co_tvar(components, dfa_result.enterprise_ylt, 0.99);
  Money sum = 0.0;
  for (const auto& a : allocation.components) {
    sum += a.co_tvar;
  }
  EXPECT_NEAR(sum, allocation.enterprise_tvar,
              1e-6 * std::abs(allocation.enterprise_tvar));
}

}  // namespace
}  // namespace riskan::core
