// Distribution sampler tests: moment checks against analytic values,
// inverse-CDF accuracy, and parameterised sweeps over parameter space.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "util/distributions.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan {
namespace {

constexpr int kSamples = 200'000;

template <typename Sampler>
OnlineStats collect(std::uint64_t seed, const Sampler& draw, int n = kSamples) {
  Xoshiro256ss rng(seed);
  OnlineStats stats;
  for (int i = 0; i < n; ++i) {
    stats.add(draw(rng));
  }
  return stats;
}

TEST(Uniform, MomentsMatch) {
  const auto stats =
      collect(1, [](auto& rng) { return sample_uniform(rng, 2.0, 6.0); });
  EXPECT_NEAR(stats.mean(), 4.0, 0.02);
  EXPECT_NEAR(stats.variance(), 16.0 / 12.0, 0.03);
  EXPECT_GE(stats.min(), 2.0);
  EXPECT_LT(stats.max(), 6.0);
}

TEST(SampleIndex, UniformOverRange) {
  Xoshiro256ss rng(2);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[sample_index(rng, 10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(SampleIndex, RejectsEmptyRange) {
  Xoshiro256ss rng(3);
  EXPECT_THROW((void)sample_index(rng, 0), ContractViolation);
}

TEST(Exponential, MomentsMatch) {
  const double lambda = 2.5;
  const auto stats =
      collect(4, [lambda](auto& rng) { return sample_exponential(rng, lambda); });
  EXPECT_NEAR(stats.mean(), 1.0 / lambda, 0.01);
  EXPECT_NEAR(stats.stdev(), 1.0 / lambda, 0.02);
  EXPECT_GT(stats.min(), 0.0);
}

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  const double mean = GetParam();
  const auto stats = collect(5, [mean](auto& rng) {
    return static_cast<double>(sample_poisson(rng, mean));
  });
  EXPECT_NEAR(stats.mean(), mean, std::max(0.02, mean * 0.02));
  EXPECT_NEAR(stats.variance(), mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMoments,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 10.0, 15.9, 16.0, 25.0,
                                           100.0));

TEST(Poisson, ZeroMeanIsZero) {
  Xoshiro256ss rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
  }
}

TEST(Normal, MomentsMatch) {
  const auto stats =
      collect(7, [](auto& rng) { return sample_normal(rng, 3.0, 2.0); });
  EXPECT_NEAR(stats.mean(), 3.0, 0.02);
  EXPECT_NEAR(stats.stdev(), 2.0, 0.02);
}

TEST(Normal, SymmetryAboutMean) {
  const auto stats =
      collect(8, [](auto& rng) { return sample_standard_normal(rng); });
  // Skewness proxy: mean of cubes should be ~0.
  Xoshiro256ss rng(8);
  double cube_sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double z = sample_standard_normal(rng);
    cube_sum += z * z * z;
  }
  EXPECT_NEAR(cube_sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
}

TEST(Lognormal, MomentsMatch) {
  const double mu = 0.5;
  const double sigma = 0.75;
  const auto stats =
      collect(9, [=](auto& rng) { return sample_lognormal(rng, mu, sigma); });
  const double expected_mean = std::exp(mu + 0.5 * sigma * sigma);
  EXPECT_NEAR(stats.mean() / expected_mean, 1.0, 0.02);
  EXPECT_GT(stats.min(), 0.0);
}

class GammaMoments : public ::testing::TestWithParam<double> {};

TEST_P(GammaMoments, ShapeMatchesMeanAndVariance) {
  const double shape = GetParam();
  const auto stats = collect(10, [shape](auto& rng) { return sample_gamma(rng, shape); });
  EXPECT_NEAR(stats.mean() / shape, 1.0, 0.03);
  EXPECT_NEAR(stats.variance() / shape, 1.0, 0.06);
  EXPECT_GT(stats.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ShapesBelowAndAboveOne, GammaMoments,
                         ::testing::Values(0.3, 0.7, 1.0, 2.0, 5.0, 20.0));

struct BetaCase {
  double alpha;
  double beta;
};

class BetaMoments : public ::testing::TestWithParam<BetaCase> {};

TEST_P(BetaMoments, MomentsMatch) {
  const auto [alpha, beta] = GetParam();
  const auto stats =
      collect(11, [=](auto& rng) { return sample_beta(rng, alpha, beta); });
  const double expected_mean = alpha / (alpha + beta);
  const double s = alpha + beta;
  const double expected_var = alpha * beta / (s * s * (s + 1.0));
  EXPECT_NEAR(stats.mean(), expected_mean, 0.01);
  EXPECT_NEAR(stats.variance(), expected_var, 0.01);
  EXPECT_GE(stats.min(), 0.0);
  EXPECT_LE(stats.max(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(ParameterSweep, BetaMoments,
                         ::testing::Values(BetaCase{2.0, 5.0}, BetaCase{0.5, 0.5},
                                           BetaCase{1.0, 1.0}, BetaCase{8.0, 2.0},
                                           BetaCase{0.8, 3.0}));

TEST(BetaFromMoments, RecoversParameters) {
  double alpha = 0.0;
  double beta = 0.0;
  beta_from_moments(0.3, 0.1, alpha, beta);
  const double mean = alpha / (alpha + beta);
  const double s = alpha + beta;
  const double var = alpha * beta / (s * s * (s + 1.0));
  EXPECT_NEAR(mean, 0.3, 1e-9);
  EXPECT_NEAR(std::sqrt(var), 0.1, 1e-9);
}

TEST(BetaFromMoments, ClampsInfeasibleVariance) {
  double alpha = 0.0;
  double beta = 0.0;
  // stdev far beyond the feasible sqrt(mean*(1-mean)).
  beta_from_moments(0.5, 10.0, alpha, beta);
  EXPECT_GT(alpha, 0.0);
  EXPECT_GT(beta, 0.0);
}

TEST(BetaFromMoments, ZeroStdevDegenerates) {
  double alpha = 0.0;
  double beta = 0.0;
  beta_from_moments(0.25, 0.0, alpha, beta);
  EXPECT_NEAR(alpha / (alpha + beta), 0.25, 1e-6);
  EXPECT_GT(alpha + beta, 1e5);  // tight concentration
}

TEST(BetaFromMoments, RejectsBadMean) {
  double alpha = 0.0;
  double beta = 0.0;
  EXPECT_THROW(beta_from_moments(0.0, 0.1, alpha, beta), ContractViolation);
  EXPECT_THROW(beta_from_moments(1.0, 0.1, alpha, beta), ContractViolation);
}

class ParetoMoments : public ::testing::TestWithParam<double> {};

TEST_P(ParetoMoments, SupportAndTail) {
  const double alpha = GetParam();
  const double lo = 10.0;
  const double hi = 1000.0;
  const auto stats = collect(
      12, [=](auto& rng) { return sample_truncated_pareto(rng, alpha, lo, hi); });
  EXPECT_GE(stats.min(), lo);
  EXPECT_LE(stats.max(), hi);
  // CDF check at the median of the truncated distribution.
  Xoshiro256ss rng(13);
  int below_100 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (sample_truncated_pareto(rng, alpha, lo, hi) <= 100.0) {
      ++below_100;
    }
  }
  const double lo_a = std::pow(lo, -alpha);
  const double hi_a = std::pow(hi, -alpha);
  const double expected_cdf = (lo_a - std::pow(100.0, -alpha)) / (lo_a - hi_a);
  EXPECT_NEAR(static_cast<double>(below_100) / n, expected_cdf, 0.01);
}

INSTANTIATE_TEST_SUITE_P(TailIndices, ParetoMoments, ::testing::Values(0.8, 1.1, 1.5, 2.5));

TEST(NormalInvCdf, RoundTripsThroughCdf) {
  for (const double p : {1e-9, 1e-6, 0.01, 0.02425, 0.3, 0.5, 0.7, 0.97575, 0.99,
                         1.0 - 1e-6}) {
    const double x = normal_inv_cdf(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalInvCdf, KnownQuantiles) {
  EXPECT_NEAR(normal_inv_cdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_inv_cdf(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_inv_cdf(0.995), 2.5758293035489004, 1e-8);
  EXPECT_NEAR(normal_inv_cdf(0.025), -1.959963984540054, 1e-8);
}

TEST(NormalInvCdf, RejectsEndpoints) {
  EXPECT_THROW(normal_inv_cdf(0.0), ContractViolation);
  EXPECT_THROW(normal_inv_cdf(1.0), ContractViolation);
}

TEST(Contracts, NegativeParametersRejected) {
  Xoshiro256ss rng(14);
  EXPECT_THROW(sample_exponential(rng, -1.0), ContractViolation);
  EXPECT_THROW(sample_gamma(rng, 0.0), ContractViolation);
  EXPECT_THROW(sample_beta(rng, -1.0, 2.0), ContractViolation);
  EXPECT_THROW(sample_truncated_pareto(rng, 1.0, 5.0, 2.0), ContractViolation);
  EXPECT_THROW(sample_normal(rng, 0.0, -1.0), ContractViolation);
}

}  // namespace
}  // namespace riskan
