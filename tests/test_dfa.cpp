// Stage 3: correlation matrices, Gaussian copula (marginal preservation,
// dependence), risk-source marginals, and the DFA engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate_engine.hpp"
#include "dfa/copula.hpp"
#include "dfa/dfa_engine.hpp"
#include "dfa/risk_sources.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace riskan::dfa {
namespace {

TEST(CorrelationMatrix, IdentityByDefault) {
  const CorrelationMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(CorrelationMatrix, SetIsSymmetric) {
  CorrelationMatrix m(3);
  m.set(0, 2, 0.4);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.4);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 0.4);
  EXPECT_THROW(m.set(1, 1, 0.5), ContractViolation);
  EXPECT_THROW(m.set(0, 1, 1.0), ContractViolation);
  EXPECT_THROW((void)m.at(3, 0), ContractViolation);
}

TEST(CorrelationMatrix, ExchangeableFillsOffDiagonal) {
  const auto m = CorrelationMatrix::exchangeable(4, 0.3);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), i == j ? 1.0 : 0.3);
    }
  }
}

TEST(Copula, RejectsNonPositiveDefinite) {
  // Exchangeable rho < -1/(n-1) is not PSD: for n=3, rho=-0.6 fails.
  const auto bad = CorrelationMatrix::exchangeable(3, -0.6);
  EXPECT_THROW(GaussianCopula(bad, 1), ContractViolation);
  const auto good = CorrelationMatrix::exchangeable(3, 0.5);
  EXPECT_NO_THROW(GaussianCopula(good, 1));
}

TEST(Copula, MarginalsAreUniform) {
  const GaussianCopula copula(CorrelationMatrix::exchangeable(3, 0.5), 42);
  OnlineStats dims[3];
  std::vector<double> u(3);
  const TrialId n = 50'000;
  for (TrialId t = 0; t < n; ++t) {
    copula.sample(t, u);
    for (int d = 0; d < 3; ++d) {
      ASSERT_GT(u[d], 0.0);
      ASSERT_LT(u[d], 1.0);
      dims[d].add(u[d]);
    }
  }
  for (const auto& stats : dims) {
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
  }
}

TEST(Copula, PositiveRhoInducesPositiveRankCorrelation) {
  const GaussianCopula correlated(CorrelationMatrix::exchangeable(2, 0.7), 7);
  const GaussianCopula independent(CorrelationMatrix::exchangeable(2, 0.0), 7);

  auto sample_corr = [](const GaussianCopula& copula) {
    std::vector<double> u(2);
    double sum_xy = 0.0;
    double sum_x = 0.0;
    double sum_y = 0.0;
    double sum_x2 = 0.0;
    double sum_y2 = 0.0;
    const int n = 20'000;
    for (TrialId t = 0; t < n; ++t) {
      copula.sample(t, u);
      sum_xy += u[0] * u[1];
      sum_x += u[0];
      sum_y += u[1];
      sum_x2 += u[0] * u[0];
      sum_y2 += u[1] * u[1];
    }
    const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
    const double vx = sum_x2 / n - (sum_x / n) * (sum_x / n);
    const double vy = sum_y2 / n - (sum_y / n) * (sum_y / n);
    return cov / std::sqrt(vx * vy);
  };

  EXPECT_GT(sample_corr(correlated), 0.55);
  EXPECT_NEAR(sample_corr(independent), 0.0, 0.03);
}

TEST(Copula, DeterministicPerTrial) {
  const GaussianCopula copula(CorrelationMatrix::exchangeable(4, 0.2), 5);
  std::vector<double> a(4);
  std::vector<double> b(4);
  copula.sample(123, a);
  copula.sample(123, b);
  for (int d = 0; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(a[d], b[d]);
  }
  copula.sample(124, b);
  int same = 0;
  for (int d = 0; d < 4; ++d) {
    if (a[d] == b[d]) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Copula, WrongSpanSizeRejected) {
  const GaussianCopula copula(CorrelationMatrix::exchangeable(3, 0.1), 5);
  std::vector<double> wrong(2);
  EXPECT_THROW(copula.sample(0, wrong), ContractViolation);
}

// ---------------------------------------------------------------------------
// Risk sources
// ---------------------------------------------------------------------------

TEST(RiskSources, LossesAreMonotoneInBadness) {
  const auto sources = standard_risk_sources(11);
  for (const auto& source : sources) {
    double prev = -1e18;
    for (double u = 0.01; u < 1.0; u += 0.01) {
      const double loss = source->loss(u, /*trial=*/5);
      ASSERT_GE(loss, prev - 1e-9) << source->name() << " at u=" << u;
      prev = loss;
    }
  }
}

TEST(RiskSources, InvestmentGainsInGoodYears) {
  const InvestmentRisk investment(1e9, 0.05, 0.10);
  EXPECT_LT(investment.loss(0.1, 0), 0.0);  // low badness = gain
  EXPECT_GT(investment.loss(0.99, 0), 0.0);
}

TEST(RiskSources, CounterpartyDefaultsOnlyInTail) {
  const CounterpartyRisk cp(1e8, 0.02, 0.5);
  EXPECT_DOUBLE_EQ(cp.loss(0.5, 0), 0.0);
  EXPECT_DOUBLE_EQ(cp.loss(0.97, 0), 0.0);
  EXPECT_GT(cp.loss(0.99, 0), 0.0);
  EXPECT_LE(cp.loss(0.999999, 0), 1e8 * 0.5 + 1.0);
}

TEST(RiskSources, OperationalCountDrivesLoss) {
  const OperationalRisk op(2.0, std::log(1e6), 1.0, 3);
  EXPECT_DOUBLE_EQ(op.loss(0.01, 0), 0.0);  // count quantile 0
  EXPECT_GT(op.loss(0.999, 0), 0.0);
}

TEST(RiskSources, ReserveDevelopmentCentredOnZero) {
  const ReserveRisk reserve(1e9, 0.05);
  // Median development factor is below e^0 due to the -sigma^2/2 drift;
  // loss at u=0.5 is slightly negative, far from +/- reserves.
  const double mid = reserve.loss(0.5, 0);
  EXPECT_LT(std::abs(mid), 1e8);
  EXPECT_GT(reserve.loss(0.99, 0), 0.0);
  EXPECT_LT(reserve.loss(0.01, 0), 0.0);
}

TEST(RiskSources, ConstructorContracts) {
  EXPECT_THROW(InvestmentRisk(-1.0, 0.05, 0.1), ContractViolation);
  EXPECT_THROW(InterestRateRisk(1e9, 0.0, 0.01), ContractViolation);
  EXPECT_THROW(CounterpartyRisk(1e8, 1.5, 0.5), ContractViolation);
  EXPECT_THROW(ReserveRisk(0.0, 0.05), ContractViolation);
}

// ---------------------------------------------------------------------------
// DFA engine
// ---------------------------------------------------------------------------

class DfaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    finance::PortfolioGenConfig pg;
    pg.contracts = 8;
    pg.catalog_events = 300;
    pg.elt_rows = 60;
    const auto portfolio = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = 3'000;
    const auto yelt = data::generate_yelt(300, yg);
    core::EngineConfig config;
    config.backend = core::Backend::Sequential;
    cat_ylt_ = core::run_aggregate_analysis(portfolio, yelt, config).portfolio_ylt;
  }

  data::YearLossTable cat_ylt_;
};

TEST_F(DfaFixture, RunProducesCoherentEnterpriseView) {
  DfaEngine engine(standard_risk_sources(21), DfaConfig{});
  const auto result = engine.run(cat_ylt_);

  EXPECT_EQ(result.enterprise_ylt.trials(), cat_ylt_.trials());
  ASSERT_EQ(result.source_ylts.size(), 6u);
  ASSERT_EQ(result.source_names.size(), 6u);
  ASSERT_EQ(result.source_summaries.size(), 6u);

  // Enterprise tail must dominate the cat tail alone is NOT guaranteed
  // (investment gains offset), but economic capital must be positive and
  // the summary coherent.
  EXPECT_GT(result.economic_capital, 0.0);
  EXPECT_GE(result.enterprise_summary.tvar_99, result.enterprise_summary.var_99);
  EXPECT_GT(result.ylt_bytes_touched, 0u);
}

TEST_F(DfaFixture, DeterministicInSeed) {
  DfaConfig config;
  config.seed = 99;
  DfaEngine a(standard_risk_sources(5), config);
  DfaEngine b(standard_risk_sources(5), config);
  const auto ra = a.run(cat_ylt_);
  const auto rb = b.run(cat_ylt_);
  for (TrialId t = 0; t < cat_ylt_.trials(); ++t) {
    ASSERT_EQ(ra.enterprise_ylt[t], rb.enterprise_ylt[t]);
  }
}

TEST_F(DfaFixture, EnterpriseEqualsSumOfParts) {
  DfaConfig config;
  DfaEngine engine(standard_risk_sources(7), config);
  const auto result = engine.run(cat_ylt_);

  // enterprise[t] = cat_quantile(u0) + sum of source losses. We cannot
  // reconstruct cat_quantile here, but enterprise - sum(sources) must be a
  // rearrangement of the cat YLT: same sorted values.
  std::vector<double> residual(cat_ylt_.trials());
  for (TrialId t = 0; t < cat_ylt_.trials(); ++t) {
    double sources_sum = 0.0;
    for (const auto& ylt : result.source_ylts) {
      sources_sum += ylt[t];
    }
    residual[t] = result.enterprise_ylt[t] - sources_sum;
  }
  std::sort(residual.begin(), residual.end());
  std::vector<double> cat_sorted(cat_ylt_.losses().begin(), cat_ylt_.losses().end());
  std::sort(cat_sorted.begin(), cat_sorted.end());

  // The residual is the cat quantile function evaluated at the copula's
  // dimension-0 uniforms: same distribution as the cat YLT, re-ordered.
  // Compare distributional statistics rather than order statistics.
  OnlineStats res_stats;
  OnlineStats cat_stats;
  for (std::size_t i = 0; i < residual.size(); ++i) {
    res_stats.add(residual[i]);
    cat_stats.add(cat_sorted[i]);
  }
  EXPECT_GE(res_stats.min(), cat_stats.min() - 1e-6);
  EXPECT_LE(res_stats.max(), cat_stats.max() + 1e-6);
  EXPECT_NEAR(res_stats.mean() / (cat_stats.mean() + 1e-12), 1.0, 0.10);
}

TEST_F(DfaFixture, PositiveCorrelationFattensTheTail) {
  DfaConfig independent;
  independent.correlation = 0.0;
  DfaConfig correlated;
  correlated.correlation = 0.6;
  DfaEngine a(standard_risk_sources(9), independent);
  DfaEngine b(standard_risk_sources(9), correlated);
  const auto ra = a.run(cat_ylt_);
  const auto rb = b.run(cat_ylt_);
  EXPECT_GT(rb.enterprise_summary.var_99_6, ra.enterprise_summary.var_99_6);
  // Diversification benefit shrinks as correlation rises.
  EXPECT_LT(rb.diversification_benefit, ra.diversification_benefit);
}

TEST_F(DfaFixture, KeepSourceYltsOffShrinksResult) {
  DfaConfig config;
  config.keep_source_ylts = false;
  DfaEngine engine(standard_risk_sources(3), config);
  const auto result = engine.run(cat_ylt_);
  EXPECT_TRUE(result.source_ylts.empty());
  EXPECT_TRUE(result.source_summaries.empty());
  EXPECT_EQ(result.enterprise_ylt.trials(), cat_ylt_.trials());
}

TEST(DfaEngine, RejectsBadInputs) {
  EXPECT_THROW(DfaEngine({}, DfaConfig{}), ContractViolation);
  DfaEngine engine(standard_risk_sources(1), DfaConfig{});
  const data::YearLossTable empty;
  EXPECT_THROW((void)engine.run(empty), ContractViolation);
}

}  // namespace
}  // namespace riskan::dfa
