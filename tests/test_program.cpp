// Program engine (inuring cascades) and day-ordered YELT generation.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "core/program.hpp"
#include "data/yelt.hpp"
#include "util/require.hpp"

namespace riskan::core {
namespace {

finance::Layer make_layer(LayerId id, Money retention, Money limit, double share = 1.0) {
  finance::Layer layer;
  layer.id = id;
  layer.terms.occ_retention = retention;
  layer.terms.occ_limit = limit;
  layer.terms.agg_limit = limit * 10.0;
  layer.terms.share = share;
  return layer;
}

finance::Contract two_layer_contract(bool overlapping) {
  auto elt = data::EventLossTable::from_rows({
      {1, 500.0, 0.0, 500.0},
      {2, 1'500.0, 0.0, 1'500.0},
  });
  std::vector<finance::Layer> layers;
  if (overlapping) {
    // Both layers attach from the ground: inuring changes the answer.
    layers.push_back(make_layer(0, 0.0, 400.0));
    layers.push_back(make_layer(1, 0.0, 800.0));
  } else {
    // A clean tower: 0-400, then 400 xs 400.
    layers.push_back(make_layer(0, 0.0, 400.0));
    layers.push_back(make_layer(1, 400.0, 400.0));
  }
  return finance::Contract(0, std::move(elt), std::move(layers));
}

data::YearEventLossTable two_trial_yelt() {
  data::YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(1, 10);  // gu 500
  builder.begin_trial();
  builder.add(2, 20);  // gu 1500
  return builder.finish();
}

TEST(Program, InuringCascadeOracle) {
  const auto contract = two_layer_contract(/*overlapping=*/true);
  const auto yelt = two_trial_yelt();
  ProgramConfig config;
  config.inuring = true;
  const auto result = run_program(contract, yelt, config);

  // Trial 0: gu 500. Layer 0 pays 400; layer 1 sees 100, pays 100.
  EXPECT_DOUBLE_EQ(result.layer_ylts[0][0], 400.0);
  EXPECT_DOUBLE_EQ(result.layer_ylts[1][0], 100.0);
  EXPECT_DOUBLE_EQ(result.gross_ylt[0], 500.0);
  EXPECT_DOUBLE_EQ(result.retained_ylt[0], 0.0);

  // Trial 1: gu 1500. Layer 0 pays 400; layer 1 sees 1100, pays 800.
  EXPECT_DOUBLE_EQ(result.layer_ylts[0][1], 400.0);
  EXPECT_DOUBLE_EQ(result.layer_ylts[1][1], 800.0);
  EXPECT_DOUBLE_EQ(result.retained_ylt[1], 300.0);
}

TEST(Program, WithoutInuringLayersDoubleCount) {
  const auto contract = two_layer_contract(/*overlapping=*/true);
  const auto yelt = two_trial_yelt();
  ProgramConfig config;
  config.inuring = false;
  const auto result = run_program(contract, yelt, config);

  // Both layers see the full 500: recoveries 400 + 500 = 900 > gross.
  EXPECT_DOUBLE_EQ(result.layer_ylts[0][0], 400.0);
  EXPECT_DOUBLE_EQ(result.layer_ylts[1][0], 500.0);
  EXPECT_LT(result.retained_ylt[0], 0.0);  // the double-count artefact
}

TEST(Program, RecoveriesNeverExceedGrossUnderInuring) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 150;
  pg.elt_rows = 50;
  pg.layers_per_contract = 3;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 500;
  const auto yelt = data::generate_yelt(150, yg);

  ProgramConfig config;
  config.inuring = true;
  config.secondary_uncertainty = true;
  const auto result = run_program(portfolio.contract(0), yelt, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_GE(result.retained_ylt[t], -1e-9) << "trial " << t;
    Money recovered = 0.0;
    for (const auto& layer : result.layer_ylts) {
      recovered += layer[t];
    }
    ASSERT_LE(recovered, result.gross_ylt[t] + 1e-9);
  }
}

TEST(Program, TowerEquivalenceBetweenCascadeAndFlatForms) {
  // The same economic tower written two ways must pay the same:
  //  flat form   : layer A = 0-400 ground-up, layer B = 400 xs 400 ground-up
  //  cascade form: layer A = 0-400, layer B = 0 xs 0 limit 400 on the loss
  //                net of A (inuring).
  const auto yelt = two_trial_yelt();
  auto elt = data::EventLossTable::from_rows({
      {1, 500.0, 0.0, 500.0},
      {2, 1'500.0, 0.0, 1'500.0},
  });

  finance::Contract flat_form(
      0, elt, {make_layer(0, 0.0, 400.0), make_layer(1, 400.0, 400.0)});
  finance::Portfolio portfolio;
  portfolio.add(flat_form);
  EngineConfig flat;
  flat.secondary_uncertainty = false;
  flat.backend = Backend::Sequential;
  const auto engine = run_aggregate_analysis(portfolio, yelt, flat);

  finance::Contract cascade_form(
      0, elt, {make_layer(0, 0.0, 400.0), make_layer(1, 0.0, 400.0)});
  ProgramConfig cascade;
  cascade.inuring = true;
  const auto program = run_program(cascade_form, yelt, cascade);

  for (TrialId t = 0; t < yelt.trials(); ++t) {
    const Money program_total = program.layer_ylts[0][t] + program.layer_ylts[1][t];
    ASSERT_NEAR(program_total, engine.portfolio_ylt[t], 1e-9) << "trial " << t;
  }

  // And the flat engine equals the cascade with inuring off (independent
  // layers are exactly what the flat engine computes).
  ProgramConfig independent;
  independent.inuring = false;
  const auto flat_program = run_program(flat_form, yelt, independent);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_NEAR(flat_program.layer_ylts[0][t] + flat_program.layer_ylts[1][t],
                engine.portfolio_ylt[t], 1e-9);
  }
}

TEST(Program, AddingAnInuringLayerShieldsLaterLayers) {
  auto elt = data::EventLossTable::from_rows({{1, 1'000.0, 0.0, 1'000.0}});
  data::YearEventLossTable::Builder builder;
  builder.begin_trial();
  builder.add(1, 0);
  const auto yelt = builder.finish();

  // Without the primary layer, the cat layer sees the full 1000.
  finance::Contract bare(0, elt, {make_layer(0, 200.0, 600.0)});
  const auto without = run_program(bare, yelt, {});

  // With a ground-up layer inuring to its benefit, it sees less.
  finance::Contract shielded(
      0, elt, {make_layer(0, 0.0, 300.0), make_layer(1, 200.0, 600.0)});
  const auto with = run_program(shielded, yelt, {});

  EXPECT_LT(with.layer_ylts[1][0], without.layer_ylts[0][0]);
}

TEST(Program, DeterministicWithSecondary) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 80;
  pg.elt_rows = 30;
  pg.layers_per_contract = 2;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 200;
  const auto yelt = data::generate_yelt(80, yg);
  ProgramConfig config;
  config.secondary_uncertainty = true;
  const auto a = run_program(portfolio.contract(0), yelt, config);
  const auto b = run_program(portfolio.contract(0), yelt, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_EQ(a.retained_ylt[t], b.retained_ylt[t]);
  }
}

// ---------------------------------------------------------------------------
// Day-ordered YELT generation
// ---------------------------------------------------------------------------

TEST(YeltDayOrder, SortedTrialsAreMonotoneInDay) {
  data::YeltGenConfig config;
  config.trials = 500;
  config.sort_by_day = true;
  const auto yelt = data::generate_yelt(200, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    const auto days = yelt.trial_days(t);
    for (std::size_t i = 1; i < days.size(); ++i) {
      ASSERT_LE(days[i - 1], days[i]) << "trial " << t;
    }
  }
}

TEST(YeltDayOrder, SortingPreservesTheMultiset) {
  data::YeltGenConfig unsorted;
  unsorted.trials = 300;
  unsorted.seed = 5;
  data::YeltGenConfig sorted = unsorted;
  sorted.sort_by_day = true;

  const auto a = data::generate_yelt(100, unsorted);
  const auto b = data::generate_yelt(100, sorted);
  ASSERT_EQ(a.entries(), b.entries());
  for (TrialId t = 0; t < a.trials(); ++t) {
    auto ea = a.trial_events(t);
    auto eb = b.trial_events(t);
    std::vector<EventId> va(ea.begin(), ea.end());
    std::vector<EventId> vb(eb.begin(), eb.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    ASSERT_EQ(va, vb) << "trial " << t;
  }
}

TEST(YeltDayOrder, FlatEngineIsOrderInvariant) {
  // Occurrence + aggregate terms commute with occurrence order, so the flat
  // engine must produce the same distribution either way (secondary off;
  // with sampling on the stream keys shift with position).
  finance::PortfolioGenConfig pg;
  pg.contracts = 2;
  pg.catalog_events = 100;
  pg.elt_rows = 40;
  const auto portfolio = finance::generate_portfolio(pg);

  data::YeltGenConfig unsorted;
  unsorted.trials = 300;
  unsorted.seed = 5;
  data::YeltGenConfig sorted = unsorted;
  sorted.sort_by_day = true;
  const auto a = data::generate_yelt(100, unsorted);
  const auto b = data::generate_yelt(100, sorted);

  EngineConfig config;
  config.secondary_uncertainty = false;
  config.backend = Backend::Sequential;
  const auto ra = run_aggregate_analysis(portfolio, a, config);
  const auto rb = run_aggregate_analysis(portfolio, b, config);
  for (TrialId t = 0; t < a.trials(); ++t) {
    ASSERT_NEAR(ra.portfolio_ylt[t], rb.portfolio_ylt[t], 1e-9);
  }
}

}  // namespace
}  // namespace riskan::core
