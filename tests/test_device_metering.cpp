// DeviceSim executor telemetry: the counters and the performance model
// that E2/E4 report. These tests pin the metering semantics of the
// plan/executor layer (core::exec) so the modeled numbers in
// EXPERIMENTS.md stay auditable: constant-memory residency is decided by
// the execution plan per gather source, one launch per residency chunk,
// and shared-memory staging is greedy per block.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"

namespace riskan::core {
namespace {

struct World {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
};

World make_world(TrialId trials = 400, std::size_t elt_rows = 200,
                 std::size_t contracts = 2) {
  finance::PortfolioGenConfig pg;
  pg.contracts = contracts;
  pg.catalog_events = 500;
  pg.elt_rows = elt_rows;
  data::YeltGenConfig yg;
  yg.trials = trials;
  return World{finance::generate_portfolio(pg), data::generate_yelt(500, yg)};
}

DeviceRunInfo run_device(const World& world, EngineConfig config, DeviceSpec spec = {}) {
  config.backend = Backend::DeviceSim;
  config.device_spec = spec;
  DeviceRunInfo info;
  config.device_info = &info;
  (void)run_aggregate_analysis(world.portfolio, world.yelt, config);
  return info;
}

TEST(DeviceMetering, CountersArePopulated) {
  const auto world = make_world();
  EngineConfig config;
  const auto info = run_device(world, config);
  EXPECT_GT(info.launches, 0);
  EXPECT_GT(info.elt_chunks, 0u);
  EXPECT_GT(info.modeled_seconds, 0.0);
  EXPECT_GT(info.host_seconds, 0.0);
  EXPECT_GT(info.counters.const_read_bytes, 0u);   // resident ELT gathers
  EXPECT_GT(info.counters.global_read_bytes, 0u);  // column staging + scratch
  EXPECT_GT(info.counters.flops, 0u);              // beta sampling
}

TEST(DeviceMetering, SecondaryOffDropsFlops) {
  const auto world = make_world();
  EngineConfig on;
  on.secondary_uncertainty = true;
  EngineConfig off;
  off.secondary_uncertainty = false;
  const auto info_on = run_device(world, on);
  const auto info_off = run_device(world, off);
  EXPECT_GT(info_on.counters.flops, 2 * info_off.counters.flops);
}

TEST(DeviceMetering, ResidencyCapShiftsGatherTrafficToGlobal) {
  // The plan stages up to device_elt_chunk_rows of each ELT into constant
  // memory; capping residency moves the per-gather row reads from the
  // constant segment to global memory.
  const auto world = make_world(300, 400);
  EngineConfig fit;
  fit.device_elt_chunk_rows = 0;  // stage as much as the segment fits
  EngineConfig capped;
  capped.device_elt_chunk_rows = 32;
  const auto a = run_device(world, fit);
  const auto b = run_device(world, capped);
  EXPECT_GT(a.counters.const_read_bytes, b.counters.const_read_bytes);
  EXPECT_GT(b.counters.global_read_bytes, a.counters.global_read_bytes);
}

TEST(DeviceMetering, SearchPathProbesCostMoreConstTrafficThanResolvedGathers) {
  // The use_resolver=false reference path binary-searches the resident
  // table per occurrence (log2(rows) probes); the resolved path reads one
  // packed row per hit. Same staging either way, so the probe traffic is
  // the difference.
  const auto world = make_world(300, 400);
  EngineConfig resolved;
  resolved.use_resolver = true;
  EngineConfig search;
  search.use_resolver = false;
  const auto a = run_device(world, resolved);
  const auto b = run_device(world, search);
  EXPECT_GT(b.counters.const_read_bytes, a.counters.const_read_bytes);
}

TEST(DeviceMetering, BatchedBookSharesLaunchesAcrossContracts) {
  // Per-contract lowering launches per (contract, layer); the batched plan
  // packs every contract's table into shared residency chunks — with small
  // tables, the whole book rides one launch. This is the constraint the
  // executor refactor lifted (the legacy device kernel staged one layer's
  // ELT at a time).
  const auto world = make_world(400, 200, /*contracts=*/4);
  EngineConfig loop;
  loop.batch_contracts = false;
  EngineConfig batched;
  batched.batch_contracts = true;
  const auto a = run_device(world, loop);
  const auto b = run_device(world, batched);
  EXPECT_EQ(a.launches, 4);  // one per (contract, layer)
  EXPECT_EQ(b.launches, 1);  // 4 x 200-row tables fit one constant segment
  EXPECT_LT(b.modeled_seconds, a.modeled_seconds);
}

TEST(DeviceMetering, ConstantPressureSplitsBatchedPlanIntoMoreLaunches) {
  // Eight 500-row tables (~28 KiB packed each) cannot all share the 64 KiB
  // constant segment at full residency: the plan closes residency chunks
  // (more launches). Capping per-source residency packs them together.
  const auto world = make_world(200, 500, /*contracts=*/8);
  EngineConfig full;
  full.batch_contracts = true;
  full.device_elt_chunk_rows = 0;
  EngineConfig capped;
  capped.batch_contracts = true;
  capped.device_elt_chunk_rows = 64;
  const auto a = run_device(world, full);
  const auto b = run_device(world, capped);
  EXPECT_GT(a.launches, b.launches);
  EXPECT_EQ(b.launches, 1);
  EXPECT_GT(a.counters.const_read_bytes, b.counters.const_read_bytes);
}

TEST(DeviceMetering, TightConstantPackingRespectsUploadAlignment) {
  // Eleven tables whose exact byte sum fits the planner's budget but whose
  // per-upload 16-byte alignment pads would overflow the segment if the
  // plan charged raw sizes: the residency planner must charge aligned
  // sizes so every planned chunk actually uploads.
  finance::Layer layer;
  layer.id = 1;
  layer.terms = finance::LayerTerms::typical();
  finance::Portfolio portfolio;
  for (ContractId c = 0; c < 11; ++c) {
    std::vector<data::EltRow> rows;
    const EventId rows_n = c == 10 ? 99 : 107;
    for (EventId e = 0; e < rows_n; ++e) {
      rows.push_back({static_cast<EventId>(c * 120 + e), 1e6 + e, 2e5, 4e6});
    }
    portfolio.add(
        finance::Contract(c, data::EventLossTable::from_rows(rows), {layer}));
  }
  data::YeltGenConfig yg;
  yg.trials = 200;
  const auto yelt = data::generate_yelt(500, yg);

  EngineConfig config;
  config.backend = Backend::Sequential;
  config.batch_contracts = true;
  const auto reference = run_aggregate_analysis(portfolio, yelt, config);
  config.backend = Backend::DeviceSim;
  const auto device = run_aggregate_analysis(portfolio, yelt, config);
  for (TrialId t = 0; t < yelt.trials(); ++t) {
    ASSERT_EQ(reference.portfolio_ylt[t], device.portfolio_ylt[t]) << t;
  }
}

TEST(DeviceMetering, TinyBlocksStageButHugeBlocksSpill) {
  // 5k trials x ~10 occurrences: a 4096-trial block carries ~160 KiB of
  // row-column slice — over the 48 KiB shared arena — while 8-trial blocks
  // fit.
  const auto world = make_world(5'000);
  EngineConfig small;
  small.device_block_dim = 8;
  EngineConfig large;
  large.device_block_dim = 4'096;
  const auto a = run_device(world, small);
  const auto b = run_device(world, large);
  EXPECT_EQ(a.shared_spill_blocks, 0u);
  EXPECT_GT(a.shared_staged_blocks, 0u);
  EXPECT_GT(b.shared_spill_blocks, 0u);
}

TEST(DeviceMetering, ModeledTimeScalesWithTrials) {
  const auto small_world = make_world(200);
  const auto big_world = make_world(2'000);
  EngineConfig config;
  const auto a = run_device(small_world, config);
  const auto b = run_device(big_world, config);
  EXPECT_GT(b.modeled_seconds, a.modeled_seconds);
  EXPECT_GT(b.counters.flops, b.counters.flops / 2 + a.counters.flops);
}

TEST(DeviceMetering, EfficiencyFactorScalesModel) {
  const auto world = make_world();
  EngineConfig config;
  DeviceSpec honest;  // default achieved_efficiency
  DeviceSpec ideal = honest;
  ideal.achieved_efficiency = 1.0;
  const auto a = run_device(world, config, honest);
  const auto b = run_device(world, config, ideal);
  // The roofline-ideal device is modeled far faster; launch overhead keeps
  // the ratio below the raw 1/efficiency.
  EXPECT_LT(b.modeled_seconds, a.modeled_seconds);
}

TEST(DeviceMetering, FasterSpecModelsFaster) {
  const auto world = make_world();
  EngineConfig config;
  DeviceSpec slow;
  slow.global_bw_gbs = 20.0;
  slow.const_bw_gbs = 100.0;
  slow.sm_count = 2;
  DeviceSpec fast;
  fast.global_bw_gbs = 900.0;
  fast.const_bw_gbs = 4'000.0;
  fast.sm_count = 80;
  const auto a = run_device(world, config, slow);
  const auto b = run_device(world, config, fast);
  EXPECT_GT(a.modeled_seconds, b.modeled_seconds);
}

}  // namespace
}  // namespace riskan::core
