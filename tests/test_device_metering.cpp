// Device-engine telemetry: the counters and the performance model that
// E2/E4 report. These tests pin the metering semantics so the modeled
// numbers in EXPERIMENTS.md stay auditable.
#include <gtest/gtest.h>

#include "core/aggregate_engine.hpp"
#include "core/device_engine.hpp"
#include "data/yelt.hpp"
#include "finance/contract.hpp"

namespace riskan::core {
namespace {

struct World {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
};

World make_world(TrialId trials = 400, std::size_t elt_rows = 200) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 2;
  pg.catalog_events = 500;
  pg.elt_rows = elt_rows;
  data::YeltGenConfig yg;
  yg.trials = trials;
  return World{finance::generate_portfolio(pg), data::generate_yelt(500, yg)};
}

DeviceRunInfo run_device(const World& world, EngineConfig config, DeviceSpec spec = {}) {
  config.backend = Backend::DeviceSim;
  DeviceRunInfo info;
  (void)run_aggregate_device(world.portfolio, world.yelt, config, spec, &info);
  return info;
}

TEST(DeviceMetering, CountersArePopulated) {
  const auto world = make_world();
  EngineConfig config;
  const auto info = run_device(world, config);
  EXPECT_GT(info.launches, 0);
  EXPECT_GT(info.elt_chunks, 0u);
  EXPECT_GT(info.modeled_seconds, 0.0);
  EXPECT_GT(info.host_seconds, 0.0);
  EXPECT_GT(info.counters.const_read_bytes, 0u);   // ELT probes
  EXPECT_GT(info.counters.global_read_bytes, 0u);  // YELT staging + scratch
  EXPECT_GT(info.counters.flops, 0u);              // beta sampling
}

TEST(DeviceMetering, SecondaryOffDropsFlops) {
  const auto world = make_world();
  EngineConfig on;
  on.secondary_uncertainty = true;
  EngineConfig off;
  off.secondary_uncertainty = false;
  const auto info_on = run_device(world, on);
  const auto info_off = run_device(world, off);
  EXPECT_GT(info_on.counters.flops, 2 * info_off.counters.flops);
}

TEST(DeviceMetering, SmallerEltChunksMeanMoreLaunchesAndConstTraffic) {
  // Legacy lookup path: every occurrence binary-searches every chunk, so
  // finer chunking strictly inflates constant-memory probe traffic.
  const auto world = make_world(300, 400);
  EngineConfig coarse;
  coarse.use_resolver = false;
  coarse.device_elt_chunk_rows = 0;  // fit
  EngineConfig fine;
  fine.use_resolver = false;
  fine.device_elt_chunk_rows = 32;
  const auto a = run_device(world, coarse);
  const auto b = run_device(world, fine);
  EXPECT_GT(b.launches, a.launches);
  EXPECT_GT(b.elt_chunks, a.elt_chunks);
  EXPECT_GT(b.counters.const_read_bytes, a.counters.const_read_bytes);
  EXPECT_GT(b.modeled_seconds, a.modeled_seconds);
}

TEST(DeviceMetering, ResolverMakesConstTrafficChunkingInvariant) {
  // Resolved path: an occurrence touches constant memory only in the one
  // chunk that owns its row, so const traffic no longer scales with chunk
  // count — only the per-launch re-scan of the row column (global/shared
  // traffic) does.
  const auto world = make_world(300, 400);
  EngineConfig coarse;
  coarse.device_elt_chunk_rows = 0;  // fit
  EngineConfig fine;
  fine.device_elt_chunk_rows = 32;
  const auto a = run_device(world, coarse);
  const auto b = run_device(world, fine);
  EXPECT_GT(b.launches, a.launches);
  EXPECT_EQ(b.counters.const_read_bytes, a.counters.const_read_bytes);
  const auto occurrence_traffic = [](const DeviceRunInfo& info) {
    return info.counters.shared_read_bytes + info.counters.global_read_bytes;
  };
  EXPECT_GT(occurrence_traffic(b), occurrence_traffic(a));
  EXPECT_GT(b.modeled_seconds, a.modeled_seconds);
}

TEST(DeviceMetering, TinyBlocksStageButHugeBlocksSpill) {
  // 5k trials x ~10 occurrences: a 4096-trial block carries ~160 KiB of
  // event ids — over the 48 KiB shared arena — while 8-trial blocks fit.
  const auto world = make_world(5'000);
  EngineConfig small;
  small.device_block_dim = 8;
  EngineConfig large;
  large.device_block_dim = 4'096;
  const auto a = run_device(world, small);
  const auto b = run_device(world, large);
  EXPECT_EQ(a.shared_spill_blocks, 0u);
  EXPECT_GT(a.shared_staged_blocks, 0u);
  EXPECT_GT(b.shared_spill_blocks, 0u);
}

TEST(DeviceMetering, ModeledTimeScalesWithTrials) {
  const auto small_world = make_world(200);
  const auto big_world = make_world(2'000);
  EngineConfig config;
  const auto a = run_device(small_world, config);
  const auto b = run_device(big_world, config);
  EXPECT_GT(b.modeled_seconds, a.modeled_seconds);
  EXPECT_GT(b.counters.flops, b.counters.flops / 2 + a.counters.flops);
}

TEST(DeviceMetering, EfficiencyFactorScalesModel) {
  const auto world = make_world();
  EngineConfig config;
  DeviceSpec honest;  // default achieved_efficiency
  DeviceSpec ideal = honest;
  ideal.achieved_efficiency = 1.0;
  const auto a = run_device(world, config, honest);
  const auto b = run_device(world, config, ideal);
  // The roofline-ideal device is modeled far faster; launch overhead keeps
  // the ratio below the raw 1/efficiency.
  EXPECT_LT(b.modeled_seconds, a.modeled_seconds);
}

TEST(DeviceMetering, FasterSpecModelsFaster) {
  const auto world = make_world();
  EngineConfig config;
  DeviceSpec slow;
  slow.global_bw_gbs = 20.0;
  slow.const_bw_gbs = 100.0;
  slow.sm_count = 2;
  DeviceSpec fast;
  fast.global_bw_gbs = 900.0;
  fast.const_bw_gbs = 4'000.0;
  fast.sm_count = 80;
  const auto a = run_device(world, config, slow);
  const auto b = run_device(world, config, fast);
  EXPECT_GT(a.modeled_seconds, b.modeled_seconds);
}

}  // namespace
}  // namespace riskan::core
