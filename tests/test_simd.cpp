// SIMD backend — dispatch, validation and the bit-identity contract.
//
// The vectorized kernel is pure scheduling: Backend::Simd and
// Backend::ThreadedSimd must reproduce Backend::Sequential to the bit
// across the whole feature matrix (secondary sampling, OEP, batched and
// per-contract entry points, grain sizes, lane tails). Hosts or builds
// without a wide ISA reject the backends up front via
// validate_engine_config — never silently run something else — which is
// also what these tests rely on to skip the identity matrix gracefully
// on scalar builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/aggregate_engine.hpp"
#include "core/portfolio_batch.hpp"
#include "core/secondary.hpp"
#include "core/simd.hpp"
#include "data/elt.hpp"
#include "finance/contract.hpp"
#include "finance/terms.hpp"
#include "util/require.hpp"

namespace riskan::core {
namespace {

/// Scoped environment override that restores the previous value on exit
/// (simd_dispatch() re-reads the environment on every call).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(SimdDispatch, DecisionIsSelfConsistent) {
  const exec::SimdDispatch d = exec::simd_dispatch();
  if (d.width > 0) {
    EXPECT_TRUE(d.compiled);
    EXPECT_NE(d.kernel, nullptr);
    EXPECT_NE(d.isa, exec::SimdIsa::None);
    EXPECT_STRNE(d.name, "none");
    EXPECT_TRUE(d.width == 2 || d.width == 4 || d.width == 8) << d.width;
  } else {
    EXPECT_EQ(d.kernel, nullptr);
    EXPECT_EQ(d.isa, exec::SimdIsa::None);
    EXPECT_STRNE(d.reason, "") << "rejection must carry a reason";
  }
}

TEST(SimdDispatch, EnvOffDisablesDispatch) {
  for (const char* off : {"off", "0"}) {
    EnvGuard guard("RISKAN_SIMD", off);
    const exec::SimdDispatch d = exec::simd_dispatch();
    EXPECT_EQ(d.width, 0u) << off;
    EXPECT_EQ(d.kernel, nullptr) << off;
    EXPECT_NE(std::string(d.reason).find("RISKAN_SIMD"), std::string::npos)
        << "reason should name the override: " << d.reason;
  }
}

TEST(SimdDispatch, EnvRequiringForeignIsaRejects) {
  // Requiring the ISA this host does not dispatch must fail closed.
  exec::SimdDispatch base;
  {
    EnvGuard guard("RISKAN_SIMD", nullptr);
    base = exec::simd_dispatch();
  }
  const char* foreign =
      base.isa == exec::SimdIsa::Neon ? "avx2" : "neon";
  EnvGuard guard("RISKAN_SIMD", foreign);
  const exec::SimdDispatch d = exec::simd_dispatch();
  EXPECT_EQ(d.width, 0u);
  EXPECT_EQ(d.kernel, nullptr);
}

TEST(SimdDispatch, ValidationRejectsSimdBackendWhenUnavailable) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 100;
  pg.elt_rows = 30;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 50;
  const auto yelt = data::generate_yelt(100, yg);

  // RISKAN_SIMD=off makes the backend unavailable on every build, so the
  // rejection path is exercised on SIMD-enabled hosts too.
  EnvGuard guard("RISKAN_SIMD", "off");
  for (const Backend backend : kSimdBackends) {
    EngineConfig config;
    config.backend = backend;
    EXPECT_THROW((void)run_aggregate_analysis(portfolio, yelt, config),
                 ContractViolation)
        << to_string(backend);
  }
}

TEST(SimdDispatch, ScalarBuildAlwaysRejectsSimdBackend) {
  const exec::SimdDispatch d = exec::simd_dispatch();
  if (d.compiled) {
    GTEST_SKIP() << "wide kernels compiled in; covered by the env-off test";
  }
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 100;
  pg.elt_rows = 30;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 50;
  const auto yelt = data::generate_yelt(100, yg);

  EngineConfig config;
  config.backend = Backend::Simd;
  EXPECT_THROW((void)run_aggregate_analysis(portfolio, yelt, config),
               ContractViolation);
}

TEST(ApplyOccurrenceLanes, MatchesScalarBitwiseBothRetentionKinds) {
  // Property surface of the lane algebra: every element of the dispatched
  // lane call must equal the scalar finance::apply_occurrence bit for bit,
  // including retention/limit boundaries, zeros and odd (tail) lengths.
  for (const auto kind :
       {finance::RetentionKind::Deductible, finance::RetentionKind::Franchise}) {
    finance::LayerTerms terms = finance::LayerTerms::typical();
    terms.occ_retention = 1e6;
    terms.occ_limit = 5e6;
    terms.retention_kind = kind;
    terms.validate();

    const std::vector<Money> ground_up = {
        0.0,    1e5,       1e6 - 1e-3, 1e6,         1e6 + 1e-3,
        2.5e6,  5e6,       6e6 - 1.0,  6e6,         6e6 + 1.0,
        1e9,    1e6 * 0.5, 7.25e6,     // 13 entries: odd, exercises tails
    };
    for (std::size_t n = 0; n <= ground_up.size(); ++n) {
      std::vector<Money> lanes(n, -1.0);
      batch::apply_occurrence_lanes(terms, ground_up.data(), n, lanes.data());
      for (std::size_t i = 0; i < n; ++i) {
        const Money scalar = finance::apply_occurrence(terms, ground_up[i]);
        ASSERT_EQ(lanes[i], scalar)
            << "kind=" << static_cast<int>(kind) << " n=" << n << " i=" << i
            << " gu=" << ground_up[i];
      }
    }
  }
}

/// An ELT covering every parameter class of the batched sampler: zero-mean
/// and pinned-at-exposure degenerates, a deterministic (tiny-sigma) row,
/// both-shapes >= 1, single-boost rows on each side, and a very high-CV row
/// where both shapes sit well below 1 (rejection-heavy).
data::EventLossTable sampler_class_elt() {
  const Money exposure = 4e6;
  std::vector<data::EltRow> rows;
  rows.push_back({0, 0.0, 1e5, exposure});     // degenerate: zero mean
  rows.push_back({1, exposure, 1e5, exposure});  // degenerate: pinned at limit
  rows.push_back({2, 1e6, 1e-6, exposure});    // degenerate: deterministic
  rows.push_back({3, 2e6, 6e5, exposure});     // alpha, beta both >= 1
  rows.push_back({4, 1e5, 2e5, exposure});     // CV 2: alpha < 1 (boost)
  rows.push_back({5, 3.9e6, 2e5, exposure});   // mirrored: beta < 1 (boost)
  rows.push_back({6, 4e5, 1e6, exposure});     // CV 2.5: both shapes < 1
  return data::EventLossTable::from_rows(std::move(rows));
}

TEST(SecondarySamplerLanes, MatchesScalarSampleBitwise) {
  // sample_lanes must commit, per occurrence, exactly the bits the scalar
  // sampler draws from occurrence_stream — fast path and rejection-tail
  // fallback alike — across every parameter class and across batch sizes
  // that exercise sub-width lane tails and the 64-occurrence batching.
  const auto elt = sampler_class_elt();
  const SecondarySampler sampler(elt);
  const Philox4x32 engine(0xB10CDEADu);
  const std::uint64_t hi_key = (std::uint64_t{12} << 16) | 3u;  // contract 12, layer 3

  std::uint64_t fast = 0;
  std::uint64_t tail = 0;
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
        std::size_t{17}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{130}, std::size_t{257}}) {
    std::vector<std::uint32_t> rows(n);
    std::vector<std::uint64_t> lo(n);
    for (std::size_t i = 0; i < n; ++i) {
      rows[i] = static_cast<std::uint32_t>(i % sampler.size());
      lo[i] = (static_cast<std::uint64_t>(i) << 20) | static_cast<std::uint64_t>(i % 7);
    }
    std::vector<Money> out(n, -1.0);
    const std::uint64_t fast_before = fast;
    const std::uint64_t tail_before = tail;
    sampler.sample_lanes(engine, hi_key, rows.data(), lo.data(), n, out.data(), fast,
                         tail);
    EXPECT_EQ((fast - fast_before) + (tail - tail_before), n) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      PhiloxStream stream(engine, hi_key, lo[i]);
      const Money scalar = sampler.sample(rows[i], stream);
      ASSERT_EQ(out[i], scalar) << "n=" << n << " i=" << i << " row=" << rows[i];
    }
  }

  // The same contract holds with vector dispatch forced off: the facade
  // falls back to the scalar block body without moving a bit.
  EnvGuard guard("RISKAN_SIMD", "off");
  const std::size_t n = 130;
  std::vector<std::uint32_t> rows(n);
  std::vector<std::uint64_t> lo(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i] = static_cast<std::uint32_t>(i % sampler.size());
    lo[i] = (static_cast<std::uint64_t>(i) << 20) | static_cast<std::uint64_t>(i % 7);
  }
  std::vector<Money> out(n, -1.0);
  sampler.sample_lanes(engine, hi_key, rows.data(), lo.data(), n, out.data(), fast,
                       tail);
  for (std::size_t i = 0; i < n; ++i) {
    PhiloxStream stream(engine, hi_key, lo[i]);
    ASSERT_EQ(out[i], sampler.sample(rows[i], stream)) << "off-mode i=" << i;
  }
}

TEST(SecondarySamplerLanes, RejectionHeavyRowsExerciseTheFallback) {
  // A table of only very high-CV rows (both gamma shapes < 1) rejects the
  // first Marsaglia–Tsang attempt often enough that the scalar fallback
  // must fire — and every fallback sample still matches the scalar path.
  std::vector<data::EltRow> heavy;
  heavy.push_back({0, 4e5, 1e6, 4e6});
  heavy.push_back({1, 1e5, 2.4e5, 4e6});
  const auto elt = data::EventLossTable::from_rows(std::move(heavy));
  const SecondarySampler sampler(elt);
  const Philox4x32 engine(0x7E57u);
  const std::uint64_t hi_key = (std::uint64_t{1} << 16) | 1u;

  const std::size_t n = 2048;
  std::vector<std::uint32_t> rows(n);
  std::vector<std::uint64_t> lo(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows[i] = static_cast<std::uint32_t>(i & 1);
    lo[i] = static_cast<std::uint64_t>(i) << 20;
  }
  std::vector<Money> out(n);
  std::uint64_t fast = 0;
  std::uint64_t tail = 0;
  sampler.sample_lanes(engine, hi_key, rows.data(), lo.data(), n, out.data(), fast,
                       tail);
  EXPECT_EQ(fast + tail, n);
  EXPECT_GT(tail, 0u) << "high-CV rows should reject some first attempts";
  EXPECT_GT(fast, 0u) << "most first attempts should still accept";
  for (std::size_t i = 0; i < n; ++i) {
    PhiloxStream stream(engine, hi_key, lo[i]);
    ASSERT_EQ(out[i], sampler.sample(rows[i], stream)) << "i=" << i;
  }
}

TEST(MaxRangeLanes, MatchesScalarMaxIncludingTails) {
  // finalize_oep's vector scan: bitwise-equal to the scalar running max on
  // its input class (non-NaN, >= +0.0) for every length and seed value,
  // including ties and sub-width tails.
  const std::vector<Money> values = {0.0, 3.5e6, 1.0, 3.5e6, 2e9,  0.0, 7.25,
                                     2e9, 1e-12, 5.0, 42.0,  42.0, 41.0};
  for (std::size_t n = 0; n <= values.size(); ++n) {
    for (const Money init : {0.0, 1.0, 1e12}) {
      Money scalar = init;
      for (std::size_t i = 0; i < n; ++i) {
        scalar = std::max(scalar, values[i]);
      }
      EXPECT_EQ(batch::max_range_lanes(values.data(), n, init), scalar)
          << "n=" << n << " init=" << init;
    }
  }
  EnvGuard guard("RISKAN_SIMD", "off");
  EXPECT_EQ(batch::max_range_lanes(values.data(), values.size(), 0.0), 2e9);
}

finance::Portfolio simd_book(std::size_t contracts, int layers,
                             std::uint64_t seed = 99, EventId catalog = 800,
                             std::size_t elt_rows = 150) {
  finance::PortfolioGenConfig pg;
  pg.contracts = contracts;
  pg.catalog_events = catalog;
  pg.elt_rows = elt_rows;
  pg.layers_per_contract = layers;
  pg.seed = seed;
  return finance::generate_portfolio(pg);
}

data::YearEventLossTable simd_lens(TrialId trials, EventId catalog = 800,
                                   std::uint64_t seed = 7,
                                   double events_per_year = 10.0) {
  data::YeltGenConfig yg;
  yg.trials = trials;
  yg.seed = seed;
  yg.mean_events_per_year = events_per_year;
  return data::generate_yelt(catalog, yg);
}

void expect_identical(const EngineResult& a, const EngineResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.portfolio_ylt.trials(), b.portfolio_ylt.trials()) << what;
  for (TrialId t = 0; t < a.portfolio_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_ylt[t], b.portfolio_ylt[t]) << what << " AEP trial " << t;
    ASSERT_EQ(a.reinstatement_premium[t], b.reinstatement_premium[t])
        << what << " reinstatement trial " << t;
  }
  ASSERT_EQ(a.portfolio_occurrence_ylt.trials(), b.portfolio_occurrence_ylt.trials())
      << what;
  for (TrialId t = 0; t < a.portfolio_occurrence_ylt.trials(); ++t) {
    ASSERT_EQ(a.portfolio_occurrence_ylt[t], b.portfolio_occurrence_ylt[t])
        << what << " OEP trial " << t;
  }
  ASSERT_EQ(a.contract_ylts.size(), b.contract_ylts.size()) << what;
  for (std::size_t c = 0; c < a.contract_ylts.size(); ++c) {
    for (TrialId t = 0; t < a.contract_ylts[c].trials(); ++t) {
      ASSERT_EQ(a.contract_ylts[c][t], b.contract_ylts[c][t])
          << what << " contract " << c << " trial " << t;
    }
  }
}

TEST(SimdBackend, BitIdenticalToSequentialAcrossFeatureMatrix) {
  if (!exec::simd_available()) {
    GTEST_SKIP() << "no wide ISA dispatched on this build/host";
  }
  const auto portfolio = simd_book(/*contracts=*/6, /*layers=*/3);
  const auto yelt = simd_lens(1'500);

  for (const bool secondary : {false, true}) {
    for (const bool batched : {false, true}) {
      EngineConfig config;
      config.backend = Backend::Sequential;
      config.secondary_uncertainty = secondary;
      config.batch_contracts = batched;
      const auto reference = run_aggregate_analysis(portfolio, yelt, config);

      config.backend = Backend::Simd;
      const auto simd = run_aggregate_analysis(portfolio, yelt, config);
      const std::string what = std::string(secondary ? "secondary" : "means") +
                               (batched ? "/batched" : "/per-contract");
      expect_identical(reference, simd, "simd/" + what);
      EXPECT_EQ(reference.elt_lookups, simd.elt_lookups) << what;
      EXPECT_EQ(reference.occurrences_processed, simd.occurrences_processed) << what;

      for (const std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{97}}) {
        config.backend = Backend::ThreadedSimd;
        config.trial_grain = grain;
        const auto threaded = run_aggregate_analysis(portfolio, yelt, config);
        expect_identical(reference, threaded,
                         "threaded-simd/" + what + "/grain=" + std::to_string(grain));
      }
    }
  }
}

TEST(SimdBackend, LaneTailsOnHeavyAndOddHitCounts) {
  if (!exec::simd_available()) {
    GTEST_SKIP() << "no wide ISA dispatched on this build/host";
  }
  // An ELT covering the full catalogue makes every occurrence a hit, and a
  // high occurrence rate gives trials with hit counts well past the vector
  // width — including counts not divisible by it, so the scalar lane tail
  // runs on most trials. A second, thin lens (1–2 events per year) keeps
  // sub-width trials in the mix.
  const EventId catalog = 120;
  const auto portfolio =
      simd_book(/*contracts=*/3, /*layers=*/2, /*seed=*/5, catalog,
                /*elt_rows=*/catalog);
  for (const double events_per_year : {1.5, 23.0}) {
    const auto yelt = simd_lens(600, catalog, /*seed=*/13, events_per_year);
    for (const bool secondary : {false, true}) {
      EngineConfig config;
      config.secondary_uncertainty = secondary;
      config.batch_contracts = true;
      config.backend = Backend::Sequential;
      const auto reference = run_aggregate_analysis(portfolio, yelt, config);
      config.backend = Backend::Simd;
      const auto simd = run_aggregate_analysis(portfolio, yelt, config);
      expect_identical(reference, simd,
                       "tails/rate=" + std::to_string(events_per_year) +
                           (secondary ? "/secondary" : "/means"));
    }
  }
}

TEST(SimdBackend, EmptyAndDegenerateTrials) {
  if (!exec::simd_available()) {
    GTEST_SKIP() << "no wide ISA dispatched on this build/host";
  }
  // Near-empty lens: most trials have zero occurrences (n == 0 early-out).
  const auto portfolio = simd_book(/*contracts=*/2, /*layers=*/1);
  const auto yelt = simd_lens(400, 800, /*seed=*/3, /*events_per_year=*/0.3);

  EngineConfig config;
  config.batch_contracts = true;
  config.backend = Backend::Sequential;
  const auto reference = run_aggregate_analysis(portfolio, yelt, config);
  config.backend = Backend::Simd;
  const auto simd = run_aggregate_analysis(portfolio, yelt, config);
  expect_identical(reference, simd, "sparse lens");
}

}  // namespace
}  // namespace riskan::core
