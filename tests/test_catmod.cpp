// Stage-1 substrate: catalogue, exposure, hazard, vulnerability, financial
// module, full pipeline, and the catalogue->YELT bridge.
#include <gtest/gtest.h>

#include <cmath>

#include "catmod/event_catalog.hpp"
#include "catmod/exposure.hpp"
#include "catmod/financial.hpp"
#include "catmod/hazard.hpp"
#include "catmod/pipeline.hpp"
#include "catmod/vulnerability.hpp"
#include "catmod/yelt_bridge.hpp"
#include "util/require.hpp"

namespace riskan::catmod {
namespace {

TEST(EventCatalog, GeneratesRequestedShape) {
  CatalogConfig config;
  config.events = 2'000;
  config.seed = 1;
  const auto catalog = EventCatalog::generate(config);
  EXPECT_EQ(catalog.size(), 2'000u);
  for (const auto& event : catalog.events()) {
    EXPECT_GE(event.magnitude, config.min_magnitude);
    EXPECT_LE(event.magnitude, config.max_magnitude);
    EXPECT_GE(event.x, 0.0);
    EXPECT_LE(event.x, 10.0);
    EXPECT_GT(event.annual_rate, 0.0);
  }
  EXPECT_GT(catalog.total_annual_rate(), 0.0);
}

TEST(EventCatalog, GutenbergRichterShape) {
  CatalogConfig config;
  config.events = 20'000;
  config.gr_b_value = 1.0;
  const auto catalog = EventCatalog::generate(config);
  // With b = 1, each whole magnitude unit should thin counts ~10x.
  int m5 = 0;
  int m6 = 0;
  for (const auto& event : catalog.events()) {
    if (event.magnitude >= 5.0 && event.magnitude < 6.0) {
      ++m5;
    }
    if (event.magnitude >= 6.0 && event.magnitude < 7.0) {
      ++m6;
    }
  }
  ASSERT_GT(m6, 0);
  EXPECT_NEAR(static_cast<double>(m5) / m6, 10.0, 2.5);
}

TEST(EventCatalog, BigEventsAreRarer) {
  CatalogConfig config;
  config.events = 5'000;
  const auto catalog = EventCatalog::generate(config);
  double small_rate = 0.0;
  double big_rate = 0.0;
  int small_n = 0;
  int big_n = 0;
  for (const auto& event : catalog.events()) {
    if (event.magnitude < 5.5) {
      small_rate += event.annual_rate;
      ++small_n;
    } else if (event.magnitude > 7.0) {
      big_rate += event.annual_rate;
      ++big_n;
    }
  }
  ASSERT_GT(small_n, 0);
  ASSERT_GT(big_n, 0);
  EXPECT_GT(small_rate / small_n, 10.0 * (big_rate / big_n));
}

TEST(EventCatalog, AccessorBounds) {
  CatalogConfig config;
  config.events = 10;
  const auto catalog = EventCatalog::generate(config);
  EXPECT_EQ(catalog.event(3).id, 3u);
  EXPECT_THROW((void)catalog.event(10), ContractViolation);
}

TEST(Exposure, GeneratesRequestedShape) {
  ExposureConfig config;
  config.sites = 500;
  const auto db = ExposureDatabase::generate(config);
  EXPECT_EQ(db.size(), 500u);
  EXPECT_GT(db.total_insured_value(), 0.0);
  for (const auto& site : db.sites()) {
    EXPECT_GT(site.value, 0.0);
    EXPECT_GT(site.site_deductible, 0.0);
    EXPECT_LT(site.site_deductible, site.value);
    EXPECT_LE(site.site_limit, site.value);
    EXPECT_GE(site.x, 0.0);
    EXPECT_LE(site.x, 10.0);
  }
  EXPECT_THROW((void)db.site(500), ContractViolation);
}

TEST(Exposure, SitesClusterAroundCities) {
  ExposureConfig config;
  config.sites = 2'000;
  config.cities = 3;
  config.city_spread = 0.2;
  const auto db = ExposureDatabase::generate(config);
  // With 3 tight cities, pairwise distances should be strongly bimodal:
  // many pairs within 4 spreads, many near inter-city distances. Proxy: the
  // fraction of sites within 0.6 of some other site is high.
  int clustered = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto& a = db.site(static_cast<LocationId>(i));
    for (std::size_t j = 0; j < db.size(); ++j) {
      if (i == j) {
        continue;
      }
      const auto& b = db.site(static_cast<LocationId>(j));
      if (grid_distance(a.x, a.y, b.x, b.y) < 0.6) {
        ++clustered;
        break;
      }
    }
  }
  EXPECT_GT(clustered, 190);
}

TEST(Hazard, IntensityDecaysWithDistance) {
  CatalogEvent event;
  event.peril = Peril::Earthquake;
  event.magnitude = 7.0;
  event.x = 5.0;
  event.y = 5.0;

  Site near;
  near.x = 5.1;
  near.y = 5.0;
  Site mid;
  mid.x = 6.5;
  mid.y = 5.0;
  Site far;
  far.x = 9.5;
  far.y = 9.5;  // beyond cutoff

  const double i_near = local_intensity(event, near);
  const double i_mid = local_intensity(event, mid);
  const double i_far = local_intensity(event, far);
  EXPECT_GT(i_near, i_mid);
  EXPECT_GT(i_mid, 0.0);
  EXPECT_DOUBLE_EQ(i_far, 0.0);
}

TEST(Hazard, IntensityGrowsWithMagnitude) {
  Site site;
  site.x = 5.5;
  site.y = 5.0;
  CatalogEvent small;
  small.magnitude = 5.0;
  small.x = 5.0;
  small.y = 5.0;
  CatalogEvent big = small;
  big.magnitude = 8.0;
  for (const Peril p : {Peril::Earthquake, Peril::Hurricane, Peril::Flood}) {
    small.peril = p;
    big.peril = p;
    EXPECT_GT(local_intensity(big, site), local_intensity(small, site))
        << to_string(p);
  }
}

TEST(Hazard, GridDistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(grid_distance(0, 0, 3, 4), 5.0);
  EXPECT_DOUBLE_EQ(grid_distance(1, 1, 1, 1), 0.0);
}

TEST(Vulnerability, CurvesAreMonotoneInIntensity) {
  for (int t = 0; t < kConstructionCount; ++t) {
    const auto type = static_cast<ConstructionType>(t);
    double prev = -1.0;
    for (double intensity = 0.5; intensity < 12.0; intensity += 0.5) {
      const auto damage = damage_from_intensity(intensity, type);
      EXPECT_GE(damage.mean_damage_ratio, prev) << to_string(type);
      EXPECT_GE(damage.mean_damage_ratio, 0.0);
      EXPECT_LE(damage.mean_damage_ratio, 1.0);
      EXPECT_GE(damage.sigma_damage_ratio, 0.0);
      prev = damage.mean_damage_ratio;
    }
  }
}

TEST(Vulnerability, WoodFailsBeforeSteel) {
  const double intensity = 5.5;
  const auto wood = damage_from_intensity(intensity, ConstructionType::Wood);
  const auto steel = damage_from_intensity(intensity, ConstructionType::Steel);
  EXPECT_GT(wood.mean_damage_ratio, steel.mean_damage_ratio);
}

TEST(Vulnerability, ZeroIntensityMeansNoDamage) {
  const auto damage = damage_from_intensity(0.0, ConstructionType::Masonry);
  EXPECT_DOUBLE_EQ(damage.mean_damage_ratio, 0.0);
  EXPECT_DOUBLE_EQ(damage.sigma_damage_ratio, 0.0);
}

TEST(Financial, SiteLossAppliesTerms) {
  Site site;
  site.value = 1'000.0;
  site.site_deductible = 50.0;
  site.site_limit = 600.0;

  DamageEstimate none;
  EXPECT_DOUBLE_EQ(site_loss(site, none).mean, 0.0);

  DamageEstimate light;
  light.mean_damage_ratio = 0.04;  // 40 gross, below deductible
  EXPECT_DOUBLE_EQ(site_loss(site, light).mean, 0.0);

  DamageEstimate moderate;
  moderate.mean_damage_ratio = 0.30;  // 300 gross -> 250 net
  moderate.sigma_damage_ratio = 0.10;
  const auto loss = site_loss(site, moderate);
  EXPECT_DOUBLE_EQ(loss.mean, 250.0);
  EXPECT_GT(loss.sigma, 0.0);
  EXPECT_DOUBLE_EQ(loss.max, 600.0);

  DamageEstimate total;
  total.mean_damage_ratio = 1.0;  // 1000 gross -> capped at 600
  EXPECT_DOUBLE_EQ(site_loss(site, total).mean, 600.0);
}

TEST(Financial, AccumulatorAddsVariances) {
  EventLossAccumulator acc(42);
  EXPECT_FALSE(acc.has_loss());
  acc.add(SiteLoss{30.0, 3.0, 100.0});
  acc.add(SiteLoss{40.0, 4.0, 200.0});
  acc.add(SiteLoss{0.0, 9.0, 50.0});  // ignored: zero mean
  EXPECT_TRUE(acc.has_loss());
  EXPECT_EQ(acc.sites_hit(), 2u);
  const auto row = acc.row();
  EXPECT_EQ(row.event_id, 42u);
  EXPECT_DOUBLE_EQ(row.mean_loss, 70.0);
  EXPECT_DOUBLE_EQ(row.sigma_loss, 5.0);  // sqrt(9+16)
  EXPECT_DOUBLE_EQ(row.exposure, 300.0);
}

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    CatalogConfig cc;
    cc.events = 400;
    cc.seed = 5;
    catalog_ = EventCatalog::generate(cc);
    ExposureConfig ec;
    ec.sites = 300;
    ec.seed = 6;
    exposure_ = ExposureDatabase::generate(ec);
  }

  EventCatalog catalog_;
  ExposureDatabase exposure_;
};

TEST_F(PipelineFixture, ProducesNonTrivialElt) {
  PipelineStats stats;
  const auto elt = run_cat_model(catalog_, exposure_, {}, &stats);
  EXPECT_GT(elt.size(), 0u);
  EXPECT_LE(elt.size(), catalog_.size());
  EXPECT_EQ(stats.event_exposure_pairs, 400u * 300u);
  EXPECT_GT(stats.pairs_with_loss, 0u);
  EXPECT_EQ(stats.elt_rows, elt.size());
  for (std::size_t i = 0; i < elt.size(); ++i) {
    EXPECT_GT(elt.mean_loss()[i], 0.0);
    EXPECT_GE(elt.exposure()[i], elt.mean_loss()[i]);
  }
}

TEST_F(PipelineFixture, ParallelMatchesSequential) {
  PipelineConfig sequential;
  sequential.parallel = false;
  PipelineConfig parallel;
  parallel.parallel = true;
  const auto a = run_cat_model(catalog_, exposure_, sequential);
  const auto b = run_cat_model(catalog_, exposure_, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.event_ids()[i], b.event_ids()[i]);
    ASSERT_DOUBLE_EQ(a.mean_loss()[i], b.mean_loss()[i]);
    ASSERT_DOUBLE_EQ(a.sigma_loss()[i], b.sigma_loss()[i]);
  }
}

TEST_F(PipelineFixture, MinLossFloorFilters) {
  PipelineConfig low;
  low.min_mean_loss = 1.0;
  PipelineConfig high;
  high.min_mean_loss = 1e7;
  const auto all = run_cat_model(catalog_, exposure_, low);
  const auto filtered = run_cat_model(catalog_, exposure_, high);
  EXPECT_LT(filtered.size(), all.size());
}

TEST_F(PipelineFixture, YeltBridgeMatchesCatalogueRates) {
  CatalogYeltConfig config;
  config.trials = 4'000;
  const auto yelt = simulate_yelt(catalog_, config);
  EXPECT_EQ(yelt.trials(), 4'000u);
  EXPECT_NEAR(yelt.mean_events_per_trial(), catalog_.total_annual_rate(),
              0.1 * catalog_.total_annual_rate());
  for (const auto event : yelt.events()) {
    EXPECT_LT(event, catalog_.size());
  }
}

TEST_F(PipelineFixture, YeltBridgeRateMultiplierScales) {
  CatalogYeltConfig base;
  base.trials = 2'000;
  CatalogYeltConfig active = base;
  active.rate_multiplier = 2.0;
  const auto quiet = simulate_yelt(catalog_, base);
  const auto busy = simulate_yelt(catalog_, active);
  EXPECT_NEAR(busy.mean_events_per_trial() / quiet.mean_events_per_trial(), 2.0, 0.2);
}

TEST_F(PipelineFixture, FrequentEventsAppearMoreOften) {
  CatalogYeltConfig config;
  config.trials = 5'000;
  const auto yelt = simulate_yelt(catalog_, config);
  // Find the highest- and lowest-rate events and compare occurrence counts.
  EventId hot = 0;
  EventId cold = 0;
  for (EventId e = 1; e < catalog_.size(); ++e) {
    if (catalog_.event(e).annual_rate > catalog_.event(hot).annual_rate) {
      hot = e;
    }
    if (catalog_.event(e).annual_rate < catalog_.event(cold).annual_rate) {
      cold = e;
    }
  }
  std::uint64_t hot_count = 0;
  std::uint64_t cold_count = 0;
  for (const auto event : yelt.events()) {
    if (event == hot) {
      ++hot_count;
    }
    if (event == cold) {
      ++cold_count;
    }
  }
  EXPECT_GT(hot_count, cold_count);
}

}  // namespace
}  // namespace riskan::catmod
