// Risk metrics: closed-form oracles, coherence properties, EP curves,
// pricer and elasticity model.
#include <gtest/gtest.h>

#include <cmath>

#include "core/elasticity.hpp"
#include "core/metrics.hpp"
#include "core/pricer.hpp"
#include "util/prng.hpp"
#include "util/require.hpp"

namespace riskan::core {
namespace {

data::YearLossTable ramp_ylt(TrialId n) {
  data::YearLossTable ylt(n, "ramp");
  for (TrialId t = 0; t < n; ++t) {
    ylt[t] = static_cast<Money>(t);  // 0, 1, ..., n-1
  }
  return ylt;
}

TEST(Metrics, VarOracleOnRamp) {
  const auto ylt = ramp_ylt(101);  // losses 0..100
  EXPECT_DOUBLE_EQ(value_at_risk(ylt, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(value_at_risk(ylt, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(value_at_risk(ylt, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(value_at_risk(ylt, 1.0), 100.0);
}

TEST(Metrics, TvarOracleOnRamp) {
  const auto ylt = ramp_ylt(101);
  // VaR(0.9) = 90; tail {91..100} mean = 95.5.
  EXPECT_DOUBLE_EQ(tail_value_at_risk(ylt, 0.9), 95.5);
}

TEST(Metrics, PmlIsQuantileAtReturnPeriod) {
  const auto ylt = ramp_ylt(1'001);  // 0..1000
  // PML(250y) = VaR(1 - 1/250) = VaR(0.996) = 996.
  EXPECT_DOUBLE_EQ(probable_maximum_loss(ylt, 250.0), 996.0);
  EXPECT_DOUBLE_EQ(probable_maximum_loss(ylt, 2.0), 500.0);
  EXPECT_THROW((void)probable_maximum_loss(ylt, 1.0), ContractViolation);
}

TEST(Metrics, TvarDominatesVarEverywhere) {
  Xoshiro256ss rng(1);
  data::YearLossTable ylt(5'000);
  for (TrialId t = 0; t < 5'000; ++t) {
    ylt[t] = std::pow(to_unit_double_open(rng()), -0.8);  // heavy tail
  }
  for (const double p : {0.5, 0.8, 0.9, 0.95, 0.99, 0.995}) {
    EXPECT_GE(tail_value_at_risk(ylt, p), value_at_risk(ylt, p)) << "p=" << p;
  }
}

class VarMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(VarMonotonicity, VarIncreasesWithLevel) {
  const auto ylt = ramp_ylt(500);
  const double p = GetParam();
  EXPECT_LE(value_at_risk(ylt, p), value_at_risk(ylt, std::min(1.0, p + 0.05)));
}

INSTANTIATE_TEST_SUITE_P(Levels, VarMonotonicity,
                         ::testing::Values(0.0, 0.3, 0.5, 0.8, 0.9, 0.94));

TEST(Metrics, PositiveHomogeneity) {
  auto ylt = ramp_ylt(300);
  const double var_before = value_at_risk(ylt, 0.9);
  const double tvar_before = tail_value_at_risk(ylt, 0.9);
  ylt *= 3.0;
  EXPECT_DOUBLE_EQ(value_at_risk(ylt, 0.9), 3.0 * var_before);
  EXPECT_DOUBLE_EQ(tail_value_at_risk(ylt, 0.9), 3.0 * tvar_before);
}

TEST(Metrics, TranslationInvarianceOfSpread) {
  // Adding a constant to every trial shifts VaR by that constant.
  auto ylt = ramp_ylt(300);
  const double var_before = value_at_risk(ylt, 0.9);
  data::YearLossTable shift(300);
  for (TrialId t = 0; t < 300; ++t) {
    shift[t] = 7.0;
  }
  ylt += shift;
  EXPECT_NEAR(value_at_risk(ylt, 0.9), var_before + 7.0, 1e-9);
}

TEST(Metrics, ExceedanceCurveShape) {
  const auto ylt = ramp_ylt(10'000);
  const auto rps = standard_return_periods();
  const auto curve = exceedance_curve(ylt, rps);
  ASSERT_EQ(curve.size(), rps.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(curve[i].return_period_years, rps[i]);
    EXPECT_NEAR(curve[i].exceedance_probability * rps[i], 1.0, 1e-12);
    if (i > 0) {
      EXPECT_GE(curve[i].loss, curve[i - 1].loss);  // longer RP, bigger loss
    }
  }
  // 1-in-2 on the ramp = median.
  EXPECT_NEAR(curve[0].loss, 4999.5, 1.0);
}

// Tiny local helper so the fixture below reads clearly.
double sample_exponentialish(Xoshiro256ss& rng) {
  return -std::log(to_unit_double_open(rng())) * 100.0;
}

TEST(Metrics, SummaryIsInternallyConsistent) {
  Xoshiro256ss rng(2);
  data::YearLossTable ylt(20'000);
  for (TrialId t = 0; t < 20'000; ++t) {
    ylt[t] = sample_exponentialish(rng);
  }
  const auto s = summarise(ylt);
  EXPECT_GT(s.mean_annual_loss, 0.0);
  EXPECT_GT(s.stdev_annual_loss, 0.0);
  EXPECT_LE(s.var_95, s.var_99);
  EXPECT_LE(s.var_99, s.var_99_6);
  EXPECT_GE(s.tvar_99, s.var_99);
  EXPECT_DOUBLE_EQ(s.pml_250, s.var_99_6);
  EXPECT_LE(s.pml_100, s.pml_250);
  EXPECT_GE(s.max_loss, s.var_99_6);
}

TEST(Metrics, EmptyAndBadInputsRejected) {
  const data::YearLossTable empty;
  EXPECT_THROW((void)value_at_risk(empty, 0.5), ContractViolation);
  EXPECT_THROW((void)tail_value_at_risk(empty, 0.5), ContractViolation);
  EXPECT_THROW((void)summarise(empty), ContractViolation);
  const auto ylt = ramp_ylt(10);
  const std::vector<double> bad_rp{0.5};
  EXPECT_THROW((void)exceedance_curve(ylt, bad_rp), ContractViolation);
}

TEST(Pricer, QuoteIsInternallyConsistent) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 400;
  pg.elt_rows = 150;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 5'000;
  const auto yelt = data::generate_yelt(400, yg);

  EngineConfig config;
  config.backend = Backend::Sequential;
  const RealTimePricer pricer(yelt, config);
  const auto quote = pricer.price(portfolio.contract(0), portfolio.contract(0).layers()[0]);

  EXPECT_EQ(quote.trials, 5'000u);
  EXPECT_GT(quote.loss_stats.expected_loss, 0.0);
  EXPECT_GE(quote.loss_stats.tvar_99, quote.loss_stats.expected_loss);
  EXPECT_GT(quote.technical_premium, quote.loss_stats.expected_loss);
  EXPECT_GT(quote.rate_on_line, 0.0);
  // Premium per unit of limit stays within an order of magnitude of the
  // limit itself (the generated layer is a deliberately hot working layer,
  // so RoL may exceed the ~0.2 typical of real cat programmes).
  EXPECT_LT(quote.rate_on_line, 10.0);
  EXPECT_DOUBLE_EQ(
      quote.rate_on_line,
      quote.technical_premium / portfolio.contract(0).layers()[0].terms.occ_limit);
  EXPECT_GT(quote.seconds, 0.0);
}

TEST(Pricer, SameYeltSameQuote) {
  finance::PortfolioGenConfig pg;
  pg.contracts = 1;
  pg.catalog_events = 200;
  pg.elt_rows = 50;
  const auto portfolio = finance::generate_portfolio(pg);
  data::YeltGenConfig yg;
  yg.trials = 1'000;
  const auto yelt = data::generate_yelt(200, yg);
  const RealTimePricer pricer(yelt);
  const auto a = pricer.price(portfolio.contract(0), portfolio.contract(0).layers()[0]);
  const auto b = pricer.price(portfolio.contract(0), portfolio.contract(0).layers()[0]);
  EXPECT_DOUBLE_EQ(a.technical_premium, b.technical_premium);
  EXPECT_DOUBLE_EQ(a.pml_250, b.pml_250);
}

TEST(Elasticity, ProcessorsScaleWithWorkAndDeadline) {
  StageDemand demand;
  demand.stage = "test";
  demand.work_units = 1e9;
  demand.units_per_core_second = 1e6;
  demand.deadline_seconds = 100.0;
  demand.parallel_efficiency = 1.0;
  const auto req = processors_required(demand);
  EXPECT_DOUBLE_EQ(req.core_seconds, 1000.0);
  EXPECT_DOUBLE_EQ(req.processors, 10.0);

  demand.deadline_seconds = 10.0;
  EXPECT_DOUBLE_EQ(processors_required(demand).processors, 100.0);
  demand.parallel_efficiency = 0.5;
  EXPECT_DOUBLE_EQ(processors_required(demand).processors, 200.0);
}

TEST(Elasticity, AtLeastOneProcessor) {
  StageDemand demand;
  demand.work_units = 1.0;
  demand.units_per_core_second = 1e9;
  demand.deadline_seconds = 1e6;
  EXPECT_DOUBLE_EQ(processors_required(demand).processors, 1.0);
}

TEST(Elasticity, PaperScenarioShowsBurstShape) {
  // Throughputs of this host's order; the paper's qualitative claim must
  // hold after derating: stage 1 under ten processors on its weekly
  // cadence, interactive stage 2/3 in the thousands.
  MeasuredThroughput measured;
  measured.stage1_pairs_per_sec = 35e6;
  measured.stage2_occurrences_per_sec = 14e6;
  measured.stage3_evals_per_sec = 8e6;
  const auto rows = paper_scenario(measured);
  ASSERT_EQ(rows.size(), 6u);

  EXPECT_LT(rows[0].processors, 10.0);  // "less than ten processors"
  // The interactive stage-2 roll-up (row 2) needs thousands.
  EXPECT_GT(rows[2].processors, 1'000.0);
  // Interactive DFA (last row) needs thousands too.
  EXPECT_GT(rows.back().processors, 1'000.0);
  for (const auto& row : rows) {
    EXPECT_GE(row.processors, 1.0);
  }
}

TEST(Elasticity, DeratingMonotone) {
  MeasuredThroughput measured;
  measured.stage1_pairs_per_sec = 35e6;
  measured.stage2_occurrences_per_sec = 14e6;
  measured.stage3_evals_per_sec = 8e6;
  Derating mild;
  mild.core_2012 = 1.0;
  mild.stage2_complexity = 1.0;
  Derating harsh;
  harsh.core_2012 = 10.0;
  harsh.stage2_complexity = 20.0;
  const auto a = paper_scenario(measured, mild);
  const auto b = paper_scenario(measured, harsh);
  EXPECT_LE(a[2].processors, b[2].processors);
  MeasuredThroughput zero;
  EXPECT_THROW((void)paper_scenario(zero), ContractViolation);
}

TEST(Elasticity, RejectsBadInputs) {
  StageDemand demand;
  demand.units_per_core_second = 0.0;
  demand.deadline_seconds = 1.0;
  EXPECT_THROW((void)processors_required(demand), ContractViolation);
  demand.units_per_core_second = 1.0;
  demand.deadline_seconds = 0.0;
  EXPECT_THROW((void)processors_required(demand), ContractViolation);
}

}  // namespace
}  // namespace riskan::core
