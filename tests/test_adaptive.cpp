// Convergence-adaptive stopping: the determinism matrix. The stopping
// trial count is contractual — a pure function of (seed, config, data) —
// so every test here pins bit-identity, not tolerance: the adaptive run's
// YLT must equal the *prefix* of the fixed-budget run across backends,
// source chunkings, dist worker counts, and the MapReduce runtime; with
// adaptivity off nothing may change at all. The stratified sampler gets
// the same treatment: strata partition the trial population exactly,
// Neyman allocations conserve the budget, and every drawn loss equals the
// same trial of a full run bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <vector>

#include "core/adaptive/adaptive.hpp"
#include "core/adaptive/driver.hpp"
#include "core/adaptive/stratified.hpp"
#include "core/aggregate_engine.hpp"
#include "data/serialize.hpp"
#include "data/trial_source.hpp"
#include "dist/coordinator.hpp"
#include "finance/contract.hpp"
#include "mapreduce/aggregate_job.hpp"
#include "mapreduce/dfs.hpp"
#include "scenario/sweep.hpp"
#include "util/bytes.hpp"
#include "util/require.hpp"

namespace riskan::core::adaptive {
namespace {

constexpr TrialId kTrials = 4'000;
constexpr TrialId kBlock = 250;

struct AdaptiveWorld {
  finance::Portfolio portfolio;
  data::YearEventLossTable yelt;
  core::EngineResult full;  ///< fixed-budget Sequential reference (OEP on)
  std::vector<std::vector<std::byte>> encoded;  ///< kBlock-trial dist blocks
  std::vector<dist::BlockSpec> specs;
};

const AdaptiveWorld& world() {
  static const AdaptiveWorld w = [] {
    AdaptiveWorld built;
    finance::PortfolioGenConfig pg;
    pg.contracts = 3;
    pg.catalog_events = 150;
    pg.elt_rows = 30;
    built.portfolio = finance::generate_portfolio(pg);
    data::YeltGenConfig yg;
    yg.trials = kTrials;
    built.yelt = data::generate_yelt(150, yg);

    for (TrialId lo = 0; lo < kTrials; lo += kBlock) {
      const TrialId hi = std::min<TrialId>(kTrials, lo + kBlock);
      ByteWriter writer;
      data::encode_yelt_slice(built.yelt, lo, hi, writer);
      built.specs.push_back({built.encoded.size(), lo, hi - lo});
      built.encoded.push_back(writer.buffer());
    }

    core::EngineConfig engine;
    engine.backend = core::Backend::Sequential;
    engine.compute_oep = true;
    engine.keep_contract_ylts = true;
    built.full = core::run_aggregate_analysis(built.portfolio, built.yelt, engine);
    return built;
  }();
  return w;
}

/// A target the world's book reaches mid-run: loose enough to converge
/// before kTrials, tight enough that min_trials is not the binding
/// constraint. The mid-run tests assert min_trials < stop < kTrials, so a
/// data change that breaks the tuning fails loudly instead of silently
/// degenerating into an Exhausted run.
AdaptiveConfig tuned() {
  AdaptiveConfig ad;
  ad.target_rel_err = 0.20;
  ad.confidence = 0.90;
  ad.min_trials = 1'000;
  ad.block_trials = kBlock;
  ad.min_batches = 4;
  ad.tail_level = 0.90;
  return ad;
}

core::EngineConfig adaptive_engine(core::Backend backend = core::Backend::Sequential) {
  core::EngineConfig engine;
  engine.backend = backend;
  engine.compute_oep = true;
  engine.keep_contract_ylts = true;
  engine.adaptive = tuned();
  return engine;
}

void expect_prefix(const data::YearLossTable& prefix, const data::YearLossTable& full) {
  ASSERT_LE(prefix.trials(), full.trials());
  for (TrialId t = 0; t < prefix.trials(); ++t) {
    ASSERT_EQ(prefix[t], full[t]) << "trial " << t;
  }
}

void expect_same_ylt(const data::YearLossTable& a, const data::YearLossTable& b) {
  ASSERT_EQ(a.trials(), b.trials());
  expect_prefix(a, b);
}

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(AdaptiveConfigValidation, AcceptsDefaultsAndTuned) {
  EXPECT_NO_THROW(validate_adaptive_config(AdaptiveConfig{}));
  EXPECT_NO_THROW(validate_adaptive_config(tuned()));
}

TEST(AdaptiveConfigValidation, RejectsNonsense) {
  const auto rejects = [](auto&& mutate) {
    AdaptiveConfig ad = tuned();
    mutate(ad);
    EXPECT_THROW(validate_adaptive_config(ad), ContractViolation);
  };
  rejects([](AdaptiveConfig& ad) { ad.target_rel_err = 1.0; });
  rejects([](AdaptiveConfig& ad) { ad.target_rel_err = -0.1; });
  rejects([](AdaptiveConfig& ad) { ad.confidence = 0.4; });
  rejects([](AdaptiveConfig& ad) { ad.confidence = 1.0; });
  rejects([](AdaptiveConfig& ad) { ad.tail_level = 0.0; });
  rejects([](AdaptiveConfig& ad) { ad.tail_level = 1.0; });
  rejects([](AdaptiveConfig& ad) { ad.block_trials = 0; });
  rejects([](AdaptiveConfig& ad) { ad.min_batches = 1; });
  rejects([](AdaptiveConfig& ad) { ad.metrics = 1u << 13; });
  rejects([](AdaptiveConfig& ad) { ad.metrics = 0; });
  rejects([](AdaptiveConfig& ad) { ad.min_trials = 0; });
  rejects([](AdaptiveConfig& ad) {
    ad.min_trials = 100;
    ad.max_trials = 50;
  });
}

TEST(AdaptiveConfigValidation, EngineRejectsOccurrenceMetricsWithoutOep) {
  core::EngineConfig engine = adaptive_engine();
  engine.compute_oep = false;
  engine.adaptive.metrics |= kOccVar;
  EXPECT_THROW(core::run_aggregate_analysis(world().portfolio, world().yelt, engine),
               ContractViolation);
}

TEST(AdaptiveConfigValidation, NonsenseRejectedEvenWhenDisabled) {
  // A disabled-but-nonsensical config must not ride along silently.
  core::EngineConfig engine;
  engine.adaptive.target_rel_err = 0.0;
  engine.adaptive.confidence = 0.3;
  EXPECT_THROW(core::run_aggregate_analysis(world().portfolio, world().yelt, engine),
               ContractViolation);
}

TEST(AdaptiveReportContract, EstimateRequiresMonitoredMetric) {
  core::EngineConfig engine = adaptive_engine();
  const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
  EXPECT_NO_THROW(result.adaptive.estimate(kMean));
  EXPECT_THROW(result.adaptive.estimate(kOccTvar), ContractViolation);
}

// ---------------------------------------------------------------------------
// ReblockedSource — the decision grid
// ---------------------------------------------------------------------------

TEST(ReblockedSource, RechunksOntoTheGridExactly) {
  data::InMemorySource inner(world().yelt);
  data::ReblockedSource grid(inner, 300);
  EXPECT_EQ(grid.trials(), kTrials);
  EXPECT_EQ(grid.block_count(), (kTrials + 299) / 300);

  TrialId seen = 0;
  std::size_t index = 0;
  data::TrialBlock block;
  while (grid.next(block)) {
    EXPECT_EQ(block.trial_offset, seen);
    EXPECT_EQ(block.index, index);
    const TrialId expect_trials = std::min<TrialId>(300, kTrials - seen);
    ASSERT_EQ(block.yelt->trials(), expect_trials);
    // Every re-sliced trial must carry the original trial's event set.
    for (TrialId t = 0; t < expect_trials; ++t) {
      const auto events = block.yelt->trial_events(t);
      const auto expect_events = world().yelt.trial_events(seen + t);
      ASSERT_EQ(std::vector(events.begin(), events.end()),
                std::vector(expect_events.begin(), expect_events.end()))
          << "trial " << seen + t;
    }
    seen += expect_trials;
    ++index;
  }
  EXPECT_EQ(seen, kTrials);
}

TEST(ReblockedSource, AlignedBlocksPassThroughZeroCopy) {
  data::InMemorySource inner(world().yelt);
  data::ReblockedSource grid(inner, kTrials);
  data::TrialBlock block;
  ASSERT_TRUE(grid.next(block));
  // The inner block lands on the grid: same table object, no re-slice.
  EXPECT_EQ(block.yelt.get(), &world().yelt);
  EXPECT_FALSE(grid.next(block));
}

TEST(ReblockedSource, TrialCapClipsTheTail) {
  data::InMemorySource inner(world().yelt);
  data::ReblockedSource grid(inner, 500, 1'234);
  EXPECT_EQ(grid.trials(), 1'234u);
  std::vector<TrialId> sizes;
  data::TrialBlock block;
  while (grid.next(block)) {
    sizes.push_back(block.yelt->trials());
  }
  EXPECT_EQ(sizes, (std::vector<TrialId>{500, 500, 234}));
}

TEST(ReblockedSource, ResetRewindsForAnotherPass) {
  data::InMemorySource inner(world().yelt);
  data::ReblockedSource grid(inner, 1'000);
  data::TrialBlock block;
  std::size_t first_pass = 0;
  while (grid.next(block)) {
    ++first_pass;
  }
  grid.reset();
  std::size_t second_pass = 0;
  while (grid.next(block)) {
    ++second_pass;
  }
  EXPECT_EQ(first_pass, second_pass);
}

// ---------------------------------------------------------------------------
// Engine-level stopping determinism
// ---------------------------------------------------------------------------

TEST(AdaptiveStopping, ConvergesMidRunToAPrefixOfTheFixedRun) {
  const auto result =
      core::run_aggregate_analysis(world().portfolio, world().yelt, adaptive_engine());
  const AdaptiveReport& report = result.adaptive;

  ASSERT_TRUE(report.enabled);
  EXPECT_EQ(report.stop_reason, StopReason::Converged);
  EXPECT_TRUE(report.converged());
  EXPECT_EQ(report.trials_available, kTrials);
  // Mid-run: the tuning must neither stop at the floor nor exhaust the
  // source — either means these tests stopped testing adaptivity.
  EXPECT_GE(report.trials_run, tuned().min_trials);
  EXPECT_LT(report.trials_run, kTrials);
  EXPECT_EQ(report.trials_run % kBlock, 0u);
  EXPECT_EQ(report.blocks_folded, report.trials_run / kBlock);

  ASSERT_EQ(result.portfolio_ylt.trials(), report.trials_run);
  expect_prefix(result.portfolio_ylt, world().full.portfolio_ylt);
  expect_prefix(result.portfolio_occurrence_ylt, world().full.portfolio_occurrence_ylt);
  expect_prefix(result.reinstatement_premium, world().full.reinstatement_premium);
  ASSERT_EQ(result.contract_ylts.size(), world().full.contract_ylts.size());
  for (std::size_t c = 0; c < result.contract_ylts.size(); ++c) {
    expect_prefix(result.contract_ylts[c], world().full.contract_ylts[c]);
  }

  ASSERT_EQ(report.estimates.size(), 3u);
  EXPECT_EQ(report.estimates[0].metric, kMean);
  EXPECT_EQ(report.estimates[1].metric, kVar);
  EXPECT_EQ(report.estimates[2].metric, kTvar);
  for (const MetricEstimate& e : report.estimates) {
    EXPECT_TRUE(e.converged) << metric_name(e.metric);
    EXPECT_LE(e.rel_half_width, tuned().target_rel_err) << metric_name(e.metric);
    EXPECT_GT(e.estimate, 0.0) << metric_name(e.metric);
  }
}

TEST(AdaptiveStopping, BackendMatrixStopsBitIdentically) {
  const auto reference =
      core::run_aggregate_analysis(world().portfolio, world().yelt, adaptive_engine());
  for (const core::Backend backend :
       {core::Backend::Threaded, core::Backend::DeviceSim}) {
    const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt,
                                                     adaptive_engine(backend));
    EXPECT_EQ(result.adaptive.trials_run, reference.adaptive.trials_run);
    EXPECT_EQ(result.adaptive.stop_reason, reference.adaptive.stop_reason);
    expect_same_ylt(result.portfolio_ylt, reference.portfolio_ylt);
    expect_same_ylt(result.portfolio_occurrence_ylt, reference.portfolio_occurrence_ylt);
  }
}

TEST(AdaptiveStopping, SourceChunkingCannotMoveTheStoppingTrial) {
  const auto reference =
      core::run_aggregate_analysis(world().portfolio, world().yelt, adaptive_engine());
  // An awkwardly chunked source (123-trial blocks, coprime with the
  // decision grid) must re-chunk onto the same grid and stop identically.
  data::InMemorySource inner(world().yelt);
  data::ReblockedSource awkward(inner, 123);
  const auto result =
      core::run_aggregate_analysis(world().portfolio, awkward, adaptive_engine());
  EXPECT_EQ(result.adaptive.trials_run, reference.adaptive.trials_run);
  expect_same_ylt(result.portfolio_ylt, reference.portfolio_ylt);
}

TEST(AdaptiveStopping, BatchedAndPerContractPathsAgree) {
  core::EngineConfig batched = adaptive_engine();
  batched.batch_contracts = true;
  core::EngineConfig per_contract = adaptive_engine();
  per_contract.batch_contracts = false;
  const auto a = core::run_aggregate_analysis(world().portfolio, world().yelt, batched);
  const auto b =
      core::run_aggregate_analysis(world().portfolio, world().yelt, per_contract);
  EXPECT_EQ(a.adaptive.trials_run, b.adaptive.trials_run);
  expect_same_ylt(a.portfolio_ylt, b.portfolio_ylt);
}

TEST(AdaptiveStopping, MinTrialsIsAHardFloor) {
  core::EngineConfig engine = adaptive_engine();
  engine.adaptive.min_trials = 3'500;  // past the natural stopping point
  const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
  EXPECT_EQ(result.adaptive.trials_run, 3'500u);
  EXPECT_EQ(result.adaptive.stop_reason, StopReason::Converged);
  expect_prefix(result.portfolio_ylt, world().full.portfolio_ylt);
}

TEST(AdaptiveStopping, MinTrialsBeyondTheSourceClampsToAvailable) {
  core::EngineConfig engine = adaptive_engine();
  engine.adaptive.min_trials = 10 * kTrials;
  const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
  EXPECT_EQ(result.adaptive.trials_run, kTrials);
  expect_same_ylt(result.portfolio_ylt, world().full.portfolio_ylt);
}

TEST(AdaptiveStopping, MaxTrialsCapsAnUnreachableTarget) {
  core::EngineConfig engine = adaptive_engine();
  engine.adaptive.target_rel_err = 1e-9;  // unreachable
  engine.adaptive.min_trials = 500;
  engine.adaptive.max_trials = 1'200;  // deliberately off the 250-trial grid
  const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
  EXPECT_EQ(result.adaptive.trials_run, 1'200u);
  EXPECT_EQ(result.adaptive.stop_reason, StopReason::Exhausted);
  EXPECT_FALSE(result.adaptive.converged());
  ASSERT_EQ(result.portfolio_ylt.trials(), 1'200u);
  expect_prefix(result.portfolio_ylt, world().full.portfolio_ylt);
}

TEST(AdaptiveStopping, NeverConvergingRunConsumesEverythingBitIdentically) {
  core::EngineConfig engine = adaptive_engine();
  engine.adaptive.target_rel_err = 1e-9;
  const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
  EXPECT_EQ(result.adaptive.trials_run, kTrials);
  EXPECT_EQ(result.adaptive.stop_reason, StopReason::Exhausted);
  expect_same_ylt(result.portfolio_ylt, world().full.portfolio_ylt);
  expect_same_ylt(result.portfolio_occurrence_ylt, world().full.portfolio_occurrence_ylt);
}

TEST(AdaptiveStopping, OccurrenceMetricsRideTheOepSample) {
  core::EngineConfig engine = adaptive_engine();
  engine.adaptive.metrics = kMean | kVar | kTvar | kOccVar | kOccTvar;
  const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
  ASSERT_EQ(result.adaptive.estimates.size(), 5u);
  EXPECT_EQ(result.adaptive.estimates[3].metric, kOccVar);
  EXPECT_EQ(result.adaptive.estimates[4].metric, kOccTvar);
  expect_prefix(result.portfolio_ylt, world().full.portfolio_ylt);
  expect_prefix(result.portfolio_occurrence_ylt, world().full.portfolio_occurrence_ylt);
}

TEST(AdaptiveStopping, DisabledAdaptivityIsBitIdenticalToBefore) {
  core::EngineConfig engine = adaptive_engine();
  engine.adaptive = {};  // off — the default
  ASSERT_FALSE(engine.adaptive.enabled());
  const auto result = core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
  EXPECT_FALSE(result.adaptive.enabled);
  EXPECT_EQ(result.adaptive.stop_reason, StopReason::None);
  expect_same_ylt(result.portfolio_ylt, world().full.portfolio_ylt);
  expect_same_ylt(result.portfolio_occurrence_ylt, world().full.portfolio_occurrence_ylt);
}

// ---------------------------------------------------------------------------
// Scenario sweep
// ---------------------------------------------------------------------------

TEST(AdaptiveSweep, AllScenariosStopAtTheBaseBooksTrial) {
  std::vector<scenario::ScenarioSpec> specs(2);
  specs[0].name = "scaled";
  specs[0].loss_scale = 1.25;
  specs[1].name = "identity";

  core::EngineConfig engine = adaptive_engine();
  const auto adaptive_sweep =
      scenario::run_scenario_sweep(world().portfolio, world().yelt, specs, engine);

  const AdaptiveReport& report = adaptive_sweep.base.adaptive;
  ASSERT_TRUE(report.enabled);
  EXPECT_EQ(report.stop_reason, StopReason::Converged);
  EXPECT_GT(report.trials_run, 0u);
  EXPECT_LT(report.trials_run, kTrials);

  core::EngineConfig fixed = adaptive_engine();
  fixed.adaptive = {};
  const auto full_sweep =
      scenario::run_scenario_sweep(world().portfolio, world().yelt, specs, fixed);

  // Convergence is judged on the base book; every scenario truncates to
  // the same stopping trial so the deltas stay trial-aligned.
  EXPECT_EQ(adaptive_sweep.base.portfolio_ylt.trials(), report.trials_run);
  expect_prefix(adaptive_sweep.base.portfolio_ylt, full_sweep.base.portfolio_ylt);
  ASSERT_EQ(adaptive_sweep.scenarios.size(), specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    EXPECT_EQ(adaptive_sweep.scenarios[s].portfolio_ylt.trials(), report.trials_run);
    expect_prefix(adaptive_sweep.scenarios[s].portfolio_ylt,
                  full_sweep.scenarios[s].portfolio_ylt);
  }

  // The delta report is rebuilt over the stopping prefix.
  ASSERT_EQ(adaptive_sweep.report.rows.size(), specs.size());
}

// ---------------------------------------------------------------------------
// Distributed coordinator
// ---------------------------------------------------------------------------

dist::BlockFetcher fetcher() {
  return [](const dist::BlockSpec& spec) { return world().encoded[spec.id]; };
}

core::EngineResult dist_reference() {
  // The dist runtime normalises workers to the lean aggregate view; the
  // single-process adaptive reference must monitor the same stream.
  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  engine.adaptive = tuned();
  return core::run_aggregate_analysis(world().portfolio, world().yelt, engine);
}

class AdaptiveDist : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Workers, AdaptiveDist,
                         ::testing::Values(std::size_t{0}, std::size_t{1},
                                           std::size_t{2}, std::size_t{4},
                                           std::size_t{8}));

TEST_P(AdaptiveDist, StopsAtTheSingleProcessTrialBitIdentically) {
  const auto reference = dist_reference();
  ASSERT_EQ(reference.adaptive.stop_reason, StopReason::Converged);
  ASSERT_LT(reference.adaptive.trials_run, kTrials);

  core::EngineConfig engine;
  engine.adaptive = tuned();
  dist::DistConfig config;
  config.workers = GetParam();  // 0 = in-process fallback
  const auto result = dist::run_distributed_aggregate(world().portfolio, engine,
                                                      world().specs, fetcher(), config);

  ASSERT_TRUE(result.adaptive.enabled);
  EXPECT_EQ(result.adaptive.stop_reason, StopReason::Converged);
  EXPECT_EQ(result.adaptive.trials_run, reference.adaptive.trials_run);
  expect_same_ylt(result.portfolio_ylt, reference.portfolio_ylt);

  // Converging mid-run means some leases were never folded.
  EXPECT_GT(result.stats.blocks_cancelled, 0u);
  EXPECT_EQ(result.stats.blocks_total, world().specs.size());
}

TEST(AdaptiveDistContract, RejectsOccurrenceMetrics) {
  core::EngineConfig engine;
  engine.adaptive = tuned();
  engine.adaptive.metrics |= kOccVar;
  engine.compute_oep = true;
  dist::DistConfig config;
  config.workers = 1;
  EXPECT_THROW(dist::run_distributed_aggregate(world().portfolio, engine, world().specs,
                                               fetcher(), config),
               ContractViolation);
}

TEST(AdaptiveDistContract, RequiresAContiguousPartitionFromTrialZero) {
  core::EngineConfig engine;
  engine.adaptive = tuned();
  dist::DistConfig config;
  config.workers = 1;
  // Drop the first block: the partition no longer starts at trial 0, so
  // the fold frontier could never produce a prefix.
  std::vector<dist::BlockSpec> holey(world().specs.begin() + 1, world().specs.end());
  EXPECT_THROW(dist::run_distributed_aggregate(world().portfolio, engine, holey,
                                               fetcher(), config),
               ContractViolation);
}

TEST(AdaptiveDist, DisabledAdaptivityLeavesTheRuntimeUntouched) {
  core::EngineConfig engine;
  dist::DistConfig config;
  config.workers = 2;
  const auto result = dist::run_distributed_aggregate(world().portfolio, engine,
                                                      world().specs, fetcher(), config);
  EXPECT_FALSE(result.adaptive.enabled);
  EXPECT_EQ(result.stats.blocks_cancelled, 0u);
  ASSERT_EQ(result.portfolio_ylt.trials(), kTrials);
  core::EngineConfig lean;
  lean.backend = core::Backend::Sequential;
  lean.compute_oep = false;
  lean.keep_contract_ylts = false;
  const auto reference = core::run_aggregate_analysis(world().portfolio, world().yelt, lean);
  expect_same_ylt(result.portfolio_ylt, reference.portfolio_ylt);
}

// ---------------------------------------------------------------------------
// MapReduce job
// ---------------------------------------------------------------------------

TEST(AdaptiveMapReduce, InProcessAndDistRuntimesStopIdentically) {
  mapreduce::DfsConfig dfs_config;
  dfs_config.root_dir = "/tmp/riskan-dfs-test-adaptive";
  mapreduce::Dfs dfs(dfs_config);

  mapreduce::AggregateJobConfig job;
  job.trials_per_block = kBlock;  // the decision grid of BOTH runtimes
  job.adaptive = tuned();

  const auto in_process =
      mapreduce::run_aggregate_job(dfs, world().portfolio, world().yelt, job);
  ASSERT_TRUE(in_process.adaptive_report.enabled);
  EXPECT_EQ(in_process.adaptive_report.stop_reason, StopReason::Converged);
  EXPECT_LT(in_process.adaptive_report.trials_run, kTrials);
  EXPECT_EQ(in_process.portfolio_ylt.trials(), in_process.adaptive_report.trials_run);
  EXPECT_EQ(in_process.mr_stats.reduce_groups, in_process.adaptive_report.trials_run);

  mapreduce::AggregateJobConfig dist_job = job;
  dist_job.dist.emplace();
  dist_job.dist->workers = 4;
  const auto dist_run =
      mapreduce::run_aggregate_job(dfs, world().portfolio, world().yelt, dist_job);
  EXPECT_EQ(dist_run.adaptive_report.trials_run, in_process.adaptive_report.trials_run);
  expect_same_ylt(dist_run.portfolio_ylt, in_process.portfolio_ylt);

  // And the adaptive prefix is exactly the head of the fixed-budget job.
  mapreduce::AggregateJobConfig fixed = job;
  fixed.adaptive = {};
  const auto full = mapreduce::run_aggregate_job(dfs, world().portfolio, world().yelt, fixed);
  expect_prefix(in_process.portfolio_ylt, full.portfolio_ylt);
}

TEST(AdaptiveMapReduce, RejectsOccurrenceMetrics) {
  mapreduce::DfsConfig dfs_config;
  dfs_config.root_dir = "/tmp/riskan-dfs-test-adaptive-occ";
  mapreduce::Dfs dfs(dfs_config);
  mapreduce::AggregateJobConfig job;
  job.adaptive = tuned();
  job.adaptive.metrics |= kOccTvar;
  EXPECT_THROW(mapreduce::run_aggregate_job(dfs, world().portfolio, world().yelt, job),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Stratified sampling
// ---------------------------------------------------------------------------

TEST(StratifiedConfigValidation, RejectsNonsense) {
  const auto rejects = [](auto&& mutate) {
    StratifiedConfig config;
    mutate(config);
    EXPECT_THROW(validate_stratified_config(config), ContractViolation);
  };
  rejects([](StratifiedConfig& c) { c.strata = 0; });
  rejects([](StratifiedConfig& c) { c.strata = 5'000; });
  rejects([](StratifiedConfig& c) { c.pilot_per_stratum = 1; });
  rejects([](StratifiedConfig& c) { c.round_trials = 0; });
  rejects([](StratifiedConfig& c) { c.max_trials = 0; });
  rejects([](StratifiedConfig& c) { c.target_rel_err = 1.0; });
  rejects([](StratifiedConfig& c) { c.confidence = 0.5; });
  EXPECT_NO_THROW(validate_stratified_config(StratifiedConfig{}));
}

TEST(StrataPartition, PartitionsTheTrialPopulationExactly) {
  const auto partition = StrataPartition::build(world().yelt, 8);
  ASSERT_GE(partition.size(), 1u);
  ASSERT_LE(partition.size(), 8u);

  // Every trial lands in exactly one stratum: the members are disjoint and
  // their union is the full trial population — no trial double-counted,
  // none dropped.
  std::set<TrialId> seen;
  TrialId total = 0;
  for (std::size_t h = 0; h < partition.size(); ++h) {
    const auto& members = partition.members(h);
    EXPECT_FALSE(members.empty()) << "stratum " << h;
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (const TrialId t : members) {
      EXPECT_TRUE(seen.insert(t).second) << "trial " << t << " in two strata";
      const auto occurrences = world().yelt.trial_events(t).size();
      EXPECT_GE(occurrences, partition.min_occurrences(h));
      EXPECT_LE(occurrences, partition.max_occurrences(h));
      EXPECT_EQ(partition.stratum_of(occurrences), h);
    }
    total += static_cast<TrialId>(members.size());
    if (h > 0) {
      EXPECT_GT(partition.min_occurrences(h), partition.max_occurrences(h - 1));
    }
  }
  EXPECT_EQ(total, kTrials);
  EXPECT_EQ(seen.size(), kTrials);
}

TEST(StrataPartition, DegenerateTableCollapsesToOneStratum) {
  // A table whose trials all share one occurrence count cannot split.
  data::YearEventLossTable::Builder builder(64);
  for (TrialId t = 0; t < 64; ++t) {
    builder.begin_trial();
    builder.add(EventId{1}, 100);
    builder.add(EventId{2}, 200);
  }
  const auto flat = builder.finish();
  const auto partition = StrataPartition::build(flat, 8);
  EXPECT_EQ(partition.size(), 1u);
  EXPECT_EQ(partition.members(0).size(), 64u);
}

TEST(NeymanAllocation, ProportionalWhenVarianceIsUnknown) {
  const std::vector<TrialId> population{100, 100, 800};
  const std::vector<TrialId> sampled{0, 0, 0};
  const std::vector<double> stddev{0.0, 0.0, 0.0};
  const auto alloc = neyman_allocation(population, sampled, stddev, 100);
  EXPECT_EQ(alloc, (std::vector<TrialId>{10, 10, 80}));
}

TEST(NeymanAllocation, WeightsByPopulationTimesStddev) {
  const std::vector<TrialId> population{100, 100, 100};
  const std::vector<TrialId> sampled{0, 0, 0};
  const std::vector<double> stddev{1.0, 3.0, 0.0};
  const auto alloc = neyman_allocation(population, sampled, stddev, 40);
  EXPECT_EQ(alloc, (std::vector<TrialId>{10, 30, 0}));
}

TEST(NeymanAllocation, CapsAtTheUnsampledRemainder) {
  const std::vector<TrialId> population{5, 100};
  const std::vector<TrialId> sampled{5, 0};
  const std::vector<double> stddev{10.0, 1.0};
  const auto alloc = neyman_allocation(population, sampled, stddev, 20);
  EXPECT_EQ(alloc[0], 0u);  // exhausted stratum draws nothing
  EXPECT_EQ(alloc[1], 20u);
}

TEST(NeymanAllocation, BudgetBeyondCapacityReturnsCapacity) {
  const std::vector<TrialId> population{10, 20};
  const std::vector<TrialId> sampled{2, 5};
  const std::vector<double> stddev{1.0, 1.0};
  const auto alloc = neyman_allocation(population, sampled, stddev, 1'000);
  EXPECT_EQ(alloc, (std::vector<TrialId>{8, 15}));
}

TEST(NeymanAllocation, ConservesTheBudgetExactly) {
  const std::vector<TrialId> population{37, 211, 998, 54};
  const std::vector<TrialId> sampled{3, 11, 40, 2};
  const std::vector<double> stddev{0.7, 2.3, 9.1, 0.01};
  for (const TrialId budget : {1u, 7u, 100u, 500u}) {
    const auto alloc = neyman_allocation(population, sampled, stddev, budget);
    TrialId total = 0;
    for (std::size_t h = 0; h < alloc.size(); ++h) {
      EXPECT_LE(alloc[h], population[h] - sampled[h]);
      total += alloc[h];
    }
    EXPECT_EQ(total, budget) << "budget " << budget;
  }
}

core::EngineConfig stratified_engine() {
  core::EngineConfig engine;
  engine.backend = core::Backend::Sequential;
  engine.compute_oep = false;
  engine.keep_contract_ylts = false;
  return engine;
}

TEST(StratifiedMean, EveryDrawnLossIsBitIdenticalToTheFullRun) {
  StratifiedConfig config;
  config.max_trials = 600;
  const auto result = run_stratified_mean(world().portfolio, world().yelt,
                                          stratified_engine(), config);
  EXPECT_EQ(result.trials_sampled, 600u);
  EXPECT_EQ(result.trials_available, kTrials);
  ASSERT_EQ(result.samples.size(), 600u);
  // The strata decide WHICH trials run, never what a trial is worth: each
  // drawn loss must equal the same trial of the fixed-budget run exactly.
  for (const StratifiedSample& sample : result.samples) {
    ASSERT_LT(sample.trial, kTrials);
    EXPECT_EQ(sample.loss, world().full.portfolio_ylt[sample.trial])
        << "trial " << sample.trial;
  }
}

TEST(StratifiedMean, DrawsWithoutReplacementAndDeterministically) {
  StratifiedConfig config;
  config.max_trials = 500;
  const auto a = run_stratified_mean(world().portfolio, world().yelt,
                                     stratified_engine(), config);
  const auto b = run_stratified_mean(world().portfolio, world().yelt,
                                     stratified_engine(), config);

  std::set<TrialId> drawn;
  for (const StratifiedSample& sample : a.samples) {
    EXPECT_TRUE(drawn.insert(sample.trial).second)
        << "trial " << sample.trial << " drawn twice";
  }

  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].trial, b.samples[i].trial);
    EXPECT_EQ(a.samples[i].loss, b.samples[i].loss);
  }
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.half_width, b.half_width);

  TrialId budget = 0;
  for (const StratumSummary& stratum : a.strata) {
    EXPECT_LE(stratum.sampled, stratum.population);
    budget += stratum.sampled;
  }
  EXPECT_EQ(budget, a.trials_sampled);
}

TEST(StratifiedMean, ConvergesToTargetAndCoversTheTruth) {
  StratifiedConfig config;
  config.target_rel_err = 0.05;
  config.round_trials = 512;
  config.max_trials = kTrials;
  const auto result = run_stratified_mean(world().portfolio, world().yelt,
                                          stratified_engine(), config);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.trials_sampled, kTrials);
  EXPECT_LE(result.half_width, 0.05 * std::abs(result.mean) + 1e-12);

  // The estimate targets the finite population mean of the table's trials
  // (known exactly); the CI must put the truth well within reach. Seeded,
  // so this is a deterministic assertion, not a flaky coverage check.
  const auto losses = world().full.portfolio_ylt.losses();
  double truth = 0.0;
  for (const Money loss : losses) {
    truth += loss;
  }
  truth /= static_cast<double>(losses.size());
  EXPECT_NEAR(result.mean, truth, 4.0 * result.half_width);
}

TEST(StratifiedMean, SamplingEveryTrialRecoversTheExactMean) {
  StratifiedConfig config;
  config.max_trials = kTrials;  // exhaustive: every stratum fully drawn
  config.round_trials = 2'000;
  const auto result = run_stratified_mean(world().portfolio, world().yelt,
                                          stratified_engine(), config);
  EXPECT_EQ(result.trials_sampled, kTrials);
  const auto losses = world().full.portfolio_ylt.losses();
  double truth = 0.0;
  for (const Money loss : losses) {
    truth += loss;
  }
  truth /= static_cast<double>(losses.size());
  EXPECT_NEAR(result.mean, truth, 1e-6 * std::max(1.0, std::abs(truth)));
  EXPECT_EQ(result.half_width, 0.0);  // FPC: n_h == N_h everywhere
}

}  // namespace
}  // namespace riskan::core::adaptive
